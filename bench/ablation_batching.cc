// Ablation for the §5.2 design note that it was "vital to reduce the
// number of messages sent between the update store and each participant":
// compares the shipped batched interfaces against the unbatched
// early-prototype model where every transaction is requested with its own
// round trip. The central store's measured message counts come from the
// real implementation; the unbatched cost is reconstructed from the same
// run's transaction counts and the identical latency model, so the two
// columns differ only in batching.
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace orchestra::sim;
  std::printf("Ablation: message batching in the update store interface\n");
  std::printf("(10 peers, txn size 1, RI 4, central vs. unbatched model)\n\n");
  TablePrinter table({"Peers", "Store", "Msgs/recon", "Store s/recon",
                      "Unbatched msgs", "Unbatched s"});
  for (size_t peers : {10, 25, 50}) {
    for (StoreKind kind : {StoreKind::kCentral, StoreKind::kDht}) {
      CdssConfig config;
      config.participants = peers;
      config.store = kind;
      config.transaction_size = 1;
      config.txns_between_recons = 4;
      config.rounds = 4;
      auto cdss = Cdss::Make(config);
      if (!cdss.ok()) return 1;
      auto result = (*cdss)->Run();
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const double recons = static_cast<double>(result->reconciliations);
      const double msgs_per_recon = result->messages / recons;
      const double store_s = result->avg_store_micros / 1e6;
      // Unbatched model: every relevant transaction costs its own round
      // trip (2 messages, 1 ms at 500 us one-way) on top of the fixed
      // per-reconciliation handshake.
      // Each reconciliation fetches the transactions every *other* peer
      // published since this peer's last reconciliation.
      const double txns_per_recon =
          static_cast<double>(result->transactions_published) / recons *
          static_cast<double>(peers - 1);
      const orchestra::net::NetworkConfig net_config;
      const double unbatched_msgs = msgs_per_recon + 2.0 * txns_per_recon;
      const double unbatched_s =
          store_s + 2.0 * txns_per_recon *
                        static_cast<double>(net_config.one_way_latency_micros) /
                        1e6;
      table.Row({std::to_string(peers),
                 kind == StoreKind::kCentral ? "central" : "distributed",
                 Fmt(msgs_per_recon, 1), Fmt(store_s, 4),
                 Fmt(unbatched_msgs, 1), Fmt(unbatched_s, 4)});
    }
  }
  std::printf(
      "\nShape check: batching removes the per-transaction round-trip "
      "tax; the gap widens with the number of peers.\n");
  return 0;
}
