// Ablation over deletion rates: the paper's workload contains only
// insertions and replacements (§6); the model, however, is explicitly
// update-centric so that "sites can reject removals or replacements"
// (§1). This harness exercises the delete/write conflict machinery at
// scale: as the deletion rate grows, delete-vs-replace conflicts add a
// new source of deferral and divergence.
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace orchestra::sim;
  constexpr size_t kTrials = 3;
  std::printf("Ablation: deletion rate vs. conflicts\n");
  std::printf("(10 peers, txn size 1, RI 4, %zu trials)\n\n", kTrials);
  TablePrinter table({"Delete frac", "State ratio", "Deferred", "Rejected",
                      "Accepted"});
  for (double fraction : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    CdssConfig config;
    config.participants = 10;
    config.store = StoreKind::kCentral;
    config.transaction_size = 1;
    config.txns_between_recons = 4;
    config.rounds = 8;
    config.workload.delete_fraction = fraction;
    auto agg = RunTrials(config, kTrials);
    if (!agg.ok()) {
      std::fprintf(stderr, "trial failed: %s\n",
                   agg.status().ToString().c_str());
      return 1;
    }
    table.Row({Fmt(fraction, 2), agg->state_ratio.ToString(),
               Fmt(agg->deferred, 1), Fmt(agg->rejected, 1),
               Fmt(agg->accepted, 1)});
  }
  std::printf(
      "\nShape check: deletions introduce delete/write conflicts on top of "
      "the replace/replace baseline, raising rejections and deferrals.\n");
  return 0;
}
