// Ablation over trust topologies: the paper runs its experiments with
// uniform equal trust, which forces every conflict through manual
// resolution (§6: "conflicts that must be manually rather than
// automatically resolved"). This harness quantifies the flip side the
// model promises in §3.1: authority rankings let the system resolve
// conflicts automatically, shrinking the deferred backlog and the state
// ratio without any user intervention.
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace orchestra::sim;
  constexpr size_t kTrials = 5;
  std::printf("Ablation: trust topology vs. automatic conflict "
              "resolution\n");
  std::printf("(10 peers, txn size 1, RI 4, %zu trials)\n\n", kTrials);
  TablePrinter table({"Topology", "State ratio", "Deferred", "Rejected",
                      "Accepted"});
  struct Row {
    const char* name;
    TrustTopology topology;
  };
  for (const Row& row :
       {Row{"uniform (paper)", TrustTopology::kUniform},
        Row{"tiered", TrustTopology::kTiered},
        Row{"star (curated hub)", TrustTopology::kStar}}) {
    CdssConfig config;
    config.participants = 10;
    config.store = StoreKind::kCentral;
    config.transaction_size = 1;
    config.txns_between_recons = 4;
    config.rounds = 8;
    config.topology = row.topology;
    auto agg = RunTrials(config, kTrials);
    if (!agg.ok()) {
      std::fprintf(stderr, "trial failed: %s\n",
                   agg.status().ToString().c_str());
      return 1;
    }
    table.Row({row.name, agg->state_ratio.ToString(), Fmt(agg->deferred, 1),
               Fmt(agg->rejected, 1), Fmt(agg->accepted, 1)});
  }
  std::printf(
      "\nShape check: authority rankings convert deferrals into automatic "
      "rejections (priorities decide), lowering the deferred backlog "
      "relative to the uniform topology.\n");
  return 0;
}
