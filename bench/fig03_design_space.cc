// Measures the design-space matrix of Figure 3: {client-centric,
// network-centric} reconciliation × {central, distributed} update store.
// The paper presents this qualitatively (pros/cons of each quadrant) and
// implemented only client-centric reconciliation; this harness makes the
// trade-offs quantitative with all four quadrants implemented.
//
// Expected ordering, per Figure 3's annotations:
//   - central store: lowest communication; network-centric adds traffic
//     but moves reconciliation work off the client.
//   - distributed store: more communication; network-centric on top has
//     the highest communication of all, with the least client work.
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace orchestra::sim;
  constexpr size_t kTrials = 3;
  std::printf("Figure 3: reconciliation x store design space\n");
  std::printf("(10 peers, txn size 2, RI 4, %zu trials)\n\n", kTrials);
  TablePrinter table({"Mode", "Store", "Local ms/recon", "Store ms/recon",
                      "Msgs/recon", "KB/recon"});
  for (bool network_centric : {false, true}) {
    for (StoreKind kind : {StoreKind::kCentral, StoreKind::kDht}) {
      CdssConfig config;
      config.participants = 10;
      config.store = kind;
      config.network_centric = network_centric;
      config.transaction_size = 2;
      config.txns_between_recons = 4;
      config.rounds = 5;
      auto cdss = Cdss::Make(config);
      if (!cdss.ok()) return 1;
      double local_ms = 0;
      double store_ms = 0;
      double msgs = 0;
      double kb = 0;
      for (size_t t = 0; t < kTrials; ++t) {
        CdssConfig trial = config;
        trial.seed = 42 + 101 * t;
        auto run = Cdss::Make(trial);
        if (!run.ok()) return 1;
        auto result = (*run)->Run();
        if (!result.ok()) {
          std::fprintf(stderr, "run failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        const double recons = static_cast<double>(result->reconciliations);
        local_ms += result->avg_local_micros / 1e3;
        store_ms += result->avg_store_micros / 1e3;
        msgs += result->messages / recons;
        kb += result->bytes / recons / 1024.0;
      }
      table.Row({network_centric ? "network-centric" : "client-centric",
                 kind == StoreKind::kCentral ? "central" : "distributed",
                 Fmt(local_ms / kTrials, 3), Fmt(store_ms / kTrials, 2),
                 Fmt(msgs / kTrials, 1), Fmt(kb / kTrials, 1)});
    }
  }
  std::printf(
      "\nShape check (Fig. 3): communication grows central < distributed "
      "and client-centric < network-centric; client-side work shrinks "
      "under network-centric reconciliation.\n");
  return 0;
}
