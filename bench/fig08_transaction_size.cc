// Reproduces Figure 8: the effect of varying transaction size on state
// ratio, while holding the number of updates between reconciliations
// constant (§6.1). Expected shape: a sharp jump from size 1 to size 2,
// then a near-flat curve through size 10.
#include <cstdio>

#include "sim/experiment.h"

namespace {

constexpr size_t kUpdatesBetweenRecons = 8;
constexpr size_t kTrials = 5;

}  // namespace

int main() {
  using namespace orchestra::sim;
  std::printf("Figure 8: state ratio vs. transaction size\n");
  std::printf("(10 peers, %zu updates between reconciliations, Zipf 1.5, "
              "%zu trials, 95%% CI)\n\n",
              kUpdatesBetweenRecons, kTrials);
  TablePrinter table({"Txn size", "State ratio", "95% CI", "Deferred",
                      "Accepted"});
  for (size_t txn_size : {1, 2, 3, 4, 6, 8, 10}) {
    CdssConfig config;
    config.participants = 10;
    config.store = StoreKind::kCentral;
    config.transaction_size = txn_size;
    // Hold updates-per-reconciliation constant: fewer, larger
    // transactions between reconciliations as size grows.
    config.txns_between_recons =
        std::max<size_t>(1, kUpdatesBetweenRecons / txn_size);
    config.rounds = 6;
    auto agg = RunTrials(config, kTrials);
    if (!agg.ok()) {
      std::fprintf(stderr, "trial failed: %s\n",
                   agg.status().ToString().c_str());
      return 1;
    }
    table.Row({std::to_string(txn_size), Fmt(agg->state_ratio.mean),
               Fmt(agg->state_ratio.ci95), Fmt(agg->deferred, 1),
               Fmt(agg->accepted, 1)});
  }
  std::printf(
      "\nPaper shape check: ratio(size 2) >> ratio(size 1); sizes 2..10 "
      "nearly flat.\n");
  return 0;
}
