// Reproduces Figure 9: the effect on state ratio of varying the
// reconciliation interval (transactions of size 1 between
// reconciliations, §6.2). Expected shape: state ratio increases gently
// as reconciliation becomes less frequent.
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace orchestra::sim;
  constexpr size_t kTrials = 5;
  std::printf("Figure 9: state ratio vs. reconciliation interval\n");
  std::printf("(10 peers, transaction size 1, %zu trials, 95%% CI)\n\n",
              kTrials);
  TablePrinter table({"RI (txns)", "State ratio", "95% CI", "Deferred"});
  for (size_t interval : {1, 2, 4, 8, 12, 16, 20}) {
    CdssConfig config;
    config.participants = 10;
    config.store = StoreKind::kCentral;
    config.transaction_size = 1;
    config.txns_between_recons = interval;
    // Hold total updates per peer roughly constant across intervals.
    config.rounds = std::max<size_t>(2, 48 / interval);
    auto agg = RunTrials(config, kTrials);
    if (!agg.ok()) {
      std::fprintf(stderr, "trial failed: %s\n",
                   agg.status().ToString().c_str());
      return 1;
    }
    table.Row({std::to_string(interval), Fmt(agg->state_ratio.mean),
               Fmt(agg->state_ratio.ci95), Fmt(agg->deferred, 1)});
  }
  std::printf(
      "\nPaper shape check: state ratio grows slightly with the interval "
      "(longer chains conflict more).\n");
  return 0;
}
