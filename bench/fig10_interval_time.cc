// Reproduces Figure 10: total reconciliation time per participant for
// reconciliation intervals RI ∈ {4, 20, 50}, central vs. distributed
// store, split into store time and local time (§6.2). Expected shape:
// the central store gets cheaper as RI grows (fewer round-trip-dominated
// reconciliations); the distributed store is dominated by per-transaction
// antecedent-chain requests and stays roughly flat across RI.
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace orchestra::sim;
  constexpr size_t kTrials = 3;
  constexpr size_t kTotalTxnsPerPeer = 100;
  std::printf("Figure 10: total reconciliation time per participant\n");
  std::printf("(10 peers, txn size 1, %zu txns per peer per run, "
              "%zu trials)\n\n",
              kTotalTxnsPerPeer, kTrials);
  TablePrinter table({"RI", "Store", "Store time (s)", "Local time (s)",
                      "Total (s)", "Msgs/recon"});
  for (size_t interval : {4, 20, 50}) {
    for (StoreKind kind : {StoreKind::kCentral, StoreKind::kDht}) {
      CdssConfig config;
      config.participants = 10;
      config.store = kind;
      config.transaction_size = 1;
      config.txns_between_recons = interval;
      config.rounds = kTotalTxnsPerPeer / interval;
      auto agg = RunTrials(config, kTrials);
      if (!agg.ok()) {
        std::fprintf(stderr, "trial failed: %s\n",
                     agg.status().ToString().c_str());
        return 1;
      }
      const double store_s = agg->total_store_micros_pp.mean / 1e6;
      const double local_s = agg->total_local_micros_pp.mean / 1e6;
      const double recons =
          static_cast<double>(config.rounds * config.participants);
      table.Row({std::to_string(interval),
                 kind == StoreKind::kCentral ? "central" : "distributed",
                 Fmt(store_s, 3), Fmt(local_s, 3), Fmt(store_s + local_s, 3),
                 Fmt(agg->messages / recons, 1)});
    }
  }
  std::printf(
      "\nPaper shape check: central total drops as RI grows; distributed "
      "is ~flat across RI and store-time dominated.\n");
  return 0;
}
