// Reproduces Figure 11: the change in state ratio as the number of
// participants grows to 50 (§6.3). Expected shape: the ratio grows
// decidedly sublinearly in the peer count, indicating a high level of
// sharing even in large confederations.
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace orchestra::sim;
  constexpr size_t kTrials = 3;
  std::printf("Figure 11: state ratio vs. number of participants\n");
  std::printf("(txn size 1, RI 4, %zu trials, 95%% CI)\n\n", kTrials);
  TablePrinter table({"Peers", "State ratio", "95% CI", "Ratio/peers"});
  for (size_t peers : {5, 10, 20, 35, 50}) {
    CdssConfig config;
    config.participants = peers;
    config.num_threads = ThreadsFromEnv();
    config.store = StoreKind::kCentral;
    config.transaction_size = 1;
    config.txns_between_recons = 4;
    config.rounds = 5;
    auto agg = RunTrials(config, kTrials);
    if (!agg.ok()) {
      std::fprintf(stderr, "trial failed: %s\n",
                   agg.status().ToString().c_str());
      return 1;
    }
    table.Row({std::to_string(peers), Fmt(agg->state_ratio.mean),
               Fmt(agg->state_ratio.ci95),
               Fmt(agg->state_ratio.mean / static_cast<double>(peers), 3)});
  }
  std::printf(
      "\nPaper shape check: ratio grows sublinearly (ratio/peers falls as "
      "peers grow).\n");
  return 0;
}
