// Reproduces Figure 12: average time per reconciliation as the number of
// peers grows, for both stores, split into store and local time (§6.3).
// Expected shape: time grows with peer count for both stores (more
// transactions to consider and, for the DHT, more peers to contact), the
// distributed store being store-time dominated; reconciliation remains
// inexpensive even at 50 peers.
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace orchestra::sim;
  constexpr size_t kTrials = 3;
  std::printf("Figure 12: average time per reconciliation vs. peers\n");
  std::printf("(txn size 1, RI 4, %zu trials)\n\n", kTrials);
  TablePrinter table({"Peers", "Store", "Store time (ms)", "Local time (ms)",
                      "Total (ms)"});
  for (size_t peers : {10, 25, 50}) {
    for (StoreKind kind : {StoreKind::kCentral, StoreKind::kDht}) {
      CdssConfig config;
      config.participants = peers;
      config.num_threads = ThreadsFromEnv();
      config.store = kind;
      config.transaction_size = 1;
      config.txns_between_recons = 4;
      config.rounds = 4;
      auto agg = RunTrials(config, kTrials);
      if (!agg.ok()) {
        std::fprintf(stderr, "trial failed: %s\n",
                     agg.status().ToString().c_str());
        return 1;
      }
      const double store_ms = agg->avg_store_micros.mean / 1e3;
      const double local_ms = agg->avg_local_micros.mean / 1e3;
      table.Row({std::to_string(peers),
                 kind == StoreKind::kCentral ? "central" : "distributed",
                 Fmt(store_ms, 2), Fmt(local_ms, 2),
                 Fmt(store_ms + local_ms, 2)});
    }
  }
  std::printf(
      "\nPaper shape check: per-reconciliation time grows with peers; the "
      "distributed store pays more store time.\n");
  return 0;
}
