// Microbenchmarks for the reconciliation algorithm's components,
// validating the O(t^2 + t·u·a) cost analysis of §5.1 and the costs of
// the substrates (flattening, conflict detection, DHT routing, storage
// engine, serialization).
//
// Before the google-benchmark suite runs, main() executes a fixed
// serial-vs-parallel-vs-cached reconciliation study over a 512-
// transaction workload and writes the wall-time distribution to
// BENCH_micro_reconcile.json (override the path with the
// ORCH_BENCH_JSON env var), so the perf trajectory is machine-readable
// across PRs.
//
// Setting ORCH_FAULT_SWEEP=1 switches the binary into a fault-sweep
// mode instead: a full 25-peer confederation runs against both stores
// with message/storage faults injected at several seeds, each faulted
// run is compared field-by-field against the fault-free baseline, and
// the outcome is written to BENCH_fault_sweep.json (override with
// ORCH_FAULT_SWEEP_JSON).
//
// Setting ORCH_CHURN_SWEEP=1 instead runs the DHT node-churn sweep: a
// 25-peer confederation on the DHT store with replication factor 3
// endures a seeded schedule of node crashes, joins and graceful leaves
// interleaved with the reconciliation rounds, and every run's final
// per-peer decisions must be bit-identical to the churn-free baseline.
// A control leg repeats the schedule with replication disabled (k=1) and
// must demonstrably lose data, proving the replication layer is
// load-bearing. Output goes to BENCH_churn_sweep.json (override with
// ORCH_CHURN_SWEEP_JSON).
//
// Setting ORCH_DELTA_SWEEP=1 instead runs the delta-fetch sweep: a
// multi-round steady state on both stores under each core::FetchMode,
// recording per-round wall time and store message counts. Delta rounds
// must be at least 3x faster than the full-fetch baseline in steady
// state, DHT message counts measurably lower, and every mode's per-peer
// decisions bit-identical. Output goes to BENCH_delta_sweep.json
// (override with ORCH_DELTA_SWEEP_JSON).
//
// Setting ORCH_CORRUPTION_SWEEP=1 instead runs the end-to-end integrity
// sweep: both stores endure silent data corruption (at-rest bit flips,
// in-flight payload corruption) at several seeds, and every protected
// run must (a) finish, (b) produce per-peer decisions bit-identical to
// the corruption-free baseline, and (c) read zero corrupt bytes
// undetected — checksums catch every hit and failover/read-repair/
// re-reads absorb them. Standalone WAL legs exercise the torn-write,
// truncated-tail and bit-flip recovery paths with skip accounting. A
// checksums-disabled control leg re-runs the worst seed and must
// demonstrably consume rot (undetected reads, divergence, or a hard
// error), proving the envelopes are load-bearing. Output goes to
// BENCH_corruption_sweep.json (override with ORCH_CORRUPTION_SWEEP_JSON).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "core/append_only.h"
#include "sim/cdss.h"
#include "core/conflict.h"
#include "core/flatten.h"
#include "core/flatten_cache.h"
#include "core/reconciler.h"
#include "db/serde.h"
#include "net/dht.h"
#include "common/fault_injector.h"
#include "storage/engine.h"
#include "storage/wal.h"
#include "workload/swissprot.h"

namespace {

using namespace orchestra;

db::Catalog& ProteinCatalog() {
  static db::Catalog& catalog = *new db::Catalog([] {
    db::Catalog c;
    auto schema = db::RelationSchema::Make(
        "F",
        {{"organism", db::ValueType::kString, false},
         {"protein", db::ValueType::kString, false},
         {"function", db::ValueType::kString, false}},
        {0, 1});
    ORCH_CHECK(schema.ok());
    ORCH_CHECK(c.AddRelation(*std::move(schema)).ok());
    return c;
  }());
  return catalog;
}

db::Tuple Row(int key, const std::string& fn) {
  return db::Tuple{db::Value("rat"), db::Value("P" + std::to_string(key)),
                   db::Value(fn)};
}

// --- Flatten: chain of u updates over one tuple. ---
void BM_FlattenChain(benchmark::State& state) {
  const int u = static_cast<int>(state.range(0));
  std::vector<core::Update> seq;
  seq.push_back(core::Update::Insert("F", Row(1, "v0"), 1));
  for (int i = 1; i < u; ++i) {
    seq.push_back(core::Update::Modify("F", Row(1, "v" + std::to_string(i - 1)),
                                       Row(1, "v" + std::to_string(i)), 1));
  }
  for (auto _ : state) {
    auto flat = core::Flatten(ProteinCatalog(), seq);
    benchmark::DoNotOptimize(flat);
  }
  state.SetItemsProcessed(state.iterations() * u);
}
BENCHMARK(BM_FlattenChain)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// --- Flatten: n independent tuples. ---
void BM_FlattenIndependent(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<core::Update> seq;
  for (int i = 0; i < n; ++i) {
    seq.push_back(core::Update::Insert("F", Row(i, "fn"), 1));
  }
  for (auto _ : state) {
    auto flat = core::Flatten(ProteinCatalog(), seq);
    benchmark::DoNotOptimize(flat);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlattenIndependent)->Arg(8)->Arg(64)->Arg(512);

// --- Conflict detection between two flattened sets. ---
void BM_SetsConflict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<core::Update> a, b;
  for (int i = 0; i < n; ++i) {
    a.push_back(core::Update::Insert("F", Row(i, "left"), 1));
    // Half the keys overlap (and conflict), half do not.
    b.push_back(core::Update::Insert("F", Row(i + n / 2, "right"), 2));
  }
  for (auto _ : state) {
    auto points = core::SetsConflict(ProteinCatalog(), a, b);
    benchmark::DoNotOptimize(points);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SetsConflict)->Arg(8)->Arg(64)->Arg(512);

// --- Full ReconcileUpdates with t single-update transactions, a given
// fraction of which collide pairwise (the t^2 term of §5.1). ---
void BM_ReconcileUpdates(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const bool conflicting = state.range(1) != 0;
  core::TransactionMap map;
  std::vector<core::TrustedTxn> txns;
  for (int i = 0; i < t; ++i) {
    core::Transaction txn;
    txn.id = {static_cast<core::ParticipantId>(2 + i % 5),
              static_cast<uint64_t>(i)};
    // In conflicting mode every transaction writes one of 4 hot keys
    // with its own value; otherwise keys are unique.
    const int key = conflicting ? i % 4 : i;
    txn.updates.push_back(core::Update::Insert(
        "F", Row(key, "fn" + std::to_string(i)), txn.id.origin));
    txn.epoch = 1 + i;
    // ORCH_LINT(allow:S1): TransactionMap::Put returns void; the name collides with StorageEngine::Put in the include closure
    map.Put(txn);
    core::TrustedTxn trusted;
    trusted.id = txn.id;
    trusted.priority = 1;
    trusted.extension = {txn.id};
    txns.push_back(trusted);
  }
  core::Reconciler reconciler(&ProteinCatalog());
  core::TxnIdSet applied, rejected;
  core::RelKeySet dirty;
  for (auto _ : state) {
    db::Instance instance(&ProteinCatalog());
    core::ReconcileInput input;
    input.recno = 1;
    input.txns = txns;
    input.provider = &map;
    input.applied = &applied;
    input.rejected = &rejected;
    input.dirty = &dirty;
    auto outcome = reconciler.Run(input, &instance);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_ReconcileUpdates)
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({256, 1});

// --- Append-only reconciliation (Definition 2) vs. the general
// algorithm on the same insert-only epoch: the simpler model skips
// extension computation and flattening entirely. ---
void BM_AppendOnlyEpoch(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  std::vector<core::Transaction> epoch;
  for (int i = 0; i < t; ++i) {
    core::Transaction txn;
    txn.id = {2, static_cast<uint64_t>(i)};
    txn.epoch = 1;
    txn.updates.push_back(core::Update::Insert("F", Row(i, "fn"), 2));
    epoch.push_back(std::move(txn));
  }
  core::TrustPolicy policy(1);
  policy.TrustPeer(2, 1);
  for (auto _ : state) {
    db::Instance instance(&ProteinCatalog());
    core::AppendOnlyReconciler reconciler(&ProteinCatalog(), &policy);
    auto result = reconciler.ApplyEpoch(epoch, &instance);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_AppendOnlyEpoch)->Arg(16)->Arg(64)->Arg(256);

// --- DHT routing hop computation. ---
void BM_DhtRoute(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  net::DhtRing ring(n);
  uint64_t key = 0;
  for (auto _ : state) {
    auto route = ring.Route(key % n, net::KeyHash("k" + std::to_string(key)));
    benchmark::DoNotOptimize(route);
    ++key;
  }
}
BENCHMARK(BM_DhtRoute)->Arg(10)->Arg(50)->Arg(200);

// --- Storage engine put/get. ---
void BM_EnginePutGet(benchmark::State& state) {
  auto engine = storage::StorageEngine::InMemory();
  int i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i % 4096);
    benchmark::DoNotOptimize(engine->Put("bench", key, "payload-value"));
    benchmark::DoNotOptimize(engine->Get("bench", key));
    ++i;
  }
}
BENCHMARK(BM_EnginePutGet);

// --- Transaction serialization round trip. ---
void BM_TransactionSerde(benchmark::State& state) {
  core::Transaction txn;
  txn.id = {3, 12};
  txn.epoch = 42;
  for (int i = 0; i < 8; ++i) {
    txn.updates.push_back(core::Update::Insert("F", Row(i, "function"), 3));
  }
  txn.antecedents = {{1, 3}, {2, 9}};
  for (auto _ : state) {
    std::string buf;
    core::EncodeTransaction(&buf, txn);
    size_t pos = 0;
    auto decoded = core::DecodeTransaction(buf, &pos);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_TransactionSerde);

// --- Serial vs. parallel vs. cached reconciliation study. ---
//
// Workload: `peers` publisher chains of `per_peer` transactions each.
// Transaction t of peer p inserts a unique protein and writes one of
// the peer's two hot proteins, which it shares with the next peer —
// so adjacent chains collide on hot keys (replace/replace and
// insert/insert direct conflicts), extensions grow along each chain
// (flattening work scales with t), and the candidate-pair phase
// dominates, matching the §5.1 profile.
struct StudyWorkload {
  core::TransactionMap map;
  std::vector<core::TrustedTxn> txns;
};

StudyWorkload MakeStudyWorkload(size_t peers, size_t per_peer) {
  StudyWorkload w;
  for (size_t p = 0; p < peers; ++p) {
    const auto origin = static_cast<core::ParticipantId>(1 + p);
    // Hot keys shared with the neighbouring chain.
    const std::string hot[2] = {"H" + std::to_string(p),
                                "H" + std::to_string((p + 1) % peers)};
    std::string last_value[2];
    std::vector<core::TransactionId> extension;
    for (size_t t = 0; t < per_peer; ++t) {
      core::Transaction txn;
      txn.id = {origin, static_cast<uint64_t>(t)};
      const std::string unique =
          "U" + std::to_string(p) + "_" + std::to_string(t);
      const std::string value =
          "f" + std::to_string(p) + "_" + std::to_string(t);
      txn.updates.push_back(core::Update::Insert(
          "F", db::Tuple{db::Value("rat"), db::Value(unique),
                         db::Value(value)},
          origin));
      const size_t h = t % 2;
      const db::Tuple hot_row{db::Value("rat"), db::Value(hot[h]),
                              db::Value(value)};
      if (last_value[h].empty()) {
        txn.updates.push_back(core::Update::Insert("F", hot_row, origin));
      } else {
        txn.updates.push_back(core::Update::Modify(
            "F",
            db::Tuple{db::Value("rat"), db::Value(hot[h]),
                      db::Value(last_value[h])},
            hot_row, origin));
      }
      last_value[h] = value;
      if (t > 0) txn.antecedents.push_back({origin, t - 1});
      txn.epoch = static_cast<core::Epoch>(1 + t);
      // ORCH_LINT(allow:S1): TransactionMap::Put returns void; the name collides with StorageEngine::Put in the include closure
      w.map.Put(txn);

      extension.push_back(txn.id);
      core::TrustedTxn trusted;
      trusted.id = txn.id;
      trusted.priority = 1;
      trusted.extension = extension;
      w.txns.push_back(std::move(trusted));
    }
  }
  return w;
}

int64_t RunStudyOnce(const StudyWorkload& w, const core::Reconciler& rec,
                     core::FlattenCache* cache,
                     bool collect_provenance = false) {
  db::Instance instance(&ProteinCatalog());
  core::TxnIdSet applied, rejected;
  core::RelKeySet dirty;
  core::ReconcileInput input;
  input.recno = 1;
  input.txns = w.txns;
  input.provider = &w.map;
  input.applied = &applied;
  input.rejected = &rejected;
  input.dirty = &dirty;
  input.flatten_cache = cache;
  input.collect_provenance = collect_provenance;
  Stopwatch clock;
  auto outcome = rec.Run(input, &instance);
  const int64_t micros = clock.ElapsedMicros();
  ORCH_CHECK(outcome.ok());
  return micros;
}

struct Series {
  double mean_us = 0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
};

Series Summarize(std::vector<int64_t> samples) {
  std::sort(samples.begin(), samples.end());
  Series s;
  for (int64_t v : samples) s.mean_us += static_cast<double>(v);
  s.mean_us /= static_cast<double>(samples.size());
  s.p50_us = samples[samples.size() / 2];
  s.p95_us = samples[std::min(samples.size() - 1,
                              (samples.size() * 95 + 99) / 100)];
  return s;
}

void RunReconcileStudy() {
  constexpr size_t kPeers = 8;
  constexpr size_t kPerPeer = 64;  // 512 transactions
  constexpr size_t kReps = 5;
  const StudyWorkload w = MakeStudyWorkload(kPeers, kPerPeer);

  struct Config {
    const char* name;
    size_t threads;
    bool cached;
    bool provenance;
  };
  // The cached series runs serially so the cache effect is isolated
  // from thread scaling (which depends on the host's core count). The
  // provenance series is the serial run with per-verdict provenance
  // records collected, isolating the explainability overhead.
  const Config configs[] = {
      {"serial", 1, false, false},      {"parallel_2", 2, false, false},
      {"parallel_4", 4, false, false},  {"parallel_8", 8, false, false},
      {"cached_cold", 1, true, false},  {"cached_warm", 1, true, false},
      {"provenance_on", 1, false, true},
  };

  std::vector<std::pair<std::string, Series>> results;
  for (const Config& cfg : configs) {
    core::Reconciler rec(&ProteinCatalog(),
                         core::ReconcileOptions{cfg.threads});
    std::vector<int64_t> samples;
    const bool warm = std::string(cfg.name) == "cached_warm";
    core::FlattenCache persistent;
    if (warm) RunStudyOnce(w, rec, &persistent);  // fill the cache
    for (size_t r = 0; r < kReps; ++r) {
      core::FlattenCache fresh;
      core::FlattenCache* cache =
          !cfg.cached ? nullptr : (warm ? &persistent : &fresh);
      samples.push_back(RunStudyOnce(w, rec, cache, cfg.provenance));
    }
    results.emplace_back(cfg.name, Summarize(std::move(samples)));
    std::printf("micro_reconcile study %-13s mean %10.1f us\n", cfg.name,
                results.back().second.mean_us);
  }

  const char* path = std::getenv("ORCH_BENCH_JSON");
  if (path == nullptr) path = "BENCH_micro_reconcile.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const double serial_mean = results[0].second.mean_us;
  double parallel8_mean = 0, cold_mean = 0, warm_mean = 0;
  double provenance_mean = 0;
  // Thread scaling is only meaningful relative to the cores actually
  // available: on a 1-CPU host every parallel series degenerates to
  // time-sliced serial execution plus scheduling overhead. Such series
  // are marked oversubscribed and excluded from the speedup headline —
  // a 0.94x "speedup" measured on one core says nothing about the
  // parallel implementation.
  // hardware_concurrency() returns 0 when the value is "not computable"
  // (the standard allows it). 0 must read as *unknown*, not as "zero
  // cores": comparing against it would mark every series — serial
  // included — oversubscribed and null the headline on perfectly good
  // many-core hosts.
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const bool hw_known = hardware_threads != 0;
  std::fprintf(f, "{\n  \"bench\": \"micro_reconcile\",\n");
  std::fprintf(f, "  \"transactions\": %zu,\n  \"repetitions\": %zu,\n",
               kPeers * kPerPeer, kReps);
  if (hw_known) {
    std::fprintf(f, "  \"hardware_threads\": %u,\n", hardware_threads);
  } else {
    std::fprintf(f, "  \"hardware_threads\": null,\n");
  }
  std::fprintf(f, "  \"series\": {\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& [name, s] = results[i];
    if (name == "parallel_8") parallel8_mean = s.mean_us;
    if (name == "cached_cold") cold_mean = s.mean_us;
    if (name == "cached_warm") warm_mean = s.mean_us;
    if (name == "provenance_on") provenance_mean = s.mean_us;
    const bool parallel_series = name.rfind("parallel_", 0) == 0;
    const size_t threads =
        parallel_series ? std::strtoul(name.c_str() + 9, nullptr, 10) : 1;
    const bool oversubscribed = hw_known && threads > hardware_threads;
    std::fprintf(f,
                 "    \"%s\": {\"mean_us\": %.1f, \"p50_us\": %lld, "
                 "\"p95_us\": %lld, \"oversubscribed\": %s}%s\n",
                 name.c_str(), s.mean_us,
                 static_cast<long long>(s.p50_us),
                 static_cast<long long>(s.p95_us),
                 oversubscribed ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  if (hw_known && 8 > hardware_threads) {
    std::fprintf(f, "  \"speedup_parallel_8_vs_serial\": null,\n");
    std::fprintf(f,
                 "  \"speedup_note\": \"parallel series oversubscribed on "
                 "%u hardware thread(s); no headline speedup\",\n",
                 hardware_threads);
  } else {
    // Unknown hardware width keeps the measured number (annotated by the
    // per-series flags staying false) rather than suppressing it.
    std::fprintf(f, "  \"speedup_parallel_8_vs_serial\": %.2f,\n",
                 serial_mean / parallel8_mean);
  }
  std::fprintf(f, "  \"speedup_warm_vs_cold_cache\": %.2f,\n",
               cold_mean / warm_mean);
  // Wall-time derived like the speedups, so stripped before the
  // baseline diff; the budget is enforced by eye (and by CI printing
  // it), not by a flaky timing gate.
  const double overhead_pct =
      serial_mean > 0 ? (provenance_mean / serial_mean - 1.0) * 100.0 : 0;
  std::fprintf(f, "  \"provenance_overhead_pct\": %.1f\n", overhead_pct);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("micro_reconcile provenance overhead: %.1f%% (budget 5%%)\n",
              overhead_pct);
  std::printf("micro_reconcile study written to %s\n", path);
}

// --- Fault sweep (ORCH_FAULT_SWEEP=1). ---
//
// For each store kind, one fault-free baseline run, then one faulted
// run per seed with a 1% failure probability on every store-side
// side-effecting operation. The crash-consistency claim under test:
// every faulted run finishes without an Internal error and converges to
// exactly the baseline's decisions and state ratio, with retries and
// the stuck-epoch reaper absorbing the losses.

// Movement of the process-wide metrics registry (common/metrics.h) over
// one sweep, rendered as a top-level "metrics" JSON object. Time-valued
// counters (names ending in "_micros") are dropped: everything that
// remains counts discrete events deterministic for a fixed seed, so the
// block participates in the baseline diff instead of being stripped.
void WriteMetricsBlock(std::FILE* f,
                       const std::map<std::string, int64_t>& deltas) {
  std::fprintf(f, "  \"metrics\": {");
  bool first = true;
  for (const auto& [name, value] : deltas) {
    constexpr std::string_view kTimeSuffix = "_micros";
    if (name.size() >= kTimeSuffix.size() &&
        name.compare(name.size() - kTimeSuffix.size(), kTimeSuffix.size(),
                     kTimeSuffix) == 0) {
      continue;
    }
    std::fprintf(f, "%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
                 static_cast<long long>(value));
    first = false;
  }
  std::fprintf(f, "\n  },\n");
}

sim::CdssConfig SweepConfig(sim::StoreKind store) {
  sim::CdssConfig cfg;
  cfg.participants = 25;
  cfg.store = store;
  cfg.rounds = 4;
  cfg.txns_between_recons = 2;
  return cfg;
}

bool RunFaultSweep() {
  const char* flag = std::getenv("ORCH_FAULT_SWEEP");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') return false;
  const std::map<std::string, int64_t> sweep_start =
      MetricsRegistry::Global().CounterValues();

  struct Row {
    std::string store;
    uint64_t seed;  // 0 = fault-free baseline
    bool ok = false;
    bool matches_baseline = false;
    std::string error;
    sim::CdssResult result;
  };
  const uint64_t kSeeds[] = {1, 2, 3};
  std::vector<Row> rows;
  bool all_ok = true;

  for (sim::StoreKind kind : {sim::StoreKind::kCentral, sim::StoreKind::kDht}) {
    const char* store_name =
        kind == sim::StoreKind::kCentral ? "central" : "dht";
    auto run = [&](uint64_t fault_seed) -> Row {
      Row row;
      row.store = store_name;
      row.seed = fault_seed;
      sim::CdssConfig cfg = SweepConfig(kind);
      if (fault_seed != 0) {
        cfg.fault.failure_probability = 0.01;
        cfg.fault.seed = fault_seed;
      }
      auto cdss = sim::Cdss::Make(cfg);
      if (!cdss.ok()) {
        row.error = cdss.status().ToString();
        return row;
      }
      auto result = (*cdss)->Run();
      if (!result.ok()) {
        row.error = result.status().ToString();
        return row;
      }
      row.ok = true;
      row.result = *result;
      return row;
    };

    const Row baseline = run(0);
    rows.push_back(baseline);
    all_ok = all_ok && baseline.ok;
    for (uint64_t seed : kSeeds) {
      Row row = run(seed);
      if (row.ok && baseline.ok) {
        row.matches_baseline =
            row.result.accepted == baseline.result.accepted &&
            row.result.rejected == baseline.result.rejected &&
            row.result.deferred == baseline.result.deferred &&
            row.result.transactions_published ==
                baseline.result.transactions_published &&
            row.result.state_ratio == baseline.result.state_ratio;
      }
      all_ok = all_ok && row.ok && row.matches_baseline;
      std::printf(
          "fault sweep %-7s seed %llu: %s, %lld faults, %lld retried ops, "
          "%s baseline\n",
          store_name, static_cast<unsigned long long>(seed),
          row.ok ? "completed" : row.error.c_str(),
          static_cast<long long>(row.result.faults_injected),
          static_cast<long long>(row.result.retried_operations),
          row.matches_baseline ? "matches" : "DIVERGES FROM");
      rows.push_back(std::move(row));
    }
  }

  const char* path = std::getenv("ORCH_FAULT_SWEEP_JSON");
  if (path == nullptr) path = "BENCH_fault_sweep.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return true;
  }
  std::fprintf(f, "{\n  \"bench\": \"fault_sweep\",\n");
  std::fprintf(f, "  \"failure_probability\": 0.01,\n");
  std::fprintf(f, "  \"all_runs_match_baseline\": %s,\n",
               all_ok ? "true" : "false");
  WriteMetricsBlock(f, CounterDeltas(sweep_start,
                                     MetricsRegistry::Global().CounterValues()));
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"store\": \"%s\", \"seed\": %llu, \"completed\": %s, "
        "\"faults_injected\": %lld, \"retried_operations\": %lld, "
        "\"backoff_micros\": %lld, \"accepted\": %zu, \"deferred\": %zu, "
        "\"state_ratio\": %.6f, \"matches_baseline\": %s}%s\n",
        r.store.c_str(), static_cast<unsigned long long>(r.seed),
        r.ok ? "true" : "false",
        static_cast<long long>(r.result.faults_injected),
        static_cast<long long>(r.result.retried_operations),
        static_cast<long long>(r.result.backoff_micros), r.result.accepted,
        r.result.deferred, r.result.state_ratio,
        r.seed == 0 ? "true" : (r.matches_baseline ? "true" : "false"),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("fault sweep written to %s (%s)\n", path,
              all_ok ? "all runs match baseline" : "DIVERGENCE DETECTED");
  return true;
}

// --- Churn sweep (ORCH_CHURN_SWEEP=1). ---
//
// The robustness claim under test: DHT node churn — crashes, joins,
// graceful leaves between reconciliation rounds — changes *costs* but
// never *outcomes*. Replica groups (k=3) absorb each crash, key-range
// re-replication restores the invariant after every event, and failover
// reads keep every controller readable, so each peer's final
// applied/rejected decision sets are bit-identical to a churn-free run.
// The k=1 control leg runs the same schedule with replication disabled
// and must lose data (an error or diverging decisions).

// One peer's final decision sets, in comparable (sorted) form.
std::vector<std::pair<uint32_t, uint64_t>> SortedIds(
    const core::TxnIdSet& ids) {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  out.reserve(ids.size());
  for (const core::TransactionId& id : ids) out.emplace_back(id.origin, id.seq);
  std::sort(out.begin(), out.end());
  return out;
}

struct PeerSnapshot {
  std::vector<std::pair<uint32_t, uint64_t>> applied;
  std::vector<std::pair<uint32_t, uint64_t>> rejected;
  bool operator==(const PeerSnapshot&) const = default;
};

struct ChurnRow {
  uint64_t seed = 0;  // 0 = churn-free baseline
  size_t replication_factor = 3;
  bool ok = false;
  bool matches_baseline = false;
  std::string error;
  sim::CdssResult result;
  std::vector<PeerSnapshot> peers;
};

sim::CdssConfig ChurnSweepConfig() {
  sim::CdssConfig cfg;
  cfg.participants = 25;
  cfg.store = sim::StoreKind::kDht;
  cfg.rounds = 8;
  cfg.txns_between_recons = 2;
  cfg.replication_factor = 3;
  return cfg;
}

ChurnRow RunChurnLeg(uint64_t churn_seed, size_t replication_factor) {
  ChurnRow row;
  row.seed = churn_seed;
  row.replication_factor = replication_factor;
  sim::CdssConfig cfg = ChurnSweepConfig();
  cfg.replication_factor = replication_factor;
  if (churn_seed != 0) {
    cfg.churn.enabled = true;
    cfg.churn.seed = churn_seed;
    cfg.churn.crash_probability = 0.04;
    cfg.churn.join_probability = 0.6;
    cfg.churn.leave_probability = 0.25;
    cfg.churn.min_live_nodes = 8;
  }
  auto cdss = sim::Cdss::Make(cfg);
  if (!cdss.ok()) {
    row.error = cdss.status().ToString();
    return row;
  }
  auto result = (*cdss)->Run();
  if (!result.ok()) {
    row.error = result.status().ToString();
    return row;
  }
  row.ok = true;
  row.result = *result;
  for (size_t i = 0; i < (*cdss)->participant_count(); ++i) {
    const core::Participant& p = (*cdss)->participant(i);
    row.peers.push_back(
        PeerSnapshot{SortedIds(p.applied()), SortedIds(p.rejected())});
  }
  return row;
}

bool RunChurnSweep() {
  const char* flag = std::getenv("ORCH_CHURN_SWEEP");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') return false;
  const std::map<std::string, int64_t> sweep_start =
      MetricsRegistry::Global().CounterValues();

  const uint64_t kSeeds[] = {11, 12, 13};
  std::vector<ChurnRow> rows;
  bool all_ok = true;

  const ChurnRow baseline = RunChurnLeg(0, 3);
  all_ok = all_ok && baseline.ok;
  rows.push_back(baseline);
  for (uint64_t seed : kSeeds) {
    ChurnRow row = RunChurnLeg(seed, 3);
    if (row.ok && baseline.ok) {
      row.matches_baseline =
          row.peers == baseline.peers &&
          row.result.state_ratio == baseline.result.state_ratio;
    }
    // The schedule itself must be substantial, and the replica-placement
    // invariant must have held after every single event.
    const bool schedule_ok = row.result.node_crashes >= 5 &&
                             row.result.node_joins >= 3 &&
                             row.result.replication_invariant_ok;
    all_ok = all_ok && row.ok && row.matches_baseline && schedule_ok;
    std::printf(
        "churn sweep k=3 seed %llu: %s, %lld crashes, %lld joins, "
        "%lld leaves, invariant %s, %s baseline\n",
        static_cast<unsigned long long>(seed),
        row.ok ? "completed" : row.error.c_str(),
        static_cast<long long>(row.result.node_crashes),
        static_cast<long long>(row.result.node_joins),
        static_cast<long long>(row.result.node_leaves),
        row.result.replication_invariant_ok ? "held" : "VIOLATED",
        row.matches_baseline ? "matches" : "DIVERGES FROM");
    rows.push_back(std::move(row));
  }

  // Control: replication off. The same churn must now visibly lose data,
  // either as a hard error (a transaction controller's only copy died)
  // or as decisions diverging from the baseline.
  ChurnRow control = RunChurnLeg(kSeeds[0], 1);
  control.matches_baseline =
      control.ok && baseline.ok && control.peers == baseline.peers &&
      control.result.state_ratio == baseline.result.state_ratio;
  const bool data_lost = !control.ok || !control.matches_baseline;
  all_ok = all_ok && data_lost;
  std::printf("churn sweep k=1 seed %llu (control): %s — %s\n",
              static_cast<unsigned long long>(control.seed),
              control.ok ? "completed" : control.error.c_str(),
              data_lost ? "data lost as expected (replication is load-bearing)"
                        : "NO DATA LOST (replication not exercised)");
  rows.push_back(std::move(control));

  const char* path = std::getenv("ORCH_CHURN_SWEEP_JSON");
  if (path == nullptr) path = "BENCH_churn_sweep.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return true;
  }
  std::fprintf(f, "{\n  \"bench\": \"churn_sweep\",\n");
  std::fprintf(f, "  \"participants\": 25,\n  \"rounds\": 8,\n");
  std::fprintf(f, "  \"all_checks_pass\": %s,\n", all_ok ? "true" : "false");
  std::fprintf(f, "  \"k1_control_lost_data\": %s,\n",
               data_lost ? "true" : "false");
  WriteMetricsBlock(f, CounterDeltas(sweep_start,
                                     MetricsRegistry::Global().CounterValues()));
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ChurnRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"seed\": %llu, \"replication_factor\": %zu, "
        "\"completed\": %s, \"crashes\": %lld, \"joins\": %lld, "
        "\"leaves\": %lld, \"invariant_held\": %s, \"accepted\": %zu, "
        "\"deferred\": %zu, \"state_ratio\": %.6f, "
        "\"matches_baseline\": %s%s%s}%s\n",
        static_cast<unsigned long long>(r.seed), r.replication_factor,
        r.ok ? "true" : "false",
        static_cast<long long>(r.result.node_crashes),
        static_cast<long long>(r.result.node_joins),
        static_cast<long long>(r.result.node_leaves),
        r.result.replication_invariant_ok ? "true" : "false",
        r.result.accepted, r.result.deferred, r.result.state_ratio,
        r.seed == 0 ? "true" : (r.matches_baseline ? "true" : "false"),
        r.error.empty() ? "" : ", \"error\": \"",
        r.error.empty() ? "" : (r.error + "\"").c_str(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("churn sweep written to %s (%s)\n", path,
              all_ok ? "all checks pass" : "CHECK FAILED");
  return true;
}

// --- Delta-fetch sweep (ORCH_DELTA_SWEEP=1). ---
//
// The perf claim under test: with the fetch cache and delta windows
// (core::FetchMode::kDelta) a steady-state reconciliation round costs
// O(new work) instead of O(history) — the store stops re-scanning and
// re-decoding every epoch since the beginning of time, and the DHT stops
// re-requesting every published transaction id over the ring. Every mode
// must still produce bit-identical per-peer decisions; only costs move.
//
// Each leg drives the rounds manually through StepParticipant so it can
// attribute wall time and message/byte deltas to individual rounds. The
// headline is the steady-state round time (mean of the last half of the
// rounds, where kFull's per-round cost has grown to its largest) for
// delta vs the honest full-fetch baseline.

struct DeltaRow {
  std::string store;  // "central" | "dht"
  core::FetchMode mode = core::FetchMode::kDelta;
  bool ok = false;
  std::string error;
  std::vector<int64_t> round_wall_us;    // wall time per round, all peers
  std::vector<int64_t> round_local_us;   // participant-side reconcile time
  std::vector<int64_t> round_store_us;   // store-side simulated + CPU time
  std::vector<int64_t> round_messages;   // store messages per round
  double steady_wall_us = 0;             // mean of the last half of rounds
  double steady_sim_us = 0;              // local + simulated store time
  double steady_messages = 0;
  int64_t total_messages = 0;
  int64_t total_bytes = 0;
  core::FetchStats fetch;                // summed over every reconciliation
  std::vector<PeerSnapshot> peers;
  bool matches_full = true;  // decisions identical to the kFull leg
};

constexpr size_t kDeltaPeers = 16;
constexpr size_t kDeltaRounds = 64;
constexpr size_t kDeltaTxnsPerRound = 2;

DeltaRow RunDeltaLeg(sim::StoreKind kind, core::FetchMode mode) {
  DeltaRow row;
  row.store = kind == sim::StoreKind::kCentral ? "central" : "dht";
  row.mode = mode;
  sim::CdssConfig cfg;
  cfg.participants = kDeltaPeers;
  cfg.store = kind;
  cfg.rounds = kDeltaRounds;
  cfg.txns_between_recons = kDeltaTxnsPerRound;
  cfg.fetch_mode = mode;
  auto cdss = sim::Cdss::Make(cfg);
  if (!cdss.ok()) {
    row.error = cdss.status().ToString();
    return row;
  }
  const auto summed_stats = [&] {
    core::StoreStats total;
    for (size_t i = 0; i < kDeltaPeers; ++i) {
      total = total + (*cdss)->store().StatsFor(
                          static_cast<core::ParticipantId>(i));
    }
    return total;
  };
  for (size_t round = 0; round < kDeltaRounds; ++round) {
    const core::StoreStats before = summed_stats();
    Stopwatch clock;
    int64_t local_us = 0;
    for (size_t i = 0; i < kDeltaPeers; ++i) {
      auto report = (*cdss)->StepParticipant(i);
      if (!report.ok()) {
        row.error = report.status().ToString();
        return row;
      }
      row.fetch += report->fetch_stats;
      local_us += report->local_micros;
    }
    row.round_wall_us.push_back(clock.ElapsedMicros());
    row.round_local_us.push_back(local_us);
    const core::StoreStats after = summed_stats();
    row.round_messages.push_back((after - before).messages);
    row.round_store_us.push_back((after - before).TotalStoreMicros());
  }
  const core::StoreStats total = summed_stats();
  row.total_messages = total.messages;
  row.total_bytes = total.bytes;
  const size_t half = kDeltaRounds / 2;
  for (size_t r = half; r < kDeltaRounds; ++r) {
    row.steady_wall_us += static_cast<double>(row.round_wall_us[r]);
    row.steady_sim_us +=
        static_cast<double>(row.round_local_us[r] + row.round_store_us[r]);
    row.steady_messages += static_cast<double>(row.round_messages[r]);
  }
  row.steady_wall_us /= static_cast<double>(kDeltaRounds - half);
  row.steady_sim_us /= static_cast<double>(kDeltaRounds - half);
  row.steady_messages /= static_cast<double>(kDeltaRounds - half);
  for (size_t i = 0; i < (*cdss)->participant_count(); ++i) {
    const core::Participant& p = (*cdss)->participant(i);
    row.peers.push_back(
        PeerSnapshot{SortedIds(p.applied()), SortedIds(p.rejected())});
  }
  row.ok = true;
  return row;
}

void PrintDeltaRowJson(std::FILE* f, const DeltaRow& r, bool last) {
  std::fprintf(f,
               "    {\"store\": \"%s\", \"mode\": \"%s\", "
               "\"completed\": %s,\n",
               r.store.c_str(),
               std::string(core::FetchModeName(r.mode)).c_str(),
               r.ok ? "true" : "false");
  if (!r.error.empty()) {
    std::fprintf(f, "     \"error\": \"%s\",\n", r.error.c_str());
  }
  std::fprintf(f, "     \"round_wall_us\": [");
  for (size_t i = 0; i < r.round_wall_us.size(); ++i) {
    std::fprintf(f, "%s%lld", i ? ", " : "",
                 static_cast<long long>(r.round_wall_us[i]));
  }
  std::fprintf(f, "],\n     \"round_local_us\": [");
  for (size_t i = 0; i < r.round_local_us.size(); ++i) {
    std::fprintf(f, "%s%lld", i ? ", " : "",
                 static_cast<long long>(r.round_local_us[i]));
  }
  std::fprintf(f, "],\n     \"round_store_sim_us\": [");
  for (size_t i = 0; i < r.round_store_us.size(); ++i) {
    std::fprintf(f, "%s%lld", i ? ", " : "",
                 static_cast<long long>(r.round_store_us[i]));
  }
  std::fprintf(f, "],\n     \"round_messages\": [");
  for (size_t i = 0; i < r.round_messages.size(); ++i) {
    std::fprintf(f, "%s%lld", i ? ", " : "",
                 static_cast<long long>(r.round_messages[i]));
  }
  std::fprintf(f,
               "],\n     \"steady_state_wall_us\": %.1f, "
               "\"steady_state_sim_us\": %.1f, "
               "\"steady_state_messages\": %.1f,\n",
               r.steady_wall_us, r.steady_sim_us, r.steady_messages);
  std::fprintf(f,
               "     \"total_messages\": %lld, \"total_bytes\": %lld,\n",
               static_cast<long long>(r.total_messages),
               static_cast<long long>(r.total_bytes));
  std::fprintf(f,
               "     \"decoded\": %lld, \"cache_hits\": %lld, "
               "\"suppressed_lookups\": %lld, \"batched_messages\": %lld,\n",
               static_cast<long long>(r.fetch.decoded),
               static_cast<long long>(r.fetch.cache_hits),
               static_cast<long long>(r.fetch.suppressed_lookups),
               static_cast<long long>(r.fetch.batched_messages));
  std::fprintf(f, "     \"matches_full_baseline\": %s}%s\n",
               r.matches_full ? "true" : "false", last ? "" : ",");
}

bool RunDeltaSweep() {
  const char* flag = std::getenv("ORCH_DELTA_SWEEP");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') return false;
  const std::map<std::string, int64_t> sweep_start =
      MetricsRegistry::Global().CounterValues();

  const core::FetchMode kModes[] = {core::FetchMode::kFull,
                                    core::FetchMode::kWindowed,
                                    core::FetchMode::kDelta};
  std::vector<DeltaRow> rows;
  bool all_ok = true;
  double central_speedup = 0, dht_speedup = 0, dht_msg_reduction = 0;

  for (sim::StoreKind kind : {sim::StoreKind::kCentral, sim::StoreKind::kDht}) {
    DeltaRow full, delta;
    std::vector<DeltaRow> store_rows;
    for (core::FetchMode mode : kModes) {
      DeltaRow row = RunDeltaLeg(kind, mode);
      all_ok = all_ok && row.ok;
      store_rows.push_back(std::move(row));
    }
    const DeltaRow& baseline = store_rows[0];  // kFull
    for (DeltaRow& row : store_rows) {
      row.matches_full =
          row.ok && baseline.ok && row.peers == baseline.peers;
      all_ok = all_ok && row.matches_full;
      int64_t steady_local = 0;
      const size_t half = row.round_wall_us.size() / 2;
      for (size_t r = half; r < row.round_wall_us.size(); ++r) {
        steady_local += row.round_local_us[r];
      }
      std::printf(
          "delta sweep %s/%s: %s, steady round %.0f us wall / %.0f us "
          "simulated (local %lld us), %.0f msgs "
          "(total %lld msgs, decoded %lld, cache hits %lld), %s baseline\n",
          row.store.c_str(), std::string(core::FetchModeName(row.mode)).c_str(),
          row.ok ? "completed" : row.error.c_str(), row.steady_wall_us,
          row.steady_sim_us,
          static_cast<long long>(
              half ? steady_local /
                         static_cast<int64_t>(row.round_wall_us.size() - half)
                   : 0),
          row.steady_messages, static_cast<long long>(row.total_messages),
          static_cast<long long>(row.fetch.decoded),
          static_cast<long long>(row.fetch.cache_hits),
          row.matches_full ? "matches" : "DIVERGES FROM");
    }
    // Each store's headline is measured in its binding resource. The
    // central store's fetch cost is server CPU — the per-procedure RPC
    // overhead the simulator charges is identical across modes, so wall
    // time is what the delta path can move. The DHT's fetch cost is
    // network messages, whose latency the harness charges to the
    // simulated clock (common/clock.h), so its round latency is local
    // wall plus simulated store time.
    const DeltaRow& d = store_rows[2];  // kDelta
    if (kind == sim::StoreKind::kCentral) {
      central_speedup =
          d.steady_wall_us > 0 ? baseline.steady_wall_us / d.steady_wall_us : 0;
    } else {
      dht_speedup =
          d.steady_sim_us > 0 ? baseline.steady_sim_us / d.steady_sim_us : 0;
      dht_msg_reduction = d.steady_messages > 0
                              ? baseline.steady_messages / d.steady_messages
                              : 0;
    }
    for (DeltaRow& row : store_rows) rows.push_back(std::move(row));
  }

  // Acceptance: delta steady-state rounds at least 3x faster than the
  // full-fetch baseline on both stores (each in its binding resource —
  // wall time for the central store, simulated round latency for the
  // DHT), and the DHT moving measurably fewer messages.
  const bool speedup_ok = central_speedup >= 3.0 && dht_speedup >= 3.0;
  const bool messages_ok = dht_msg_reduction > 1.5;
  all_ok = all_ok && speedup_ok && messages_ok;
  std::printf(
      "delta sweep: central %.1fx (wall), dht %.1fx (simulated latency) "
      "steady-state speedup vs full; dht steady-state message reduction "
      "%.1fx\n",
      central_speedup, dht_speedup, dht_msg_reduction);

  const char* path = std::getenv("ORCH_DELTA_SWEEP_JSON");
  if (path == nullptr) path = "BENCH_delta_sweep.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return true;
  }
  std::fprintf(f, "{\n  \"bench\": \"delta_sweep\",\n");
  std::fprintf(f,
               "  \"participants\": %zu,\n  \"rounds\": %zu,\n"
               "  \"txns_between_recons\": %zu,\n",
               kDeltaPeers, kDeltaRounds, kDeltaTxnsPerRound);
  std::fprintf(f, "  \"all_checks_pass\": %s,\n", all_ok ? "true" : "false");
  std::fprintf(f,
               "  \"central_speedup_delta_vs_full\": %.2f,\n"
               "  \"central_speedup_metric\": \"steady_state_wall_us\",\n"
               "  \"dht_speedup_delta_vs_full\": %.2f,\n"
               "  \"dht_speedup_metric\": \"steady_state_sim_us\",\n"
               "  \"dht_message_reduction_delta_vs_full\": %.2f,\n",
               central_speedup, dht_speedup, dht_msg_reduction);
  WriteMetricsBlock(f, CounterDeltas(sweep_start,
                                     MetricsRegistry::Global().CounterValues()));
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    PrintDeltaRowJson(f, rows[i], i + 1 == rows.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("delta sweep written to %s (%s)\n", path,
              all_ok ? "all checks pass" : "CHECK FAILED");
  return true;
}

// --- Corruption sweep (ORCH_CORRUPTION_SWEEP=1). ---
//
// The integrity claim under test: with checksummed storage and wire
// formats, silent corruption anywhere in the system is *detected* and
// *absorbed* — decisions stay bit-identical to a corruption-free run
// and not a single rotten byte reaches a reader unverified. The control
// leg disables verification over the same corruption schedule and must
// visibly consume rot, proving the envelopes (not luck) carry the claim.

constexpr double kCorruptionProbability = 0.005;
const char* const kCorruptionSites[] = {
    "storage.bit_flip", "storage.torn_write", "storage.truncate_tail",
    "net.payload_corrupt"};

struct CorruptionRow {
  std::string store;
  uint64_t seed = 0;  // 0 = corruption-free baseline
  bool verify = true;
  std::string mode;
  bool ok = false;
  bool matches_baseline = false;
  std::string error;
  int64_t corrupted_buffers = 0;  // injector-side: buffers actually mutated
  sim::CdssResult result;
  std::vector<PeerSnapshot> peers;
};

CorruptionRow RunCorruptionLeg(sim::StoreKind kind, uint64_t seed,
                               bool verify, core::FetchMode mode) {
  CorruptionRow row;
  row.store = kind == sim::StoreKind::kCentral ? "central" : "dht";
  row.seed = seed;
  row.verify = verify;
  row.mode = std::string(core::FetchModeName(mode));
  sim::CdssConfig cfg = SweepConfig(kind);
  cfg.fetch_mode = mode;
  cfg.verify_checksums = verify;
  if (kind == sim::StoreKind::kDht) cfg.scrub_interval_rounds = 2;
  if (seed != 0) {
    cfg.fault.corruption_probability = kCorruptionProbability;
    cfg.fault.seed = seed;
    for (const char* site : kCorruptionSites) {
      cfg.fault.corruption_sites.emplace_back(site);
    }
  }
  auto cdss = sim::Cdss::Make(cfg);
  if (!cdss.ok()) {
    row.error = cdss.status().ToString();
    return row;
  }
  auto result = (*cdss)->Run();
  row.corrupted_buffers = (*cdss)->fault_injector().corrupted();
  if (!result.ok()) {
    row.error = result.status().ToString();
    return row;
  }
  row.ok = true;
  row.result = *result;
  for (size_t i = 0; i < (*cdss)->participant_count(); ++i) {
    const core::Participant& p = (*cdss)->participant(i);
    row.peers.push_back(
        PeerSnapshot{SortedIds(p.applied()), SortedIds(p.rejected())});
  }
  return row;
}

// Standalone WAL recovery leg: append a record stream with one
// corruption site armed, replay, and require that every delivered
// record is byte-identical to one of the appended records *in order*
// (i.e. recovery may lose damaged records — with the loss accounted —
// but must never deliver tampered bytes as if they were valid).
struct WalLeg {
  std::string site;
  uint64_t seed = 0;
  bool ok = false;
  bool clean_subsequence = false;
  int64_t corrupted_buffers = 0;
  int64_t appended = 0;
  std::string error;
  storage::WriteAheadLog::ReplayStats stats;
};

WalLeg RunWalLeg(const std::string& site, uint64_t seed) {
  constexpr int kWalRecords = 200;
  WalLeg leg;
  leg.site = site;
  leg.seed = seed;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("orch_corruption_wal_" + site + "_" + std::to_string(seed) + "_" +
        std::to_string(::getpid())))
          .string();
  std::remove(path.c_str());
  FaultInjector injector;
  FaultInjectorConfig fcfg;
  // Write-side sites draw once per append; read-side sites draw once
  // per replay. Arm the read-side ones at certainty so one replay is
  // guaranteed to exercise the recovery path.
  fcfg.corruption_probability = site == "storage.torn_write" ? 0.05 : 1.0;
  fcfg.seed = seed;
  fcfg.corruption_sites = {site};
  injector.Configure(fcfg);

  std::vector<std::pair<uint8_t, std::string>> appended;
  {
    auto wal = storage::WriteAheadLog::Open(path);
    if (!wal.ok()) {
      leg.error = wal.status().ToString();
      return leg;
    }
    (*wal)->set_fault_injector(site == "storage.torn_write" ? &injector
                                                            : nullptr);
    for (int i = 0; i < kWalRecords; ++i) {
      const uint8_t type = static_cast<uint8_t>(1 + i % 5);
      std::string payload = "record-" + std::to_string(i) +
                            std::string(static_cast<size_t>(i % 17), 'x');
      if (Status s = (*wal)->Append(type, payload); !s.ok()) {
        leg.error = s.ToString();
        return leg;
      }
      appended.emplace_back(type, std::move(payload));
    }
    if (Status s = (*wal)->Sync(); !s.ok()) {
      leg.error = s.ToString();
      return leg;
    }
  }
  leg.appended = kWalRecords;

  auto wal = storage::WriteAheadLog::Open(path);
  if (!wal.ok()) {
    leg.error = wal.status().ToString();
    return leg;
  }
  if (site != "storage.torn_write") (*wal)->set_fault_injector(&injector);
  std::vector<std::pair<uint8_t, std::string>> delivered;
  Status replay = (*wal)->ReplayWithStats(
      [&](uint8_t type, std::string_view payload) {
        delivered.emplace_back(type, std::string(payload));
        return Status::OK();
      },
      &leg.stats);
  std::remove(path.c_str());
  if (!replay.ok()) {
    leg.error = replay.ToString();
    return leg;
  }
  leg.ok = true;
  leg.corrupted_buffers = injector.corrupted();
  // Ordered-subsequence check: scan the appended stream for each
  // delivered record in turn.
  size_t cursor = 0;
  bool clean = true;
  for (const auto& rec : delivered) {
    while (cursor < appended.size() && appended[cursor] != rec) ++cursor;
    if (cursor == appended.size()) {
      clean = false;  // a delivered record matches nothing we wrote
      break;
    }
    ++cursor;
  }
  leg.clean_subsequence = clean;
  return leg;
}

bool RunCorruptionSweep() {
  const char* flag = std::getenv("ORCH_CORRUPTION_SWEEP");
  if (flag == nullptr || flag[0] == '\0' || flag[0] == '0') return false;
  const std::map<std::string, int64_t> sweep_start =
      MetricsRegistry::Global().CounterValues();

  const uint64_t kSeeds[] = {1, 2, 3};
  std::vector<CorruptionRow> rows;
  bool all_ok = true;
  int64_t total_detected = 0;
  int64_t total_repairs = 0;

  CorruptionRow dht_baseline;  // the control leg compares against this
  for (sim::StoreKind kind : {sim::StoreKind::kCentral, sim::StoreKind::kDht}) {
    const CorruptionRow baseline =
        RunCorruptionLeg(kind, 0, true, core::FetchMode::kDelta);
    all_ok = all_ok && baseline.ok;
    rows.push_back(baseline);
    if (kind == sim::StoreKind::kDht) dht_baseline = baseline;
    auto check = [&](CorruptionRow row) {
      if (row.ok && baseline.ok) {
        row.matches_baseline =
            row.peers == baseline.peers &&
            row.result.state_ratio == baseline.result.state_ratio;
      }
      // The headline assertions: decisions bit-identical, zero rotten
      // bytes served unverified.
      all_ok = all_ok && row.ok && row.matches_baseline &&
               row.result.undetected_corrupt_reads == 0;
      total_detected += row.result.corrupt_reads_detected;
      total_repairs += row.result.read_repairs;
      std::printf(
          "corruption sweep %-7s %-8s seed %llu: %s, %lld buffers "
          "corrupted, %lld detected, %lld repairs, %lld undetected, "
          "%s baseline\n",
          row.store.c_str(), row.mode.c_str(),
          static_cast<unsigned long long>(row.seed),
          row.ok ? "completed" : row.error.c_str(),
          static_cast<long long>(row.corrupted_buffers),
          static_cast<long long>(row.result.corrupt_reads_detected),
          static_cast<long long>(row.result.read_repairs),
          static_cast<long long>(row.result.undetected_corrupt_reads),
          row.matches_baseline ? "matches" : "DIVERGES FROM");
      rows.push_back(std::move(row));
    };
    for (uint64_t seed : kSeeds) {
      check(RunCorruptionLeg(kind, seed, true, core::FetchMode::kDelta));
    }
    // One protected kFull leg: the per-transaction ship path (as opposed
    // to kDelta's batched frames) under the same corruption schedule.
    check(RunCorruptionLeg(kind, kSeeds[0], true, core::FetchMode::kFull));
  }
  // The sweep is vacuous unless corruption was actually detected (and,
  // on the DHT, healed) somewhere.
  const bool exercised = total_detected > 0 && total_repairs > 0;
  all_ok = all_ok && exercised;

  // Control: same schedule, checksums off (DHT — the store with
  // persistent at-rest rot). Rot must now visibly flow: reads served
  // despite failing checksums, diverging decisions, or a hard error.
  CorruptionRow control =
      RunCorruptionLeg(sim::StoreKind::kDht, kSeeds[0], false,
                       core::FetchMode::kFull);
  if (control.ok && dht_baseline.ok) {
    control.matches_baseline =
        control.peers == dht_baseline.peers &&
        control.result.state_ratio == dht_baseline.result.state_ratio;
  }
  const bool control_consumed_rot =
      !control.ok || !control.matches_baseline ||
      control.result.undetected_corrupt_reads > 0;
  all_ok = all_ok && control_consumed_rot;
  std::printf(
      "corruption sweep control (verify off): %s, %lld undetected reads — "
      "%s\n",
      control.ok ? "completed" : control.error.c_str(),
      static_cast<long long>(control.result.undetected_corrupt_reads),
      control_consumed_rot
          ? "rot consumed as expected (checksums are load-bearing)"
          : "NO ROT CONSUMED (corruption not exercised)");
  rows.push_back(std::move(control));

  // WAL recovery legs: one per storage site, three seeds each.
  std::vector<WalLeg> wal_legs;
  for (const char* site :
       {"storage.torn_write", "storage.truncate_tail", "storage.bit_flip"}) {
    for (uint64_t seed : kSeeds) {
      WalLeg leg = RunWalLeg(site, seed);
      const bool fired = leg.corrupted_buffers > 0;
      all_ok = all_ok && leg.ok && leg.clean_subsequence && fired;
      std::printf(
          "corruption sweep wal %-21s seed %llu: %s, %lld/%lld records, "
          "%lld regions skipped, %lld tail bytes dropped, %s\n",
          site, static_cast<unsigned long long>(seed),
          leg.ok ? "replayed" : leg.error.c_str(),
          static_cast<long long>(leg.stats.records),
          static_cast<long long>(leg.appended),
          static_cast<long long>(leg.stats.skipped_regions),
          static_cast<long long>(leg.stats.dropped_tail_bytes),
          leg.clean_subsequence ? "no tampered record delivered"
                                : "TAMPERED RECORD DELIVERED");
      wal_legs.push_back(std::move(leg));
    }
  }

  const char* path = std::getenv("ORCH_CORRUPTION_SWEEP_JSON");
  if (path == nullptr) path = "BENCH_corruption_sweep.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return true;
  }
  std::fprintf(f, "{\n  \"bench\": \"corruption_sweep\",\n");
  std::fprintf(f, "  \"corruption_probability\": %.3f,\n",
               kCorruptionProbability);
  std::fprintf(f, "  \"all_checks_pass\": %s,\n", all_ok ? "true" : "false");
  std::fprintf(f, "  \"corruption_exercised\": %s,\n",
               exercised ? "true" : "false");
  std::fprintf(f, "  \"control_consumed_rot\": %s,\n",
               control_consumed_rot ? "true" : "false");
  WriteMetricsBlock(f, CounterDeltas(sweep_start,
                                     MetricsRegistry::Global().CounterValues()));
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const CorruptionRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"store\": \"%s\", \"mode\": \"%s\", \"seed\": %llu, "
        "\"verify_checksums\": %s, \"completed\": %s, "
        "\"corrupted_buffers\": %lld, \"detected\": %lld, "
        "\"repairs\": %lld, \"undetected\": %lld, \"accepted\": %zu, "
        "\"deferred\": %zu, \"state_ratio\": %.6f, "
        "\"matches_baseline\": %s}%s\n",
        r.store.c_str(), r.mode.c_str(),
        static_cast<unsigned long long>(r.seed), r.verify ? "true" : "false",
        r.ok ? "true" : "false",
        static_cast<long long>(r.corrupted_buffers),
        static_cast<long long>(r.result.corrupt_reads_detected),
        static_cast<long long>(r.result.read_repairs),
        static_cast<long long>(r.result.undetected_corrupt_reads),
        r.result.accepted, r.result.deferred, r.result.state_ratio,
        r.seed == 0 ? "true" : (r.matches_baseline ? "true" : "false"),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"wal_legs\": [\n");
  for (size_t i = 0; i < wal_legs.size(); ++i) {
    const WalLeg& l = wal_legs[i];
    std::fprintf(
        f,
        "    {\"site\": \"%s\", \"seed\": %llu, \"replayed\": %s, "
        "\"appended\": %lld, \"recovered\": %lld, "
        "\"skipped_regions\": %lld, \"skipped_bytes\": %lld, "
        "\"dropped_tail_bytes\": %lld, \"corrupted_buffers\": %lld, "
        "\"clean_subsequence\": %s}%s\n",
        l.site.c_str(), static_cast<unsigned long long>(l.seed),
        l.ok ? "true" : "false", static_cast<long long>(l.appended),
        static_cast<long long>(l.stats.records),
        static_cast<long long>(l.stats.skipped_regions),
        static_cast<long long>(l.stats.skipped_bytes),
        static_cast<long long>(l.stats.dropped_tail_bytes),
        static_cast<long long>(l.corrupted_buffers),
        l.clean_subsequence ? "true" : "false",
        i + 1 < wal_legs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("corruption sweep written to %s (%s)\n", path,
              all_ok ? "all checks pass" : "CHECK FAILED");
  return true;
}

// The same workload as a google-benchmark, parameterized by threads, so
// `--benchmark_filter=ReconcileStudy` tracks scaling interactively.
void BM_ReconcileStudy(benchmark::State& state) {
  static const StudyWorkload& w = *new StudyWorkload(
      MakeStudyWorkload(8, static_cast<size_t>(64)));
  core::Reconciler rec(
      &ProteinCatalog(),
      core::ReconcileOptions{static_cast<size_t>(state.range(0))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunStudyOnce(w, rec, nullptr));
  }
}
BENCHMARK(BM_ReconcileStudy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (RunFaultSweep()) return 0;
  if (RunChurnSweep()) return 0;
  if (RunDeltaSweep()) return 0;
  if (RunCorruptionSweep()) return 0;
  RunReconcileStudy();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
