// Microbenchmarks for the reconciliation algorithm's components,
// validating the O(t^2 + t·u·a) cost analysis of §5.1 and the costs of
// the substrates (flattening, conflict detection, DHT routing, storage
// engine, serialization).
#include <benchmark/benchmark.h>

#include "core/append_only.h"
#include "core/conflict.h"
#include "core/flatten.h"
#include "core/reconciler.h"
#include "db/serde.h"
#include "net/dht.h"
#include "storage/engine.h"
#include "workload/swissprot.h"

namespace {

using namespace orchestra;

db::Catalog& ProteinCatalog() {
  static db::Catalog& catalog = *new db::Catalog([] {
    db::Catalog c;
    auto schema = db::RelationSchema::Make(
        "F",
        {{"organism", db::ValueType::kString, false},
         {"protein", db::ValueType::kString, false},
         {"function", db::ValueType::kString, false}},
        {0, 1});
    ORCH_CHECK(schema.ok());
    ORCH_CHECK(c.AddRelation(*std::move(schema)).ok());
    return c;
  }());
  return catalog;
}

db::Tuple Row(int key, const std::string& fn) {
  return db::Tuple{db::Value("rat"), db::Value("P" + std::to_string(key)),
                   db::Value(fn)};
}

// --- Flatten: chain of u updates over one tuple. ---
void BM_FlattenChain(benchmark::State& state) {
  const int u = static_cast<int>(state.range(0));
  std::vector<core::Update> seq;
  seq.push_back(core::Update::Insert("F", Row(1, "v0"), 1));
  for (int i = 1; i < u; ++i) {
    seq.push_back(core::Update::Modify("F", Row(1, "v" + std::to_string(i - 1)),
                                       Row(1, "v" + std::to_string(i)), 1));
  }
  for (auto _ : state) {
    auto flat = core::Flatten(ProteinCatalog(), seq);
    benchmark::DoNotOptimize(flat);
  }
  state.SetItemsProcessed(state.iterations() * u);
}
BENCHMARK(BM_FlattenChain)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// --- Flatten: n independent tuples. ---
void BM_FlattenIndependent(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<core::Update> seq;
  for (int i = 0; i < n; ++i) {
    seq.push_back(core::Update::Insert("F", Row(i, "fn"), 1));
  }
  for (auto _ : state) {
    auto flat = core::Flatten(ProteinCatalog(), seq);
    benchmark::DoNotOptimize(flat);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlattenIndependent)->Arg(8)->Arg(64)->Arg(512);

// --- Conflict detection between two flattened sets. ---
void BM_SetsConflict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<core::Update> a, b;
  for (int i = 0; i < n; ++i) {
    a.push_back(core::Update::Insert("F", Row(i, "left"), 1));
    // Half the keys overlap (and conflict), half do not.
    b.push_back(core::Update::Insert("F", Row(i + n / 2, "right"), 2));
  }
  for (auto _ : state) {
    auto points = core::SetsConflict(ProteinCatalog(), a, b);
    benchmark::DoNotOptimize(points);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SetsConflict)->Arg(8)->Arg(64)->Arg(512);

// --- Full ReconcileUpdates with t single-update transactions, a given
// fraction of which collide pairwise (the t^2 term of §5.1). ---
void BM_ReconcileUpdates(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const bool conflicting = state.range(1) != 0;
  core::TransactionMap map;
  std::vector<core::TrustedTxn> txns;
  for (int i = 0; i < t; ++i) {
    core::Transaction txn;
    txn.id = {static_cast<core::ParticipantId>(2 + i % 5),
              static_cast<uint64_t>(i)};
    // In conflicting mode every transaction writes one of 4 hot keys
    // with its own value; otherwise keys are unique.
    const int key = conflicting ? i % 4 : i;
    txn.updates.push_back(core::Update::Insert(
        "F", Row(key, "fn" + std::to_string(i)), txn.id.origin));
    txn.epoch = 1 + i;
    map.Put(txn);
    core::TrustedTxn trusted;
    trusted.id = txn.id;
    trusted.priority = 1;
    trusted.extension = {txn.id};
    txns.push_back(trusted);
  }
  core::Reconciler reconciler(&ProteinCatalog());
  core::TxnIdSet applied, rejected;
  core::RelKeySet dirty;
  for (auto _ : state) {
    db::Instance instance(&ProteinCatalog());
    core::ReconcileInput input;
    input.recno = 1;
    input.txns = txns;
    input.provider = &map;
    input.applied = &applied;
    input.rejected = &rejected;
    input.dirty = &dirty;
    auto outcome = reconciler.Run(input, &instance);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_ReconcileUpdates)
    ->Args({16, 0})
    ->Args({64, 0})
    ->Args({256, 0})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({256, 1});

// --- Append-only reconciliation (Definition 2) vs. the general
// algorithm on the same insert-only epoch: the simpler model skips
// extension computation and flattening entirely. ---
void BM_AppendOnlyEpoch(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  std::vector<core::Transaction> epoch;
  for (int i = 0; i < t; ++i) {
    core::Transaction txn;
    txn.id = {2, static_cast<uint64_t>(i)};
    txn.epoch = 1;
    txn.updates.push_back(core::Update::Insert("F", Row(i, "fn"), 2));
    epoch.push_back(std::move(txn));
  }
  core::TrustPolicy policy(1);
  policy.TrustPeer(2, 1);
  for (auto _ : state) {
    db::Instance instance(&ProteinCatalog());
    core::AppendOnlyReconciler reconciler(&ProteinCatalog(), &policy);
    auto result = reconciler.ApplyEpoch(epoch, &instance);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_AppendOnlyEpoch)->Arg(16)->Arg(64)->Arg(256);

// --- DHT routing hop computation. ---
void BM_DhtRoute(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  net::DhtRing ring(n);
  uint64_t key = 0;
  for (auto _ : state) {
    auto route = ring.Route(key % n, net::KeyHash("k" + std::to_string(key)));
    benchmark::DoNotOptimize(route);
    ++key;
  }
}
BENCHMARK(BM_DhtRoute)->Arg(10)->Arg(50)->Arg(200);

// --- Storage engine put/get. ---
void BM_EnginePutGet(benchmark::State& state) {
  auto engine = storage::StorageEngine::InMemory();
  int i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i % 4096);
    benchmark::DoNotOptimize(engine->Put("bench", key, "payload-value"));
    benchmark::DoNotOptimize(engine->Get("bench", key));
    ++i;
  }
}
BENCHMARK(BM_EnginePutGet);

// --- Transaction serialization round trip. ---
void BM_TransactionSerde(benchmark::State& state) {
  core::Transaction txn;
  txn.id = {3, 12};
  txn.epoch = 42;
  for (int i = 0; i < 8; ++i) {
    txn.updates.push_back(core::Update::Insert("F", Row(i, "function"), 3));
  }
  txn.antecedents = {{1, 3}, {2, 9}};
  for (auto _ : state) {
    std::string buf;
    core::EncodeTransaction(&buf, txn);
    size_t pos = 0;
    auto decoded = core::DecodeTransaction(buf, &pos);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_TransactionSerde);

}  // namespace

BENCHMARK_MAIN();
