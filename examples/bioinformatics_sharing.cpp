// A curated-data confederation with tiered authority, modeled on the
// paper's motivating bioinformatics scenario (§1): a human-curated
// SWISS-PROT-like warehouse is more authoritative than automatically
// annotated GenBank-like feeds, so conflicts between them resolve
// automatically in the curator's favor; conflicts between equally
// trusted feeds defer for manual resolution.
//
// Participants:
//   0  "swissprot"  human-curated warehouse   (trusted at priority 3)
//   1  "genbank"    automated annotation feed (priority 1)
//   2  "tremble"    automated annotation feed (priority 1)
//   3..5 lab peers that import from everyone
#include <cstdio>

#include "core/participant.h"
#include "net/sim_network.h"
#include "sim/metrics.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "workload/swissprot.h"

using namespace orchestra;

namespace {

db::Tuple Fn(const char* organism, const char* protein,
             const char* function) {
  return db::Tuple{db::Value(organism), db::Value(protein),
                   db::Value(function)};
}

core::Update InsertFn(const char* organism, const char* protein,
                      const char* function, core::ParticipantId origin) {
  return core::Update::Insert(workload::kFunctionRelation,
                              Fn(organism, protein, function), origin);
}

}  // namespace

int main() {
  auto catalog_result = workload::MakeSwissProtCatalog();
  ORCH_CHECK(catalog_result.ok());
  db::Catalog catalog = *std::move(catalog_result);

  net::SimNetwork network;
  auto engine = storage::StorageEngine::InMemory();
  store::CentralStore store(engine.get(), &network);

  const char* names[6] = {"swissprot", "genbank", "tremble",
                          "lab-upenn", "lab-eth", "lab-ut"};
  std::vector<std::unique_ptr<core::TrustPolicy>> policies;
  std::vector<std::unique_ptr<core::Participant>> peers;
  for (core::ParticipantId id = 0; id < 6; ++id) {
    auto policy = std::make_unique<core::TrustPolicy>(id);
    // Everyone trusts the human-curated warehouse most, the automated
    // feeds at a lower priority, and the labs in between.
    if (id != 0) policy->TrustPeer(0, 3);
    for (core::ParticipantId feed : {1u, 2u}) {
      if (id != feed) policy->TrustPeer(feed, 1);
    }
    for (core::ParticipantId lab : {3u, 4u, 5u}) {
      if (id != lab) policy->TrustPeer(lab, 2);
    }
    ORCH_CHECK(store.RegisterParticipant(id, policy.get()).ok());
    policies.push_back(std::move(policy));
    peers.push_back(
        std::make_unique<core::Participant>(id, &catalog, *policies.back()));
  }

  std::printf("=== The two automated feeds disagree about P12345 ===\n");
  ORCH_CHECK(peers[1]
                 ->ExecuteTransaction(
                     {InsertFn("Rattus norvegicus", "P12345", "glycolysis", 1)})
                 .ok());
  ORCH_CHECK(peers[1]->PublishAndReconcile(&store).ok());
  ORCH_CHECK(peers[2]
                 ->ExecuteTransaction({InsertFn("Rattus norvegicus", "P12345",
                                                "gluconeogenesis", 2)})
                 .ok());
  ORCH_CHECK(peers[2]->PublishAndReconcile(&store).ok());

  // A lab reconciles: the two priority-1 feeds conflict, so the update
  // defers until a human decides.
  auto lab_report = peers[3]->Reconcile(&store);
  ORCH_CHECK(lab_report.ok());
  std::printf("lab-upenn: %zu deferred (equal-authority disagreement)\n",
              lab_report->deferred.size());
  for (const auto& group : peers[3]->pending_conflicts()) {
    std::printf("  open conflict: %s\n", group.ToString().c_str());
  }

  std::printf("\n=== The curated warehouse weighs in ===\n");
  ORCH_CHECK(peers[0]
                 ->ExecuteTransaction({InsertFn("Rattus norvegicus", "P12345",
                                                "glycolysis", 0)})
                 .ok());
  ORCH_CHECK(peers[0]->PublishAndReconcile(&store).ok());

  // Another lab reconciles only now: it sees all three versions at once.
  // The curator's priority-3 version wins automatically; the agreeing
  // feed rides along and the disagreeing feed is rejected.
  auto late_report = peers[4]->Reconcile(&store);
  ORCH_CHECK(late_report.ok());
  std::printf("lab-eth (reconciling late): %zu accepted, %zu rejected, "
              "%zu deferred\n",
              late_report->accepted.size(), late_report->rejected.size(),
              late_report->deferred.size());
  auto table = peers[4]->instance().GetTable(workload::kFunctionRelation);
  ORCH_CHECK(table.ok());
  for (const db::Tuple& t : (*table)->ScanSorted()) {
    std::printf("  lab-eth holds %s\n", t.ToString().c_str());
  }

  std::printf("\n=== The first lab resolves with the curator's version ===\n");
  // lab-upenn still has the deferred feed conflict; the curator's new
  // transaction touches the same (dirty) key, so it defers too — the
  // user resolves once and everything settles.
  auto refreshed = peers[3]->Reconcile(&store);
  ORCH_CHECK(refreshed.ok());
  size_t option = 0;
  const auto& groups = peers[3]->pending_conflicts();
  if (!groups.empty()) {
    for (size_t i = 0; i < groups[0].options.size(); ++i) {
      if (groups[0].options[i].effect.find("'glycolysis'") !=
          std::string::npos) {
        option = i;
      }
    }
    auto resolved = peers[3]->ResolveConflict(&store, 0, option);
    ORCH_CHECK(resolved.ok());
    std::printf("lab-upenn resolved: %zu accepted, %zu rejected\n",
                resolved->accepted.size(), resolved->rejected.size());
  }
  table = peers[3]->instance().GetTable(workload::kFunctionRelation);
  ORCH_CHECK(table.ok());
  for (const db::Tuple& t : (*table)->ScanSorted()) {
    std::printf("  lab-upenn holds %s\n", t.ToString().c_str());
  }

  // Let everyone catch up and report the sharing quality.
  for (auto& peer : peers) {
    ORCH_CHECK(peer->Reconcile(&store).ok());
  }
  std::vector<const core::Participant*> view;
  for (auto& peer : peers) view.push_back(peer.get());
  std::printf("\nFinal state ratio over %s: %.2f "
              "(1.0 = perfect agreement, 6.0 = total divergence)\n",
              workload::kFunctionRelation,
              sim::StateRatio(view, workload::kFunctionRelation));
  for (size_t i = 0; i < peers.size(); ++i) {
    auto t = peers[i]->instance().GetTable(workload::kFunctionRelation);
    std::printf("  %-10s: %zu tuples, %zu deferred\n", names[i],
                (*t)->size(), peers[i]->deferred_count());
  }
  return 0;
}
