// Deferral and conflict-resolution walkthrough (§4, §5): shows how
// equal-priority disagreements form conflict groups with options, how
// dirty values quarantine further updates to contested keys, and how a
// user's resolution re-runs reconciliation and settles the deferred
// backlog — including dependent revision chains.
#include <cstdio>

#include "core/participant.h"
#include "db/schema.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"

using namespace orchestra;

namespace {

db::Catalog MakeCatalog() {
  db::Catalog catalog;
  auto schema = db::RelationSchema::Make(
      "F",
      {{"organism", db::ValueType::kString, false},
       {"protein", db::ValueType::kString, false},
       {"function", db::ValueType::kString, false}},
      {0, 1});
  ORCH_CHECK(schema.ok());
  ORCH_CHECK(catalog.AddRelation(*std::move(schema)).ok());
  return catalog;
}

db::Tuple Row(const char* o, const char* p, const char* f) {
  return db::Tuple{db::Value(o), db::Value(p), db::Value(f)};
}

void ShowConflicts(const core::Participant& p) {
  if (p.pending_conflicts().empty()) {
    std::printf("  no open conflicts\n");
    return;
  }
  for (size_t g = 0; g < p.pending_conflicts().size(); ++g) {
    const core::ConflictGroup& group = p.pending_conflicts()[g];
    std::printf("  group %zu: %s\n", g, group.point.ToString().c_str());
    for (size_t o = 0; o < group.options.size(); ++o) {
      std::printf("    option %zu: %s  (", o, group.options[o].effect.c_str());
      for (size_t t = 0; t < group.options[o].txns.size(); ++t) {
        std::printf("%s%s", t ? ", " : "",
                    group.options[o].txns[t].ToString().c_str());
      }
      std::printf(")\n");
    }
  }
}

}  // namespace

int main() {
  db::Catalog catalog = MakeCatalog();
  net::SimNetwork network;
  auto engine = storage::StorageEngine::InMemory();
  store::CentralStore store(engine.get(), &network);

  // Four peers, all trusting one another equally (priority 1) — the
  // configuration in which no conflict can resolve automatically.
  std::vector<std::unique_ptr<core::TrustPolicy>> policies;
  std::vector<std::unique_ptr<core::Participant>> peers;
  for (core::ParticipantId id = 0; id < 4; ++id) {
    auto policy = std::make_unique<core::TrustPolicy>(id);
    for (core::ParticipantId other = 0; other < 4; ++other) {
      if (other != id) policy->TrustPeer(other, 1);
    }
    ORCH_CHECK(store.RegisterParticipant(id, policy.get()).ok());
    policies.push_back(std::move(policy));
    peers.push_back(
        std::make_unique<core::Participant>(id, &catalog, *policies.back()));
  }

  std::printf("=== Three peers publish three versions of (rat, prot1) ===\n");
  ORCH_CHECK(peers[0]
                 ->ExecuteTransaction({core::Update::Insert(
                     "F", Row("rat", "prot1", "cell-metabolism"), 0)})
                 .ok());
  ORCH_CHECK(peers[0]->PublishAndReconcile(&store).ok());
  ORCH_CHECK(peers[1]
                 ->ExecuteTransaction({core::Update::Insert(
                     "F", Row("rat", "prot1", "immune-response"), 1)})
                 .ok());
  // Peer 1 then revises its own conclusion — a dependent chain.
  ORCH_CHECK(peers[1]
                 ->ExecuteTransaction({core::Update::Modify(
                     "F", Row("rat", "prot1", "immune-response"),
                     Row("rat", "prot1", "signal-transduction"), 1)})
                 .ok());
  ORCH_CHECK(peers[1]->PublishAndReconcile(&store).ok());
  ORCH_CHECK(peers[2]
                 ->ExecuteTransaction({core::Update::Insert(
                     "F", Row("rat", "prot1", "cell-metabolism"), 2)})
                 .ok());
  ORCH_CHECK(peers[2]->PublishAndReconcile(&store).ok());

  std::printf("\n=== Peer 3 reconciles and must defer everything ===\n");
  auto report = peers[3]->Reconcile(&store);
  ORCH_CHECK(report.ok());
  std::printf("peer 3: %zu fetched, %zu deferred\n", report->fetched,
              report->deferred.size());
  ShowConflicts(*peers[3]);
  std::printf("  note: peers 0 and 2 agree, so their transactions share "
              "one option; peer 1's revision chain rides as one option "
              "with its antecedent.\n");

  std::printf("\n=== A later update touching the contested key defers "
              "regardless of content ===\n");
  ORCH_CHECK(peers[0]
                 ->ExecuteTransaction({core::Update::Modify(
                     "F", Row("rat", "prot1", "cell-metabolism"),
                     Row("rat", "prot1", "cell-metabolism-revised"), 0)})
                 .ok());
  ORCH_CHECK(peers[0]->PublishAndReconcile(&store).ok());
  report = peers[3]->Reconcile(&store);
  ORCH_CHECK(report.ok());
  std::printf("peer 3: %zu fresh deferred on the dirty key (total "
              "deferred now %zu)\n",
              report->fetched, peers[3]->deferred_count());

  std::printf("\n=== The user resolves for 'signal-transduction' ===\n");
  const auto& groups = peers[3]->pending_conflicts();
  size_t chosen = 0;
  for (size_t i = 0; i < groups[0].options.size(); ++i) {
    if (groups[0].options[i].effect.find("signal-transduction") !=
        std::string::npos) {
      chosen = i;
    }
  }
  auto resolved = peers[3]->ResolveConflict(&store, 0, chosen);
  ORCH_CHECK(resolved.ok());
  std::printf("after resolution: %zu accepted in the re-run, %zu rejected "
              "in total (the losing options), %zu still deferred\n",
              resolved->accepted.size(), peers[3]->rejected_count(),
              resolved->deferred.size());
  std::printf("peer 3 instance:\n%s", peers[3]->instance().ToString().c_str());
  ShowConflicts(*peers[3]);

  std::printf("\n=== Rejected-option publishers keep their own versions "
              "(tolerated disagreement) ===\n");
  for (core::ParticipantId id = 0; id < 3; ++id) {
    auto t = peers[id]->instance().GetTable("F");
    std::printf("peer %u holds:\n", id);
    for (const db::Tuple& row : (*t)->ScanSorted()) {
      std::printf("  %s\n", row.ToString().c_str());
    }
  }
  return 0;
}
