// Distributed update store walkthrough (§5.2.2, Figures 6-7): builds a
// DHT-backed confederation, shows the ring layout and node roles, and
// traces the message costs of publishing an epoch and reconciling —
// including the antecedent-chain requests that dominate distributed
// reconciliation time.
#include <cstdio>

#include "core/participant.h"
#include "net/sim_network.h"
#include "store/dht_store.h"
#include "workload/swissprot.h"

using namespace orchestra;

namespace {

void ShowDelta(const char* label, const core::StoreStats& before,
               const core::StoreStats& after) {
  const core::StoreStats d = after - before;
  std::printf("%-34s %5lld msgs  %7lld bytes  %8.3f ms simulated\n", label,
              static_cast<long long>(d.messages),
              static_cast<long long>(d.bytes),
              static_cast<double>(d.sim_network_micros) / 1e3);
}

}  // namespace

int main() {
  auto catalog_result = workload::MakeSwissProtCatalog();
  ORCH_CHECK(catalog_result.ok());
  db::Catalog catalog = *std::move(catalog_result);

  net::SimNetwork network;  // 500 us per message, as in the paper
  constexpr size_t kPeers = 8;
  store::DhtStore store(kPeers, &network);

  std::printf("=== Ring layout (%zu nodes, Chord-style) ===\n", kPeers);
  for (size_t i = 0; i < store.ring().size(); ++i) {
    std::printf("  node %zu owns arc ending at id %016llx\n", i,
                static_cast<unsigned long long>(store.ring().IdOf(i)));
  }
  std::printf("  epoch allocator: node %zu (owner of 'epoch-allocator')\n",
              store.ring().OwnerOf(net::KeyHash("epoch-allocator")));
  std::printf("  epoch 1 controller: node %zu\n",
              store.ring().OwnerOf(net::KeyHash("epoch:1")));
  std::printf("  peer 0 coordinator: node %zu\n",
              store.ring().OwnerOf(net::KeyHash("peer:0")));

  std::vector<std::unique_ptr<core::TrustPolicy>> policies;
  std::vector<std::unique_ptr<core::Participant>> peers;
  for (core::ParticipantId id = 0; id < kPeers; ++id) {
    auto policy = std::make_unique<core::TrustPolicy>(id);
    for (core::ParticipantId other = 0; other < kPeers; ++other) {
      if (other != id) policy->TrustPeer(other, 1);
    }
    ORCH_CHECK(store.RegisterParticipant(id, policy.get()).ok());
    policies.push_back(std::move(policy));
    peers.push_back(
        std::make_unique<core::Participant>(id, &catalog, *policies.back()));
  }

  std::printf("\n=== Figure 6: publishing an epoch ===\n");
  // Peer 0 creates a revision chain of three transactions.
  ORCH_CHECK(peers[0]
                 ->ExecuteTransaction({core::Update::Insert(
                     workload::kFunctionRelation,
                     db::Tuple{db::Value("Danio rerio"), db::Value("P77777"),
                               db::Value("dna-repair")},
                     0)})
                 .ok());
  ORCH_CHECK(peers[0]
                 ->ExecuteTransaction({core::Update::Modify(
                     workload::kFunctionRelation,
                     db::Tuple{db::Value("Danio rerio"), db::Value("P77777"),
                               db::Value("dna-repair")},
                     db::Tuple{db::Value("Danio rerio"), db::Value("P77777"),
                               db::Value("dna-replication")},
                     0)})
                 .ok());
  core::StoreStats before = store.StatsFor(0);
  ORCH_CHECK(peers[0]->Publish(&store).ok());
  ShowDelta("publish (2 txns, Fig. 6 steps 1-6)", before, store.StatsFor(0));

  std::printf("\n=== Figure 7: reconciliation with antecedent chains ===\n");
  before = store.StatsFor(1);
  auto report = peers[1]->Reconcile(&store);
  ORCH_CHECK(report.ok());
  ShowDelta("peer 1 reconcile (fresh chain)", before, store.StatsFor(1));
  std::printf("  fetched %zu trusted txns, accepted %zu (the revision "
              "pulled its antecedent)\n",
              report->fetched, report->accepted.size());

  // Peer 1 extends the chain; peer 2 reconciles and must follow the
  // whole antecedent chain across controllers.
  ORCH_CHECK(peers[1]
                 ->ExecuteTransaction({core::Update::Modify(
                     workload::kFunctionRelation,
                     db::Tuple{db::Value("Danio rerio"), db::Value("P77777"),
                               db::Value("dna-replication")},
                     db::Tuple{db::Value("Danio rerio"), db::Value("P77777"),
                               db::Value("rna-splicing")},
                     1)})
                 .ok());
  ORCH_CHECK(peers[1]->Publish(&store).ok());
  before = store.StatsFor(2);
  report = peers[2]->Reconcile(&store);
  ORCH_CHECK(report.ok());
  ShowDelta("peer 2 reconcile (3-txn chain)", before, store.StatsFor(2));
  auto table = peers[2]->instance().GetTable(workload::kFunctionRelation);
  for (const db::Tuple& t : (*table)->ScanSorted()) {
    std::printf("  peer 2 holds %s\n", t.ToString().c_str());
  }

  std::printf("\n=== Scaling: every peer publishes, peer 7 reconciles ===\n");
  for (core::ParticipantId id = 0; id < kPeers - 1; ++id) {
    const std::string protein = "Q" + std::to_string(1000 + id);
    ORCH_CHECK(peers[id]
                   ->ExecuteTransaction({core::Update::Insert(
                       workload::kFunctionRelation,
                       db::Tuple{db::Value("Mus musculus"),
                                 db::Value(protein), db::Value("apoptosis")},
                       id)})
                   .ok());
    ORCH_CHECK(peers[id]->Publish(&store).ok());
  }
  before = store.StatsFor(7);
  report = peers[7]->Reconcile(&store);
  ORCH_CHECK(report.ok());
  ShowDelta("peer 7 reconcile (7 epochs)", before, store.StatsFor(7));
  std::printf("  accepted %zu transactions from %zu epochs; per-transaction "
              "controller round trips dominate, exactly as §6.2 reports.\n",
              report->accepted.size(), static_cast<size_t>(report->epoch));
  return 0;
}
