// Federation lifecycle: everything beyond steady-state reconciliation —
// a newcomer bootstraps from an existing peer's published instance (§1),
// a crashed peer rebuilds itself from the update store (§5.2), and a
// backlog of deferred conflicts is settled mechanically with a
// resolution strategy (§4).
#include <cstdio>

#include "core/participant.h"
#include "core/resolution.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "workload/swissprot.h"

using namespace orchestra;

namespace {

db::Tuple Fn(const char* organism, const char* protein,
             const char* function) {
  return db::Tuple{db::Value(organism), db::Value(protein),
                   db::Value(function)};
}

core::Update InsertFn(const char* organism, const char* protein,
                      const char* function) {
  return core::Update::Insert(workload::kFunctionRelation,
                              Fn(organism, protein, function), 0);
}

void ShowInstance(const char* label, const core::Participant& p) {
  auto table = p.instance().GetTable(workload::kFunctionRelation);
  std::printf("%s holds %zu tuples", label, (*table)->size());
  for (const db::Tuple& t : (*table)->ScanSorted()) {
    std::printf("\n    %s", t.ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto catalog_result = workload::MakeSwissProtCatalog();
  ORCH_CHECK(catalog_result.ok());
  db::Catalog catalog = *std::move(catalog_result);

  net::SimNetwork network;
  auto engine = storage::StorageEngine::InMemory();
  store::CentralStore store(engine.get(), &network,
                            store::CentralStoreOptions{}, &catalog);

  auto make_policy = [&](core::ParticipantId self) {
    core::TrustPolicy policy(self);
    for (core::ParticipantId other = 1; other <= 4; ++other) {
      if (other != self) policy.TrustPeer(other, 1);
    }
    return policy;
  };
  std::vector<core::TrustPolicy> policies;
  for (core::ParticipantId id = 1; id <= 4; ++id) {
    policies.push_back(make_policy(id));
  }
  core::Participant alice(1, &catalog, policies[0]);
  core::Participant bob(2, &catalog, policies[1]);
  core::Participant carol(3, &catalog, policies[2]);
  for (core::ParticipantId id = 1; id <= 4; ++id) {
    ORCH_CHECK(store.RegisterParticipant(id, &policies[id - 1]).ok());
  }

  std::printf("=== Steady state: three curators build shared data ===\n");
  ORCH_CHECK(alice
                 .ExecuteTransaction(
                     {InsertFn("Danio rerio", "P10001", "dna-repair")})
                 .ok());
  ORCH_CHECK(alice.PublishAndReconcile(&store).ok());
  ORCH_CHECK(bob.Reconcile(&store).ok());
  ORCH_CHECK(bob.ExecuteTransaction({core::Update::Modify(
                     workload::kFunctionRelation,
                     Fn("Danio rerio", "P10001", "dna-repair"),
                     Fn("Danio rerio", "P10001", "dna-replication"), 0)})
                 .ok());
  ORCH_CHECK(bob.PublishAndReconcile(&store).ok());
  ORCH_CHECK(carol.ExecuteTransaction(
                      {InsertFn("Danio rerio", "P10002", "apoptosis")})
                 .ok());
  ORCH_CHECK(carol.PublishAndReconcile(&store).ok());
  ORCH_CHECK(alice.Reconcile(&store).ok());
  ORCH_CHECK(carol.Reconcile(&store).ok());
  ShowInstance("carol", carol);

  std::printf("\n=== A newcomer (dana) bootstraps from carol ===\n");
  auto dana = core::Participant::BootstrapFrom(4, &catalog, make_policy(4),
                                               &store, 3);
  ORCH_CHECK(dana.ok());
  ShowInstance("dana (fresh)", **dana);
  std::printf("  adopted %zu applied transactions; reconciles forward "
              "normally from carol's watermark\n",
              (*dana)->applied_count());

  std::printf("\n=== Conflicts pile up while dana is offline ===\n");
  ORCH_CHECK(alice
                 .ExecuteTransaction(
                     {InsertFn("Danio rerio", "P10003", "glycolysis")})
                 .ok());
  ORCH_CHECK(alice.PublishAndReconcile(&store).ok());
  ORCH_CHECK(bob.ExecuteTransaction(
                    {InsertFn("Danio rerio", "P10003", "gluconeogenesis")})
                 .ok());
  ORCH_CHECK(bob.PublishAndReconcile(&store).ok());
  auto report = (*dana)->Reconcile(&store);
  ORCH_CHECK(report.ok());
  std::printf("dana reconciles: %zu deferred, %zu open conflict groups\n",
              report->deferred.size(), (*dana)->pending_conflicts().size());

  std::printf("\n=== dana crashes; her laptop is wiped ===\n");
  dana->reset();  // all local state gone
  auto recovered = core::Participant::RecoverFromStore(
      4, &catalog, make_policy(4), &store);
  ORCH_CHECK(recovered.ok());
  std::printf("recovered from the store: %zu tuples, %zu applied, %zu "
              "deferred, %zu open conflict groups\n",
              (*recovered)->instance().TotalTuples(),
              (*recovered)->applied_count(), (*recovered)->deferred_count(),
              (*recovered)->pending_conflicts().size());

  std::printf("\n=== The backlog settles mechanically: prefer alice ===\n");
  auto summary = core::ResolveConflicts(recovered->get(), &store,
                                        core::PreferPeers({1}));
  ORCH_CHECK(summary.ok());
  std::printf("resolved %zu groups (%zu accepted, %zu rejected)\n",
              summary->groups_resolved, summary->accepted,
              summary->rejected);
  ShowInstance("dana (final)", **recovered);
  std::printf("\nLifecycle complete: bootstrap, divergence, crash "
              "recovery, and mechanized resolution — all from durable "
              "store state plus local policy.\n");
  return 0;
}
