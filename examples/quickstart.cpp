// Quickstart: the paper's running example (Figures 1 and 2).
//
// Three bioinformatics participants share one relation
//   F(organism, protein, function), key (organism, protein),
// through a central update store. Each trusts the others per Figure 1:
//   p1: updates from p2 and p3 at priority 1,
//   p2: updates from p1 at priority 2, from p3 at priority 1,
//   p3: updates from p2 at priority 1 only.
// The program replays the four epochs of Figure 2 and prints each
// participant's instance after every step.
#include <cstdio>

#include "core/participant.h"
#include "db/schema.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"

using namespace orchestra;

namespace {

db::Catalog MakeCatalog() {
  db::Catalog catalog;
  auto schema = db::RelationSchema::Make(
      "F",
      {{"organism", db::ValueType::kString, false},
       {"protein", db::ValueType::kString, false},
       {"function", db::ValueType::kString, false}},
      {0, 1});
  ORCH_CHECK(schema.ok());
  ORCH_CHECK(catalog.AddRelation(*std::move(schema)).ok());
  return catalog;
}

db::Tuple Row(const char* organism, const char* protein,
              const char* function) {
  return db::Tuple{db::Value(organism), db::Value(protein),
                   db::Value(function)};
}

void Show(const char* label, const core::Participant& p) {
  std::printf("%s instance:\n%s", label, p.instance().ToString().c_str());
}

void ShowReport(const char* who, const core::ReconcileReport& report) {
  std::printf("%s reconciled (recno %lld): %zu accepted, %zu rejected, "
              "%zu deferred\n",
              who, static_cast<long long>(report.recno),
              report.accepted.size(), report.rejected.size(),
              report.deferred.size());
}

#define ORCH_DEMO_REQUIRE(expr)                                      \
  do {                                                               \
    auto _r = (expr);                                                \
    if (!_r.ok()) {                                                  \
      std::fprintf(stderr, "FAILED %s: %s\n", #expr,                 \
                   _r.status().ToString().c_str());                  \
      return 1;                                                      \
    }                                                                \
  } while (false)

}  // namespace

int main() {
  db::Catalog catalog = MakeCatalog();
  net::SimNetwork network;
  auto engine = storage::StorageEngine::InMemory();
  store::CentralStore store(engine.get(), &network);

  core::TrustPolicy policy1(1);
  policy1.TrustPeer(2, 1).TrustPeer(3, 1);
  core::TrustPolicy policy2(2);
  policy2.TrustPeer(1, 2).TrustPeer(3, 1);
  core::TrustPolicy policy3(3);
  policy3.TrustPeer(2, 1);

  core::Participant p1(1, &catalog, policy1);
  core::Participant p2(2, &catalog, policy2);
  core::Participant p3(3, &catalog, policy3);
  ORCH_CHECK(store.RegisterParticipant(1, &policy1).ok());
  ORCH_CHECK(store.RegisterParticipant(2, &policy2).ok());
  ORCH_CHECK(store.RegisterParticipant(3, &policy3).ok());

  std::printf("=== Epoch 1: p3 curates and publishes ===\n");
  ORCH_DEMO_REQUIRE(p3.ExecuteTransaction(
      {core::Update::Insert("F", Row("rat", "prot1", "cell-metab"), 3)}));
  ORCH_DEMO_REQUIRE(p3.ExecuteTransaction(
      {core::Update::Modify("F", Row("rat", "prot1", "cell-metab"),
                            Row("rat", "prot1", "immune"), 3)}));
  {
    auto report = p3.PublishAndReconcile(&store);
    ORCH_DEMO_REQUIRE(report);
    ShowReport("p3", *report);
  }
  Show("p3", p3);

  std::printf("\n=== Epoch 2: p2 publishes conflicting curation ===\n");
  ORCH_DEMO_REQUIRE(p2.ExecuteTransaction(
      {core::Update::Insert("F", Row("mouse", "prot2", "immune"), 2)}));
  ORCH_DEMO_REQUIRE(p2.ExecuteTransaction(
      {core::Update::Insert("F", Row("rat", "prot1", "cell-resp"), 2)}));
  {
    auto report = p2.PublishAndReconcile(&store);
    ORCH_DEMO_REQUIRE(report);
    ShowReport("p2", *report);
    std::printf("  (p3's rat transactions conflict with p2's own "
                "updates: rejected)\n");
  }
  Show("p2", p2);

  std::printf("\n=== Epoch 3: p3 reconciles again ===\n");
  {
    auto report = p3.Reconcile(&store);
    ORCH_DEMO_REQUIRE(report);
    ShowReport("p3", *report);
    std::printf("  (mouse accepted; the rat tuple is incompatible with "
                "p3's local state: rejected)\n");
  }
  Show("p3", p3);

  std::printf("\n=== Epoch 4: p1 reconciles, trusting p2 = p3 ===\n");
  {
    auto report = p1.Reconcile(&store);
    ORCH_DEMO_REQUIRE(report);
    ShowReport("p1", *report);
  }
  Show("p1", p1);
  std::printf("Open conflict groups at p1:\n");
  for (const core::ConflictGroup& group : p1.pending_conflicts()) {
    std::printf("  %s\n", group.ToString().c_str());
  }

  std::printf("\n=== p1's user resolves the conflict for 'immune' ===\n");
  size_t chosen = 0;
  const auto& group = p1.pending_conflicts()[0];
  for (size_t i = 0; i < group.options.size(); ++i) {
    if (group.options[i].effect.find("immune") != std::string::npos) {
      chosen = i;
    }
  }
  {
    auto report = p1.ResolveConflict(&store, 0, chosen);
    ORCH_DEMO_REQUIRE(report);
    ShowReport("p1", *report);
  }
  Show("p1", p1);
  std::printf("\nDone: every participant kept an internally consistent "
              "instance while tolerating disagreement on (rat, prot1).\n");
  return 0;
}
