#ifndef ORCHESTRA_COMMON_CHECK_H_
#define ORCHESTRA_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checks for programming errors (not recoverable failures —
/// those return Status). A failed check prints the location and aborts.
/// The format arguments are printf-style and optional.
#define ORCH_CHECK(cond, ...)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "ORCH_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                        \
      ORCH_CHECK_MSG_(__VA_ARGS__);                                   \
      std::abort();                                                   \
    }                                                                 \
  } while (false)

// Prints an optional printf-style message; expands to nothing if no
// message arguments were supplied.
#define ORCH_CHECK_MSG_(...)                                          \
  do {                                                                \
    if (sizeof(#__VA_ARGS__) > 1) {                                   \
      std::fprintf(stderr, "  " __VA_ARGS__);                         \
      std::fprintf(stderr, "\n");                                     \
    }                                                                 \
  } while (false)

#define ORCH_CHECK_EQ(a, b, ...) ORCH_CHECK((a) == (b), ##__VA_ARGS__)
#define ORCH_CHECK_NE(a, b, ...) ORCH_CHECK((a) != (b), ##__VA_ARGS__)
#define ORCH_CHECK_LT(a, b, ...) ORCH_CHECK((a) < (b), ##__VA_ARGS__)
#define ORCH_CHECK_LE(a, b, ...) ORCH_CHECK((a) <= (b), ##__VA_ARGS__)
#define ORCH_CHECK_GT(a, b, ...) ORCH_CHECK((a) > (b), ##__VA_ARGS__)
#define ORCH_CHECK_GE(a, b, ...) ORCH_CHECK((a) >= (b), ##__VA_ARGS__)

#endif  // ORCHESTRA_COMMON_CHECK_H_
