#ifndef ORCHESTRA_COMMON_CLOCK_H_
#define ORCHESTRA_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

#include "common/check.h"

namespace orchestra {

/// Simulated microsecond clock. Network and store costs in the experiment
/// harness are charged against instances of this clock so that results are
/// deterministic and independent of host load; local algorithm time is
/// measured separately with Stopwatch.
class SimClock {
 public:
  SimClock() = default;

  /// Current simulated time in microseconds since simulation start.
  int64_t NowMicros() const { return now_micros_; }

  /// Advances the clock; delta must be non-negative.
  void Advance(int64_t delta_micros) {
    ORCH_CHECK_GE(delta_micros, 0);
    now_micros_ += delta_micros;
  }

  void Reset() { now_micros_ = 0; }

 private:
  int64_t now_micros_ = 0;
};

/// Wall-clock stopwatch for measuring local (CPU-side) algorithm time.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_CLOCK_H_
