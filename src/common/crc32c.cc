#include "common/crc32c.h"

#include <array>
#include <cstddef>
#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define ORCH_CRC32C_X86 1
#include <nmmintrin.h>
#else
#define ORCH_CRC32C_X86 0
#endif

namespace orchestra {
namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cPortable(uint32_t crc, std::string_view data) {
  crc = ~crc;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

#if ORCH_CRC32C_X86

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    uint32_t crc, std::string_view data) {
  crc = ~crc;
  const char* p = data.data();
  size_t n = data.size();
#if defined(__x86_64__)
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = static_cast<uint32_t>(
        _mm_crc32_u64(static_cast<uint64_t>(crc), word));
    p += 8;
    n -= 8;
  }
#endif
  while (n >= 4) {
    uint32_t word;
    std::memcpy(&word, p, 4);
    crc = _mm_crc32_u32(crc, word);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, static_cast<unsigned char>(*p));
    ++p;
    --n;
  }
  return ~crc;
}

bool Crc32cHardwareAvailable() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}

#else  // !ORCH_CRC32C_X86

uint32_t Crc32cHardware(uint32_t crc, std::string_view data) {
  return Crc32cPortable(crc, data);
}

bool Crc32cHardwareAvailable() { return false; }

#endif  // ORCH_CRC32C_X86

uint32_t Crc32c(uint32_t crc, std::string_view data) {
  return Crc32cHardwareAvailable() ? Crc32cHardware(crc, data)
                                   : Crc32cPortable(crc, data);
}

}  // namespace orchestra
