#ifndef ORCHESTRA_COMMON_CRC32C_H_
#define ORCHESTRA_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace orchestra {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum RFC 3720 (iSCSI) standardized and storage engines
/// (LevelDB/RocksDB, ext4) converged on, because commodity CPUs carry a
/// dedicated instruction for it (SSE4.2 `crc32`). Distinct from the
/// zlib/IEEE CRC32 the legacy WAL format used (storage/wal.cc): the two
/// polynomials never collide by accident, which doubles as cheap format
/// discrimination.
///
/// `Crc32c` dispatches to the hardware path when the binary was compiled
/// with SSE4.2 available, falling back to a byte-table implementation
/// otherwise. Both paths are exported so tests can assert bit-equality
/// between them on fuzzed inputs.

/// CRC32C of `data`, extending the running checksum `crc` (pass 0 to
/// start). Output is the plain (unmasked) checksum.
uint32_t Crc32c(uint32_t crc, std::string_view data);

/// Portable table-driven implementation; always available.
uint32_t Crc32cPortable(uint32_t crc, std::string_view data);

/// Hardware (SSE4.2) implementation. Only callable when
/// Crc32cHardwareAvailable() is true; otherwise falls back to portable.
uint32_t Crc32cHardware(uint32_t crc, std::string_view data);

/// True when this binary contains the SSE4.2 path and the CPU supports it.
bool Crc32cHardwareAvailable();

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_CRC32C_H_
