#include "common/fault_injector.h"

#include <algorithm>
#include <array>

namespace orchestra {
namespace {

/// Failure sites: every name threaded through MaybeFail somewhere in
/// the tree. Kept in lockstep with the call sites so ValidateConfig can
/// reject a site_prefix that matches nothing.
constexpr std::array<std::string_view, 6> kFailureSites = {
    "net.node_crash", "net.send",         "storage.delete",
    "storage.put",    "storage.sequence", "storage.sync",
};

/// Corruption sites: every name MaybeCorrupt has mutation semantics for.
constexpr std::array<std::string_view, 4> kCorruptionSites = {
    "net.payload_corrupt",
    "storage.bit_flip",
    "storage.torn_write",
    "storage.truncate_tail",
};

uint64_t SiteHash(std::string_view site) {
  // FNV-1a; the Rng's SplitMix64 seeding does the final avalanche.
  uint64_t h = 1469598103934665603ull;
  for (char c : site) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector(FaultInjectorConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  enabled_ = config_.failure_probability > 0.0 || config_.fail_at_call > 0 ||
             CorruptionConfigured();
}

void FaultInjector::Configure(FaultInjectorConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = std::move(config);
  rng_ = Rng(config_.seed);
  enabled_ = config_.failure_probability > 0.0 || config_.fail_at_call > 0 ||
             CorruptionConfigured();
  tripped_ = false;
  calls_ = 0;
  injected_ = 0;
  corrupted_ = 0;
  corrupt_calls_.clear();
}

bool FaultInjector::CorruptionConfigured() const {
  return config_.corruption_probability > 0.0 &&
         !config_.corruption_sites.empty();
}

Status FaultInjector::MaybeFail(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return Status::OK();
  if (!config_.site_prefix.empty() &&
      site.substr(0, config_.site_prefix.size()) != config_.site_prefix) {
    return Status::OK();
  }
  const int64_t call = ++calls_;
  bool fail = tripped_;
  if (!fail && config_.fail_at_call > 0 && call == config_.fail_at_call) {
    fail = true;
  }
  // Draw even when the call already failed via fail_at_call so the
  // random stream stays aligned with the call sequence.
  if (config_.failure_probability > 0.0 &&
      rng_.NextBool(config_.failure_probability)) {
    fail = true;
  }
  if (!fail) return Status::OK();
  if (config_.sticky) tripped_ = true;
  ++injected_;
  return Status::Unavailable("injected fault at " + std::string(site) +
                             " (call #" + std::to_string(call) + ")");
}

bool FaultInjector::MaybeCorrupt(std::string_view site, std::string* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_ || !CorruptionConfigured()) return false;
  if (std::find(config_.corruption_sites.begin(),
                config_.corruption_sites.end(),
                site) == config_.corruption_sites.end()) {
    return false;
  }
  const int64_t call = ++corrupt_calls_[std::string(site)];
  // Per-call stream: (seed, site, call index) fully determine every
  // draw, so one site's schedule is immune to other sites' call counts.
  uint64_t s = config_.seed;
  s = s * 6364136223846793005ull + SiteHash(site);
  s = s * 6364136223846793005ull + static_cast<uint64_t>(call);
  Rng rng(s);
  if (!rng.NextBool(config_.corruption_probability)) return false;
  if (data == nullptr || data->empty()) return false;
  if (site == "storage.torn_write" || site == "storage.truncate_tail") {
    // Keep a strict prefix: the tail of the write never reached disk.
    data->resize(rng.NextBounded(data->size()));
  } else {
    const uint64_t flips = 1 + rng.NextBounded(3);
    for (uint64_t i = 0; i < flips; ++i) {
      const uint64_t bit = rng.NextBounded(data->size() * 8);
      (*data)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    }
  }
  ++corrupted_;
  return true;
}

std::span<const std::string_view> FaultInjector::KnownFailureSites() {
  return kFailureSites;
}

std::span<const std::string_view> FaultInjector::KnownCorruptionSites() {
  return kCorruptionSites;
}

Status FaultInjector::ValidateConfig(const FaultInjectorConfig& config) {
  auto in_unit_interval = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit_interval(config.failure_probability)) {
    return Status::InvalidArgument("failure_probability outside [0, 1]");
  }
  if (!in_unit_interval(config.corruption_probability)) {
    return Status::InvalidArgument("corruption_probability outside [0, 1]");
  }
  for (const std::string& site : config.corruption_sites) {
    if (std::find(kCorruptionSites.begin(), kCorruptionSites.end(), site) ==
        kCorruptionSites.end()) {
      std::string known;
      for (std::string_view s : kCorruptionSites) {
        if (!known.empty()) known += ", ";
        known += s;
      }
      return Status::InvalidArgument("unknown corruption site \"" + site +
                                     "\" (known: " + known + ")");
    }
  }
  if (!config.site_prefix.empty()) {
    const auto matches_prefix = [&](std::string_view site) {
      return site.substr(0, config.site_prefix.size()) == config.site_prefix;
    };
    if (!std::any_of(kFailureSites.begin(), kFailureSites.end(),
                     matches_prefix) &&
        !std::any_of(kCorruptionSites.begin(), kCorruptionSites.end(),
                     matches_prefix)) {
      return Status::InvalidArgument("site_prefix \"" + config.site_prefix +
                                     "\" matches no known fault site");
    }
  }
  return Status::OK();
}

void FaultInjector::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = false;
}

void FaultInjector::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = config_.failure_probability > 0.0 || config_.fail_at_call > 0 ||
             CorruptionConfigured();
}

bool FaultInjector::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

int64_t FaultInjector::calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return calls_;
}

int64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

int64_t FaultInjector::corrupted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupted_;
}

bool FaultInjector::tripped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tripped_;
}

FaultInjector::ScopedDisable::ScopedDisable(FaultInjector* injector)
    : injector_(injector) {
  if (injector_ != nullptr) {
    was_enabled_ = injector_->enabled();
    injector_->Disable();
  }
}

FaultInjector::ScopedDisable::~ScopedDisable() {
  if (injector_ != nullptr && was_enabled_) injector_->Enable();
}

}  // namespace orchestra
