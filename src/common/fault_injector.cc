#include "common/fault_injector.h"

namespace orchestra {

FaultInjector::FaultInjector(FaultInjectorConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  enabled_ =
      config_.failure_probability > 0.0 || config_.fail_at_call > 0;
}

void FaultInjector::Configure(FaultInjectorConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = std::move(config);
  rng_ = Rng(config_.seed);
  enabled_ =
      config_.failure_probability > 0.0 || config_.fail_at_call > 0;
  tripped_ = false;
  calls_ = 0;
  injected_ = 0;
}

Status FaultInjector::MaybeFail(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return Status::OK();
  if (!config_.site_prefix.empty() &&
      site.substr(0, config_.site_prefix.size()) != config_.site_prefix) {
    return Status::OK();
  }
  const int64_t call = ++calls_;
  bool fail = tripped_;
  if (!fail && config_.fail_at_call > 0 && call == config_.fail_at_call) {
    fail = true;
  }
  // Draw even when the call already failed via fail_at_call so the
  // random stream stays aligned with the call sequence.
  if (config_.failure_probability > 0.0 &&
      rng_.NextBool(config_.failure_probability)) {
    fail = true;
  }
  if (!fail) return Status::OK();
  if (config_.sticky) tripped_ = true;
  ++injected_;
  return Status::Unavailable("injected fault at " + std::string(site) +
                             " (call #" + std::to_string(call) + ")");
}

void FaultInjector::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = false;
}

void FaultInjector::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ =
      config_.failure_probability > 0.0 || config_.fail_at_call > 0;
}

bool FaultInjector::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

int64_t FaultInjector::calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return calls_;
}

int64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

bool FaultInjector::tripped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tripped_;
}

FaultInjector::ScopedDisable::ScopedDisable(FaultInjector* injector)
    : injector_(injector) {
  if (injector_ != nullptr) {
    was_enabled_ = injector_->enabled();
    injector_->Disable();
  }
}

FaultInjector::ScopedDisable::~ScopedDisable() {
  if (injector_ != nullptr && was_enabled_) injector_->Enable();
}

}  // namespace orchestra
