#ifndef ORCHESTRA_COMMON_FAULT_INJECTOR_H_
#define ORCHESTRA_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/status.h"

namespace orchestra {

/// Configuration for deterministic fault injection. Faults are injected
/// at named *sites* — narrow choke points the storage engine, the
/// simulated network, and the update stores thread their side-effecting
/// operations through ("storage.put", "storage.sync", "net.send", ...).
/// The simulator's churn schedule draws DHT node crashes through the
/// "net.node_crash" site of a dedicated injector (see sim::ChurnConfig).
/// Two triggers compose:
///   - `failure_probability`: each matching call fails independently with
///     this probability, drawn from a seeded xoshiro256** stream so a
///     given (seed, call sequence) always fails at the same calls;
///   - `fail_at_call`: the Nth matching call (1-based) fails
///     unconditionally — precise placement for crash-point tests.
/// `sticky` turns the first injected fault into a permanent outage:
/// every later call fails too, which models a crashed process (whose
/// rollback/abort code never runs) rather than a transient fault.
struct FaultInjectorConfig {
  /// Per-call failure probability in [0, 1]; 0 disables the random trigger.
  double failure_probability = 0.0;
  /// Seed for the random trigger's PRNG stream.
  uint64_t seed = 0;
  /// Fail exactly the Nth matching call (1-based); 0 disables.
  int64_t fail_at_call = 0;
  /// After the first injected fault, fail every subsequent call.
  bool sticky = false;
  /// Only calls whose site name starts with this prefix are eligible
  /// (empty = every site).
  std::string site_prefix;
};

/// Deterministic, seeded fault injector. Thread-safe: the reconciliation
/// engine may run store-adjacent work on a pool, and a shared injector
/// must hand out a single well-defined fault sequence regardless.
/// Components hold a nullable pointer and skip the injector entirely
/// when absent, so the fault-free hot path costs nothing.
class FaultInjector {
 public:
  FaultInjector() : rng_(0) {}
  explicit FaultInjector(FaultInjectorConfig config);

  /// Replaces the configuration and resets all counters and the sticky
  /// trip, restarting the PRNG stream from the new seed. (The injector
  /// itself is pinned in place by its mutex; components hold pointers to
  /// it, so reconfigure rather than replace.)
  void Configure(FaultInjectorConfig config);

  /// Returns OK, or an Unavailable status carrying the site and call
  /// number if a fault fires here. Counts every matching call.
  Status MaybeFail(std::string_view site);

  /// Stops all injection (and re-arms it); used by tests to "repair" the
  /// simulated outage and by abort/rollback paths that must run to
  /// completion once entered.
  void Disable();
  void Enable();
  bool enabled() const;

  /// Total matching calls observed / faults injected so far.
  int64_t calls() const;
  int64_t injected() const;

  /// True once a sticky fault has fired: the simulated process is dead.
  /// Rollback paths check this and skip cleanup entirely — a crashed
  /// process does not get to run its abort code.
  bool tripped() const;

  /// RAII guard that suppresses injection for its scope. Store rollback
  /// paths use it: an *aborting* publisher is still a live process whose
  /// cleanup writes succeed; the crashed-process case (cleanup never
  /// runs) is modeled with `sticky` instead.
  class ScopedDisable {
   public:
    explicit ScopedDisable(FaultInjector* injector);
    ~ScopedDisable();
    ScopedDisable(const ScopedDisable&) = delete;
    ScopedDisable& operator=(const ScopedDisable&) = delete;

   private:
    FaultInjector* injector_;
    bool was_enabled_ = false;
  };

 private:
  mutable std::mutex mu_;
  FaultInjectorConfig config_;
  Rng rng_;
  bool enabled_ = false;
  bool tripped_ = false;  // a sticky fault has fired
  int64_t calls_ = 0;
  int64_t injected_ = 0;
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_FAULT_INJECTOR_H_
