#ifndef ORCHESTRA_COMMON_FAULT_INJECTOR_H_
#define ORCHESTRA_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace orchestra {

/// Configuration for deterministic fault injection. Faults are injected
/// at named *sites* — narrow choke points the storage engine, the
/// simulated network, and the update stores thread their side-effecting
/// operations through ("storage.put", "storage.sync", "net.send", ...).
/// The simulator's churn schedule draws DHT node crashes through the
/// "net.node_crash" site of a dedicated injector (see sim::ChurnConfig).
/// Two triggers compose:
///   - `failure_probability`: each matching call fails independently with
///     this probability, drawn from a seeded xoshiro256** stream so a
///     given (seed, call sequence) always fails at the same calls;
///   - `fail_at_call`: the Nth matching call (1-based) fails
///     unconditionally — precise placement for crash-point tests.
/// `sticky` turns the first injected fault into a permanent outage:
/// every later call fails too, which models a crashed process (whose
/// rollback/abort code never runs) rather than a transient fault.
struct FaultInjectorConfig {
  /// Per-call failure probability in [0, 1]; 0 disables the random trigger.
  double failure_probability = 0.0;
  /// Seed for the random trigger's PRNG stream.
  uint64_t seed = 0;
  /// Fail exactly the Nth matching call (1-based); 0 disables.
  int64_t fail_at_call = 0;
  /// After the first injected fault, fail every subsequent call.
  bool sticky = false;
  /// Only calls whose site name starts with this prefix are eligible
  /// (empty = every site).
  std::string site_prefix;
  /// Per-call probability that MaybeCorrupt mutates its buffer, drawn
  /// from a stream seeded per (seed, site, call index) — so one site's
  /// corruption schedule never shifts when another site's call count
  /// changes, and sweeps replay bit-identically.
  double corruption_probability = 0.0;
  /// Which corruption sites are armed (exact names; see
  /// KnownCorruptionSites). Empty disables corruption injection.
  std::vector<std::string> corruption_sites;
};

/// Deterministic, seeded fault injector. Thread-safe: the reconciliation
/// engine may run store-adjacent work on a pool, and a shared injector
/// must hand out a single well-defined fault sequence regardless.
/// Components hold a nullable pointer and skip the injector entirely
/// when absent, so the fault-free hot path costs nothing.
class FaultInjector {
 public:
  FaultInjector() : rng_(0) {}
  explicit FaultInjector(FaultInjectorConfig config);

  /// Replaces the configuration and resets all counters and the sticky
  /// trip, restarting the PRNG stream from the new seed. (The injector
  /// itself is pinned in place by its mutex; components hold pointers to
  /// it, so reconfigure rather than replace.)
  void Configure(FaultInjectorConfig config);

  /// Returns OK, or an Unavailable status carrying the site and call
  /// number if a fault fires here. Counts every matching call.
  Status MaybeFail(std::string_view site);

  /// Possibly mutates `*data` in place, returning true when it did.
  /// The mutation depends on the site's semantics:
  ///   storage.bit_flip / net.payload_corrupt — flip 1–3 random bits;
  ///   storage.torn_write                     — keep a strict prefix;
  ///   storage.truncate_tail                  — drop 1+ tail bytes.
  /// Fires only when the site is armed in `corruption_sites`,
  /// `corruption_probability` > 0, and the buffer is non-empty. Each
  /// (site, call) draws from its own Rng seeded from (config seed, site
  /// hash, per-site call index): deterministic and independent across
  /// sites. Never reports an error — corruption is *silent* by design;
  /// the read path's checksums are what must catch it.
  bool MaybeCorrupt(std::string_view site, std::string* data);

  /// Every failure site MaybeFail is called with anywhere in the tree,
  /// and every corruption site MaybeCorrupt understands. Sweep configs
  /// are validated against these lists (ValidateConfig) so a typo'd
  /// site name is a startup error instead of a silent no-op.
  static std::span<const std::string_view> KnownFailureSites();
  static std::span<const std::string_view> KnownCorruptionSites();

  /// Rejects configs that could silently do nothing: probabilities
  /// outside [0, 1], corruption sites not in KnownCorruptionSites, or a
  /// site_prefix that is not a prefix of any known site.
  static Status ValidateConfig(const FaultInjectorConfig& config);

  /// Stops all injection (and re-arms it); used by tests to "repair" the
  /// simulated outage and by abort/rollback paths that must run to
  /// completion once entered.
  void Disable();
  void Enable();
  bool enabled() const;

  /// Total matching calls observed / faults injected so far.
  int64_t calls() const;
  int64_t injected() const;

  /// Total buffers MaybeCorrupt actually mutated.
  int64_t corrupted() const;

  /// True once a sticky fault has fired: the simulated process is dead.
  /// Rollback paths check this and skip cleanup entirely — a crashed
  /// process does not get to run its abort code.
  bool tripped() const;

  /// RAII guard that suppresses injection for its scope. Store rollback
  /// paths use it: an *aborting* publisher is still a live process whose
  /// cleanup writes succeed; the crashed-process case (cleanup never
  /// runs) is modeled with `sticky` instead.
  class ScopedDisable {
   public:
    explicit ScopedDisable(FaultInjector* injector);
    ~ScopedDisable();
    ScopedDisable(const ScopedDisable&) = delete;
    ScopedDisable& operator=(const ScopedDisable&) = delete;

   private:
    FaultInjector* injector_;
    bool was_enabled_ = false;
  };

 private:
  bool CorruptionConfigured() const;

  mutable std::mutex mu_;
  FaultInjectorConfig config_;
  Rng rng_;
  bool enabled_ = false;
  bool tripped_ = false;  // a sticky fault has fired
  int64_t calls_ = 0;
  int64_t injected_ = 0;
  int64_t corrupted_ = 0;
  /// Per-site MaybeCorrupt call counts, feeding the per-call seeds.
  std::map<std::string, int64_t, std::less<>> corrupt_calls_;
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_FAULT_INJECTOR_H_
