#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace orchestra {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    // Keep only the basename to stay readable.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal_logging
}  // namespace orchestra
