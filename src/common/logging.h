#ifndef ORCHESTRA_COMMON_LOGGING_H_
#define ORCHESTRA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace orchestra {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Process-wide minimum level; messages below it are dropped.
/// Default is kWarning so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Use via ORCH_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace orchestra

#define ORCH_LOG(level)                                   \
  ::orchestra::internal_logging::LogMessage(              \
      ::orchestra::LogLevel::k##level, __FILE__, __LINE__)

#endif  // ORCHESTRA_COMMON_LOGGING_H_
