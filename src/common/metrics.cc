#include "common/metrics.h"

#include <algorithm>
#include <limits>

namespace orchestra {

void Histogram::Observe(int64_t sample) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  size_t bucket = 0;
  int64_t bound = 1;
  while (bucket + 1 < kNumBuckets && sample > bound) {
    bound *= 4;
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int64_t Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<int64_t>::max();
  int64_t bound = 1;
  for (size_t k = 0; k < i; ++k) bound *= 4;
  return bound;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    Sample s;
    s.name = name;
    s.kind = Sample::Kind::kCounter;
    s.value = counter->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    Sample s;
    s.name = name;
    s.kind = Sample::Kind::kGauge;
    s.value = gauge->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    Sample s;
    s.name = name;
    s.kind = Sample::Kind::kHistogram;
    s.histogram = histogram->TakeSnapshot();
    s.value = s.histogram.sum;
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return samples;
}

std::map<std::string, int64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> values;
  for (const auto& [name, counter] : counters_) {
    values.emplace(name, counter->value());
  }
  return values;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

int64_t EstimateQuantile(const Histogram::Snapshot& snapshot, double q) {
  if (snapshot.count <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based; q=0 maps to the first sample.
  const double rank = q * static_cast<double>(snapshot.count);
  int64_t seen = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    const int64_t in_bucket = snapshot.buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) < rank) {
      seen += in_bucket;
      continue;
    }
    // Bucket i spans (lower, upper]; the first spans [0, 1].
    const int64_t lower = i == 0 ? 0 : Histogram::BucketUpperBound(i - 1);
    if (i + 1 >= Histogram::kNumBuckets) return lower;  // unbounded tail
    const int64_t upper = Histogram::BucketUpperBound(i);
    const double frac =
        (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
    return lower + static_cast<int64_t>(
                       frac * static_cast<double>(upper - lower) + 0.5);
  }
  return 0;
}

std::map<std::string, int64_t> CounterDeltas(
    const std::map<std::string, int64_t>& before,
    const std::map<std::string, int64_t>& after) {
  std::map<std::string, int64_t> deltas;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    const int64_t delta = value - (it == before.end() ? 0 : it->second);
    if (delta != 0) deltas.emplace(name, delta);
  }
  return deltas;
}

}  // namespace orchestra
