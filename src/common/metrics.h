#ifndef ORCHESTRA_COMMON_METRICS_H_
#define ORCHESTRA_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace orchestra {

/// Process-wide observability primitives. The registry hands out named
/// counters, gauges, and fixed-bucket histograms whose hot-path
/// operations are single relaxed atomic RMWs — cheap enough to leave
/// compiled into the reconciliation inner loops, and safe to hit from
/// thread-pool workers. Registration (name lookup) takes a mutex; hot
/// call sites therefore resolve their instrument once and cache the
/// pointer (typically in a function-local static), after which updates
/// never touch the lock.
///
/// Metric names are dotted lowercase paths grouped by layer
/// ("reconcile.fetched_txns", "store.central.cache_hits",
/// "net.messages", "wal.fsyncs", "retry.attempts"). Names whose value
/// is a wall-time measurement end in "_micros" so downstream tooling
/// (bench JSON diffing) can strip the nondeterministic ones by suffix.

/// Monotonic counter. All operations are relaxed atomics: totals are
/// exact under concurrency but impose no ordering on other memory.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-writer-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative int64 samples. Bucket i
/// holds samples in (4^(i-1), 4^i]; the first bucket holds [0, 1] and
/// the last is unbounded. Powers of four span [1, ~4^14 ≈ 2.7e8] in 16
/// buckets — wide enough for microsecond latencies and per-round item
/// counts alike without per-metric configuration. Observe() is two
/// relaxed RMWs plus one bucket RMW; count and sum are exact, bucket
/// totals are exact, and there is no per-sample allocation.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 16;

  void Observe(int64_t sample);

  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    std::array<int64_t, kNumBuckets> buckets{};
  };
  Snapshot TakeSnapshot() const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

  /// Inclusive upper bound of bucket i (last bucket: INT64_MAX).
  static int64_t BucketUpperBound(size_t i);

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

/// Named-instrument registry. Instruments live as long as the registry
/// (node-stable map storage), so returned references remain valid across
/// concurrent registrations; Reset() zeroes values without invalidating
/// any cached pointer. A process-global instance backs the default
/// instrumentation; tests may build private registries.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// One named instrument's current state, for rendering/export.
  struct Sample {
    enum class Kind { kCounter, kGauge, kHistogram };
    std::string name;
    Kind kind = Kind::kCounter;
    int64_t value = 0;               // counter/gauge value; histogram sum
    Histogram::Snapshot histogram;   // populated for kHistogram only
  };

  /// All instruments, sorted by name.
  std::vector<Sample> TakeSnapshot() const;

  /// Counter name → value, for cheap delta arithmetic (gauges and
  /// histograms excluded).
  std::map<std::string, int64_t> CounterValues() const;

  /// Zeroes every instrument, keeping registrations (and therefore all
  /// cached pointers) intact.
  void Reset();

 private:
  mutable std::mutex mu_;
  // std::map nodes are pointer-stable; unique_ptr keeps the instruments
  // immune even to future container changes.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Estimated value of quantile `q` (in [0, 1]) from a histogram
/// snapshot: finds the bucket containing the q-th sample and linearly
/// interpolates within the bucket's (lower, upper] range by the
/// sample's rank inside the bucket. Exact at bucket boundaries; inside
/// a bucket the error is bounded by the bucket width (power-of-four
/// buckets, so a factor of 4). Returns 0 for an empty snapshot. The
/// last (unbounded) bucket reports its lower bound — there is no upper
/// edge to interpolate toward.
int64_t EstimateQuantile(const Histogram::Snapshot& snapshot, double q);

/// Per-name deltas `after - before` over CounterValues() maps, dropping
/// zero deltas: the movement of the registry across a bounded region
/// (one reconciliation round, one bench sweep).
std::map<std::string, int64_t> CounterDeltas(
    const std::map<std::string, int64_t>& before,
    const std::map<std::string, int64_t>& after);

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_METRICS_H_
