#include "common/random.h"

namespace orchestra {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
  // All-zero state is the one invalid state for xoshiro; SplitMix64 of any
  // seed cannot produce four zero words in a row, but guard regardless.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ORCH_CHECK_GT(bound, 0u);
  // Rejection sampling: retry values in the biased tail.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace orchestra
