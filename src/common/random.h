#ifndef ORCHESTRA_COMMON_RANDOM_H_
#define ORCHESTRA_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"

namespace orchestra {

/// Deterministic xoshiro256** PRNG. Experiments must be reproducible
/// run-to-run, so all randomness in the library flows through explicitly
/// seeded instances of this class (never std::random_device).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds via SplitMix64 so that nearby seeds give unrelated streams.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    ORCH_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

 private:
  uint64_t state_[4];
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_RANDOM_H_
