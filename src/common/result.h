#ifndef ORCHESTRA_COMMON_RESULT_H_
#define ORCHESTRA_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace orchestra {

/// A value-or-error holder, the Result counterpart of Status (compare
/// arrow::Result / absl::StatusOr). Exactly one of the two states holds:
/// either `ok()` and a value is present, or a non-OK Status is present.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Constructing a Result
  /// from an OK status is a bug and aborts.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    ORCH_CHECK(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  /// Returns the contained value; the Result must be ok().
  const T& value() const& {
    ORCH_CHECK(ok(), "Result::value() on error: %s", status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    ORCH_CHECK(ok(), "Result::value() on error: %s", status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    ORCH_CHECK(ok(), "Result::value() on error: %s", status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace orchestra

/// Evaluates `expr` (a Result<T>), propagating a non-OK status; otherwise
/// moves the value into `lhs` (a declaration or assignable expression).
#define ORCH_ASSIGN_OR_RETURN(lhs, expr)                   \
  ORCH_ASSIGN_OR_RETURN_IMPL_(                             \
      ORCH_CONCAT_(_orch_result_, __LINE__), lhs, expr)

#define ORCH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define ORCH_CONCAT_(a, b) ORCH_CONCAT_IMPL_(a, b)
#define ORCH_CONCAT_IMPL_(a, b) a##b

#endif  // ORCHESTRA_COMMON_RESULT_H_
