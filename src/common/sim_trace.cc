#include "common/sim_trace.h"

#include <cstdio>

namespace orchestra {
namespace {

// Escapes the characters that could break a JSON string; track and span
// names are plain identifiers in practice, so this is belt-and-braces.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

void SimTracer::SetTrackName(uint32_t tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  track_names_[tid] = std::move(name);
}

void SimTracer::Begin(uint32_t tid, const char* name, int64_t ts_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, 'B', ts_micros, tid, -1});
}

void SimTracer::End(uint32_t tid, const char* name, int64_t ts_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, 'E', ts_micros, tid, -1});
}

void SimTracer::Instant(uint32_t tid, const char* name, int64_t ts_micros,
                        int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, 'I', ts_micros, tid, bytes});
}

std::string SimTracer::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string json;
  json.reserve(events_.size() * 96 + track_names_.size() * 96 + 64);
  json += "{\"traceEvents\":[";
  bool first = true;
  // Track-name metadata first, ordered by tid (std::map order), so the
  // document layout is a pure function of the recorded state.
  for (const auto& [tid, name] : track_names_) {
    if (!first) json += ',';
    first = false;
    json += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    json += std::to_string(tid);
    json += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(&json, name.c_str());
    json += "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) json += ',';
    first = false;
    json += "{\"name\":\"";
    AppendJsonEscaped(&json, e.name);
    json += "\",\"cat\":\"sim\",\"ph\":\"";
    json.push_back(e.phase);
    json += "\",\"ts\":";
    json += std::to_string(e.ts_micros);
    json += ",\"pid\":1,\"tid\":";
    json += std::to_string(e.tid);
    if (e.phase == 'I') json += ",\"s\":\"t\"";
    if (e.bytes >= 0) {
      json += ",\"args\":{\"bytes\":";
      json += std::to_string(e.bytes);
      json += '}';
    }
    json += '}';
  }
  json += "],\"displayTimeUnit\":\"ms\"}\n";
  return json;
}

Status SimTracer::WriteTo(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open sim trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to sim trace file: " + path);
  }
  return Status::OK();
}

size_t SimTracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void SimTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  track_names_.clear();
}

}  // namespace orchestra
