#ifndef ORCHESTRA_COMMON_SIM_TRACE_H_
#define ORCHESTRA_COMMON_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace orchestra {

/// Deterministic Chrome trace_event recorder over *simulated* time.
///
/// `common/trace.h`'s Tracer stamps wall-clock time, so two runs of the
/// same seeded simulation produce different traces. SimTracer instead
/// takes every timestamp from the caller — the per-peer simulated clock
/// (accumulated network micros) in practice — and keeps events in
/// insertion order, so the emitted JSON is bit-identical across runs
/// with the same seed (the determinism contract; see
/// docs/ARCHITECTURE.md "Provenance and explainability").
///
/// One track (`tid`) per peer; tracks are labeled with Chrome "M"
/// thread_name metadata so Perfetto shows "peer-3" rather than a bare
/// number. Emission happens on the simulation's driving thread (never
/// inside ParallelFor regions); the mutex is belt-and-braces for
/// callers that share one tracer across test threads.
class SimTracer {
 public:
  /// Labels track `tid` ("peer-3"); emitted as an "M" metadata event.
  void SetTrackName(uint32_t tid, std::string name);

  /// Span begin/end at the given simulated timestamp. `name` must
  /// outlive the tracer (string literals in practice).
  void Begin(uint32_t tid, const char* name, int64_t ts_micros);
  void End(uint32_t tid, const char* name, int64_t ts_micros);

  /// Instantaneous event; `bytes >= 0` is rendered as an args payload
  /// (message sizes for net.send / net.recv).
  void Instant(uint32_t tid, const char* name, int64_t ts_micros,
               int64_t bytes = -1);

  /// Renders all buffered events as one Chrome trace JSON document:
  /// the "M" track names first (ordered by tid), then every event in
  /// insertion order. Same events in, same bytes out.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteTo(const std::string& path) const;

  size_t event_count() const;
  void Clear();

 private:
  struct Event {
    const char* name;
    char phase;       // 'B', 'E', or 'I'
    int64_t ts_micros;
    uint32_t tid;
    int64_t bytes;    // < 0: omitted from the rendered args
  };

  mutable std::mutex mu_;
  std::map<uint32_t, std::string> track_names_;
  std::vector<Event> events_;
};

/// Binding handed to layers that want to emit onto a peer's track: the
/// tracer, the peer's track id, and a clock reading the peer's current
/// simulated time. Null tracer (the default) disables emission — the
/// cost is one pointer test.
struct SimTraceBinding {
  SimTracer* tracer = nullptr;
  uint32_t tid = 0;
  /// Returns the peer's simulated clock in micros. Must be valid
  /// whenever tracer != nullptr.
  std::function<int64_t()> now;

  bool active() const { return tracer != nullptr; }
  void Begin(const char* name) const {
    if (tracer != nullptr) tracer->Begin(tid, name, now());
  }
  void End(const char* name) const {
    if (tracer != nullptr) tracer->End(tid, name, now());
  }
  void Instant(const char* name, int64_t bytes = -1) const {
    if (tracer != nullptr) tracer->Instant(tid, name, now(), bytes);
  }
};

/// RAII span over a binding; safe on an inactive (null-tracer) binding.
class SimSpan {
 public:
  SimSpan(const SimTraceBinding* binding, const char* name)
      : binding_(binding), name_(name) {
    if (binding_ != nullptr) binding_->Begin(name_);
  }
  ~SimSpan() {
    if (binding_ != nullptr) binding_->End(name_);
  }
  SimSpan(const SimSpan&) = delete;
  SimSpan& operator=(const SimSpan&) = delete;

 private:
  const SimTraceBinding* binding_;
  const char* name_;
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_SIM_TRACE_H_
