#include "common/status.h"

namespace orchestra {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kConstraintViolation:
      return "constraint_violation";
    case StatusCode::kConflict:
      return "conflict";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kIOError:
      return "io_error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kNotSupported:
      return "not_supported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDataLoss:
      return "data_loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace orchestra
