#ifndef ORCHESTRA_COMMON_STATUS_H_
#define ORCHESTRA_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace orchestra {

/// Machine-readable category of a failure. Follows the RocksDB/Arrow
/// convention of a small, closed set of codes with a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed something malformed
  kNotFound,           // a named entity (relation, tuple, peer) is absent
  kAlreadyExists,      // uniqueness violated (e.g. duplicate key/txn id)
  kConstraintViolation,// integrity constraint rejected an operation
  kConflict,           // operation clashes with concurrent/previous state
  kOutOfRange,         // index or epoch outside the valid window
  kIOError,            // WAL / file system failure
  kCorruption,         // stored data failed validation on read
  kUnavailable,        // store/peer cannot be reached (simulated)
  kNotSupported,       // feature intentionally unimplemented
  kInternal,           // invariant violation; indicates a bug
  kDataLoss,           // data is unrecoverably gone (all copies lost)
};

/// Returns a stable lowercase name for `code` (e.g. "not_found").
std::string_view StatusCodeName(StatusCode code);

/// Result of a fallible operation. The library does not throw exceptions;
/// every operation that can fail returns a Status (or Result<T>).
///
/// Cheap to copy in the OK case (no allocation); error statuses carry a
/// heap-allocated message.
///
/// Marked [[nodiscard]]: silently dropping a Status hides failures, and
/// the orch_lint S1 rule enforces the same invariant on call sites the
/// compiler cannot see through.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  /// Detected-but-recoverable: a checksum failed on one copy; retry or
  /// another replica may still serve the data.
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  /// Unrecoverable: every copy is gone or provably inconsistent.
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsConstraintViolation() const {
    return code_ == StatusCode::kConstraintViolation;
  }

  /// Human-readable rendering, e.g. "not_found: relation F".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace orchestra

/// Propagates a non-OK Status to the caller. Usable in any function that
/// returns Status.
#define ORCH_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::orchestra::Status _orch_status = (expr); \
    if (!_orch_status.ok()) return _orch_status; \
  } while (false)

#endif  // ORCHESTRA_COMMON_STATUS_H_
