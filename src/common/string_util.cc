#include "common/string_util.h"

namespace orchestra {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // 64-bit variant of the Boost hash_combine mixer.
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace orchestra
