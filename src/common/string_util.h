#ifndef ORCHESTRA_COMMON_STRING_UTIL_H_
#define ORCHESTRA_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace orchestra {

/// Joins the elements of `parts` with `sep` ("a, b, c").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char sep);

/// FNV-1a 64-bit hash; stable across platforms, used for DHT keys and
/// conflict-group bucketing.
uint64_t Fnv1a64(std::string_view data);

/// Combines two hash values (Boost-style mixing).
uint64_t HashCombine(uint64_t seed, uint64_t value);

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_STRING_UTIL_H_
