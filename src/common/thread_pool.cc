#include "common/thread_pool.h"

#include <algorithm>
#include <string>

#include "common/trace.h"

namespace orchestra {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    // Worker 0 is the calling thread (it drains alongside the pool), so
    // spawned workers are numbered from 1 in the trace.
    workers_.emplace_back([this, i] {
      Tracer::Global().NameCurrentThread("pool-worker-" + std::to_string(i + 1));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    DrainLoop();
    // Last worker out wakes the caller; the lock pairs with the caller's
    // wait so the notification cannot be missed.
    if (active_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::DrainLoop() {
  for (;;) {
    const size_t begin = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= n_) return;
    const size_t end = std::min(n_, begin + chunk_);
    for (size_t i = begin; i < end; ++i) (*body_)(i);
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    // ~4 chunks per thread amortizes counter contention while still
    // balancing uneven iteration costs.
    chunk_ = std::max<size_t>(1, n / (num_threads() * 4));
    next_.store(0, std::memory_order_relaxed);
    active_workers_.store(workers_.size(), std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  DrainLoop();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return active_workers_.load(std::memory_order_acquire) == 0;
  });
  body_ = nullptr;
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body) {
  if (pool == nullptr || pool->num_threads() == 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->ParallelFor(n, body);
}

}  // namespace orchestra
