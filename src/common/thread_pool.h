#ifndef ORCHESTRA_COMMON_THREAD_POOL_H_
#define ORCHESTRA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace orchestra {

/// A fixed-size pool of worker threads driving fork/join ParallelFor
/// loops. Deliberately work-stealing-free: each loop shares one atomic
/// iteration counter from which the calling thread and every worker
/// claim contiguous chunks, so scheduling is simple and allocation-free
/// on the hot path. The pool is intended for data-parallel phases whose
/// iterations are independent and write only to disjoint, preallocated
/// output slots — which is also what keeps parallel results bit-identical
/// to serial ones.
///
/// One loop runs at a time per pool; ParallelFor must not be called
/// re-entrantly from inside a loop body, and bodies must not throw.
class ThreadPool {
 public:
  /// Creates `num_threads - 1` workers (the calling thread is the
  /// remaining one). `num_threads <= 1` creates no workers at all and
  /// every loop runs inline on the caller.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in a loop (workers + caller).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs body(i) for every i in [0, n), blocking until all iterations
  /// finish. Iterations are claimed in chunks, so the body must be safe
  /// to run concurrently and must not depend on iteration order.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();
  /// Claims chunks of the current loop until the counter is exhausted.
  void DrainLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;

  /// Current loop, guarded by mu_ for publication; read by workers after
  /// they observe a new generation.
  const std::function<void(size_t)>* body_ = nullptr;
  size_t n_ = 0;
  size_t chunk_ = 1;
  std::atomic<size_t> next_{0};
  std::atomic<size_t> active_workers_{0};
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

/// Serial-or-parallel dispatch helper: a null pool (or a single-thread
/// pool, or a trivial trip count) runs the plain serial loop on the
/// calling thread — the exact serial code path — otherwise the loop is
/// dispatched to the pool.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body);

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_THREAD_POOL_H_
