#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace orchestra {
namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void FlushGlobalTracerAtExit() {
  if (Tracer::Global().enabled()) {
    Status status = Tracer::Global().Flush();
    if (!status.ok()) {
      std::fprintf(stderr, "orchestra: trace flush failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

// Escapes the characters that could break a JSON string; metric/span
// names are plain identifiers in practice, so this is belt-and-braces.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    if (const char* path = std::getenv("ORCH_TRACE");
        path != nullptr && path[0] != '\0') {
      t->Enable(path);
    }
    return t;
  }();
  return *tracer;
}

void Tracer::Enable(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(path);
  events_.clear();
  epoch_micros_ = SteadyNowMicros();
  if (!atexit_registered_) {
    std::atexit(FlushGlobalTracerAtExit);
    atexit_registered_ = true;
  }
  // New session: spans created before this point pair with the old
  // generation and drop their 'E' instead of leaking it in here.
  session_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  if (!enabled()) return;
  Status status = Flush();
  if (!status.ok()) {
    std::fprintf(stderr, "orchestra: trace flush failed: %s\n",
                 status.ToString().c_str());
  }
  enabled_.store(false, std::memory_order_relaxed);
  // Retire the session (live spans stop emitting) and drop the flushed
  // events so the atexit flush cannot write them a second time.
  session_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string Tracer::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

void Tracer::NameCurrentThread(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[ThreadIndexLocked()] = std::move(label);
}

uint32_t Tracer::ThreadIndexLocked() {
  // One dense index per thread for the (singleton) tracer. Assigned
  // under mu_ on first use; reads afterwards are thread-local.
  thread_local uint32_t index = UINT32_MAX;
  if (index == UINT32_MAX) {
    index = static_cast<uint32_t>(thread_names_.size());
    thread_names_.push_back("thread-" + std::to_string(index));
  }
  return index;
}

void Tracer::RecordEvent(const char* name, char phase) {
  if (!enabled()) return;
  const int64_t now = SteadyNowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  Event event;
  event.name = name;
  event.phase = phase;
  event.ts_micros = now - epoch_micros_;
  event.tid = ThreadIndexLocked();
  events_.push_back(event);
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

Status Tracer::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) {
    return Status::InvalidArgument("tracer has no output path");
  }
  std::string json;
  json.reserve(events_.size() * 96 + thread_names_.size() * 80 + 64);
  json += "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata first: one "M" row per registered thread, so
  // viewers label tracks ("thread-0", "pool-worker-1") instead of
  // showing bare tids.
  for (size_t i = 0; i < thread_names_.size(); ++i) {
    if (!first) json += ',';
    first = false;
    json += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    json += std::to_string(i);
    json += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(&json, thread_names_[i].c_str());
    json += "\"}}";
  }
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (!first) json += ',';
    first = false;
    json += "{\"name\":\"";
    AppendJsonEscaped(&json, e.name);
    json += "\",\"cat\":\"orchestra\",\"ph\":\"";
    json.push_back(e.phase);
    json += "\",\"ts\":";
    json += std::to_string(e.ts_micros);
    json += ",\"pid\":1,\"tid\":";
    json += std::to_string(e.tid);
    json += '}';
  }
  json += "],\"displayTimeUnit\":\"ms\"}\n";

  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path_);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file: " + path_);
  }
  return Status::OK();
}

}  // namespace orchestra
