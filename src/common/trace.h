#ifndef ORCHESTRA_COMMON_TRACE_H_
#define ORCHESTRA_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace orchestra {

/// Scoped-span tracer emitting Chrome `trace_event` JSON (load the file
/// at chrome://tracing or https://ui.perfetto.dev). Disabled by default:
/// a disabled TraceSpan costs one relaxed atomic load, so spans stay
/// compiled into the hot paths and tests run quiet. Enable it either
/// programmatically (`Tracer::Global().Enable(path)`) or by setting the
/// `ORCH_TRACE` environment variable to an output path before the first
/// span — the file is written on Disable()/Flush() and automatically at
/// process exit.
///
/// Tracing records wall-clock timestamps only; it never feeds back into
/// simulation state, so reconciliation decisions are bit-identical with
/// tracing on or off.
class Tracer {
 public:
  static Tracer& Global();

  /// Starts buffering events, to be written to `path` on Flush().
  void Enable(std::string path);

  /// Stops tracing and flushes buffered events to the configured path.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  std::string path() const;

  /// Appends a begin ('B') or end ('E') event; `name` must outlive the
  /// tracer (string literals in practice). Thread-safe.
  void RecordEvent(const char* name, char phase);

  /// Writes all buffered events as Chrome trace JSON to the configured
  /// path. Keeps the buffer; callers wanting a fresh trace re-Enable().
  Status Flush();

  /// Buffered event count (tests / diagnostics).
  size_t event_count() const;

 private:
  Tracer() = default;

  struct Event {
    const char* name;
    char phase;       // 'B' or 'E'
    int64_t ts_micros;  // wall time relative to tracer enable
    uint32_t tid;     // dense per-tracer thread index
  };

  /// Dense index for the calling thread (registered on first use).
  uint32_t ThreadIndexLocked();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::string path_;
  std::vector<Event> events_;
  std::vector<std::string> thread_names_;  // index -> label
  int64_t epoch_micros_ = 0;               // steady-clock origin
  bool atexit_registered_ = false;
};

/// RAII scoped span: emits a 'B' event at construction and the matching
/// 'E' at destruction when tracing is enabled, nothing otherwise. The
/// name must be a string literal (or otherwise outlive the tracer).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::Global().enabled()) {
      name_ = name;
      Tracer::Global().RecordEvent(name_, 'B');
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) Tracer::Global().RecordEvent(name_, 'E');
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_TRACE_H_
