#ifndef ORCHESTRA_COMMON_TRACE_H_
#define ORCHESTRA_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace orchestra {

/// Scoped-span tracer emitting Chrome `trace_event` JSON (load the file
/// at chrome://tracing or https://ui.perfetto.dev). Disabled by default:
/// a disabled TraceSpan costs one relaxed atomic load, so spans stay
/// compiled into the hot paths and tests run quiet. Enable it either
/// programmatically (`Tracer::Global().Enable(path)`) or by setting the
/// `ORCH_TRACE` environment variable to an output path before the first
/// span — the file is written on Disable()/Flush() and automatically at
/// process exit.
///
/// Tracing records wall-clock timestamps only; it never feeds back into
/// simulation state, so reconciliation decisions are bit-identical with
/// tracing on or off.
class Tracer {
 public:
  static Tracer& Global();

  /// Starts buffering events, to be written to `path` on Flush().
  /// Begins a fresh session: the buffer is cleared and the session
  /// generation advances, so spans still alive from an earlier session
  /// cannot emit their 'E' into this one.
  void Enable(std::string path);

  /// Stops tracing, flushes buffered events to the configured path, and
  /// clears the buffer — a later Flush() (e.g. the atexit hook) cannot
  /// re-write this session's events.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  std::string path() const;

  /// Monotonic Enable() generation. TraceSpan pairs its 'E' with the
  /// session its 'B' was recorded in; a mismatch drops the 'E'.
  uint64_t session() const {
    return session_.load(std::memory_order_relaxed);
  }

  /// Names the calling thread's track in the emitted trace ("M"
  /// thread_name metadata rows). Callable any time — before or after
  /// the thread's first event; the latest name wins. Worker threads are
  /// otherwise labeled "thread-N" in registration order.
  void NameCurrentThread(std::string label);

  /// Appends a begin ('B') or end ('E') event; `name` must outlive the
  /// tracer (string literals in practice). Thread-safe.
  void RecordEvent(const char* name, char phase);

  /// Writes all buffered events as Chrome trace JSON to the configured
  /// path. Keeps the buffer; callers wanting a fresh trace re-Enable().
  Status Flush();

  /// Buffered event count (tests / diagnostics).
  size_t event_count() const;

 private:
  Tracer() = default;

  struct Event {
    const char* name;
    char phase;       // 'B' or 'E'
    int64_t ts_micros;  // wall time relative to tracer enable
    uint32_t tid;     // dense per-tracer thread index
  };

  /// Dense index for the calling thread (registered on first use).
  uint32_t ThreadIndexLocked();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> session_{0};
  mutable std::mutex mu_;
  std::string path_;
  std::vector<Event> events_;
  std::vector<std::string> thread_names_;  // index -> label
  int64_t epoch_micros_ = 0;               // steady-clock origin
  bool atexit_registered_ = false;
};

/// RAII scoped span: emits a 'B' event at construction and the matching
/// 'E' at destruction when tracing is enabled, nothing otherwise. The
/// name must be a string literal (or otherwise outlive the tracer).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::Global().enabled()) {
      name_ = name;
      session_ = Tracer::Global().session();
      Tracer::Global().RecordEvent(name_, 'B');
    }
  }
  ~TraceSpan() {
    // The session check keeps a span that outlived its session (the
    // tracer was disabled, or disabled and re-enabled, while the span
    // was alive) from emitting an unmatched 'E' into a later session.
    if (name_ != nullptr && Tracer::Global().session() == session_) {
      Tracer::Global().RecordEvent(name_, 'E');
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t session_ = 0;
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_TRACE_H_
