#include "core/analysis.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "core/extension.h"
#include "core/flatten.h"
#include "core/flatten_cache.h"

namespace orchestra::core {

namespace {

/// The direct-conflict test for one candidate pair (i, j): the cheap
/// full-extension conflict test, the Fig. 5 subsumption exemption, and
/// the Definition 4 shared-antecedent refinement. Returns the conflict
/// points (empty == no direct conflict). Pure function of the two
/// transactions' extensions — safe to run concurrently for distinct
/// pairs and to cache across rounds.
std::vector<ConflictPoint> TestCandidatePair(
    const db::Catalog& catalog, const TransactionProvider& provider,
    const TrustedTxn& txn_i, const TrustedTxn& txn_j,
    const std::vector<Update>& up_ex_i, const std::vector<Update>& up_ex_j) {
  std::vector<ConflictPoint> points = SetsConflict(catalog, up_ex_i, up_ex_j);
  if (points.empty()) return points;
  // Fig. 5 FindConflicts line 4: a subsumed transaction never counts as
  // conflicting with its subsumer.
  if (Subsumes(txn_i.extension, txn_j.extension) ||
      Subsumes(txn_j.extension, txn_i.extension)) {
    return {};
  }
  // Definition 4 (direct conflict): interactions through *shared*
  // antecedents do not count — compare the extensions with the shared
  // transactions S removed. Only needed when the cheap full-extension
  // test fired and the extensions overlap.
  TxnIdSet shared;
  {
    TxnIdSet ext_i(txn_i.extension.begin(), txn_i.extension.end());
    for (const TransactionId& id : txn_j.extension) {
      if (ext_i.count(id) != 0) shared.insert(id);
    }
  }
  if (!shared.empty()) {
    auto flat_i =
        Flatten(catalog, UpdateFootprint(provider, txn_i.extension, shared));
    auto flat_j =
        Flatten(catalog, UpdateFootprint(provider, txn_j.extension, shared));
    if (flat_i.ok() && flat_j.ok()) {
      points = SetsConflict(catalog, *flat_i, *flat_j);
    }
  }
  return points;
}

}  // namespace

ReconcileAnalysis::Pair MakeAnalysisPair(size_t i, size_t j,
                                         std::vector<ConflictPoint> points) {
  ReconcileAnalysis::Pair pair;
  pair.i = i;
  pair.j = j;
  pair.points = std::move(points);
  return pair;
}

void FlattenExtensions(const db::Catalog& catalog,
                       const TransactionProvider& provider,
                       const std::vector<TrustedTxn>& txns,
                       ReconcileAnalysis* analysis,
                       const AnalysisOptions& options) {
  const size_t start = analysis->up_ex.size();
  analysis->up_ex.resize(txns.size());
  analysis->flatten_ok.resize(txns.size(), 0);

  // Probe the cache on the calling thread; only misses do real work.
  std::vector<size_t> misses;
  misses.reserve(txns.size() - start);
  std::vector<uint64_t> fingerprint;
  if (options.cache != nullptr) fingerprint.resize(txns.size(), 0);
  for (size_t i = start; i < txns.size(); ++i) {
    if (options.cache != nullptr) {
      fingerprint[i] = FlattenCache::ExtensionFingerprint(txns[i].extension);
      if (const FlattenCache::FlatEntry* hit =
              options.cache->FindFlat(txns[i].id, fingerprint[i])) {
        analysis->up_ex[i] = hit->up_ex;
        analysis->flatten_ok[i] = hit->ok ? 1 : 0;
        continue;
      }
    }
    misses.push_back(i);
  }

  // Each miss writes only its own preallocated slot, so the parallel
  // loop is race-free and its output identical to the serial loop's.
  ParallelFor(options.pool, misses.size(), [&](size_t k) {
    const size_t i = misses[k];
    std::vector<Update> footprint = UpdateFootprint(provider, txns[i].extension);
    auto flat = Flatten(catalog, footprint);
    if (flat.ok()) {
      analysis->up_ex[i] = *std::move(flat);
      analysis->flatten_ok[i] = 1;
    }
  });

  if (options.cache != nullptr) {
    for (size_t i : misses) {
      options.cache->PutFlat(txns[i].id, fingerprint[i], analysis->up_ex[i],
                             analysis->flatten_ok[i] != 0);
    }
  }
}

void FindExtensionConflicts(const db::Catalog& catalog,
                            const TransactionProvider& provider,
                            const std::vector<TrustedTxn>& txns,
                            size_t first, ReconcileAnalysis* analysis,
                            const AnalysisOptions& options) {
  const size_t n = txns.size();
  // Candidate pairs share a touched key; bucket by key, then test each
  // candidate pair at most once.
  std::unordered_map<RelKey, std::vector<size_t>, RelKeyHash> buckets;
  buckets.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    for (const Update& u : analysis->up_ex[i]) {
      const db::RelationSchema& schema =
          *catalog.GetRelation(u.relation()).value();
      for (RelKey& rk : u.TouchedKeys(schema)) {
        auto& bucket = buckets[std::move(rk)];
        if (bucket.empty() || bucket.back() != i) bucket.push_back(i);
      }
    }
  }

  // Collect the deduplicated candidate pairs, then order them by (i, j)
  // so that testing order, cache-fill order, and result order are all
  // independent of hash-bucket iteration order and of thread count.
  std::unordered_set<uint64_t> tested;
  tested.reserve(8 * n);
  std::vector<std::pair<size_t, size_t>> pairs;
  // ORCH_LINT(allow:D3): collects a deduplicated pair set that is sorted before any testing; bucket visit order cannot reach the result
  for (const auto& [key, bucket] : buckets) {
    for (size_t a = 0; a < bucket.size(); ++a) {
      for (size_t b = a + 1; b < bucket.size(); ++b) {
        const size_t i = std::min(bucket[a], bucket[b]);
        const size_t j = std::max(bucket[a], bucket[b]);
        if (i == j || j < first) continue;  // head×head pairs already done
        const uint64_t packed = (static_cast<uint64_t>(i) << 32) |
                                static_cast<uint64_t>(j);
        if (tested.insert(packed).second) pairs.emplace_back(i, j);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());

  // Resolve from the cache where possible; test the rest in parallel.
  // Every slot of `points` is written by exactly one task.
  std::vector<std::vector<ConflictPoint>> points(pairs.size());
  std::vector<uint8_t> cached(pairs.size(), 0);
  std::vector<uint64_t> fingerprint;
  if (options.cache != nullptr) {
    fingerprint.resize(n, 0);
    for (size_t i = 0; i < n; ++i) {
      fingerprint[i] = FlattenCache::ExtensionFingerprint(txns[i].extension);
    }
    for (size_t p = 0; p < pairs.size(); ++p) {
      const auto [i, j] = pairs[p];
      if (const FlattenCache::PairVerdict* hit = options.cache->FindPair(
              txns[i].id, txns[j].id, fingerprint[i], fingerprint[j])) {
        points[p] = hit->points;
        cached[p] = 1;
      }
    }
  }
  ParallelFor(options.pool, pairs.size(), [&](size_t p) {
    if (cached[p]) return;
    const auto [i, j] = pairs[p];
    points[p] = TestCandidatePair(catalog, provider, txns[i], txns[j],
                                  analysis->up_ex[i], analysis->up_ex[j]);
  });
  if (options.cache != nullptr) {
    for (size_t p = 0; p < pairs.size(); ++p) {
      if (cached[p]) continue;
      const auto [i, j] = pairs[p];
      FlattenCache::PairVerdict verdict;
      verdict.fp_a = fingerprint[i];
      verdict.fp_b = fingerprint[j];
      verdict.points = points[p];
      options.cache->PutPair(txns[i].id, txns[j].id, std::move(verdict));
    }
  }

  // Deterministic merge in (i, j) order.
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (points[p].empty()) continue;
    analysis->conflicts.push_back(
        MakeAnalysisPair(pairs[p].first, pairs[p].second,
                         std::move(points[p])));
  }
}

ReconcileAnalysis AnalyzeExtensions(const db::Catalog& catalog,
                                    const TransactionProvider& provider,
                                    const std::vector<TrustedTxn>& txns,
                                    const AnalysisOptions& options) {
  ReconcileAnalysis analysis;
  FlattenExtensions(catalog, provider, txns, &analysis, options);
  FindExtensionConflicts(catalog, provider, txns, 0, &analysis, options);
  return analysis;
}

}  // namespace orchestra::core
