#include "core/analysis.h"

#include <map>
#include <unordered_map>

#include "core/extension.h"
#include "core/flatten.h"

namespace orchestra::core {

ReconcileAnalysis::Pair MakeAnalysisPair(size_t i, size_t j,
                                         std::vector<ConflictPoint> points) {
  ReconcileAnalysis::Pair pair;
  pair.i = i;
  pair.j = j;
  pair.points = std::move(points);
  return pair;
}

void FlattenExtensions(const db::Catalog& catalog,
                       const TransactionProvider& provider,
                       const std::vector<TrustedTxn>& txns,
                       ReconcileAnalysis* analysis) {
  const size_t start = analysis->up_ex.size();
  analysis->up_ex.resize(txns.size());
  analysis->flatten_ok.resize(txns.size(), 0);
  for (size_t i = start; i < txns.size(); ++i) {
    std::vector<Update> footprint =
        UpdateFootprint(provider, txns[i].extension);
    auto flat = Flatten(catalog, footprint);
    if (flat.ok()) {
      analysis->up_ex[i] = *std::move(flat);
      analysis->flatten_ok[i] = 1;
    }
  }
}

void FindExtensionConflicts(const db::Catalog& catalog,
                            const TransactionProvider& provider,
                            const std::vector<TrustedTxn>& txns,
                            size_t first, ReconcileAnalysis* analysis) {
  const size_t n = txns.size();
  // Candidate pairs share a touched key; bucket by key, then test each
  // candidate pair at most once.
  std::unordered_map<RelKey, std::vector<size_t>, RelKeyHash> buckets;
  for (size_t i = 0; i < n; ++i) {
    for (const Update& u : analysis->up_ex[i]) {
      const db::RelationSchema& schema =
          *catalog.GetRelation(u.relation()).value();
      for (RelKey& rk : u.TouchedKeys(schema)) {
        auto& bucket = buckets[std::move(rk)];
        if (bucket.empty() || bucket.back() != i) bucket.push_back(i);
      }
    }
  }
  std::map<std::pair<size_t, size_t>, bool> tested;
  for (const auto& [key, bucket] : buckets) {
    for (size_t a = 0; a < bucket.size(); ++a) {
      for (size_t b = a + 1; b < bucket.size(); ++b) {
        const size_t i = std::min(bucket[a], bucket[b]);
        const size_t j = std::max(bucket[a], bucket[b]);
        if (i == j || j < first) continue;  // head×head pairs already done
        if (!tested.emplace(std::make_pair(i, j), true).second) continue;
        std::vector<ConflictPoint> points =
            SetsConflict(catalog, analysis->up_ex[i], analysis->up_ex[j]);
        if (points.empty()) continue;
        // Fig. 5 FindConflicts line 4: a subsumed transaction never
        // counts as conflicting with its subsumer.
        if (Subsumes(txns[i].extension, txns[j].extension) ||
            Subsumes(txns[j].extension, txns[i].extension)) {
          continue;
        }
        // Definition 4 (direct conflict): interactions through *shared*
        // antecedents do not count — compare the extensions with the
        // shared transactions S removed. Only needed when the cheap
        // full-extension test fired and the extensions overlap.
        TxnIdSet shared;
        {
          TxnIdSet ext_i(txns[i].extension.begin(), txns[i].extension.end());
          for (const TransactionId& id : txns[j].extension) {
            if (ext_i.count(id) != 0) shared.insert(id);
          }
        }
        if (!shared.empty()) {
          auto flat_i = Flatten(
              catalog, UpdateFootprint(provider, txns[i].extension, shared));
          auto flat_j = Flatten(
              catalog, UpdateFootprint(provider, txns[j].extension, shared));
          if (flat_i.ok() && flat_j.ok()) {
            points = SetsConflict(catalog, *flat_i, *flat_j);
          }
          if (points.empty()) continue;
        }
        analysis->conflicts.push_back(
            MakeAnalysisPair(i, j, std::move(points)));
      }
    }
  }
}

ReconcileAnalysis AnalyzeExtensions(const db::Catalog& catalog,
                                    const TransactionProvider& provider,
                                    const std::vector<TrustedTxn>& txns) {
  ReconcileAnalysis analysis;
  FlattenExtensions(catalog, provider, txns, &analysis);
  FindExtensionConflicts(catalog, provider, txns, 0, &analysis);
  return analysis;
}

}  // namespace orchestra::core
