#ifndef ORCHESTRA_CORE_ANALYSIS_H_
#define ORCHESTRA_CORE_ANALYSIS_H_

#include <vector>

#include "common/result.h"
#include "db/schema.h"
#include "core/conflict.h"
#include "core/reconciler.h"
#include "core/transaction.h"

namespace orchestra {
class ThreadPool;  // common/thread_pool.h
}

namespace orchestra::core {

class FlattenCache;  // core/flatten_cache.h

/// The data-dependent half of reconciliation — flattened update
/// extensions and the pairwise direct-conflict relation — separated from
/// the decision half (which depends on the reconciling participant's
/// private instance, delta, and soft state).
///
/// In client-centric reconciliation (§5.1) the client computes this; in
/// network-centric reconciliation (§5, Fig. 3) the update store computes
/// it across the network and ships the result, trading network traffic
/// for client work. Both paths call the same functions below, so the two
/// modes are decision-equivalent by construction.
struct ReconcileAnalysis {
  /// Flattened update extension per input transaction (parallel to the
  /// TrustedTxn list). Empty with flatten_ok[i] == false when the
  /// extension is internally inconsistent (the reconciler rejects it).
  std::vector<std::vector<Update>> up_ex;
  std::vector<uint8_t> flatten_ok;

  /// One entry per directly conflicting, non-subsumed pair (Definition 4
  /// with the Fig. 5 subsumption exemption), i < j indices into the
  /// TrustedTxn list.
  struct Pair {
    size_t i = 0;
    size_t j = 0;
    std::vector<ConflictPoint> points;
  };
  std::vector<Pair> conflicts;
};

/// Flattens every transaction's update extension.
ReconcileAnalysis::Pair MakeAnalysisPair(size_t i, size_t j,
                                         std::vector<ConflictPoint> points);

/// Execution knobs for the analysis functions. Both halves of the
/// analysis are embarrassingly parallel (per transaction, per candidate
/// pair) and largely redundant across reconciliation rounds, so callers
/// can supply a thread pool and a cross-round cache; the defaults run
/// the original serial, uncached computation. Results are bit-identical
/// across every combination: parallel loops write disjoint
/// index-addressed slots and conflicts are merged in sorted (i, j)
/// order, and cache hits reproduce exactly what recomputation would
/// have produced (entries are fingerprint-validated against the current
/// extension).
struct AnalysisOptions {
  /// Null (or a 1-thread pool) takes the exact serial path.
  ThreadPool* pool = nullptr;
  /// Null disables caching. The cache is probed and filled only from
  /// the calling thread, never inside parallel regions.
  FlattenCache* cache = nullptr;
};

/// Computes up_ex / flatten_ok for `txns`.
void FlattenExtensions(const db::Catalog& catalog,
                       const TransactionProvider& provider,
                       const std::vector<TrustedTxn>& txns,
                       ReconcileAnalysis* analysis,
                       const AnalysisOptions& options = {});

/// Appends to analysis->conflicts every directly conflicting pair among
/// `txns` with indices in [first, txns.size()) × [0, txns.size()) —
/// passing first = 0 covers all pairs; a larger `first` restricts to
/// pairs involving at least one transaction from the tail, which lets a
/// caller extend an existing analysis with extra transactions (e.g. the
/// locally cached deferred backlog) without recomputing the head.
/// Pairs are appended in increasing (i, j) order regardless of thread
/// count.
void FindExtensionConflicts(const db::Catalog& catalog,
                            const TransactionProvider& provider,
                            const std::vector<TrustedTxn>& txns,
                            size_t first, ReconcileAnalysis* analysis,
                            const AnalysisOptions& options = {});

/// Convenience: full analysis of `txns` (flatten + all-pairs conflicts).
ReconcileAnalysis AnalyzeExtensions(const db::Catalog& catalog,
                                    const TransactionProvider& provider,
                                    const std::vector<TrustedTxn>& txns,
                                    const AnalysisOptions& options = {});

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_ANALYSIS_H_
