#include "core/append_only.h"

#include <algorithm>

#include "common/check.h"
#include "core/apply.h"
#include "core/conflict.h"

namespace orchestra::core {

AppendOnlyReconciler::AppendOnlyReconciler(const db::Catalog* catalog,
                                           const TrustPolicy* policy)
    : catalog_(catalog), policy_(policy) {
  ORCH_CHECK(catalog != nullptr && policy != nullptr);
}

Result<AppendOnlyReconciler::EpochResult> AppendOnlyReconciler::ApplyEpoch(
    const std::vector<Transaction>& epoch_txns, db::Instance* instance) {
  // Validate the append-only precondition up front so the instance is
  // untouched on error.
  for (const Transaction& txn : epoch_txns) {
    for (const Update& u : txn.updates) {
      if (!u.is_insert()) {
        return Status::InvalidArgument(
            "append-only reconciliation saw a " +
            std::string(UpdateKindName(u.kind())) + " in " +
            txn.id.ToString());
      }
      if (!catalog_->HasRelation(u.relation())) {
        return Status::NotFound("relation " + u.relation() +
                                " is not declared in the catalog");
      }
    }
  }

  EpochResult result;
  const size_t n = epoch_txns.size();
  std::vector<int> priority(n);
  std::vector<bool> acceptable(n, true);
  for (size_t i = 0; i < n; ++i) {
    priority[i] = policy_->PriorityOfTransaction(epoch_txns[i]);
    if (priority[i] <= 0) acceptable[i] = false;  // untrusted
  }

  // Condition (2): conflict with anything published in an earlier epoch.
  auto conflicts_with_history = [&](const Update& u,
                                    const db::RelationSchema& schema) {
    auto it = published_.find(RelKey{u.relation(), schema.KeyOf(u.new_tuple())});
    if (it == published_.end()) return false;
    for (const db::Tuple& earlier : it->second.values) {
      if (earlier != u.new_tuple()) return true;  // same key, other value
    }
    return false;
  };
  for (size_t i = 0; i < n; ++i) {
    if (!acceptable[i]) continue;
    for (const Update& u : epoch_txns[i].updates) {
      const db::RelationSchema& schema =
          *catalog_->GetRelation(u.relation()).value();
      if (conflicts_with_history(u, schema)) {
        acceptable[i] = false;
        break;
      }
    }
  }

  // Condition (1): same-epoch conflicts at equal or higher priority.
  // Conflicting insertions share a key, so bucket by key and test only
  // co-bucketed pairs (keeps the per-epoch cost near-linear, matching
  // the "very simple to compute" claim of §4.1).
  std::vector<bool> blocked(n, false);
  {
    std::unordered_map<RelKey, std::vector<size_t>, RelKeyHash> buckets;
    for (size_t i = 0; i < n; ++i) {
      for (const Update& u : epoch_txns[i].updates) {
        const db::RelationSchema& schema =
            *catalog_->GetRelation(u.relation()).value();
        auto& bucket =
            buckets[RelKey{u.relation(), schema.KeyOf(u.new_tuple())}];
        if (bucket.empty() || bucket.back() != i) bucket.push_back(i);
      }
    }
    auto txns_conflict = [&](size_t i, size_t j) {
      for (const Update& a : epoch_txns[i].updates) {
        const db::RelationSchema& schema =
            *catalog_->GetRelation(a.relation()).value();
        for (const Update& b : epoch_txns[j].updates) {
          if (UpdatesConflict(schema, a, b)) return true;
        }
      }
      return false;
    };
    // ORCH_LINT(allow:D3): commutative flag-raising over unordered pairs; blocked[i] ends identical for every bucket visit order
    for (const auto& [key, bucket] : buckets) {
      for (size_t a = 0; a < bucket.size(); ++a) {
        for (size_t b = a + 1; b < bucket.size(); ++b) {
          const size_t i = bucket[a];
          const size_t j = bucket[b];
          if (priority[i] <= 0 || priority[j] <= 0) continue;  // untrusted
          if (!txns_conflict(i, j)) continue;
          if (priority[j] >= priority[i]) blocked[i] = true;
          if (priority[i] >= priority[j]) blocked[j] = true;
        }
      }
    }
  }

  // Apply the survivors, then fold the whole epoch (accepted or not)
  // into the published history for future condition-(2) checks.
  for (size_t i = 0; i < n; ++i) {
    if (acceptable[i] && !blocked[i]) {
      std::vector<Update> updates = epoch_txns[i].updates;
      ORCH_RETURN_IF_ERROR(ApplyFlattened(instance, updates));
      result.applied.push_back(epoch_txns[i].id);
    } else {
      result.skipped.push_back(epoch_txns[i].id);
    }
  }
  for (const Transaction& txn : epoch_txns) {
    for (const Update& u : txn.updates) {
      const db::RelationSchema& schema =
          *catalog_->GetRelation(u.relation()).value();
      KeyHistory& history =
          published_[RelKey{u.relation(), schema.KeyOf(u.new_tuple())}];
      if (std::find(history.values.begin(), history.values.end(),
                    u.new_tuple()) == history.values.end()) {
        history.values.push_back(u.new_tuple());
      }
    }
  }
  return result;
}

}  // namespace orchestra::core
