#ifndef ORCHESTRA_CORE_APPEND_ONLY_H_
#define ORCHESTRA_CORE_APPEND_ONLY_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/instance.h"
#include "core/trust.h"
#include "core/update.h"

namespace orchestra::core {

/// Append-only reconciliation (Definition 2, §4.1): when every update is
/// an insertion, each published transaction can be considered in
/// isolation — no antecedents, extensions, or flattening. A transaction
/// X published in epoch e is acceptable to p_i iff
///
///   (1) no transaction X' in the same epoch conflicts with X at
///       priority pri_i(X') >= pri_i(X)  (a tie drops both — the
///       append-only model has no deferral), and
///   (2) no transaction published in an *earlier* epoch conflicts with X
///       (regardless of whether p_i accepted it) — first publication of
///       a key wins forever, preserving monotonicity.
///
/// The general reconciler (core/reconciler.h) subsumes this semantics
/// for insert-only histories except that it defers ties for later user
/// resolution instead of dropping them; this class exists as the
/// faithful, O(per-epoch) implementation of the paper's simpler model
/// and as the baseline for the cost comparison in bench/micro_reconcile.
class AppendOnlyReconciler {
 public:
  /// Outcome of one epoch: which transactions were applied and which
  /// were skipped (conflict with an earlier epoch, or a same-epoch
  /// rival at equal-or-higher priority, or untrusted).
  struct EpochResult {
    std::vector<TransactionId> applied;
    std::vector<TransactionId> skipped;
  };

  /// The catalog and policy must outlive the reconciler.
  AppendOnlyReconciler(const db::Catalog* catalog, const TrustPolicy* policy);

  /// Processes the transactions published in the next epoch, in epoch
  /// order, applying the acceptable ones to `instance`. Fails with
  /// InvalidArgument if any update is not an insertion, and with
  /// NotFound for unknown relations; the instance is only modified by
  /// accepted transactions.
  Result<EpochResult> ApplyEpoch(const std::vector<Transaction>& epoch_txns,
                                 db::Instance* instance);

 private:
  /// Distinct tuple values published for a key in earlier epochs.
  struct KeyHistory {
    std::vector<db::Tuple> values;
  };

  const db::Catalog* catalog_;
  const TrustPolicy* policy_;
  std::unordered_map<RelKey, KeyHistory, RelKeyHash> published_;
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_APPEND_ONLY_H_
