#include "core/apply.h"

#include "common/check.h"

namespace orchestra::core {

std::optional<db::Tuple> InstanceOverlay::Get(const std::string& relation,
                                              const db::Tuple& key) const {
  auto it = pending_.find(RelKey{relation, key});
  if (it != pending_.end()) return it->second;
  auto table = base_->GetTable(relation);
  if (!table.ok()) return std::nullopt;
  auto tuple = (*table)->GetByKey(key);
  if (!tuple.ok()) return std::nullopt;
  return *std::move(tuple);
}

Status InstanceOverlay::Apply(const Update& update) {
  auto schema_result = base_->catalog().GetRelation(update.relation());
  if (!schema_result.ok()) return schema_result.status();
  const db::RelationSchema& schema = **schema_result;

  switch (update.kind()) {
    case UpdateKind::kInsert: {
      ORCH_RETURN_IF_ERROR(schema.ValidateTuple(update.new_tuple()));
      const db::Tuple key = schema.KeyOf(update.new_tuple());
      if (auto existing = Get(update.relation(), key)) {
        if (*existing == update.new_tuple()) return Status::OK();  // agree
        return Status::Conflict("insert of " + update.new_tuple().ToString() +
                                " collides with existing " +
                                existing->ToString() + " in " +
                                update.relation());
      }
      pending_[RelKey{update.relation(), key}] = update.new_tuple();
      return Status::OK();
    }
    case UpdateKind::kDelete: {
      const db::Tuple key = schema.KeyOf(update.old_tuple());
      auto existing = Get(update.relation(), key);
      if (!existing) return Status::OK();  // already gone: deletes agree
      if (*existing != update.old_tuple()) {
        return Status::Conflict("delete pre-image " +
                                update.old_tuple().ToString() +
                                " is stale; instance has " +
                                existing->ToString());
      }
      pending_[RelKey{update.relation(), key}] = std::nullopt;
      return Status::OK();
    }
    case UpdateKind::kModify: {
      ORCH_RETURN_IF_ERROR(schema.ValidateTuple(update.new_tuple()));
      const db::Tuple old_key = schema.KeyOf(update.old_tuple());
      const db::Tuple new_key = schema.KeyOf(update.new_tuple());
      auto existing = Get(update.relation(), old_key);
      if (!existing) {
        // Pre-image gone. If the exact post-image is present the
        // replacement has already taken effect (agreement).
        auto target = Get(update.relation(), new_key);
        if (target && *target == update.new_tuple()) return Status::OK();
        return Status::Conflict("modify pre-image " +
                                update.old_tuple().ToString() +
                                " is absent from " + update.relation());
      }
      if (*existing != update.old_tuple()) {
        if (*existing == update.new_tuple()) {
          return Status::OK();  // replacement already took effect (agree)
        }
        return Status::Conflict("modify pre-image " +
                                update.old_tuple().ToString() +
                                " is stale; instance has " +
                                existing->ToString());
      }
      if (new_key != old_key) {
        if (Get(update.relation(), new_key)) {
          return Status::Conflict("modify target key " + new_key.ToString() +
                                  " is occupied in " + update.relation());
        }
        pending_[RelKey{update.relation(), old_key}] = std::nullopt;
      }
      pending_[RelKey{update.relation(), new_key}] = update.new_tuple();
      return Status::OK();
    }
  }
  return Status::Internal("unreachable update kind");
}

Status InstanceOverlay::CheckForeignKeys() const {
  const db::Catalog& catalog = base_->catalog();
  for (const auto& [rel_key, state] : pending_) {
    if (state.has_value()) {
      // Upserted child tuples must reference existing parents.
      for (const db::ForeignKey* fk : catalog.ForeignKeysOf(rel_key.relation)) {
        db::Tuple ref = state->Project(fk->child_columns);
        bool all_null = true;
        for (const db::Value& v : ref.values()) {
          if (!v.is_null()) all_null = false;
        }
        if (all_null) continue;
        if (!Get(fk->parent_relation, ref)) {
          return Status::ConstraintViolation(
              "tuple " + state->ToString() + " in " + rel_key.relation +
              " references missing key " + ref.ToString() + " of " +
              fk->parent_relation);
        }
      }
    } else {
      // Vacated parent keys must leave no dangling children. Children
      // shadowed by pending changes are checked through the overlay.
      for (const db::ForeignKey* fk :
           catalog.ForeignKeysReferencing(rel_key.relation)) {
        auto child_table = base_->GetTable(fk->child_relation);
        if (!child_table.ok()) continue;
        const db::RelationSchema& child_schema = (*child_table)->schema();
        for (const db::Tuple& child : (*child_table)->Scan()) {
          // Skip rows the overlay rewrote or removed.
          const db::Tuple child_key = child_schema.KeyOf(child);
          auto shadow = pending_.find(RelKey{fk->child_relation, child_key});
          const db::Tuple* effective =
              shadow == pending_.end()
                  ? &child
                  : (shadow->second ? &*shadow->second : nullptr);
          if (effective == nullptr) continue;
          if (effective->Project(fk->child_columns) == rel_key.key) {
            return Status::ConstraintViolation(
                "deleting key " + rel_key.key.ToString() + " of " +
                rel_key.relation + " orphans " + effective->ToString() +
                " in " + fk->child_relation);
          }
        }
        // Pending upserts into the child relation also count.
        for (const auto& [other_key, other_state] : pending_) {
          if (other_key.relation != fk->child_relation || !other_state) {
            continue;
          }
          if (other_state->Project(fk->child_columns) == rel_key.key) {
            return Status::ConstraintViolation(
                "deleting key " + rel_key.key.ToString() + " of " +
                rel_key.relation + " orphans pending " +
                other_state->ToString() + " in " + fk->child_relation);
          }
        }
      }
    }
  }
  return Status::OK();
}

Status InstanceOverlay::CommitTo(db::Instance* target) const {
  // Two passes so that key-freeing removals land before occupying
  // upserts.
  for (const auto& [rel_key, state] : pending_) {
    if (state.has_value()) continue;
    ORCH_ASSIGN_OR_RETURN(db::Table * table, target->GetTable(rel_key.relation));
    // The key may legitimately be absent (idempotent delete).
    Status s = table->DeleteByKey(rel_key.key);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  for (const auto& [rel_key, state] : pending_) {
    if (!state.has_value()) continue;
    ORCH_ASSIGN_OR_RETURN(db::Table * table, target->GetTable(rel_key.relation));
    if (table->ContainsKey(rel_key.key)) {
      ORCH_ASSIGN_OR_RETURN(db::Tuple existing, table->GetByKey(rel_key.key));
      if (existing == *state) continue;  // idempotent upsert
      ORCH_RETURN_IF_ERROR(table->Replace(existing, *state));
    } else {
      ORCH_RETURN_IF_ERROR(table->Insert(*state));
    }
  }
  return Status::OK();
}

Status ApplySet(InstanceOverlay* overlay, const std::vector<Update>& updates) {
  // Deletes free keys that modifies and inserts may claim.
  for (const Update& u : updates) {
    if (u.is_delete()) ORCH_RETURN_IF_ERROR(overlay->Apply(u));
  }
  // Modifies can chain through keys (a->b while b->c); iterate any
  // applicable one to a fixpoint.
  std::vector<const Update*> todo;
  for (const Update& u : updates) {
    if (u.is_modify()) todo.push_back(&u);
  }
  while (!todo.empty()) {
    std::vector<const Update*> stuck;
    Status last_error = Status::OK();
    for (const Update* u : todo) {
      Status s = overlay->Apply(*u);
      if (!s.ok()) {
        stuck.push_back(u);
        last_error = std::move(s);
      }
    }
    if (stuck.size() == todo.size()) return last_error;  // no progress
    todo = std::move(stuck);
  }
  for (const Update& u : updates) {
    if (u.is_insert()) ORCH_RETURN_IF_ERROR(overlay->Apply(u));
  }
  return overlay->CheckForeignKeys();
}

Status CheckApplicable(const db::Instance& instance,
                       const std::vector<Update>& updates) {
  InstanceOverlay overlay(&instance);
  return ApplySet(&overlay, updates);
}

Status ApplyFlattened(db::Instance* instance,
                      const std::vector<Update>& updates) {
  InstanceOverlay overlay(instance);
  ORCH_RETURN_IF_ERROR(ApplySet(&overlay, updates));
  return overlay.CommitTo(instance);
}

}  // namespace orchestra::core
