#ifndef ORCHESTRA_CORE_APPLY_H_
#define ORCHESTRA_CORE_APPLY_H_

#include <map>
#include <optional>
#include <vector>

#include "common/status.h"
#include "db/instance.h"
#include "core/update.h"

namespace orchestra::core {

/// A copy-on-write view over a database instance: reads fall through to
/// the base instance unless shadowed by pending changes. Used to test
/// whether a flattened update extension "can be completely applied ...
/// without violating integrity constraints" (Definition 5, condition 2)
/// without cloning or mutating the instance.
class InstanceOverlay {
 public:
  explicit InstanceOverlay(const db::Instance* base) : base_(base) {}

  /// The visible full tuple for (relation, key), honoring pending
  /// changes; nullopt if absent or deleted in the overlay.
  std::optional<db::Tuple> Get(const std::string& relation,
                               const db::Tuple& key) const;

  /// Applies one net update with *idempotent agreement* semantics:
  ///  - insert of an already-present identical tuple is a no-op;
  ///  - delete of an absent key is a no-op (an identical delete already
  ///    took effect — divergent histories are caught upstream by the
  ///    decided-transaction check);
  ///  - modify whose pre-image is gone but whose exact post-image is
  ///    present is a no-op;
  ///  - anything else that does not match the visible state is an error
  ///    (Conflict / ConstraintViolation), meaning the extension is
  ///    incompatible with the instance.
  Status Apply(const Update& update);

  /// Verifies foreign keys touched by the pending changes (inserted and
  /// modified child tuples must resolve; vacated parent keys must leave
  /// no dangling children).
  Status CheckForeignKeys() const;

  /// Writes the pending changes into `target`, which must be the base
  /// instance this overlay was constructed over.
  Status CommitTo(db::Instance* target) const;

 private:
  const db::Instance* base_;
  // relation/key -> pending state: engaged optional = upserted tuple,
  // disengaged = tombstone. Ordered (lint rule D3): CheckForeignKeys
  // reports the *first* violation it meets and CommitTo writes the
  // overlay out whole, so walk order must not depend on a hash.
  std::map<RelKey, std::optional<db::Tuple>> pending_;
};

/// Applies a flattened update set to the overlay in dependency-safe
/// order: deletes first, then modifies (iterated to a fixpoint so that
/// key-moving chains resolve), then inserts. Any failure is returned and
/// the overlay is left in an unspecified state (discard it).
Status ApplySet(InstanceOverlay* overlay, const std::vector<Update>& updates);

/// True application-compatibility test of Definition 5 condition 2:
/// trial-applies the flattened set over `instance` and checks integrity.
Status CheckApplicable(const db::Instance& instance,
                       const std::vector<Update>& updates);

/// Applies the flattened set to the instance for real (same semantics,
/// then commits). All-or-nothing: on error the instance is unchanged.
Status ApplyFlattened(db::Instance* instance,
                      const std::vector<Update>& updates);

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_APPLY_H_
