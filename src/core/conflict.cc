#include "core/conflict.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace orchestra::core {

std::string_view ConflictTypeName(ConflictType type) {
  switch (type) {
    case ConflictType::kInsertInsert:
      return "insert/insert";
    case ConflictType::kDeleteVsWrite:
      return "delete/write";
    case ConflictType::kReplaceReplace:
      return "replace/replace";
    case ConflictType::kKeyCollision:
      return "key-collision";
  }
  return "unknown";
}

std::string ConflictPoint::ToString() const {
  return std::string(ConflictTypeName(type)) + " on " + key.ToString();
}

namespace {

// delete `d` vs insert-or-modify `w`.
std::optional<ConflictPoint> DeleteVsWrite(const db::RelationSchema& schema,
                                           const Update& d, const Update& w) {
  const db::Tuple dk = schema.KeyOf(d.old_tuple());
  if (w.is_insert()) {
    if (schema.KeyOf(w.new_tuple()) == dk) {
      return ConflictPoint{ConflictType::kDeleteVsWrite,
                           RelKey{d.relation(), dk}};
    }
    return std::nullopt;
  }
  // Replacement: conflicts if it reads or writes the deleted key.
  if (schema.KeyOf(w.old_tuple()) == dk || schema.KeyOf(w.new_tuple()) == dk) {
    return ConflictPoint{ConflictType::kDeleteVsWrite,
                         RelKey{d.relation(), dk}};
  }
  return std::nullopt;
}

std::optional<ConflictPoint> InsertVsInsert(const db::RelationSchema& schema,
                                            const Update& a, const Update& b) {
  const db::Tuple ka = schema.KeyOf(a.new_tuple());
  if (ka != schema.KeyOf(b.new_tuple())) return std::nullopt;
  if (a.new_tuple() == b.new_tuple()) return std::nullopt;  // they agree
  return ConflictPoint{ConflictType::kInsertInsert, RelKey{a.relation(), ka}};
}

std::optional<ConflictPoint> ModifyVsModify(const db::RelationSchema& schema,
                                            const Update& a, const Update& b) {
  const db::Tuple src_a = schema.KeyOf(a.old_tuple());
  const db::Tuple src_b = schema.KeyOf(b.old_tuple());
  if (src_a == src_b) {
    // Same source key. Identical replacements agree; anything else is the
    // paper's replace/replace conflict (including disagreement about the
    // source tuple's current value).
    if (a.old_tuple() == b.old_tuple() && a.new_tuple() == b.new_tuple()) {
      return std::nullopt;
    }
    return ConflictPoint{ConflictType::kReplaceReplace,
                         RelKey{a.relation(), src_a}};
  }
  // Different sources converging on one target key can never both apply.
  const db::Tuple dst_a = schema.KeyOf(a.new_tuple());
  if (dst_a == schema.KeyOf(b.new_tuple())) {
    return ConflictPoint{ConflictType::kKeyCollision,
                         RelKey{a.relation(), dst_a}};
  }
  return std::nullopt;
}

std::optional<ConflictPoint> InsertVsModify(const db::RelationSchema& schema,
                                            const Update& ins,
                                            const Update& mod) {
  // An insert and a replacement targeting the same key both claim it;
  // even value-identical outcomes cannot both apply (duplicate key).
  const db::Tuple ki = schema.KeyOf(ins.new_tuple());
  if (ki == schema.KeyOf(mod.new_tuple())) {
    return ConflictPoint{ConflictType::kKeyCollision,
                         RelKey{ins.relation(), ki}};
  }
  return std::nullopt;
}

}  // namespace

std::optional<ConflictPoint> UpdatesConflict(const db::RelationSchema& schema,
                                             const Update& a,
                                             const Update& b) {
  if (a.relation() != b.relation()) return std::nullopt;
  if (a.is_delete() && b.is_delete()) return std::nullopt;  // they agree
  if (a.is_delete()) return DeleteVsWrite(schema, a, b);
  if (b.is_delete()) return DeleteVsWrite(schema, b, a);
  if (a.is_insert() && b.is_insert()) return InsertVsInsert(schema, a, b);
  if (a.is_modify() && b.is_modify()) return ModifyVsModify(schema, a, b);
  if (a.is_insert()) return InsertVsModify(schema, a, b);
  return InsertVsModify(schema, b, a);
}

std::vector<ConflictPoint> SetsConflict(const db::Catalog& catalog,
                                        const std::vector<Update>& a,
                                        const std::vector<Update>& b) {
  std::vector<ConflictPoint> out;
  if (a.empty() || b.empty()) return out;
  // Bucket b's updates by every key they touch, then probe with a's keys;
  // conflicting pairs always share a touched key.
  std::unordered_map<RelKey, std::vector<size_t>, RelKeyHash> buckets;
  for (size_t i = 0; i < b.size(); ++i) {
    const db::RelationSchema& schema =
        *catalog.GetRelation(b[i].relation()).value();
    for (RelKey& rk : b[i].TouchedKeys(schema)) {
      buckets[std::move(rk)].push_back(i);
    }
  }
  std::unordered_set<ConflictPoint, ConflictPointHash> seen;
  std::unordered_set<uint64_t> tested;  // (i_a << 32 | i_b) pairs
  for (size_t ia = 0; ia < a.size(); ++ia) {
    const db::RelationSchema& schema =
        *catalog.GetRelation(a[ia].relation()).value();
    for (const RelKey& rk : a[ia].TouchedKeys(schema)) {
      auto it = buckets.find(rk);
      if (it == buckets.end()) continue;
      for (size_t ib : it->second) {
        if (!tested.insert((static_cast<uint64_t>(ia) << 32) | ib).second) {
          continue;
        }
        if (auto cp = UpdatesConflict(schema, a[ia], b[ib])) {
          if (seen.insert(*cp).second) out.push_back(*cp);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace orchestra::core
