#ifndef ORCHESTRA_CORE_CONFLICT_H_
#define ORCHESTRA_CORE_CONFLICT_H_

#include <optional>
#include <string>
#include <vector>

#include "db/schema.h"
#include "core/update.h"

namespace orchestra::core {

/// Classification of why two updates conflict (§4). The ⟨type, value⟩
/// pair keys conflict groups during deferral (§5).
enum class ConflictType {
  /// Both insertions share key attributes but differ in some other
  /// attribute.
  kInsertInsert = 0,
  /// One update deletes a key that the other inserts or replaces
  /// (simultaneous remove-and-replace).
  kDeleteVsWrite = 1,
  /// Both replacements start from the same source tuple but produce
  /// different values.
  kReplaceReplace = 2,
  /// Both updates claim the same key with different resulting tuples in a
  /// way not covered above (e.g. an insert racing a replacement *into*
  /// the same key) — §3's "results in a data instance that violates a
  /// constraint" case for pairs of updates.
  kKeyCollision = 3,
};

std::string_view ConflictTypeName(ConflictType type);

/// A detected conflict between two updates: its type and the contested
/// (relation, key) value. Identifies the conflict group it belongs to.
struct ConflictPoint {
  ConflictType type;
  RelKey key;

  std::string ToString() const;

  friend bool operator==(const ConflictPoint& a, const ConflictPoint& b) {
    return a.type == b.type && a.key == b.key;
  }
  friend bool operator<(const ConflictPoint& a, const ConflictPoint& b) {
    if (a.type != b.type) return a.type < b.type;
    return a.key < b.key;
  }
};

struct ConflictPointHash {
  size_t operator()(const ConflictPoint& cp) const {
    return static_cast<size_t>(HashCombine(
        static_cast<uint64_t>(cp.type), RelKeyHash()(cp.key)));
  }
};

/// Tests the conflict relation of §4 on a single pair of updates over the
/// same relation. Returns the conflict classification, or nullopt when
/// the updates are compatible (including when they are identical — two
/// participants independently making the same change agree, not clash).
std::optional<ConflictPoint> UpdatesConflict(
    const db::RelationSchema& schema, const Update& a, const Update& b);

/// Finds every conflict point between two flattened update sets. Used
/// pairwise on update extensions by FindConflicts (Fig. 5) and on
/// (extension, own-delta) by CheckState. Cost O(|a| + |b|) expected via
/// key-hash bucketing.
std::vector<ConflictPoint> SetsConflict(const db::Catalog& catalog,
                                        const std::vector<Update>& a,
                                        const std::vector<Update>& b);

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_CONFLICT_H_
