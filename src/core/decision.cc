#include "core/decision.h"

#include "common/string_util.h"

namespace orchestra::core {

std::string_view DecisionName(Decision decision) {
  switch (decision) {
    case Decision::kUndecided:
      return "undecided";
    case Decision::kAccept:
      return "accept";
    case Decision::kReject:
      return "reject";
    case Decision::kDefer:
      return "defer";
  }
  return "?";
}

std::string ConflictGroup::ToString() const {
  std::string out = point.ToString() + " {";
  for (size_t i = 0; i < options.size(); ++i) {
    if (i > 0) out += " | ";
    std::vector<std::string> ids;
    ids.reserve(options[i].txns.size());
    for (const TransactionId& id : options[i].txns) {
      ids.push_back(id.ToString());
    }
    out += "[" + Join(ids, ",") + "] " + options[i].effect;
  }
  out += "}";
  return out;
}

}  // namespace orchestra::core
