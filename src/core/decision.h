#ifndef ORCHESTRA_CORE_DECISION_H_
#define ORCHESTRA_CORE_DECISION_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/conflict.h"
#include "core/ids.h"

namespace orchestra::core {

/// Per-transaction outcome of a reconciliation (Figs. 4-5).
enum class Decision {
  kUndecided = 0,
  kAccept,
  kReject,
  kDefer,
};

std::string_view DecisionName(Decision decision);

/// Set of (relation, key) values with O(1) membership; the dirty-value
/// set marks keys read or written by deferred transactions (§5).
using RelKeySet = std::unordered_set<RelKey, RelKeyHash>;

/// A group of deferred transactions that make the *same* modification to
/// the contested key value; resolving a conflict group accepts at most
/// one option and rejects the transactions of the others (§5).
struct ConflictOption {
  std::vector<TransactionId> txns;
  /// Human-readable rendering of the modification the option makes
  /// ("+F('rat','prot1','immune')"), for the resolving user.
  std::string effect;
};

/// All deferred conflicts involving the same ⟨type, key value⟩ (§5).
struct ConflictGroup {
  ConflictPoint point;
  std::vector<ConflictOption> options;

  std::string ToString() const;
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_DECISION_H_
