#include "core/extension.h"

#include <algorithm>

namespace orchestra::core {

Result<std::vector<TransactionId>> ComputeExtension(
    const TransactionProvider& provider, const TransactionId& root,
    const TxnIdSet& already_applied) {
  std::vector<TransactionId> result;
  TxnIdSet visited;
  std::vector<TransactionId> frontier{root};
  visited.insert(root);
  std::vector<std::pair<Epoch, TransactionId>> with_epochs;
  while (!frontier.empty()) {
    const TransactionId id = frontier.back();
    frontier.pop_back();
    ORCH_ASSIGN_OR_RETURN(const Transaction* txn, provider.Get(id));
    with_epochs.emplace_back(txn->epoch, id);
    for (const TransactionId& ante : txn->antecedents) {
      if (already_applied.count(ante) != 0) continue;  // Definition 3 stop
      if (visited.insert(ante).second) frontier.push_back(ante);
    }
  }
  // Sort by order of appearance in ∆: epoch, then originator, then local
  // sequence number (ids are assigned in increasing order, §3.2).
  std::sort(with_epochs.begin(), with_epochs.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  result.reserve(with_epochs.size());
  for (const auto& [epoch, id] : with_epochs) result.push_back(id);
  return result;
}

std::vector<TransactionId> ComputeExtensionFromBundle(
    const TransactionMap& bundle, const TransactionId& root) {
  std::vector<std::pair<Epoch, TransactionId>> with_epochs;
  TxnIdSet visited;
  std::vector<TransactionId> frontier{root};
  visited.insert(root);
  while (!frontier.empty()) {
    const TransactionId id = frontier.back();
    frontier.pop_back();
    auto txn = bundle.Get(id);
    if (!txn.ok()) continue;  // outside the bundle: already applied
    with_epochs.emplace_back((*txn)->epoch, id);
    for (const TransactionId& ante : (*txn)->antecedents) {
      if (bundle.Contains(ante) && visited.insert(ante).second) {
        frontier.push_back(ante);
      }
    }
  }
  std::sort(with_epochs.begin(), with_epochs.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  std::vector<TransactionId> result;
  result.reserve(with_epochs.size());
  for (const auto& [epoch, id] : with_epochs) result.push_back(id);
  return result;
}

bool Subsumes(const std::vector<TransactionId>& outer,
              const std::vector<TransactionId>& inner) {
  if (inner.size() > outer.size()) return false;
  TxnIdSet outer_set(outer.begin(), outer.end());
  for (const TransactionId& id : inner) {
    if (outer_set.count(id) == 0) return false;
  }
  return true;
}

std::vector<Update> UpdateFootprint(const TransactionProvider& provider,
                                    const std::vector<TransactionId>& txns,
                                    const TxnIdSet& exclude) {
  std::vector<Update> out;
  for (const TransactionId& id : txns) {
    if (exclude.count(id) != 0) continue;
    auto txn = provider.Get(id);
    if (!txn.ok()) continue;  // resolved during ComputeExtension; defensive
    for (const Update& u : (*txn)->updates) out.push_back(u);
  }
  return out;
}

}  // namespace orchestra::core
