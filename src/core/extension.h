#ifndef ORCHESTRA_CORE_EXTENSION_H_
#define ORCHESTRA_CORE_EXTENSION_H_

#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/transaction.h"

namespace orchestra::core {

/// Set of transaction ids with O(1) membership; used for applied /
/// rejected / extension sets.
using TxnIdSet = std::unordered_set<TransactionId, TransactionIdHash>;

/// Computes p_i's transaction extension te_i|e(X) (Definition 3): the
/// transitive closure of X's antecedents, stopping at transactions in
/// `already_applied` (accepted in an earlier reconciliation — their
/// effects are part of the instance and must not be replayed).
///
/// The result is sorted by the order of each transaction in ∆
/// (publication epoch, then originator, then sequence) and includes X
/// itself as the final element.
///
/// Fails with NotFound if an antecedent cannot be resolved by `provider`.
Result<std::vector<TransactionId>> ComputeExtension(
    const TransactionProvider& provider, const TransactionId& root,
    const TxnIdSet& already_applied);

/// Extension computation against a self-contained transaction bundle
/// (e.g. the closure shipped by an update store): antecedents absent
/// from the bundle are treated as already applied and terminate the
/// closure. Result is sorted like ComputeExtension.
std::vector<TransactionId> ComputeExtensionFromBundle(
    const TransactionMap& bundle, const TransactionId& root);

/// True if `outer` subsumes `inner`: outer's extension is a superset of
/// inner's (§4.2). Both vectors must be sorted extension results.
bool Subsumes(const std::vector<TransactionId>& outer,
              const std::vector<TransactionId>& inner);

/// uf(L): the concatenated update footprint of a transaction list, in
/// list order (the input must already be sorted by publication order).
/// Transactions in `exclude` (e.g. the Used set of Definition 5) are
/// skipped.
std::vector<Update> UpdateFootprint(const TransactionProvider& provider,
                                    const std::vector<TransactionId>& txns,
                                    const TxnIdSet& exclude = {});

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_EXTENSION_H_
