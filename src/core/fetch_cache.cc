#include "core/fetch_cache.h"

#include <algorithm>

namespace orchestra::core {

const Transaction* FetchCache::Lookup(const TransactionId& id) const {
  auto it = arena_.find(id);
  if (it == arena_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void FetchCache::Admit(Transaction txn) {
  const TransactionId id = txn.id;
  const Epoch epoch = txn.epoch;
  auto [it, inserted] = arena_.emplace(id, std::move(txn));
  if (!inserted) return;
  by_epoch_[epoch].push_back(id);
  ++stats_.admitted;
}

void FetchCache::InvalidateEpoch(Epoch epoch) {
  auto it = by_epoch_.find(epoch);
  if (it == by_epoch_.end()) return;
  for (const TransactionId& id : it->second) arena_.erase(id);
  by_epoch_.erase(it);
}

void FetchCache::InvalidateAbove(Epoch floor) {
  for (auto it = by_epoch_.upper_bound(floor); it != by_epoch_.end();
       it = by_epoch_.erase(it)) {
    for (const TransactionId& id : it->second) arena_.erase(id);
  }
}

void FetchCache::MarkApplied(ParticipantId peer, const TransactionId& id) {
  applied_[peer].insert(id);
}

bool FetchCache::KnownApplied(ParticipantId peer,
                              const TransactionId& id) const {
  auto it = applied_.find(peer);
  if (it == applied_.end() || it->second.count(id) == 0) return false;
  ++stats_.suppressed;
  return true;
}

void FetchCache::ResetApplied(ParticipantId peer, TxnIdSet applied) {
  applied_[peer] = std::move(applied);
}

void FetchCache::ForgetPeer(ParticipantId peer) {
  applied_.erase(peer);
  watermarks_.erase(peer);
}

void FetchCache::SetWatermark(ParticipantId peer, Epoch epoch) {
  watermarks_[peer] = epoch;
}

Epoch FetchCache::Watermark(ParticipantId peer) const {
  auto it = watermarks_.find(peer);
  return it == watermarks_.end() ? 0 : it->second;
}

}  // namespace orchestra::core
