#ifndef ORCHESTRA_CORE_FETCH_CACHE_H_
#define ORCHESTRA_CORE_FETCH_CACHE_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "core/extension.h"
#include "core/ids.h"
#include "core/transaction.h"

namespace orchestra::core {

/// Store-side cache powering incremental (delta) fetch, per the paper's
/// §5.2 model where each reconciliation consumes only the stable window
/// past the peer's watermark.
///
/// Two parts, with different sharing:
///
///  - a *decoded-transaction arena*, shared by every peer: committed
///    transactions are immutable (a committed id can never be
///    republished), so each is decoded once and served from the arena
///    on every later reconciliation, keyed by (epoch, txn id). Only
///    transactions under a committed epoch may be admitted — residue of
///    an aborted publish can be overwritten by a republish and must
///    never be cached. Epoch-keyed invalidation covers the defensive
///    cases (reaping, recovery).
///
///  - *per-peer* bookkeeping: the ids the store has durably recorded as
///    applied by each peer, plus the peer's fetch watermark. The
///    applied set is a conservative overlay over the store's
///    authoritative decision state — entries are added only at commit
///    points (publish acked, decisions recorded, bootstrap adopted), so
///    a hit can safely suppress a per-key lookup whose answer would be
///    "already applied / not relevant", while a miss simply falls
///    through to the authoritative check.
class FetchCache {
 public:
  struct Stats {
    int64_t hits = 0;        // arena lookups served without a decode
    int64_t misses = 0;      // arena lookups that had to decode
    int64_t admitted = 0;    // transactions decoded into the arena
    int64_t suppressed = 0;  // per-key lookups skipped via applied sets
  };

  /// --- Decoded-transaction arena --------------------------------------

  /// The cached transaction, or nullptr. Counts a hit or miss.
  const Transaction* Lookup(const TransactionId& id) const;

  /// Admits a decoded transaction. The caller must have verified the
  /// transaction's epoch is committed.
  void Admit(Transaction txn);

  /// Drops every cached transaction of `epoch` / of epochs > `floor`.
  void InvalidateEpoch(Epoch epoch);
  void InvalidateAbove(Epoch floor);

  size_t arena_size() const { return arena_.size(); }

  /// --- Per-peer applied sets and watermarks ---------------------------

  void MarkApplied(ParticipantId peer, const TransactionId& id);
  /// True when the store has durably recorded `id` as applied by `peer`.
  /// Counts a suppression on hit.
  bool KnownApplied(ParticipantId peer, const TransactionId& id) const;
  /// Replaces the peer's applied set wholesale (recovery/bootstrap hand
  /// the authoritative set over in one piece).
  void ResetApplied(ParticipantId peer, TxnIdSet applied);
  /// Drops everything known about the peer (its process restarted; the
  /// store re-learns from its own durable state).
  void ForgetPeer(ParticipantId peer);

  void SetWatermark(ParticipantId peer, Epoch epoch);
  Epoch Watermark(ParticipantId peer) const;

  const Stats& stats() const { return stats_; }

 private:
  std::unordered_map<TransactionId, Transaction, TransactionIdHash> arena_;
  /// Epoch index over the arena, driving watermark-based invalidation.
  std::map<Epoch, std::vector<TransactionId>> by_epoch_;
  std::unordered_map<ParticipantId, TxnIdSet> applied_;
  std::unordered_map<ParticipantId, Epoch> watermarks_;
  mutable Stats stats_;
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_FETCH_CACHE_H_
