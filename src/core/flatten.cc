#include "core/flatten.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace orchestra::core {

namespace {

// One logical tuple's composed net effect so far.
struct Chain {
  enum class Net { kInsert, kModify, kDelete };
  Net net;
  db::Tuple original;  // pre-image (kModify, kDelete)
  db::Tuple current;   // post-image (kInsert, kModify)
  ParticipantId last_writer = 0;
  bool dead = false;  // chain composed away to a no-op
};

// Flattening state: chains plus two key indexes. "Live" chains have a
// post-image occupying a key; "deleted" chains removed a pre-existing
// tuple and are indexed by that tuple's key so a later re-insert of the
// key composes into a modify.
class Flattener {
 public:
  explicit Flattener(const db::Catalog& catalog) : catalog_(catalog) {}

  Status Add(const Update& u) {
    auto schema_result = catalog_.GetRelation(u.relation());
    if (!schema_result.ok()) return schema_result.status();
    const db::RelationSchema& schema = **schema_result;
    switch (u.kind()) {
      case UpdateKind::kInsert:
        return AddInsert(schema, u);
      case UpdateKind::kDelete:
        return AddDelete(schema, u);
      case UpdateKind::kModify:
        return AddModify(schema, u);
    }
    return Status::Internal("unreachable update kind");
  }

  std::vector<Update> Finish() {
    std::vector<Update> out;
    for (const ChainRec& c : chains_) {
      if (c.dead) continue;
      switch (c.net) {
        case Chain::Net::kInsert:
          out.push_back(
              Update::Insert(c.relation, c.current, c.last_writer));
          break;
        case Chain::Net::kModify:
          if (c.original != c.current) {
            out.push_back(Update::Modify(c.relation, c.original, c.current,
                                         c.last_writer));
          }
          break;
        case Chain::Net::kDelete:
          out.push_back(
              Update::Delete(c.relation, c.original, c.last_writer));
          break;
      }
    }
    // Deterministic output order: relation, then the touched key, then
    // kind (so a delete/insert pair on one key orders delete first).
    std::sort(out.begin(), out.end(), [this](const Update& a,
                                             const Update& b) {
      if (a.relation() != b.relation()) return a.relation() < b.relation();
      const db::Tuple ka = SortKey(a);
      const db::Tuple kb = SortKey(b);
      if (ka != kb) return ka < kb;
      return static_cast<int>(a.kind()) > static_cast<int>(b.kind());
    });
    return out;
  }

 private:
  struct ChainRec : Chain {
    std::string relation;
  };

  db::Tuple SortKey(const Update& u) const {
    const db::RelationSchema& schema = *catalog_.GetRelation(u.relation()).value();
    return u.is_delete() ? schema.KeyOf(u.old_tuple())
                         : schema.KeyOf(u.new_tuple());
  }

  Status AddInsert(const db::RelationSchema& schema, const Update& u) {
    RelKey key{u.relation(), schema.KeyOf(u.new_tuple())};
    if (live_.count(key) != 0) {
      return Status::Conflict("sequence inserts key " + key.ToString() +
                              " twice");
    }
    auto del_it = deleted_.find(key);
    if (del_it != deleted_.end()) {
      // -t ∘ +t' : remove-and-replace composes to a modify (or a no-op
      // when the re-inserted tuple equals the removed one).
      ChainRec& chain = chains_[del_it->second];
      deleted_.erase(del_it);
      if (chain.original == u.new_tuple()) {
        chain.dead = true;
        return Status::OK();
      }
      chain.net = Chain::Net::kModify;
      chain.current = u.new_tuple();
      chain.last_writer = u.origin();
      live_[key] = IndexOf(chain);
      return Status::OK();
    }
    ChainRec chain;
    chain.relation = u.relation();
    chain.net = Chain::Net::kInsert;
    chain.current = u.new_tuple();
    chain.last_writer = u.origin();
    chains_.push_back(std::move(chain));
    live_[key] = chains_.size() - 1;
    return Status::OK();
  }

  Status AddDelete(const db::RelationSchema& schema, const Update& u) {
    RelKey key{u.relation(), schema.KeyOf(u.old_tuple())};
    auto live_it = live_.find(key);
    if (live_it == live_.end()) {
      if (deleted_.count(key) != 0) {
        return Status::Conflict("sequence deletes key " + key.ToString() +
                                " twice");
      }
      ChainRec chain;
      chain.relation = u.relation();
      chain.net = Chain::Net::kDelete;
      chain.original = u.old_tuple();
      chain.last_writer = u.origin();
      chains_.push_back(std::move(chain));
      deleted_[key] = chains_.size() - 1;
      return Status::OK();
    }
    ChainRec& chain = chains_[live_it->second];
    if (chain.current != u.old_tuple()) {
      return Status::Conflict("delete pre-image " + u.old_tuple().ToString() +
                              " does not match the chain state " +
                              chain.current.ToString());
    }
    live_.erase(live_it);
    if (chain.net == Chain::Net::kInsert) {
      // +t ∘ -t : vanishes.
      chain.dead = true;
      return Status::OK();
    }
    // t0->t ∘ -t : composes to -t0, indexed at t0's key.
    chain.net = Chain::Net::kDelete;
    chain.current = db::Tuple();
    chain.last_writer = u.origin();
    RelKey orig_key{chain.relation, schema.KeyOf(chain.original)};
    if (deleted_.count(orig_key) != 0) {
      return Status::Conflict("sequence deletes key " + orig_key.ToString() +
                              " twice");
    }
    deleted_[orig_key] = IndexOf(chain);
    return Status::OK();
  }

  Status AddModify(const db::RelationSchema& schema, const Update& u) {
    RelKey old_key{u.relation(), schema.KeyOf(u.old_tuple())};
    RelKey new_key{u.relation(), schema.KeyOf(u.new_tuple())};
    if (deleted_.count(old_key) != 0 && live_.count(old_key) == 0) {
      return Status::Conflict("sequence modifies deleted key " +
                              old_key.ToString());
    }
    size_t chain_index;
    auto live_it = live_.find(old_key);
    if (live_it != live_.end()) {
      chain_index = live_it->second;
      if (chains_[chain_index].current != u.old_tuple()) {
        return Status::Conflict(
            "modify pre-image " + u.old_tuple().ToString() +
            " does not match the chain state " +
            chains_[chain_index].current.ToString());
      }
      live_.erase(live_it);
    } else {
      // Chain starts at a pre-existing tuple.
      ChainRec chain;
      chain.relation = u.relation();
      chain.net = Chain::Net::kModify;
      chain.original = u.old_tuple();
      chains_.push_back(std::move(chain));
      chain_index = chains_.size() - 1;
    }
    ChainRec& chain = chains_[chain_index];
    chain.current = u.new_tuple();
    chain.last_writer = u.origin();
    if (!(old_key == new_key) && live_.count(new_key) != 0) {
      return Status::Conflict("sequence moves two tuples onto key " +
                              new_key.ToString());
    }
    // A pre-existing occupant of new_key removed earlier in the sequence
    // stays as an independent delete; the apply step orders deletes first.
    live_[new_key] = chain_index;
    return Status::OK();
  }

  size_t IndexOf(const ChainRec& chain) const {
    return static_cast<size_t>(&chain - chains_.data());
  }

  const db::Catalog& catalog_;
  std::vector<ChainRec> chains_;
  std::unordered_map<RelKey, size_t, RelKeyHash> live_;
  std::unordered_map<RelKey, size_t, RelKeyHash> deleted_;
};

}  // namespace

Result<std::vector<Update>> Flatten(const db::Catalog& catalog,
                                    const std::vector<Update>& sequence) {
  Flattener flattener(catalog);
  for (const Update& u : sequence) {
    ORCH_RETURN_IF_ERROR(flattener.Add(u));
  }
  return flattener.Finish();
}

}  // namespace orchestra::core
