#ifndef ORCHESTRA_CORE_FLATTEN_H_
#define ORCHESTRA_CORE_FLATTEN_H_

#include <vector>

#include "common/result.h"
#include "db/schema.h"
#include "core/update.h"

namespace orchestra::core {

/// Flattens an ordered update sequence into a set of mutually independent
/// net updates, removing every intermediate step (the Heraclitus-style
/// delta composition of [12, 14] that §4.2 relies on). Composition rules
/// per logical tuple chain:
///
///   +t        ∘ t->t'   = +t'
///   +t        ∘ -t      = (nothing)
///   t0->t     ∘ t->t'   = t0->t'   (identity t0->t0 is dropped)
///   t0->t     ∘ -t      = -t0
///   -t        ∘ +t'     = t->t'    (remove-and-replace of the same key;
///                                   dropped entirely if t' == t)
///
/// Chains follow key changes: a modify that moves a tuple to a new key
/// moves its chain with it.
///
/// Fails with Conflict if the sequence is internally inconsistent (e.g.
/// inserts a key twice without an intervening delete, or modifies a tuple
/// the sequence has already deleted) — such a sequence cannot be one
/// transaction extension and the caller rejects it.
///
/// The resulting net updates are returned in deterministic order
/// (relation, key) and carry the origin of the *last* writer of each
/// chain, which is what trust predicates over update origin inspect.
Result<std::vector<Update>> Flatten(const db::Catalog& catalog,
                                    const std::vector<Update>& sequence);

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_FLATTEN_H_
