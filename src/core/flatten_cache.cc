#include "core/flatten_cache.h"

#include <unordered_set>

#include "core/extension.h"

namespace orchestra::core {

uint64_t FlattenCache::ExtensionFingerprint(
    const std::vector<TransactionId>& extension) {
  // Seed with the length so a prefix and its extension never collide
  // structurally; id order matters (extensions are publication-sorted).
  uint64_t fp = HashCombine(0x9e3779b97f4a7c15ULL, extension.size());
  for (const TransactionId& id : extension) {
    fp = HashCombine(fp, static_cast<uint64_t>(id.origin));
    fp = HashCombine(fp, id.seq);
  }
  return fp;
}

const FlattenCache::FlatEntry* FlattenCache::FindFlat(
    const TransactionId& root, uint64_t fingerprint) const {
  auto it = flat_.find(root);
  if (it == flat_.end() || it->second.fingerprint != fingerprint) {
    ++stats_.flat_misses;
    return nullptr;
  }
  ++stats_.flat_hits;
  return &it->second;
}

void FlattenCache::PutFlat(const TransactionId& root, uint64_t fingerprint,
                           std::vector<Update> up_ex, bool ok) {
  FlatEntry& entry = flat_[root];
  entry.fingerprint = fingerprint;
  entry.up_ex = std::move(up_ex);
  entry.ok = ok;
}

const FlattenCache::PairVerdict* FlattenCache::FindPair(
    const TransactionId& a, const TransactionId& b, uint64_t fp_a,
    uint64_t fp_b) const {
  auto it = pairs_.find(PairKey{a, b});
  if (it == pairs_.end() || it->second.fp_a != fp_a ||
      it->second.fp_b != fp_b) {
    ++stats_.pair_misses;
    return nullptr;
  }
  ++stats_.pair_hits;
  return &it->second;
}

void FlattenCache::PutPair(const TransactionId& a, const TransactionId& b,
                           PairVerdict verdict) {
  pairs_[PairKey{a, b}] = std::move(verdict);
}

void FlattenCache::Invalidate(const std::vector<TransactionId>& roots) {
  if (roots.empty()) return;
  TxnIdSet gone(roots.begin(), roots.end());
  for (const TransactionId& id : roots) flat_.erase(id);
  // Pure filter: which entries survive does not depend on visit order.
  std::erase_if(pairs_, [&](const auto& entry) {
    return gone.count(entry.first.a) != 0 || gone.count(entry.first.b) != 0;
  });
}

void FlattenCache::Clear() {
  flat_.clear();
  pairs_.clear();
}

}  // namespace orchestra::core
