#ifndef ORCHESTRA_CORE_FLATTEN_CACHE_H_
#define ORCHESTRA_CORE_FLATTEN_CACHE_H_

#include <unordered_map>
#include <vector>

#include "core/conflict.h"
#include "core/ids.h"
#include "core/update.h"

namespace orchestra::core {

/// Cross-round cache of the two expensive, data-only products of
/// reconciliation analysis: per-root flattened update extensions and
/// pairwise direct-conflict verdicts. A published transaction's updates
/// never change, so both products depend only on the root's transaction
/// extension — which the cache captures as a 64-bit fingerprint of the
/// ordered extension id list. A lookup hits only when the fingerprint
/// matches, so an extension that shrank (an antecedent was applied since
/// the last round) or otherwise changed misses naturally and is
/// recomputed; this is how reconsidered deferred transactions are
/// invalidated without any explicit bookkeeping.
///
/// The cache is participant soft state (§5.2): losing it costs only
/// recomputation. It must be explicitly invalidated when the
/// trust/acceptance configuration changes in a way fingerprints cannot
/// see — a conflict resolution rejecting transactions (Invalidate) or a
/// wholesale trust-policy change (Clear).
///
/// Thread-safety: lookups and insertions are NOT synchronized. The
/// analysis code probes and fills the cache only from the coordinating
/// thread, outside parallel regions.
class FlattenCache {
 public:
  struct FlatEntry {
    uint64_t fingerprint = 0;
    std::vector<Update> up_ex;
    /// Mirrors ReconcileAnalysis::flatten_ok — false caches the fact
    /// that the extension is internally inconsistent.
    bool ok = false;
  };

  /// Verdict for the ordered root pair (a, b), a < b: the conflict
  /// points of the direct, non-subsumed conflict test (empty == the
  /// pair does not conflict), valid while both extensions still have
  /// the recorded fingerprints.
  struct PairVerdict {
    uint64_t fp_a = 0;
    uint64_t fp_b = 0;
    std::vector<ConflictPoint> points;
  };

  /// Hit/miss counters since construction or ResetStats; exposed for
  /// benchmarks and tests.
  struct Stats {
    size_t flat_hits = 0;
    size_t flat_misses = 0;
    size_t pair_hits = 0;
    size_t pair_misses = 0;
  };

  /// Order-sensitive fingerprint of an extension id list.
  static uint64_t ExtensionFingerprint(
      const std::vector<TransactionId>& extension);

  /// The cached flattening for `root`, or nullptr when absent or when
  /// the cached entry covers a different extension.
  const FlatEntry* FindFlat(const TransactionId& root,
                            uint64_t fingerprint) const;
  void PutFlat(const TransactionId& root, uint64_t fingerprint,
               std::vector<Update> up_ex, bool ok);

  /// The cached conflict verdict for the pair (a, b) — callers must pass
  /// a < b — or nullptr when absent or stale.
  const PairVerdict* FindPair(const TransactionId& a, const TransactionId& b,
                              uint64_t fp_a, uint64_t fp_b) const;
  void PutPair(const TransactionId& a, const TransactionId& b,
               PairVerdict verdict);

  /// Drops every entry mentioning any of `roots` (flat entries keyed by
  /// a listed root; pair verdicts with a listed root on either side).
  /// Called when roots leave the undecided set for good (applied or
  /// rejected) and when a conflict resolution rejects transactions.
  void Invalidate(const std::vector<TransactionId>& roots);

  /// Drops everything; required when the trust policy changes.
  void Clear();

  size_t flat_entries() const { return flat_.size(); }
  size_t pair_entries() const { return pairs_.size(); }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  struct PairKey {
    TransactionId a;
    TransactionId b;
    friend bool operator==(const PairKey& x, const PairKey& y) {
      return x.a == y.a && x.b == y.b;
    }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      TransactionIdHash h;
      return static_cast<size_t>(HashCombine(h(k.a), h(k.b)));
    }
  };

  std::unordered_map<TransactionId, FlatEntry, TransactionIdHash> flat_;
  std::unordered_map<PairKey, PairVerdict, PairKeyHash> pairs_;
  mutable Stats stats_;
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_FLATTEN_CACHE_H_
