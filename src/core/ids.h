#ifndef ORCHESTRA_CORE_IDS_H_
#define ORCHESTRA_CORE_IDS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/string_util.h"

namespace orchestra::core {

/// Identifies one autonomous participant (peer) p_i in the CDSS.
using ParticipantId = uint32_t;

/// Reconciliation epoch counter `e` (Definition 1). Incremented each time
/// a participant publishes; epoch 0 means "before the first publication".
using Epoch = int64_t;

constexpr Epoch kNoEpoch = -1;

/// Globally unique transaction identifier X_{i:j}: the originator i plus
/// its local, monotonically increasing sequence number j.
struct TransactionId {
  ParticipantId origin = 0;
  uint64_t seq = 0;

  std::string ToString() const {
    return "X" + std::to_string(origin) + ":" + std::to_string(seq);
  }

  friend bool operator==(const TransactionId& a, const TransactionId& b) {
    return a.origin == b.origin && a.seq == b.seq;
  }
  friend bool operator!=(const TransactionId& a, const TransactionId& b) {
    return !(a == b);
  }
  friend bool operator<(const TransactionId& a, const TransactionId& b) {
    if (a.origin != b.origin) return a.origin < b.origin;
    return a.seq < b.seq;
  }
};

struct TransactionIdHash {
  size_t operator()(const TransactionId& id) const {
    return static_cast<size_t>(
        HashCombine(static_cast<uint64_t>(id.origin), id.seq));
  }
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_IDS_H_
