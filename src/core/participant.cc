#include "core/participant.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/analysis.h"
#include "core/apply.h"
#include "core/extension.h"
#include "core/flatten.h"

namespace orchestra::core {

Participant::Participant(ParticipantId id, const db::Catalog* catalog,
                         TrustPolicy policy, ReconcileOptions options)
    : id_(id),
      catalog_(catalog),
      policy_(std::move(policy)),
      instance_(catalog),
      reconciler_(catalog, options),
      retry_rng_(0x9e3779b97f4a7c15ULL ^ id) {
  ORCH_CHECK(policy_.self() == id, "trust policy self id mismatch");
}

Result<std::unique_ptr<Participant>> Participant::RecoverFromStore(
    ParticipantId id, const db::Catalog* catalog, TrustPolicy policy,
    UpdateStore* store, ReconcileOptions options) {
  ORCH_ASSIGN_OR_RETURN(RecoveryBundle bundle,
                        store->FetchRecoveryState(id));
  return FromBundle(id, catalog, std::move(policy), store, std::move(bundle),
                    options);
}

Result<std::unique_ptr<Participant>> Participant::BootstrapFrom(
    ParticipantId id, const db::Catalog* catalog, TrustPolicy policy,
    UpdateStore* store, ParticipantId source_peer, ReconcileOptions options) {
  ORCH_ASSIGN_OR_RETURN(RecoveryBundle bundle,
                        store->Bootstrap(id, source_peer));
  return FromBundle(id, catalog, std::move(policy), store, std::move(bundle),
                    options);
}

Result<std::unique_ptr<Participant>> Participant::FromBundle(
    ParticipantId id, const db::Catalog* catalog, TrustPolicy policy,
    UpdateStore* store, RecoveryBundle bundle, ReconcileOptions options) {
  auto participant =
      std::make_unique<Participant>(id, catalog, std::move(policy), options);

  // Replay the applied transactions in publication order. Idempotent
  // application semantics make agreement duplicates harmless.
  std::vector<TransactionId> applied_ids;
  applied_ids.reserve(bundle.applied.size());
  for (Transaction& txn : bundle.applied) {
    ORCH_ASSIGN_OR_RETURN(std::vector<Update> flattened,
                          Flatten(*catalog, txn.updates));
    ORCH_RETURN_IF_ERROR(ApplyFlattened(&participant->instance_, flattened));
    participant->applied_.insert(txn.id);
    applied_ids.push_back(txn.id);
    if (txn.id.origin == id && txn.id.seq >= participant->next_seq_) {
      participant->next_seq_ = txn.id.seq + 1;
    }
    participant->txn_cache_.Put(std::move(txn));
  }
  participant->UpdateVersionMap(applied_ids);
  for (const TransactionId& rejected_id : bundle.rejected) {
    participant->rejected_.insert(rejected_id);
  }
  participant->last_recno_ = bundle.recno;

  // Restore the deferred backlog and re-reconcile it, which rebuilds the
  // dirty-value set and the open conflict groups.
  for (Transaction& txn : bundle.closure) {
    participant->txn_cache_.Put(std::move(txn));
  }
  for (const auto& [txn_id, priority] : bundle.undecided) {
    participant->deferred_[txn_id] = DeferredInfo{priority};
  }
  if (!participant->deferred_.empty()) {
    ORCH_ASSIGN_OR_RETURN(std::vector<TrustedTxn> txns,
                          participant->ReconsiderDeferred());
    ORCH_RETURN_IF_ERROR(participant
                             ->RunAndCommit(store, bundle.recno, bundle.epoch,
                                            std::move(txns), 0,
                                            bundle.undecided.size(),
                                            /*local=*/nullptr)
                             .status());
  }
  return participant;
}

Result<TransactionId> Participant::ExecuteTransaction(
    std::vector<Update> updates) {
  if (updates.empty()) {
    return Status::InvalidArgument("transaction must contain updates");
  }
  // Stamp every update with this participant's identity.
  std::vector<Update> stamped;
  stamped.reserve(updates.size());
  for (Update& u : updates) {
    switch (u.kind()) {
      case UpdateKind::kInsert:
        stamped.push_back(Update::Insert(u.relation(), u.new_tuple(), id_));
        break;
      case UpdateKind::kDelete:
        stamped.push_back(Update::Delete(u.relation(), u.old_tuple(), id_));
        break;
      case UpdateKind::kModify:
        stamped.push_back(
            Update::Modify(u.relation(), u.old_tuple(), u.new_tuple(), id_));
        break;
    }
  }

  // Validate and apply atomically via the flattened form.
  ORCH_ASSIGN_OR_RETURN(std::vector<Update> flattened,
                        Flatten(*catalog_, stamped));
  ORCH_RETURN_IF_ERROR(ApplyFlattened(&instance_, flattened));

  const TransactionId txn_id{id_, next_seq_++};

  // Antecedents: for each delete/modify, the last published transaction
  // that wrote the tuple being consumed — unless this same transaction
  // wrote it earlier in its own sequence.
  std::vector<TransactionId> antecedents;
  RelKeySet written_here;
  auto add_antecedent = [&](const TransactionId& ante) {
    if (ante != txn_id &&
        std::find(antecedents.begin(), antecedents.end(), ante) ==
            antecedents.end()) {
      antecedents.push_back(ante);
    }
  };
  for (const Update& u : stamped) {
    const db::RelationSchema& schema =
        *catalog_->GetRelation(u.relation()).value();
    if (auto read = u.ReadKey(schema)) {
      RelKey rk{u.relation(), *read};
      if (written_here.count(rk) == 0) {
        auto it = version_map_.find(rk);
        if (it != version_map_.end()) add_antecedent(it->second);
      }
    }
    if (auto write = u.WriteKey(schema)) {
      RelKey rk{u.relation(), *write};
      // Re-creating a key this participant previously deleted chains to
      // the deleting transaction (see tombstone_map_).
      if (u.is_insert() && written_here.count(rk) == 0) {
        auto it = tombstone_map_.find(rk);
        if (it != tombstone_map_.end()) add_antecedent(it->second);
      }
      written_here.insert(std::move(rk));
    }
  }

  // Advance the version and tombstone maps with the net effects.
  for (const Update& u : flattened) {
    const db::RelationSchema& schema =
        *catalog_->GetRelation(u.relation()).value();
    if (auto read = u.ReadKey(schema)) {
      version_map_.erase(RelKey{u.relation(), *read});
      if (u.is_delete()) {
        tombstone_map_[RelKey{u.relation(), *read}] = txn_id;
      }
    }
    if (auto write = u.WriteKey(schema)) {
      RelKey rk{u.relation(), *write};
      tombstone_map_.erase(rk);
      version_map_[std::move(rk)] = txn_id;
    }
  }

  Transaction txn;
  txn.id = txn_id;
  txn.updates = std::move(stamped);
  txn.antecedents = std::move(antecedents);
  publish_queue_.push_back(txn);
  txn_cache_.Put(txn);
  applied_.insert(txn_id);
  for (const Update& u : flattened) own_delta_.push_back(u);
  return txn_id;
}

Result<Epoch> Participant::Publish(UpdateStore* store) {
  if (publish_queue_.empty()) return kNoEpoch;
  TraceSpan span("participant.publish");
  SimSpan sim_span(&sim_trace_, "participant.publish");
  static Counter& publishes =
      MetricsRegistry::Global().GetCounter("reconcile.publishes");
  static Counter& published_txns =
      MetricsRegistry::Global().GetCounter("reconcile.published_txns");
  // Pass a copy: a failed publish (store unavailable) must leave the
  // queue intact so the transactions can be republished later.
  ORCH_ASSIGN_OR_RETURN(Epoch epoch, store->Publish(id_, publish_queue_));
  publishes.Increment();
  published_txns.Add(static_cast<int64_t>(publish_queue_.size()));
  publish_queue_.clear();
  return epoch;
}

Result<std::vector<TrustedTxn>> Participant::ReconsiderDeferred() {
  std::vector<TrustedTxn> out;
  out.reserve(deferred_.size());
  for (const auto& [id, info] : deferred_) {
    TrustedTxn t;
    t.id = id;
    t.priority = info.priority;
    t.previously_deferred = true;
    ORCH_ASSIGN_OR_RETURN(t.extension,
                          ComputeExtension(txn_cache_, id, applied_));
    out.push_back(std::move(t));
  }
  return out;
}

Result<ReconcileReport> Participant::Reconcile(UpdateStore* store) {
  TraceSpan span("participant.reconcile");
  SimSpan sim_span(&sim_trace_, "participant.reconcile");
  const StoreStats before = store->StatsFor(id_);
  ReconcileFetch fetch;
  {
    TraceSpan fetch_span("reconcile.fetch");
    SimSpan sim_fetch(&sim_trace_, "reconcile.fetch");
    ORCH_ASSIGN_OR_RETURN(fetch, store->BeginReconciliation(id_));
  }

  Stopwatch local;
  // Fold the fetched bundle into the local transaction cache.
  {
    TraceSpan fold_span("reconcile.fold_cache");
    for (Transaction& txn : fetch.transactions) {
      txn_cache_.Put(std::move(txn));
    }
  }

  std::vector<TrustedTxn> txns;
  txns.reserve(fetch.trusted.size() + deferred_.size());
  size_t fetched = 0;
  // Transactions the store resent although this participant already
  // decided them: the store lost (never received) the decision — a crash
  // between applying and recording. Re-record them this round.
  std::vector<TransactionId> catch_up_applied;
  std::vector<TransactionId> catch_up_rejected;
  for (const auto& [txn_id, priority] : fetch.trusted) {
    if (applied_.count(txn_id) != 0) {
      catch_up_applied.push_back(txn_id);
      continue;
    }
    if (rejected_.count(txn_id) != 0) {
      catch_up_rejected.push_back(txn_id);
      continue;
    }
    if (deferred_.count(txn_id) != 0) {
      continue;  // still undecided here too; ReconsiderDeferred covers it
    }
    TrustedTxn t;
    t.id = txn_id;
    t.priority = priority;
    ORCH_ASSIGN_OR_RETURN(t.extension,
                          ComputeExtension(txn_cache_, txn_id, applied_));
    txns.push_back(std::move(t));
    ++fetched;
  }
  ORCH_ASSIGN_OR_RETURN(std::vector<TrustedTxn> reconsidered,
                        ReconsiderDeferred());
  const size_t n_reconsidered = reconsidered.size();
  for (TrustedTxn& t : reconsidered) txns.push_back(std::move(t));

  ORCH_ASSIGN_OR_RETURN(
      ReconcileReport report,
      RunAndCommit(store, fetch.recno, fetch.epoch, std::move(txns), fetched,
                   n_reconsidered, &local, /*analysis=*/nullptr,
                   catch_up_applied, catch_up_rejected));
  report.store = store->StatsFor(id_) - before;
  report.fetch_stats = fetch.stats;
  RecordFetchMetrics(fetched, n_reconsidered, fetch.stats);
  return report;
}

// Registry-side accounting shared by the client-centric and
// network-centric reconcile paths; mirrors FetchStats so registry
// consumers see the same cache numbers `ReconcileReport` carries.
void Participant::RecordFetchMetrics(size_t fetched, size_t reconsidered,
                                     const FetchStats& stats) {
  static Counter& rounds =
      MetricsRegistry::Global().GetCounter("reconcile.rounds");
  static Counter& fetched_txns =
      MetricsRegistry::Global().GetCounter("reconcile.fetched_txns");
  static Counter& reconsidered_txns =
      MetricsRegistry::Global().GetCounter("reconcile.reconsidered_txns");
  static Counter& decoded =
      MetricsRegistry::Global().GetCounter("reconcile.fetch.decoded_txns");
  static Counter& cache_hits =
      MetricsRegistry::Global().GetCounter("reconcile.fetch.cache_hits");
  static Counter& suppressed =
      MetricsRegistry::Global().GetCounter("reconcile.fetch.suppressed_lookups");
  static Counter& batched =
      MetricsRegistry::Global().GetCounter("reconcile.fetch.batched_messages");
  rounds.Increment();
  fetched_txns.Add(static_cast<int64_t>(fetched));
  reconsidered_txns.Add(static_cast<int64_t>(reconsidered));
  decoded.Add(stats.decoded);
  cache_hits.Add(stats.cache_hits);
  suppressed.Add(stats.suppressed_lookups);
  batched.Add(stats.batched_messages);
}

Result<ReconcileReport> Participant::RunAndCommit(
    UpdateStore* store, int64_t recno, Epoch epoch,
    std::vector<TrustedTxn> txns, size_t fetched, size_t reconsidered,
    Stopwatch* local, const ReconcileAnalysis* analysis,
    const std::vector<TransactionId>& catch_up_applied,
    const std::vector<TransactionId>& catch_up_rejected) {
  ReconcileInput input;
  input.recno = recno;
  input.txns = std::move(txns);
  input.provider = &txn_cache_;
  input.analysis = analysis;
  // Client-centric runs recompute the analysis locally; give them the
  // cross-round cache so unchanged deferred extensions are not
  // re-flattened or re-tested (soft state, §5.2).
  input.flatten_cache = &flatten_cache_;
  auto own_flat = Flatten(*catalog_, own_delta_);
  if (own_flat.ok()) {
    input.own_delta = *std::move(own_flat);
  } else {
    // The own delta was applied locally, so it must flatten; tolerate by
    // passing it unflattened (conflict detection still works per key).
    input.own_delta = own_delta_;
  }
  input.applied = &applied_;
  input.rejected = &rejected_;
  input.dirty = &dirty_;
  input.collect_provenance = reconciler_.options().record_provenance;
  if (sim_trace_.active()) input.sim_trace = &sim_trace_;

  ReconcileOutcome outcome;
  {
    TraceSpan run_span("reconcile.run");
    ORCH_ASSIGN_OR_RETURN(outcome, reconciler_.Run(input, &instance_));
  }
  // Stamp the decision context the reconciler does not know.
  for (ProvenanceRecord& rec : outcome.provenance) {
    rec.peer = id_;
    rec.epoch = epoch;
  }

  // Fold the outcome into durable and soft state.
  UpdateVersionMap(outcome.applied_txns);
  for (const TransactionId& txn_id : outcome.applied_txns) {
    applied_.insert(txn_id);
    deferred_.erase(txn_id);
  }
  for (const TransactionId& txn_id : outcome.rejected_roots) {
    rejected_.insert(txn_id);
    deferred_.erase(txn_id);
  }
  // Rebuild the deferred set: deferred roots keep (or gain) their info.
  std::map<TransactionId, DeferredInfo> new_deferred;
  for (size_t i = 0; i < input.txns.size(); ++i) {
    // Outcome lists identify roots by id; use the input priorities.
    const TrustedTxn& t = input.txns[i];
    if (std::find(outcome.deferred_roots.begin(), outcome.deferred_roots.end(),
                  t.id) != outcome.deferred_roots.end()) {
      new_deferred[t.id] = DeferredInfo{t.priority};
    }
  }
  deferred_ = std::move(new_deferred);
  dirty_ = std::move(outcome.dirty_values);
  conflict_groups_ = std::move(outcome.conflict_groups);
  // Decided roots never come back as reconciliation inputs; drop their
  // cached flattenings and pair verdicts so the cache tracks exactly the
  // undecided backlog.
  flatten_cache_.Invalidate(outcome.applied_txns);
  flatten_cache_.Invalidate(outcome.rejected_roots);
  last_recno_ = recno;
  own_delta_.clear();

  // The local clock covers only client-side computation; decision
  // recording is store work and is timed by the store itself.
  const int64_t local_micros = local == nullptr ? 0 : local->ElapsedMicros();

  // Record this round's decisions plus any catch-up and any decisions a
  // previous round failed to record (deduplicated — recording twice is
  // harmless but wasteful). The common case has neither; it must not
  // pay for copies or a dedup set.
  const std::vector<TransactionId>* to_apply = &outcome.applied_txns;
  const std::vector<TransactionId>* to_reject = &outcome.rejected_roots;
  std::vector<TransactionId> record_applied;
  std::vector<TransactionId> record_rejected;
  if (!catch_up_applied.empty() || !catch_up_rejected.empty() ||
      !unrecorded_applied_.empty() || !unrecorded_rejected_.empty()) {
    record_applied = outcome.applied_txns;
    record_rejected = outcome.rejected_roots;
    TxnIdSet seen(record_applied.begin(), record_applied.end());
    seen.insert(record_rejected.begin(), record_rejected.end());
    auto merge = [&seen](std::vector<TransactionId>* dst,
                         const std::vector<TransactionId>& src) {
      for (const TransactionId& id : src) {
        if (seen.insert(id).second) dst->push_back(id);
      }
    };
    merge(&record_applied, catch_up_applied);
    merge(&record_applied, unrecorded_applied_);
    merge(&record_rejected, catch_up_rejected);
    merge(&record_rejected, unrecorded_rejected_);
    to_apply = &record_applied;
    to_reject = &record_rejected;
  }
  Status recorded;
  {
    TraceSpan record_span("reconcile.record_decisions");
    SimSpan sim_record(&sim_trace_, "reconcile.record_decisions");
    recorded = store->RecordDecisions(id_, recno, *to_apply, *to_reject);
  }
  if (recorded.ok()) {
    unrecorded_applied_.clear();
    unrecorded_rejected_.clear();
    // Persist the explanations only after the decisions themselves are
    // durable: provenance is advisory, the decision log is not, and the
    // log must never trail its own explanation. Failures are counted
    // and dropped — a round never fails over its explanation.
    if (!outcome.provenance.empty()) {
      Status prov_recorded =
          store->RecordProvenance(id_, recno, outcome.provenance);
      if (!prov_recorded.ok()) {
        static Counter& prov_drops = MetricsRegistry::Global().GetCounter(
            "provenance.record_failures");
        prov_drops.Increment();
      }
    }
  } else if (recorded.code() == StatusCode::kUnavailable ||
             recorded.code() == StatusCode::kCorruption) {
    // Transient loss, or a request the store rejected as corrupted in
    // flight. Local state is already consistent, so the round still
    // succeeds; stash the decisions and re-send them with the next
    // recording instead of unwinding (or re-running) the round.
    unrecorded_applied_ = *to_apply;
    unrecorded_rejected_ = *to_reject;
  } else {
    return recorded;
  }

  static Counter& accepted_roots =
      MetricsRegistry::Global().GetCounter("reconcile.accepted_roots");
  static Counter& rejected_roots =
      MetricsRegistry::Global().GetCounter("reconcile.rejected_roots");
  static Counter& deferred_roots =
      MetricsRegistry::Global().GetCounter("reconcile.deferred_roots");
  static Histogram& local_hist =
      MetricsRegistry::Global().GetHistogram("reconcile.local_micros");
  accepted_roots.Add(static_cast<int64_t>(outcome.accepted_roots.size()));
  rejected_roots.Add(static_cast<int64_t>(outcome.rejected_roots.size()));
  deferred_roots.Add(static_cast<int64_t>(outcome.deferred_roots.size()));
  local_hist.Observe(local_micros);

  if (!outcome.provenance.empty()) {
    static Counter& prov_records =
        MetricsRegistry::Global().GetCounter("provenance.records");
    static Counter& prov_dilemmas =
        MetricsRegistry::Global().GetCounter("provenance.dilemmas");
    static Counter& prov_transitive = MetricsRegistry::Global().GetCounter(
        "provenance.transitive_accepts");
    prov_records.Add(static_cast<int64_t>(outcome.provenance.size()));
    int64_t dilemmas = 0;
    int64_t transitive = 0;
    for (const ProvenanceRecord& rec : outcome.provenance) {
      if (rec.cause == ProvenanceCause::kEqualPriorityDilemma) ++dilemmas;
      if (rec.cause == ProvenanceCause::kTransitiveAccept) ++transitive;
    }
    prov_dilemmas.Add(dilemmas);
    prov_transitive.Add(transitive);
    provenance_log_.insert(provenance_log_.end(), outcome.provenance.begin(),
                           outcome.provenance.end());
  }

  ReconcileReport report;
  report.local_micros = local_micros;
  report.recno = recno;
  report.epoch = epoch;
  report.fetched = fetched;
  report.reconsidered = reconsidered;
  report.accepted = std::move(outcome.accepted_roots);
  report.rejected = std::move(outcome.rejected_roots);
  report.deferred = std::move(outcome.deferred_roots);
  report.open_conflict_groups = conflict_groups_.size();
  report.provenance = std::move(outcome.provenance);
  return report;
}

void Participant::UpdateVersionMap(
    const std::vector<TransactionId>& applied_txns) {
  // Publication order so the last writer wins.
  std::vector<const Transaction*> txns;
  txns.reserve(applied_txns.size());
  for (const TransactionId& id : applied_txns) {
    auto txn = txn_cache_.Get(id);
    if (txn.ok()) txns.push_back(*txn);
  }
  std::sort(txns.begin(), txns.end(),
            [](const Transaction* a, const Transaction* b) {
              if (a->epoch != b->epoch) return a->epoch < b->epoch;
              return a->id < b->id;
            });
  for (const Transaction* txn : txns) {
    for (const Update& u : txn->updates) {
      const db::RelationSchema& schema =
          *catalog_->GetRelation(u.relation()).value();
      if (auto read = u.ReadKey(schema)) {
        version_map_.erase(RelKey{u.relation(), *read});
        if (u.is_delete()) {
          tombstone_map_[RelKey{u.relation(), *read}] = txn->id;
        }
      }
      if (auto write = u.WriteKey(schema)) {
        RelKey rk{u.relation(), *write};
        tombstone_map_.erase(rk);
        version_map_[std::move(rk)] = txn->id;
      }
    }
  }
}

Result<ReconcileReport> Participant::ReconcileNetworkCentric(
    UpdateStore* store) {
  auto* nc = dynamic_cast<NetworkCentricStore*>(store);
  if (nc == nullptr) {
    return Status::NotSupported(std::string(store->name()) +
                                " store does not support network-centric "
                                "reconciliation");
  }
  TraceSpan span("participant.reconcile_network_centric");
  SimSpan sim_span(&sim_trace_, "participant.reconcile");
  const StoreStats before = store->StatsFor(id_);
  NetworkCentricFetch fetch;
  {
    TraceSpan fetch_span("reconcile.fetch");
    SimSpan sim_fetch(&sim_trace_, "reconcile.fetch");
    ORCH_ASSIGN_OR_RETURN(fetch, nc->BeginNetworkCentricReconciliation(id_));
  }

  Stopwatch local;
  {
    TraceSpan fold_span("reconcile.fold_cache");
    for (Transaction& txn : fetch.base.transactions) {
      txn_cache_.Put(std::move(txn));
    }
  }
  // If the store resent something we already know, the shipped analysis
  // indices no longer line up — drop those entries and recompute
  // locally. Resent *decided* transactions mean the store lost the
  // decision; re-record them this round.
  bool analysis_valid = true;
  std::vector<TrustedTxn> txns;
  txns.reserve(fetch.trusted_txns.size() + deferred_.size());
  std::vector<TransactionId> catch_up_applied;
  std::vector<TransactionId> catch_up_rejected;
  for (TrustedTxn& t : fetch.trusted_txns) {
    if (applied_.count(t.id) != 0) {
      analysis_valid = false;
      catch_up_applied.push_back(t.id);
      continue;
    }
    if (rejected_.count(t.id) != 0) {
      analysis_valid = false;
      catch_up_rejected.push_back(t.id);
      continue;
    }
    if (deferred_.count(t.id) != 0) {
      analysis_valid = false;  // ReconsiderDeferred covers it
      continue;
    }
    txns.push_back(std::move(t));
  }
  const size_t fetched = txns.size();
  ORCH_ASSIGN_OR_RETURN(std::vector<TrustedTxn> reconsidered,
                        ReconsiderDeferred());
  const size_t n_reconsidered = reconsidered.size();
  for (TrustedTxn& t : reconsidered) txns.push_back(std::move(t));

  ReconcileAnalysis analysis;
  const ReconcileAnalysis* analysis_ptr = nullptr;
  if (analysis_valid) {
    // Extend the network-computed analysis with the locally cached
    // deferred backlog: flatten the tail, then find conflicts for pairs
    // involving at least one reconsidered transaction.
    analysis = std::move(fetch.analysis);
    FlattenExtensions(*catalog_, txn_cache_, txns, &analysis);
    FindExtensionConflicts(*catalog_, txn_cache_, txns, fetched, &analysis);
    analysis_ptr = &analysis;
  }

  ORCH_ASSIGN_OR_RETURN(
      ReconcileReport report,
      RunAndCommit(store, fetch.base.recno, fetch.base.epoch, std::move(txns),
                   fetched, n_reconsidered, &local, analysis_ptr,
                   catch_up_applied, catch_up_rejected));
  report.store = store->StatsFor(id_) - before;
  report.fetch_stats = fetch.base.stats;
  RecordFetchMetrics(fetched, n_reconsidered, fetch.base.stats);
  return report;
}

namespace {

/// Adds `delta` to `*total`, saturating at INT64_MAX instead of
/// wrapping (signed overflow is UB). Both operands non-negative.
void SaturatingAdd(int64_t* total, int64_t delta) {
  if (*total > std::numeric_limits<int64_t>::max() - delta) {
    *total = std::numeric_limits<int64_t>::max();
  } else {
    *total += delta;
  }
}

/// Runs `op` up to retry.max_attempts times, retrying only Unavailable
/// (transient) failures. Backoff is accumulated into `stats`, never
/// slept: the simulation charges it as time without paying it. Each
/// step is capped at retry.max_backoff_micros *before* jitter (the
/// exponential growth itself is clamped, so no intermediate value can
/// overflow int64), then jittered from the caller's seeded stream (see
/// ReconcileRetryOptions::backoff_jitter) to break retry lockstep.
template <typename Op>
auto RetryUnavailable(const ReconcileRetryOptions& retry, RetryStats* stats,
                      Rng* rng, Op&& op) -> decltype(op()) {
  static Counter& retry_ops = MetricsRegistry::Global().GetCounter("retry.operations");
  static Counter& retry_attempts =
      MetricsRegistry::Global().GetCounter("retry.attempts");
  static Counter& retry_backoff =
      MetricsRegistry::Global().GetCounter("retry.backoff_sim_micros");
  static Counter& retry_exhausted =
      MetricsRegistry::Global().GetCounter("retry.exhausted");
  retry_ops.Increment();
  const int64_t cap = std::max<int64_t>(1, retry.max_backoff_micros);
  int64_t backoff =
      std::clamp<int64_t>(retry.initial_backoff_micros, 0, cap);
  for (int attempt = 1;; ++attempt) {
    auto result = op();
    // Accumulate (never overwrite): a stats struct shared across
    // several retried ops totals all their attempts, matching how
    // backoff_micros has always summed.
    if (stats != nullptr) ++stats->attempts;
    retry_attempts.Increment();
    // Retryable failures: outright loss (kUnavailable) and payloads the
    // receiver's checksum rejected (kCorruption). Both are properties of
    // one network traversal; a fresh attempt draws fresh randomness.
    const bool transient =
        !result.ok() &&
        (result.status().code() == StatusCode::kUnavailable ||
         result.status().code() == StatusCode::kCorruption);
    if (!transient || attempt >= retry.max_attempts) {
      if (transient) retry_exhausted.Increment();
      return result;
    }
    int64_t step = backoff;
    if (retry.backoff_jitter > 0 && rng != nullptr) {
      const double factor = 1.0 - retry.backoff_jitter +
                            2.0 * retry.backoff_jitter * rng->NextDouble();
      // Upward jitter may exceed the cap by up to the jitter fraction;
      // clamp in the double domain so the cast can never overflow even
      // when the cap itself is near INT64_MAX.
      const double jittered =
          std::min(static_cast<double>(backoff) * factor,
                   static_cast<double>(std::numeric_limits<int64_t>::max() / 2));
      step = std::max<int64_t>(static_cast<int64_t>(jittered), 0);
    }
    if (stats != nullptr) SaturatingAdd(&stats->backoff_micros, step);
    retry_backoff.Add(step);
    // Grow in the double domain and clamp to the cap before casting:
    // a double comfortably holds any pre-clamp product, and the cast
    // back only ever sees values <= cap.
    const double grown =
        static_cast<double>(backoff) * retry.backoff_multiplier;
    backoff = grown >= static_cast<double>(cap) ? cap
                                                : static_cast<int64_t>(grown);
    backoff = std::max<int64_t>(backoff, 0);
  }
}

}  // namespace

Result<Epoch> Participant::PublishWithRetry(UpdateStore* store,
                                            const ReconcileRetryOptions& retry,
                                            RetryStats* stats) {
  // Publish keeps the queue on failure and the store stages the epoch,
  // so each attempt starts from a clean slate.
  return RetryUnavailable(retry, stats, &retry_rng_,
                          [&]() { return Publish(store); });
}

Result<ReconcileReport> Participant::ReconcileWithRetry(
    UpdateStore* store, const ReconcileRetryOptions& retry,
    RetryStats* stats) {
  return RetryUnavailable(retry, stats, &retry_rng_,
                          [&]() { return Reconcile(store); });
}

Result<ReconcileReport> Participant::ReconcileNetworkCentricWithRetry(
    UpdateStore* store, const ReconcileRetryOptions& retry,
    RetryStats* stats) {
  return RetryUnavailable(retry, stats, &retry_rng_,
                          [&]() { return ReconcileNetworkCentric(store); });
}

Result<ReconcileReport> Participant::PublishAndReconcile(UpdateStore* store) {
  auto epoch = Publish(store);
  if (!epoch.ok()) return epoch.status();
  return Reconcile(store);
}

Result<ReconcileReport> Participant::ResolveConflict(
    UpdateStore* store, size_t group_index,
    std::optional<size_t> chosen_option) {
  if (group_index >= conflict_groups_.size()) {
    return Status::OutOfRange("no conflict group " +
                              std::to_string(group_index));
  }
  const ConflictGroup group = conflict_groups_[group_index];
  if (chosen_option && *chosen_option >= group.options.size()) {
    return Status::OutOfRange("conflict group has no option " +
                              std::to_string(*chosen_option));
  }
  // Reject every transaction in the options the user did not select.
  std::vector<TransactionId> losers;
  std::vector<ProvenanceRecord> loser_records;
  for (size_t i = 0; i < group.options.size(); ++i) {
    if (chosen_option && i == *chosen_option) continue;
    for (const TransactionId& id : group.options[i].txns) {
      losers.push_back(id);
      rejected_.insert(id);
      deferred_.erase(id);
      if (reconciler_.options().record_provenance) {
        ProvenanceRecord rec;
        rec.peer = id_;
        rec.recno = last_recno_;
        rec.txn = id;
        rec.verdict = Decision::kReject;
        rec.cause = ProvenanceCause::kUserRejected;
        rec.detail = "user resolved " + group.point.ToString() +
                     (chosen_option
                          ? " choosing option " + std::to_string(*chosen_option)
                          : " rejecting every option");
        loser_records.push_back(std::move(rec));
      }
    }
  }
  // The acceptance configuration changed: cached verdicts involving the
  // rejected transactions are stale (and useless) — drop them.
  flatten_cache_.Invalidate(losers);

  // Re-run reconciliation over the remaining deferred transactions (the
  // chosen option plus everything else still pending). The losers ride
  // along with that run's decision recording as catch-up rejections, so
  // the store sees one consolidated RecordDecisions call.
  const StoreStats before = store->StatsFor(id_);
  Stopwatch local;
  ORCH_ASSIGN_OR_RETURN(std::vector<TrustedTxn> txns, ReconsiderDeferred());
  ORCH_ASSIGN_OR_RETURN(
      ReconcileReport report,
      RunAndCommit(store, last_recno_, kNoEpoch, std::move(txns), 0,
                   deferred_.size(), &local, /*analysis=*/nullptr,
                   /*catch_up_applied=*/{}, /*catch_up_rejected=*/losers));
  report.store = store->StatsFor(id_) - before;
  // The losing options' explanations: recorded after the consolidated
  // decision recording inside RunAndCommit succeeded, same best-effort
  // contract as every provenance write.
  if (!loser_records.empty()) {
    static Counter& prov_records =
        MetricsRegistry::Global().GetCounter("provenance.records");
    prov_records.Add(static_cast<int64_t>(loser_records.size()));
    if (!store->RecordProvenance(id_, last_recno_, loser_records).ok()) {
      static Counter& prov_drops =
          MetricsRegistry::Global().GetCounter("provenance.record_failures");
      prov_drops.Increment();
    }
    for (ProvenanceRecord& rec : loser_records) {
      report.provenance.push_back(rec);
      provenance_log_.push_back(std::move(rec));
    }
  }
  return report;
}

}  // namespace orchestra::core
