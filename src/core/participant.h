#ifndef ORCHESTRA_CORE_PARTICIPANT_H_
#define ORCHESTRA_CORE_PARTICIPANT_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "common/sim_trace.h"
#include "db/instance.h"
#include "core/decision.h"
#include "core/flatten_cache.h"
#include "core/reconciler.h"
#include "core/transaction.h"
#include "core/trust.h"
#include "core/update_store.h"

namespace orchestra::core {

/// Summary of one reconciliation, including the timing split reported in
/// the paper's evaluation (store time vs. local time).
struct ReconcileReport {
  int64_t recno = 0;
  Epoch epoch = kNoEpoch;
  size_t fetched = 0;       // newly relevant trusted transactions
  size_t reconsidered = 0;  // previously deferred transactions re-examined
  std::vector<TransactionId> accepted;
  std::vector<TransactionId> rejected;
  std::vector<TransactionId> deferred;
  size_t open_conflict_groups = 0;
  /// Store-side cost of this reconciliation (network + store CPU).
  StoreStats store;
  /// How the store assembled the fetch (decodes, cache hits, suppressed
  /// lookups, batched messages); see core::FetchStats.
  FetchStats fetch_stats;
  /// Local (client-side) reconciliation algorithm time, measured.
  int64_t local_micros = 0;
  /// Why each input transaction was accepted/rejected/deferred this
  /// run, fully stamped (peer/recno/epoch). Empty when the engine runs
  /// with record_provenance off. See core/provenance.h.
  std::vector<ProvenanceRecord> provenance;
};

/// Retry policy for store operations that fail with a *transient* error
/// (Unavailable — a lost message or injected fault). Other codes are
/// never retried: they are answers, not outages. Backoff grows
/// exponentially and is accounted as simulated time, not slept, so
/// faulted simulations stay fast and deterministic.
struct ReconcileRetryOptions {
  /// Total attempts including the first; 1 disables retrying.
  int max_attempts = 8;
  int64_t initial_backoff_micros = 1000;
  double backoff_multiplier = 2.0;
  /// Ceiling on a single backoff step, applied before jitter. Keeps
  /// large max_attempts configurations (outage-wait loops) from growing
  /// the step past int64 range — unbounded exponential growth used to
  /// overflow and corrupt the accumulated backoff. Values < 1 are
  /// treated as 1.
  int64_t max_backoff_micros = 60'000'000;  // 60 simulated seconds
  /// Each backoff step is scaled by a uniform factor in
  /// [1 - backoff_jitter, 1 + backoff_jitter], drawn from the
  /// participant's own seeded stream. After a shared outage every peer
  /// observes the same Unavailable at the same simulated moment; without
  /// jitter they would all retry in lockstep and re-collide. 0 disables.
  double backoff_jitter = 0.25;
};

/// What retried operations actually did. Both fields *accumulate*, so
/// one struct can be threaded through several *WithRetry calls to total
/// a whole round's retry work: `attempts` adds every attempt made
/// (including each operation's first) and `backoff_micros` adds the
/// simulated backoff charged, saturating at INT64_MAX instead of
/// wrapping. Zero the struct (or use a fresh one) for per-op readings;
/// a single successful operation reads as `attempts == 1`.
struct RetryStats {
  int attempts = 0;              // attempts made, accumulated across ops
  int64_t backoff_micros = 0;    // simulated backoff accumulated
};

/// One CDSS participant p_i: a local database instance, a trust policy,
/// a publish queue, and the soft state required by the client-centric
/// reconciliation algorithm (transaction cache, deferred set, dirty
/// values, conflict groups). Everything except the instance and the
/// durable applied/rejected decisions (which the store also records) is
/// reconstructible soft state (§5.2).
class Participant {
 public:
  /// The catalog must outlive the participant. The trust policy's self
  /// id must equal `id`. `options` configures the reconciliation engine
  /// (thread count; see ReconcileOptions).
  Participant(ParticipantId id, const db::Catalog* catalog,
              TrustPolicy policy, ReconcileOptions options = {});

  /// Reconstructs a participant that lost all of its local state from
  /// the update store (§5.2: the client holds only soft state). The
  /// instance, version map and applied/rejected sets are rebuilt by
  /// replaying the store's decision log in publication order; the
  /// undecided (previously deferred) backlog is re-reconciled, restoring
  /// dirty values and conflict groups. Local transactions that were
  /// executed but never published are genuinely lost.
  static Result<std::unique_ptr<Participant>> RecoverFromStore(
      ParticipantId id, const db::Catalog* catalog, TrustPolicy policy,
      UpdateStore* store, ReconcileOptions options = {});

  /// Bootstraps a brand-new participant from `source_peer`'s published
  /// state (§1: a fresh local instance populated with downloaded data).
  /// The new participant adopts the source's applied transactions as its
  /// own accepted history; transactions in the adopted window that the
  /// source left undecided are re-reconciled under the new participant's
  /// *own* trust policy. After bootstrap the participant reconciles
  /// forward normally.
  static Result<std::unique_ptr<Participant>> BootstrapFrom(
      ParticipantId id, const db::Catalog* catalog, TrustPolicy policy,
      UpdateStore* store, ParticipantId source_peer,
      ReconcileOptions options = {});

  ParticipantId id() const { return id_; }
  const db::Instance& instance() const { return instance_; }
  const TrustPolicy& policy() const { return policy_; }

  /// Executes a local transaction: validates it against the local
  /// instance, applies it, computes its antecedents from the version
  /// map, and queues it for the next Publish. Returns the assigned id.
  Result<TransactionId> ExecuteTransaction(std::vector<Update> updates);

  /// Publishes all queued transactions to the store as one epoch.
  /// A no-op returning kNoEpoch when the queue is empty.
  Result<Epoch> Publish(UpdateStore* store);

  /// Reconciles against the store: fetches newly relevant transactions,
  /// reconsiders previously deferred ones, runs the reconciliation
  /// algorithm, applies accepted updates, and records decisions.
  Result<ReconcileReport> Reconcile(UpdateStore* store);

  /// Publish followed by Reconcile (the common combined step, §3).
  Result<ReconcileReport> PublishAndReconcile(UpdateStore* store);

  /// Retry wrappers: run the underlying operation, retrying only
  /// Unavailable failures with exponential backoff (see
  /// ReconcileRetryOptions). Safe because every store operation is
  /// either staged (a failed attempt leaves no visible state) or
  /// idempotent (re-recording a decision overwrites it with itself);
  /// catch-up re-recording in Reconcile covers the one gap — a crash
  /// after applying but before recording, which makes the store resend
  /// already-decided transactions. `stats`, when non-null, reports the
  /// attempts made and the simulated backoff accumulated.
  [[nodiscard]] Result<Epoch> PublishWithRetry(
      UpdateStore* store, const ReconcileRetryOptions& retry,
      RetryStats* stats = nullptr);
  [[nodiscard]] Result<ReconcileReport> ReconcileWithRetry(
      UpdateStore* store, const ReconcileRetryOptions& retry,
      RetryStats* stats = nullptr);
  [[nodiscard]] Result<ReconcileReport> ReconcileNetworkCentricWithRetry(
      UpdateStore* store, const ReconcileRetryOptions& retry,
      RetryStats* stats = nullptr);

  /// Network-centric reconciliation (§5, Fig. 3): the store computes the
  /// transaction extensions, flattening, and conflict detection; the
  /// client merges its deferred backlog and runs only the decision
  /// phases. The store must implement NetworkCentricStore (both shipped
  /// stores do, when constructed with the catalog); otherwise this
  /// returns NotSupported. Decisions are identical to client-centric
  /// reconciliation by construction — only the cost split differs.
  Result<ReconcileReport> ReconcileNetworkCentric(UpdateStore* store);

  /// Conflict groups currently awaiting user resolution.
  const std::vector<ConflictGroup>& pending_conflicts() const {
    return conflict_groups_;
  }

  /// Resolves one pending conflict group: the transactions of the chosen
  /// option (by index into the group's options) survive and are
  /// re-reconciled; all other options' transactions are rejected.
  /// Passing nullopt rejects every option. Other deferred transactions
  /// are re-examined in the same pass, per §4.
  Result<ReconcileReport> ResolveConflict(UpdateStore* store,
                                          size_t group_index,
                                          std::optional<size_t> chosen_option);

  /// Binds this participant to a simulated-time trace track: spans for
  /// publish / fetch / reconcile phases / decision recording are
  /// emitted at `now()`'s reading (the peer's simulated clock) onto
  /// track `tid`. Null tracer unbinds. Never affects decisions.
  void BindSimTrace(SimTracer* tracer, uint32_t tid,
                    std::function<int64_t()> now) {
    sim_trace_.tracer = tracer;
    sim_trace_.tid = tid;
    sim_trace_.now = std::move(now);
  }

  /// Every provenance record this participant has produced, in decision
  /// order (soft state; rebuilt only for rounds run after recovery).
  /// Source for the CLI's `explain` verb.
  const std::vector<ProvenanceRecord>& provenance_log() const {
    return provenance_log_;
  }

  /// Number of transactions this participant has applied (own plus
  /// imported, including transitively accepted antecedents).
  size_t applied_count() const { return applied_.size(); }
  size_t rejected_count() const { return rejected_.size(); }
  size_t deferred_count() const { return deferred_.size(); }

  const TxnIdSet& applied() const { return applied_; }
  const TxnIdSet& rejected() const { return rejected_; }

 private:
  struct DeferredInfo {
    int priority = 0;
  };

  /// Rebuilds TrustedTxn inputs for the previously deferred set.
  Result<std::vector<TrustedTxn>> ReconsiderDeferred();

  /// Shared tail of RecoverFromStore / BootstrapFrom: replays the
  /// bundle's applied history and re-reconciles its undecided backlog.
  static Result<std::unique_ptr<Participant>> FromBundle(
      ParticipantId id, const db::Catalog* catalog, TrustPolicy policy,
      UpdateStore* store, RecoveryBundle bundle, ReconcileOptions options);

  /// Runs the reconciler over `txns` and folds the outcome into the
  /// participant state; records decisions with the store. The catch-up
  /// lists are decisions the participant already made but the store
  /// evidently lost (it resent the transactions as undecided); they ride
  /// along in the same RecordDecisions call.
  Result<ReconcileReport> RunAndCommit(
      UpdateStore* store, int64_t recno, Epoch epoch,
      std::vector<TrustedTxn> txns, size_t fetched, size_t reconsidered,
      Stopwatch* local, const ReconcileAnalysis* analysis = nullptr,
      const std::vector<TransactionId>& catch_up_applied = {},
      const std::vector<TransactionId>& catch_up_rejected = {});

  /// Applies the version-map effects of applied transactions, in
  /// publication order, so future antecedent computation is correct.
  void UpdateVersionMap(const std::vector<TransactionId>& applied_txns);

  /// Bumps the process-wide metrics registry with one round's fetch
  /// accounting (mirrors ReconcileReport::fetch_stats).
  static void RecordFetchMetrics(size_t fetched, size_t reconsidered,
                                 const FetchStats& stats);

  ParticipantId id_;
  const db::Catalog* catalog_;
  TrustPolicy policy_;
  db::Instance instance_;
  Reconciler reconciler_;

  uint64_t next_seq_ = 0;
  /// Per-participant stream behind retry-backoff jitter; seeded from the
  /// participant id so runs stay deterministic yet peers decorrelate.
  Rng retry_rng_;
  std::vector<Transaction> publish_queue_;
  /// Updates executed locally since the previous reconciliation — the
  /// "delta for recno" used by CheckState.
  std::vector<Update> own_delta_;

  /// Soft state (reconstructible from the store).
  TransactionMap txn_cache_;
  TxnIdSet applied_;
  TxnIdSet rejected_;
  std::map<TransactionId, DeferredInfo> deferred_;
  RelKeySet dirty_;
  std::vector<ConflictGroup> conflict_groups_;
  /// Cross-round cache of flattened extensions and pair-conflict
  /// verdicts for the undecided backlog (soft state, §5.2 — the paper's
  /// rationale for keeping soft state between runs). Entries whose roots
  /// are decided (applied or rejected) are invalidated after every run;
  /// reconsidered deferred transactions whose extensions changed miss
  /// via fingerprint validation.
  FlattenCache flatten_cache_;
  int64_t last_recno_ = 0;
  /// In-memory decision-provenance log (append-only soft state) and the
  /// sim-trace binding (inactive unless BindSimTrace was called).
  std::vector<ProvenanceRecord> provenance_log_;
  SimTraceBinding sim_trace_;
  /// Decisions already folded into local state whose store recording
  /// failed transiently. They ride along with the next RecordDecisions
  /// call — recording is idempotent and keyed by transaction, so the
  /// participant never has to unwind local state over a lost ack.
  std::vector<TransactionId> unrecorded_applied_;
  std::vector<TransactionId> unrecorded_rejected_;

  /// (relation, key) -> last published transaction that wrote the tuple;
  /// drives antecedent computation for deletes and modifies.
  std::unordered_map<RelKey, TransactionId, RelKeyHash> version_map_;
  /// (relation, key) -> transaction that last *deleted* the tuple. An
  /// insert re-creating a deleted key takes the deleting transaction as
  /// its antecedent, so that sequential remove-then-replace forms one
  /// dependency chain (and flattens to a replacement) instead of being
  /// mistaken for the §4 delete-vs-insert conflict between independent
  /// writers.
  std::unordered_map<RelKey, TransactionId, RelKeyHash> tombstone_map_;
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_PARTICIPANT_H_
