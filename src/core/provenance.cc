#include "core/provenance.h"

#include <cstdio>

namespace orchestra::core {

std::string_view ProvenanceCauseName(ProvenanceCause cause) {
  switch (cause) {
    case ProvenanceCause::kUnexplained:
      return "unexplained";
    case ProvenanceCause::kCleanAccept:
      return "clean_accept";
    case ProvenanceCause::kWonConflict:
      return "won_conflict";
    case ProvenanceCause::kTransitiveAccept:
      return "transitive_accept";
    case ProvenanceCause::kFlattenInconsistent:
      return "flatten_inconsistent";
    case ProvenanceCause::kRejectedAntecedent:
      return "rejected_antecedent";
    case ProvenanceCause::kNotApplicable:
      return "not_applicable";
    case ProvenanceCause::kOwnDeltaConflict:
      return "own_delta_conflict";
    case ProvenanceCause::kLostConflict:
      return "lost_conflict";
    case ProvenanceCause::kApplyFailed:
      return "apply_failed";
    case ProvenanceCause::kUserRejected:
      return "user_rejected";
    case ProvenanceCause::kDirtyValue:
      return "dirty_value";
    case ProvenanceCause::kBlockedByDeferral:
      return "blocked_by_deferral";
    case ProvenanceCause::kEqualPriorityDilemma:
      return "equal_priority_dilemma";
    case ProvenanceCause::kDeferredAntecedent:
      return "deferred_antecedent";
  }
  return "unknown";
}

namespace {

// Escapes the characters that could break a JSON string. Keys and
// effects can contain arbitrary tuple text, so this is load-bearing.
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  AppendJsonEscaped(out, s);
  out->push_back('"');
}

}  // namespace

std::string ProvenanceRecord::ToJson() const {
  std::string out;
  out.reserve(192);
  out += "{\"peer\":";
  out += std::to_string(peer);
  out += ",\"recno\":";
  out += std::to_string(recno);
  out += ",\"epoch\":";
  out += std::to_string(epoch);
  out += ",\"txn\":";
  AppendJsonString(&out, txn.ToString());
  out += ",\"priority\":";
  out += std::to_string(priority);
  out += ",\"verdict\":";
  AppendJsonString(&out, DecisionName(verdict));
  out += ",\"cause\":";
  AppendJsonString(&out, ProvenanceCauseName(cause));
  out += ",\"antecedents\":[";
  for (size_t i = 0; i < antecedents.size(); ++i) {
    if (i > 0) out += ',';
    AppendJsonString(&out, antecedents[i].ToString());
  }
  out += "],\"comparisons\":[";
  for (size_t i = 0; i < comparisons.size(); ++i) {
    const ProvenanceComparison& c = comparisons[i];
    if (i > 0) out += ',';
    out += "{\"vs\":";
    AppendJsonString(&out, c.counterparty.ToString());
    out += ",\"own_priority\":";
    out += std::to_string(c.own_priority);
    out += ",\"their_priority\":";
    out += std::to_string(c.counterparty_priority);
    out += ",\"points\":[";
    for (size_t j = 0; j < c.points.size(); ++j) {
      if (j > 0) out += ',';
      AppendJsonString(&out, c.points[j].ToString());
    }
    out += "],\"decisive\":";
    out += c.decisive ? "true" : "false";
    out += '}';
  }
  out += ']';
  if (dirty_key) {
    out += ",\"dirty_key\":";
    AppendJsonString(&out, dirty_key->ToString());
  }
  if (blocker) {
    out += ",\"blocker\":";
    AppendJsonString(&out, blocker->ToString());
  }
  if (!detail.empty()) {
    out += ",\"detail\":";
    AppendJsonString(&out, detail);
  }
  out += '}';
  return out;
}

std::string ProvenanceRecord::ToText() const {
  std::string out;
  out += "peer ";
  out += std::to_string(peer);
  out += " recno ";
  out += std::to_string(recno);
  out += ": ";
  out += DecisionName(verdict);
  out += " (";
  out += ProvenanceCauseName(cause);
  out += ')';
  // The decisive comparison is the trust edge that settled the verdict.
  for (const ProvenanceComparison& c : comparisons) {
    if (!c.decisive) continue;
    out += " vs ";
    out += c.counterparty.ToString();
    out += " [prio ";
    out += std::to_string(c.own_priority);
    out += " vs ";
    out += std::to_string(c.counterparty_priority);
    out += ']';
    if (!c.points.empty()) {
      out += " at ";
      out += c.points.front().ToString();
    }
    break;
  }
  if (dirty_key) {
    out += " dirty ";
    out += dirty_key->ToString();
  }
  if (blocker) {
    out += " via ";
    out += blocker->ToString();
  }
  if (!antecedents.empty()) {
    out += "; antecedents:";
    for (const TransactionId& id : antecedents) {
      out += ' ';
      out += id.ToString();
    }
  }
  if (!detail.empty()) {
    out += " — ";
    out += detail;
  }
  return out;
}

std::string ToJsonLines(const std::vector<ProvenanceRecord>& records) {
  std::string out;
  for (const ProvenanceRecord& r : records) {
    out += r.ToJson();
    out += '\n';
  }
  return out;
}

}  // namespace orchestra::core
