#ifndef ORCHESTRA_CORE_PROVENANCE_H_
#define ORCHESTRA_CORE_PROVENANCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/conflict.h"
#include "core/decision.h"
#include "core/ids.h"
#include "core/update.h"

namespace orchestra::core {

/// Why a reconciliation verdict came out the way it did — one cause per
/// decided root, attributed by the phase of Figs. 4-5 that settled it.
/// Causes are final: once a phase decides a transaction, later phases
/// only reclassify through the explicitly modeled transitions
/// (kApplyFailed, kTransitiveAccept).
enum class ProvenanceCause : uint8_t {
  kUnexplained = 0,
  // --- accepts ---
  /// Applicable, and nothing conflicted with it.
  kCleanAccept,
  /// Accepted after winning at least one priority comparison (every
  /// conflicting candidate had strictly lower priority or was already
  /// out of the running).
  kWonConflict,
  /// The root itself lost or never competed, but its updates reached the
  /// instance inside an accepted dependent's extension (Definition 5's
  /// transitive acceptance).
  kTransitiveAccept,
  // --- rejects (CheckState, Fig. 5) ---
  /// The update extension is internally inconsistent (flatten failed).
  kFlattenInconsistent,
  /// The extension contains a previously rejected transaction
  /// (CheckState line 3).
  kRejectedAntecedent,
  /// The flattened extension violates an integrity constraint against
  /// the current instance (CheckState line 5).
  kNotApplicable,
  /// Conflicts with the reconciling peer's own unpublished delta — a
  /// peer always keeps its own version (CheckState line 7).
  kOwnDeltaConflict,
  // --- rejects (conflict resolution, Fig. 4 lines 10-12) ---
  /// A strictly higher-priority conflicting candidate was accepted.
  kLostConflict,
  /// Defensive reclassification: the accepted extension failed to apply
  /// due to an unforeseen interaction between accepted extensions.
  kApplyFailed,
  /// A losing option of a conflict group the user resolved (§5).
  kUserRejected,
  // --- defers ---
  /// Touches a value marked dirty by a previous round's deferral; fresh
  /// transactions must not preempt a pending user resolution (§5).
  kDirtyValue,
  /// A strictly higher-priority conflicting candidate is itself
  /// deferred, so this one cannot be decided yet.
  kBlockedByDeferral,
  /// The §5 dilemma: an equal-priority conflict defers both sides until
  /// a user resolves the group (certain-answers model).
  kEqualPriorityDilemma,
  /// An extension member was deferred this round; the dependent is
  /// entangled in the same pending decision (§4.2).
  kDeferredAntecedent,
};

std::string_view ProvenanceCauseName(ProvenanceCause cause);

/// One trust/priority comparison considered while deciding a
/// transaction: the competing candidate, both priorities, the conflict
/// points contested, and whether this comparison settled the verdict.
struct ProvenanceComparison {
  TransactionId counterparty;
  int own_priority = 0;
  int counterparty_priority = 0;
  std::vector<ConflictPoint> points;
  bool decisive = false;
};

/// Compact structured record of one verdict: who decided (peer/recno/
/// epoch), what was decided (txn/verdict/cause), and the evidence — the
/// antecedent set, every competing candidate with its priorities, and
/// the specific blocker for deferral-chain and dirty-value causes.
/// Rendering is deterministic (field order fixed, collections in
/// deterministic order), so same-seed runs produce byte-identical
/// JSONL.
struct ProvenanceRecord {
  ParticipantId peer = 0;
  int64_t recno = 0;
  Epoch epoch = kNoEpoch;
  TransactionId txn;
  int priority = 0;
  Decision verdict = Decision::kUndecided;
  ProvenanceCause cause = ProvenanceCause::kUnexplained;
  /// The extension minus the root itself (publication order).
  std::vector<TransactionId> antecedents;
  /// Every competing candidate in the root's conflict pairs.
  std::vector<ProvenanceComparison> comparisons;
  /// kDirtyValue: the first dirty (relation, key) touched.
  std::optional<RelKey> dirty_key;
  /// kRejectedAntecedent / kDeferredAntecedent: the extension member
  /// that carried the taint.
  std::optional<TransactionId> blocker;
  /// Free-form diagnostic for kNotApplicable / kApplyFailed /
  /// kUserRejected.
  std::string detail;

  /// Single-line JSON, deterministic byte-for-byte.
  std::string ToJson() const;
  /// Human-readable one-liner for the CLI's `explain` verb.
  std::string ToText() const;
};

/// Renders records as JSONL (one ToJson() line each).
std::string ToJsonLines(const std::vector<ProvenanceRecord>& records);

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_PROVENANCE_H_
