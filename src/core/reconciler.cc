#include "core/reconciler.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/analysis.h"
#include "core/apply.h"
#include "core/flatten.h"

namespace orchestra::core {

Reconciler::Reconciler(const db::Catalog* catalog, ReconcileOptions options)
    : catalog_(catalog), options_(options) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Reconciler::~Reconciler() = default;
Reconciler::Reconciler(Reconciler&&) noexcept = default;
Reconciler& Reconciler::operator=(Reconciler&&) noexcept = default;

namespace {

// Per-transaction provenance accumulated while the decision phases run;
// folded into ProvenanceRecords once verdicts are final. `decided_by`
// indexes the conflicting input transaction whose comparison settled
// the verdict (kNoDecider when no comparison did).
constexpr size_t kNoDecider = static_cast<size_t>(-1);
struct ProvNote {
  ProvenanceCause cause = ProvenanceCause::kUnexplained;
  size_t decided_by = kNoDecider;
  std::optional<RelKey> dirty_key;
  std::optional<TransactionId> blocker;
  std::string detail;
};

// CheckState (Fig. 5): the per-transaction decision that can be made
// before considering conflicts with other relevant transactions.
// `note`, when non-null, receives the cause and its evidence.
Decision CheckState(const db::Catalog& catalog, const db::Instance& instance,
                    const ReconcileInput& input, const TrustedTxn& txn,
                    const std::vector<Update>& up_ex, ProvNote* note) {
  const std::vector<TransactionId>& extension = txn.extension;
  // Line 1: anything touching a dirty value is deferred so that a
  // previously deferred transaction can still be accepted later.
  // Reconsidered (previously deferred) transactions skip this check —
  // their own marks are the dirty values.
  if (!txn.previously_deferred && input.dirty != nullptr &&
      !input.dirty->empty()) {
    for (const Update& u : up_ex) {
      const db::RelationSchema& schema =
          *catalog.GetRelation(u.relation()).value();
      for (const RelKey& rk : u.TouchedKeys(schema)) {
        if (input.dirty->count(rk) != 0) {
          if (note != nullptr) {
            note->cause = ProvenanceCause::kDirtyValue;
            note->dirty_key = rk;
          }
          return Decision::kDefer;
        }
      }
    }
  }
  // Line 3: an extension containing an explicitly rejected transaction
  // can never be accepted.
  if (input.rejected != nullptr) {
    for (const TransactionId& id : extension) {
      if (input.rejected->count(id) != 0) {
        if (note != nullptr) {
          note->cause = ProvenanceCause::kRejectedAntecedent;
          note->blocker = id;
        }
        return Decision::kReject;
      }
    }
  }
  // Line 5: the flattened extension must be applicable to the instance
  // without violating integrity constraints.
  if (Status applicable = CheckApplicable(instance, up_ex);
      !applicable.ok()) {
    if (note != nullptr) {
      note->cause = ProvenanceCause::kNotApplicable;
      note->detail = applicable.ToString();
    }
    return Decision::kReject;
  }
  // Line 7: conflicts with the participant's own delta for this
  // reconciliation lose outright — a peer always keeps its own version.
  if (!input.own_delta.empty()) {
    std::vector<ConflictPoint> own_points =
        SetsConflict(catalog, up_ex, input.own_delta);
    if (!own_points.empty()) {
      if (note != nullptr) {
        note->cause = ProvenanceCause::kOwnDeltaConflict;
        note->detail = own_points.front().ToString();
      }
      return Decision::kReject;
    }
  }
  if (note != nullptr) note->cause = ProvenanceCause::kCleanAccept;
  return Decision::kAccept;
}

// Origin-free rendering of one update, so that two peers making the same
// modification compare equal.
std::string UpdateEffect(const Update& u) {
  switch (u.kind()) {
    case UpdateKind::kInsert:
      return "+" + u.relation() + u.new_tuple().ToString();
    case UpdateKind::kDelete:
      return "-" + u.relation() + u.old_tuple().ToString();
    case UpdateKind::kModify:
      return u.relation() + "(" + u.old_tuple().ToString() + " -> " +
             u.new_tuple().ToString() + ")";
  }
  return "?";
}

// Normalized rendering of the modification a flattened extension makes to
// one contested key; transactions with equal effects form one option.
std::string EffectOnKey(const db::Catalog& catalog,
                        const std::vector<Update>& up_ex,
                        const RelKey& key) {
  std::vector<std::string> parts;
  for (const Update& u : up_ex) {
    const db::RelationSchema& schema =
        *catalog.GetRelation(u.relation()).value();
    for (const RelKey& rk : u.TouchedKeys(schema)) {
      if (rk == key) {
        parts.push_back(UpdateEffect(u));
        break;
      }
    }
  }
  std::sort(parts.begin(), parts.end());
  return Join(parts, "; ");
}

}  // namespace

Result<ReconcileOutcome> Reconciler::Run(const ReconcileInput& input,
                                         db::Instance* instance) const {
  ORCH_CHECK(input.provider != nullptr);
  const size_t n = input.txns.size();
  ReconcileOutcome outcome;

  // Phases share variables, so per-phase spans roll over via optional
  // instead of lexical scopes; emplace() ends the previous span before
  // beginning the next. The wall-clock span feeds ORCH_TRACE; the
  // simulated-time span (no-op without a binding) feeds ORCH_SIM_TRACE.
  std::optional<TraceSpan> phase_span;
  std::optional<SimSpan> sim_span;
  const SimTraceBinding* sim = input.sim_trace;

  const bool prov_on = input.collect_provenance;
  std::vector<ProvNote> notes(prov_on ? n : 0);
  const auto note_of = [&](size_t i) -> ProvNote* {
    return prov_on ? &notes[i] : nullptr;
  };

  // --- Phase 1 (Fig. 4 lines 5-8): flatten extensions, check state. ---
  // Phases 1-2 (Fig. 4 lines 5-9): flatten extensions and find the
  // direct, non-subsumed conflicts — either precomputed by the network
  // (network-centric mode) or computed here (client-centric, §5.1).
  phase_span.emplace("reconcile.phase.analysis");
  sim_span.emplace(sim, "reconcile.analyze");
  ReconcileAnalysis local_analysis;
  const ReconcileAnalysis* analysis = input.analysis;
  if (analysis == nullptr) {
    AnalysisOptions aopts;
    aopts.pool = pool_.get();
    aopts.cache = input.flatten_cache;
    local_analysis =
        AnalyzeExtensions(*catalog_, *input.provider, input.txns, aopts);
    analysis = &local_analysis;
  }
  ORCH_CHECK(analysis->up_ex.size() == n && analysis->flatten_ok.size() == n,
             "analysis does not cover the input transactions");
  const std::vector<std::vector<Update>>& up_ex = analysis->up_ex;

  static Counter& analyzed_txns =
      MetricsRegistry::Global().GetCounter("reconcile.analyzed_txns");
  static Counter& conflict_pairs =
      MetricsRegistry::Global().GetCounter("reconcile.conflict_pairs");
  analyzed_txns.Add(static_cast<int64_t>(n));
  conflict_pairs.Add(static_cast<int64_t>(analysis->conflicts.size()));

  // Each transaction's state check is independent of every other's (it
  // reads only the immutable instance, the input sets, and its own
  // flattened extension) and writes its own decision slot, so the loop
  // parallelizes with bit-identical results.
  phase_span.emplace("reconcile.phase.check_state");
  sim_span.emplace(sim, "reconcile.check_state");
  std::vector<Decision> decision(n, Decision::kUndecided);
  ParallelFor(pool_.get(), n, [&](size_t i) {
    if (!analysis->flatten_ok[i]) {
      // An internally inconsistent extension can never be applied.
      decision[i] = Decision::kReject;
      if (prov_on) notes[i].cause = ProvenanceCause::kFlattenInconsistent;
      return;
    }
    decision[i] = CheckState(*catalog_, *instance, input, input.txns[i],
                             up_ex[i], note_of(i));
  });

  std::vector<std::vector<size_t>> conflicts(n);
  for (const ReconcileAnalysis::Pair& pair : analysis->conflicts) {
    ORCH_CHECK(pair.i < n && pair.j < n);
    if (pair.points.empty()) continue;
    conflicts[pair.i].push_back(pair.j);
    conflicts[pair.j].push_back(pair.i);
  }

  // --- Phase 3 (Fig. 4 lines 10-12): DoGroup by decreasing priority. ---
  phase_span.emplace("reconcile.phase.priority_groups");
  sim_span.emplace(sim, "reconcile.priority_groups");
  // Provenance hooks: called *before* the decision slot is mutated so
  // an earlier defer cause (dirty value) is not overwritten by a later
  // mechanical defer; a reject always takes the losing comparison.
  const auto note_lost = [&](size_t t, size_t by) {
    if (!prov_on) return;
    notes[t].cause = ProvenanceCause::kLostConflict;
    notes[t].decided_by = by;
  };
  const auto note_defer = [&](size_t t, size_t by, ProvenanceCause why) {
    if (!prov_on || decision[t] == Decision::kDefer) return;
    notes[t].cause = why;
    notes[t].decided_by = by;
  };
  std::vector<int> prios;
  for (const TrustedTxn& t : input.txns) prios.push_back(t.priority);
  std::sort(prios.begin(), prios.end(), std::greater<int>());
  prios.erase(std::unique(prios.begin(), prios.end()), prios.end());
  for (int prio : prios) {
    std::vector<size_t> group;
    for (size_t i = 0; i < n; ++i) {
      if (input.txns[i].priority == prio && decision[i] != Decision::kReject) {
        group.push_back(i);
      }
    }
    // Conflicts with strictly higher-priority transactions.
    for (size_t gi = 0; gi < group.size(); ++gi) {
      const size_t t = group[gi];
      for (size_t c : conflicts[t]) {
        if (input.txns[c].priority <= prio) continue;
        if (decision[c] == Decision::kAccept) {
          note_lost(t, c);
          decision[t] = Decision::kReject;
          break;
        }
        if (decision[c] == Decision::kDefer) {
          note_defer(t, c, ProvenanceCause::kBlockedByDeferral);
          decision[t] = Decision::kDefer;
        }
      }
    }
    group.erase(std::remove_if(group.begin(), group.end(),
                               [&](size_t t) {
                                 return decision[t] == Decision::kReject;
                               }),
                group.end());
    // Equal-priority conflicts defer both sides (certain-answers model).
    // Walk the conflict adjacency instead of all group pairs: only
    // edges with recorded conflict points can defer anyone.
    for (size_t t : group) {
      for (size_t c : conflicts[t]) {
        if (input.txns[c].priority != prio) continue;
        if (decision[c] == Decision::kReject) continue;
        note_defer(t, c, ProvenanceCause::kEqualPriorityDilemma);
        note_defer(c, t, ProvenanceCause::kEqualPriorityDilemma);
        decision[t] = Decision::kDefer;
        decision[c] = Decision::kDefer;
      }
    }
  }

  // --- Phase 4: propagate *deferral* through dependency chains: a
  // transaction whose extension contains a deferred input transaction is
  // itself deferred (§4.2 — its antecedent is entangled in a pending
  // user decision). Rejection deliberately does NOT propagate within the
  // round: Definition 5 condition 4 only excludes extensions containing
  // *previously* rejected work (handled in CheckState). A chain whose
  // own flattened extension is applicable is accepted even when its
  // antecedent, considered as an independent root, lost a conflict — the
  // chain's net effect supersedes the intermediate state ("least
  // interaction", §3.1), and the antecedent is then transitively
  // accepted through the chain (reclassified below).
  phase_span.emplace("reconcile.phase.propagate_deferral");
  sim_span.emplace(sim, "reconcile.propagate_deferral");
  std::unordered_map<TransactionId, size_t, TransactionIdHash> index_of;
  for (size_t i = 0; i < n; ++i) index_of[input.txns[i].id] = i;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (decision[i] != Decision::kAccept) continue;
      for (const TransactionId& id : input.txns[i].extension) {
        auto it = index_of.find(id);
        if (it == index_of.end() || it->second == i) continue;
        if (decision[it->second] == Decision::kDefer) {
          if (prov_on) {
            notes[i].cause = ProvenanceCause::kDeferredAntecedent;
            notes[i].decided_by = it->second;
            notes[i].blocker = id;
          }
          decision[i] = Decision::kDefer;
          changed = true;
          break;
        }
      }
    }
  }

  // --- Phase 5 (Fig. 4 lines 14-19): apply accepted extensions in
  // publication order, sharing a Used set so overlapping antecedents are
  // applied exactly once (Definition 5).
  phase_span.emplace("reconcile.phase.apply");
  sim_span.emplace(sim, "reconcile.apply");
  std::vector<size_t> accepted;
  for (size_t i = 0; i < n; ++i) {
    if (decision[i] == Decision::kAccept) accepted.push_back(i);
  }
  // One provider lookup per accepted transaction, not per comparison.
  std::vector<Epoch> epoch_of(n, kNoEpoch);
  for (size_t i : accepted) {
    if (auto t = input.provider->Get(input.txns[i].id); t.ok()) {
      epoch_of[i] = (*t)->epoch;
    }
  }
  std::sort(accepted.begin(), accepted.end(), [&](size_t a, size_t b) {
    if (epoch_of[a] != epoch_of[b]) return epoch_of[a] < epoch_of[b];
    return input.txns[a].id < input.txns[b].id;
  });
  TxnIdSet used;
  for (size_t i : accepted) {
    std::vector<Update> footprint =
        UpdateFootprint(*input.provider, input.txns[i].extension, used);
    auto flat = Flatten(*catalog_, footprint);
    Status applied_status =
        flat.ok() ? ApplyFlattened(instance, *flat) : flat.status();
    if (!applied_status.ok()) {
      // The flattened form can be stale when an extension member's
      // effect already reached the instance through a *different but
      // identical* accepted transaction (agreement is detected pairwise,
      // not across chains). Replaying the footprint step by step with
      // idempotent application absorbs the already-achieved prefix.
      applied_status = Status::OK();
      for (const Update& u : footprint) {
        applied_status = ApplyFlattened(instance, {u});
        if (!applied_status.ok()) break;
      }
    }
    if (!applied_status.ok()) {
      // Defensive: CheckState vetted each extension in isolation, but an
      // unforeseen interaction between accepted extensions surfaces
      // here; reject rather than corrupt the instance.
      ORCH_LOG(Warning) << "accepted transaction "
                        << input.txns[i].id.ToString()
                        << " failed to apply: " << applied_status.ToString();
      if (prov_on) {
        notes[i].cause = ProvenanceCause::kApplyFailed;
        notes[i].detail = applied_status.ToString();
      }
      decision[i] = Decision::kReject;
      continue;
    }
    for (const TransactionId& id : input.txns[i].extension) used.insert(id);
  }
  // ORCH_LINT(allow:D3): the assigned vector is sorted on the next line; hash order never escapes
  outcome.applied_txns.assign(used.begin(), used.end());
  std::sort(outcome.applied_txns.begin(), outcome.applied_txns.end());

  // A root that lost its own conflict but rode into the instance inside
  // an accepted dependent's extension was transitively accepted; its
  // recorded decision must say so (applied and rejected are exclusive).
  for (size_t i = 0; i < n; ++i) {
    if (decision[i] == Decision::kReject &&
        used.count(input.txns[i].id) != 0) {
      decision[i] = Decision::kAccept;
      // The lost comparison (if any) stays marked decisive: the record
      // shows both the lost trust edge and the chain that carried the
      // transaction in anyway.
      if (prov_on) notes[i].cause = ProvenanceCause::kTransitiveAccept;
    }
  }

  // Verdicts are final; fold the notes and every pairwise trust
  // comparison into ProvenanceRecords (input order). Deterministic:
  // analysis->conflicts is sorted by (i, j) and every collection below
  // iterates in index order.
  if (prov_on) {
    std::vector<std::vector<ProvenanceComparison>> comps(n);
    for (const ReconcileAnalysis::Pair& pair : analysis->conflicts) {
      if (pair.points.empty()) continue;
      ProvenanceComparison fwd;
      fwd.counterparty = input.txns[pair.j].id;
      fwd.own_priority = input.txns[pair.i].priority;
      fwd.counterparty_priority = input.txns[pair.j].priority;
      fwd.points = pair.points;
      fwd.decisive = notes[pair.i].decided_by == pair.j;
      comps[pair.i].push_back(std::move(fwd));
      ProvenanceComparison rev;
      rev.counterparty = input.txns[pair.i].id;
      rev.own_priority = input.txns[pair.j].priority;
      rev.counterparty_priority = input.txns[pair.i].priority;
      rev.points = pair.points;
      rev.decisive = notes[pair.j].decided_by == pair.i;
      comps[pair.j].push_back(std::move(rev));
    }
    outcome.provenance.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ProvenanceRecord rec;
      rec.recno = input.recno;
      rec.txn = input.txns[i].id;
      rec.priority = input.txns[i].priority;
      rec.verdict = decision[i];
      rec.cause = notes[i].cause;
      // An accept that survived real competition is a win, not a
      // clean pass.
      if (rec.cause == ProvenanceCause::kCleanAccept && !comps[i].empty()) {
        rec.cause = ProvenanceCause::kWonConflict;
      }
      for (const TransactionId& id : input.txns[i].extension) {
        if (id != input.txns[i].id) rec.antecedents.push_back(id);
      }
      rec.comparisons = std::move(comps[i]);
      rec.dirty_key = std::move(notes[i].dirty_key);
      rec.blocker = std::move(notes[i].blocker);
      rec.detail = std::move(notes[i].detail);
      outcome.provenance.push_back(std::move(rec));
    }
  }

  // --- Phase 6 (Fig. 5 UpdateSoftState): rebuild dirty values and
  // conflict groups from this run's deferred set. ---
  phase_span.emplace("reconcile.phase.soft_state");
  sim_span.emplace(sim, "reconcile.soft_state");
  std::map<ConflictPoint, std::vector<size_t>> group_members;
  for (size_t i = 0; i < n; ++i) {
    switch (decision[i]) {
      case Decision::kAccept:
        outcome.accepted_roots.push_back(input.txns[i].id);
        break;
      case Decision::kReject:
        outcome.rejected_roots.push_back(input.txns[i].id);
        break;
      case Decision::kDefer: {
        outcome.deferred_roots.push_back(input.txns[i].id);
        for (const Update& u : up_ex[i]) {
          const db::RelationSchema& schema =
              *catalog_->GetRelation(u.relation()).value();
          for (RelKey& rk : u.TouchedKeys(schema)) {
            outcome.dirty_values.insert(std::move(rk));
          }
        }
        break;
      }
      case Decision::kUndecided:
        ORCH_CHECK(false, "transaction left undecided");
    }
  }
  // analysis->conflicts is sorted by (i, j), matching the iteration
  // order of the std::map this loop previously walked.
  for (const ReconcileAnalysis::Pair& pair : analysis->conflicts) {
    if (pair.points.empty()) continue;
    if (decision[pair.i] != Decision::kDefer ||
        decision[pair.j] != Decision::kDefer) {
      continue;
    }
    for (const ConflictPoint& point : pair.points) {
      auto& members = group_members[point];
      for (size_t idx : {pair.i, pair.j}) {
        if (std::find(members.begin(), members.end(), idx) == members.end()) {
          members.push_back(idx);
        }
      }
    }
  }
  for (auto& [point, members] : group_members) {
    ConflictGroup group;
    group.point = point;
    // A member strictly subsumed by another member is that member's
    // antecedent: accepting the subsumer transitively accepts it, so it
    // rides in the subsumer's option rather than forming its own.
    auto covering = [&](size_t idx) {
      size_t best = idx;
      for (size_t j : members) {
        if (j == idx) continue;
        const auto& ext_j = input.txns[j].extension;
        const auto& ext_best = input.txns[best].extension;
        if (ext_j.size() > ext_best.size() &&
            Subsumes(ext_j, input.txns[idx].extension)) {
          best = j;
        }
      }
      return best;
    };
    // Compatible transactions (same modification to the contested key)
    // combine into one option.
    std::map<std::string, size_t> option_of_effect;
    for (size_t idx : members) {
      const size_t representative = covering(idx);
      const std::string effect =
          EffectOnKey(*catalog_, up_ex[representative], point.key);
      auto [it, inserted] =
          option_of_effect.emplace(effect, group.options.size());
      if (inserted) {
        group.options.push_back(ConflictOption{{}, effect});
      }
      group.options[it->second].txns.push_back(input.txns[idx].id);
    }
    outcome.conflict_groups.push_back(std::move(group));
  }
  return outcome;
}

}  // namespace orchestra::core
