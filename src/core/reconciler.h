#ifndef ORCHESTRA_CORE_RECONCILER_H_
#define ORCHESTRA_CORE_RECONCILER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/sim_trace.h"
#include "db/instance.h"
#include "core/decision.h"
#include "core/extension.h"
#include "core/provenance.h"
#include "core/transaction.h"

namespace orchestra {
class ThreadPool;  // common/thread_pool.h
}

namespace orchestra::core {

struct ReconcileAnalysis;  // core/analysis.h
class FlattenCache;        // core/flatten_cache.h

/// One fully trusted, undecided transaction as presented to the
/// reconciliation algorithm: its id, the priority pri_i assigned by the
/// reconciling participant's policy, and its transaction extension
/// te_i|e (sorted by publication order, ending with the root itself).
struct TrustedTxn {
  TransactionId id;
  int priority = 0;
  std::vector<TransactionId> extension;
  /// True when this transaction was deferred by an earlier reconciliation
  /// and is being reconsidered. Reconsidered transactions skip the
  /// dirty-value check (their own deferral marks must not re-defer them
  /// mechanically); fresh transactions touching a dirty value are
  /// deferred regardless of priority, so that a pending user resolution
  /// is never invalidated (§3.1, §5).
  bool previously_deferred = false;
};

/// Inputs to one invocation of ReconcileUpdates (Fig. 4).
struct ReconcileInput {
  /// The participant's reconciliation number for this run.
  int64_t recno = 0;
  /// Fully trusted undecided transactions: newly fetched from the update
  /// store plus any previously deferred ones being reconsidered.
  std::vector<TrustedTxn> txns;
  /// Resolves transaction ids (for footprints); must cover every id in
  /// every extension.
  const TransactionProvider* provider = nullptr;
  /// Flattened updates the participant itself made since its previous
  /// reconciliation — "the delta for recno" of CheckState line 7. A
  /// foreign transaction conflicting with the participant's own delta is
  /// rejected (the participant always picks its own version first).
  std::vector<Update> own_delta;
  /// Transactions already applied by this participant in earlier epochs
  /// (used to terminate antecedent chains and skip replay).
  const TxnIdSet* applied = nullptr;
  /// Transactions this participant has explicitly rejected.
  const TxnIdSet* rejected = nullptr;
  /// Dirty key values from the previous reconciliation's deferred set.
  const RelKeySet* dirty = nullptr;
  /// Optional precomputed flattening/conflict analysis over `txns`
  /// (network-centric reconciliation ships this from the store; see
  /// core/analysis.h). When null, the reconciler computes it locally —
  /// the client-centric mode of §5.1.
  const ReconcileAnalysis* analysis = nullptr;
  /// Optional cross-round cache of flattened extensions and pair
  /// verdicts (participant soft state; see core/flatten_cache.h). Used
  /// only when the reconciler computes the analysis itself. The cache is
  /// read and filled during Run; the caller owns invalidation.
  FlattenCache* flatten_cache = nullptr;
  /// Collect a ProvenanceRecord per input transaction into
  /// ReconcileOutcome::provenance. Decisions are identical either way;
  /// this only adds the explanation records.
  bool collect_provenance = false;
  /// Optional simulated-time trace binding: when set, Run emits
  /// per-phase spans (analyze / check_state / priority_groups /
  /// propagate / apply / soft_state) onto the caller's track at the
  /// caller's simulated clock. Never feeds back into decisions.
  const SimTraceBinding* sim_trace = nullptr;
};

/// Outcome of one ReconcileUpdates run.
struct ReconcileOutcome {
  /// Decisions on the *input* transactions.
  std::vector<TransactionId> accepted_roots;
  std::vector<TransactionId> rejected_roots;
  std::vector<TransactionId> deferred_roots;
  /// Every transaction whose updates were applied to the instance — the
  /// accepted roots plus their transitively accepted antecedents. These
  /// must be recorded as applied in the update store.
  std::vector<TransactionId> applied_txns;
  /// Rebuilt soft state: dirty values and conflict groups derived from
  /// the transactions deferred as of this run (Fig. 5 UpdateSoftState).
  RelKeySet dirty_values;
  std::vector<ConflictGroup> conflict_groups;
  /// One record per input transaction (same order), populated only when
  /// ReconcileInput::collect_provenance is set. peer/epoch are stamped
  /// by the caller (the reconciler knows neither).
  std::vector<ProvenanceRecord> provenance;
};

/// Execution knobs for the reconciliation engine.
struct ReconcileOptions {
  /// Threads used for the data-parallel phases (flattening, candidate
  /// pair testing, per-transaction CheckState). 1 — the default — takes
  /// the exact serial path: no pool is created and every loop runs
  /// inline on the calling thread. Parallel runs produce bit-identical
  /// outcomes to serial runs (the determinism contract; see
  /// docs/ARCHITECTURE.md).
  size_t num_threads = 1;
  /// Collect decision provenance on every run (see core/provenance.h).
  /// On by default: records are small, and Participant persists them
  /// alongside the decision log. Benchmarks may turn it off to measure
  /// the overhead.
  bool record_provenance = true;
};

/// The client-centric reconciliation algorithm of §5.1 (Figs. 4-5):
/// flatten update extensions, check state, find pairwise conflicts
/// (exempting subsumption), decide greedily by descending priority
/// (DoGroup), propagate decisions through dependencies, apply accepted
/// extensions in publication order, and rebuild deferral soft state.
///
/// The class is stateless across runs; all persistent and soft state is
/// owned by the caller (see Participant) and passed in explicitly. The
/// thread pool (when num_threads > 1) is the only resource the
/// reconciler itself owns.
class Reconciler {
 public:
  explicit Reconciler(const db::Catalog* catalog,
                      ReconcileOptions options = {});
  ~Reconciler();
  Reconciler(Reconciler&&) noexcept;
  Reconciler& operator=(Reconciler&&) noexcept;

  /// Runs one reconciliation against `instance`, mutating it with the
  /// accepted updates. Fails only on internal errors (e.g. an extension
  /// id the provider cannot resolve); per-transaction problems become
  /// reject/defer decisions.
  Result<ReconcileOutcome> Run(const ReconcileInput& input,
                               db::Instance* instance) const;

  const ReconcileOptions& options() const { return options_; }

 private:
  const db::Catalog* catalog_;
  ReconcileOptions options_;
  /// Null when num_threads <= 1 (the serial path).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_RECONCILER_H_
