#include "core/resolution.h"

#include <algorithm>

namespace orchestra::core {

Result<ResolutionSummary> ResolveConflicts(
    Participant* participant, UpdateStore* store,
    const ResolutionStrategy& strategy) {
  ResolutionSummary summary;
  // Resolving a group re-runs reconciliation and rebuilds the group
  // list, so restart the scan after every resolution. Skipped groups are
  // remembered by their conflict point so the loop terminates even when
  // a group survives a re-run.
  std::vector<ConflictPoint> skipped;
  bool progress = true;
  while (progress) {
    progress = false;
    const auto& groups = participant->pending_conflicts();
    for (size_t g = 0; g < groups.size(); ++g) {
      if (std::find(skipped.begin(), skipped.end(), groups[g].point) !=
          skipped.end()) {
        continue;
      }
      const std::optional<size_t> raw = strategy(groups[g]);
      if (!raw.has_value()) {
        // nullopt skips the group (leave it deferred for a human).
        skipped.push_back(groups[g].point);
        ++summary.groups_skipped;
        continue;
      }
      // An index past the end means "reject every option".
      const std::optional<size_t> choice =
          *raw < groups[g].options.size() ? raw : std::nullopt;
      ORCH_ASSIGN_OR_RETURN(ReconcileReport report,
                            participant->ResolveConflict(store, g, choice));
      ++summary.groups_resolved;
      summary.accepted += report.accepted.size();
      summary.rejected += report.rejected.size();
      progress = true;
      break;  // group list was rebuilt; rescan
    }
  }
  return summary;
}

ResolutionStrategy PreferPeers(std::vector<ParticipantId> ranking) {
  return [ranking = std::move(ranking)](
             const ConflictGroup& group) -> std::optional<size_t> {
    for (ParticipantId preferred : ranking) {
      for (size_t i = 0; i < group.options.size(); ++i) {
        for (const TransactionId& id : group.options[i].txns) {
          if (id.origin == preferred) return i;
        }
      }
    }
    return std::nullopt;  // skip
  };
}

ResolutionStrategy PreferEffect(
    std::function<bool(const std::string& effect)> predicate) {
  return [predicate = std::move(predicate)](
             const ConflictGroup& group) -> std::optional<size_t> {
    for (size_t i = 0; i < group.options.size(); ++i) {
      if (predicate(group.options[i].effect)) return i;
    }
    return std::nullopt;  // skip
  };
}

ResolutionStrategy RejectAll() {
  return [](const ConflictGroup& group) -> std::optional<size_t> {
    // An index past the end rejects every option.
    return group.options.size();
  };
}

}  // namespace orchestra::core
