#ifndef ORCHESTRA_CORE_RESOLUTION_H_
#define ORCHESTRA_CORE_RESOLUTION_H_

#include <functional>

#include "common/result.h"
#include "core/participant.h"

namespace orchestra::core {

/// Outcome of a bulk conflict-resolution pass.
struct ResolutionSummary {
  size_t groups_resolved = 0;
  size_t groups_skipped = 0;  // no option matched the strategy
  size_t accepted = 0;
  size_t rejected = 0;
};

/// Picks the option to accept for one conflict group, or nullopt to
/// leave the group unresolved (skip) — the per-group strategy plugged
/// into ResolveConflicts below. Returning an out-of-range index rejects
/// every option (equivalent to Participant::ResolveConflict(nullopt)).
using ResolutionStrategy =
    std::function<std::optional<size_t>(const ConflictGroup&)>;

/// Applies `strategy` to every pending conflict group of `participant`,
/// repeatedly, until no strategy-resolvable group remains (resolving one
/// group re-runs reconciliation, which can settle or re-shape others).
/// This is the paper's §4 resolution loop with the "user" mechanized.
Result<ResolutionSummary> ResolveConflicts(Participant* participant,
                                           UpdateStore* store,
                                           const ResolutionStrategy& strategy);

/// Strategy: accept the option containing a transaction originated by
/// the most-preferred peer present in the group, per the ranking
/// (earlier in `ranking` = more preferred). Groups with none of the
/// ranked peers are skipped.
ResolutionStrategy PreferPeers(std::vector<ParticipantId> ranking);

/// Strategy: accept the first option whose rendered effect satisfies
/// `predicate`; skip the group if none does.
ResolutionStrategy PreferEffect(
    std::function<bool(const std::string& effect)> predicate);

/// Strategy: reject every option of every group — keep only local data
/// for contested keys.
ResolutionStrategy RejectAll();

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_RESOLUTION_H_
