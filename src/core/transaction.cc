#include "core/transaction.h"

#include "common/string_util.h"
#include "db/serde.h"

namespace orchestra::core {

std::string Transaction::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(updates.size());
  for (const Update& u : updates) parts.push_back(u.ToString());
  std::string out = id.ToString() + ":{" + Join(parts, ", ") + "}";
  if (!antecedents.empty()) {
    std::vector<std::string> ante;
    ante.reserve(antecedents.size());
    for (const TransactionId& a : antecedents) ante.push_back(a.ToString());
    out += " ante{" + Join(ante, ", ") + "}";
  }
  return out;
}

void EncodeTransaction(std::string* out, const Transaction& txn) {
  out->reserve(out->size() + EncodedTransactionSize(txn));
  db::PutVarint64(out, txn.id.origin);
  db::PutVarint64(out, txn.id.seq);
  db::PutVarint64(out, static_cast<uint64_t>(txn.epoch + 1));  // kNoEpoch -> 0
  db::PutVarint64(out, txn.updates.size());
  for (const Update& u : txn.updates) EncodeUpdate(out, u);
  db::PutVarint64(out, txn.antecedents.size());
  for (const TransactionId& a : txn.antecedents) {
    db::PutVarint64(out, a.origin);
    db::PutVarint64(out, a.seq);
  }
}

Result<Transaction> DecodeTransaction(std::string_view data, size_t* pos) {
  Transaction txn;
  ORCH_ASSIGN_OR_RETURN(uint64_t origin, db::GetVarint64(data, pos));
  ORCH_ASSIGN_OR_RETURN(uint64_t seq, db::GetVarint64(data, pos));
  txn.id = TransactionId{static_cast<ParticipantId>(origin), seq};
  ORCH_ASSIGN_OR_RETURN(uint64_t epoch_plus_one, db::GetVarint64(data, pos));
  txn.epoch = static_cast<Epoch>(epoch_plus_one) - 1;
  ORCH_ASSIGN_OR_RETURN(uint64_t n_updates, db::GetVarint64(data, pos));
  if (n_updates > data.size() - *pos) {
    return Status::Corruption("update count exceeds the remaining input");
  }
  txn.updates.reserve(n_updates);
  for (uint64_t i = 0; i < n_updates; ++i) {
    ORCH_ASSIGN_OR_RETURN(Update u, DecodeUpdate(data, pos));
    txn.updates.push_back(std::move(u));
  }
  ORCH_ASSIGN_OR_RETURN(uint64_t n_ante, db::GetVarint64(data, pos));
  if (n_ante > data.size() - *pos) {
    return Status::Corruption("antecedent count exceeds the remaining input");
  }
  txn.antecedents.reserve(n_ante);
  for (uint64_t i = 0; i < n_ante; ++i) {
    ORCH_ASSIGN_OR_RETURN(uint64_t a_origin, db::GetVarint64(data, pos));
    ORCH_ASSIGN_OR_RETURN(uint64_t a_seq, db::GetVarint64(data, pos));
    txn.antecedents.push_back(
        TransactionId{static_cast<ParticipantId>(a_origin), a_seq});
  }
  return txn;
}

Result<TransactionHeader> DecodeTransactionHeader(std::string_view data,
                                                  size_t* pos) {
  TransactionHeader header;
  ORCH_ASSIGN_OR_RETURN(uint64_t origin, db::GetVarint64(data, pos));
  ORCH_ASSIGN_OR_RETURN(uint64_t seq, db::GetVarint64(data, pos));
  header.id = TransactionId{static_cast<ParticipantId>(origin), seq};
  ORCH_ASSIGN_OR_RETURN(uint64_t epoch_plus_one, db::GetVarint64(data, pos));
  header.epoch = static_cast<Epoch>(epoch_plus_one) - 1;
  return header;
}

size_t EncodedTransactionSize(const Transaction& txn) {
  size_t size = db::VarintLength(txn.id.origin) +
                db::VarintLength(txn.id.seq) +
                db::VarintLength(static_cast<uint64_t>(txn.epoch + 1)) +
                db::VarintLength(txn.updates.size()) +
                db::VarintLength(txn.antecedents.size());
  for (const Update& u : txn.updates) size += EncodedUpdateSize(u);
  for (const TransactionId& a : txn.antecedents) {
    size += db::VarintLength(a.origin) + db::VarintLength(a.seq);
  }
  return size;
}

}  // namespace orchestra::core
