#ifndef ORCHESTRA_CORE_TRANSACTION_H_
#define ORCHESTRA_CORE_TRANSACTION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/ids.h"
#include "core/update.h"

namespace orchestra::core {

/// A published transaction X_{i:j}: an atomic group of updates plus the
/// identifiers of its direct antecedents ante(X) — the transactions that
/// inserted or last modified each tuple this transaction deletes or
/// modifies (§4.2). Antecedents are computed by the publishing
/// participant against its own instance's version map and travel with the
/// transaction, so any store (central or DHT) can serve extension
/// requests without understanding update semantics.
struct Transaction {
  TransactionId id;
  std::vector<Update> updates;
  std::vector<TransactionId> antecedents;
  /// Set by the update store when the transaction is published.
  Epoch epoch = kNoEpoch;

  std::string ToString() const;
};

void EncodeTransaction(std::string* out, const Transaction& txn);
Result<Transaction> DecodeTransaction(std::string_view data, size_t* pos);

/// Just the fixed leading fields of an encoded transaction — enough to
/// answer "which transaction is this, and in which epoch was it
/// published?" without decoding updates or antecedents. Commit checks
/// on the publish path need exactly this.
struct TransactionHeader {
  TransactionId id;
  Epoch epoch = kNoEpoch;
};

Result<TransactionHeader> DecodeTransactionHeader(std::string_view data,
                                                  size_t* pos);

/// Encoded size in bytes, computed arithmetically (no encoding is
/// materialized); used by the simulated network for bandwidth
/// accounting on the reconciliation hot path.
size_t EncodedTransactionSize(const Transaction& txn);

/// Read-only lookup of published transactions by id; implemented by the
/// update stores (and by in-memory test fixtures).
class TransactionProvider {
 public:
  virtual ~TransactionProvider() = default;

  /// The transaction with the given id, or NotFound.
  virtual Result<const Transaction*> Get(const TransactionId& id) const = 0;
};

/// Hash-map-backed provider; serves as the participant-side transaction
/// cache (soft state) and as a test fixture.
class TransactionMap : public TransactionProvider {
 public:
  /// Adds or overwrites a transaction.
  void Put(Transaction txn) { txns_[txn.id] = std::move(txn); }

  bool Contains(const TransactionId& id) const {
    return txns_.count(id) != 0;
  }

  size_t size() const { return txns_.size(); }

  Result<const Transaction*> Get(const TransactionId& id) const override {
    auto it = txns_.find(id);
    if (it == txns_.end()) {
      return Status::NotFound("transaction " + id.ToString() + " unknown");
    }
    return &it->second;
  }

 private:
  std::unordered_map<TransactionId, Transaction, TransactionIdHash> txns_;
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_TRANSACTION_H_
