#include "core/trust.h"

#include <algorithm>

namespace orchestra::core {

bool AcceptanceRule::Matches(const Update& update) const {
  if (!origins_.empty() && origins_.count(update.origin()) == 0) return false;
  if (relation_ && update.relation() != *relation_) return false;
  if (content_predicate_ && !content_predicate_(update)) return false;
  return true;
}

int TrustPolicy::PriorityOf(const Update& update) const {
  if (update.origin() == self_) return kSelfPriority;
  int best = 0;
  for (const AcceptanceRule& rule : rules_) {
    if (rule.priority() > best && rule.Matches(update)) {
      best = rule.priority();
    }
  }
  return best;
}

int TrustPolicy::PriorityOfTransaction(const Transaction& txn) const {
  if (txn.updates.empty()) return 0;
  int best = 0;
  for (const Update& u : txn.updates) {
    const int p = PriorityOf(u);
    if (p <= 0) return 0;  // any untrusted update poisons the transaction
    best = std::max(best, p);
  }
  return best;
}

}  // namespace orchestra::core
