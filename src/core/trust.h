#ifndef ORCHESTRA_CORE_TRUST_H_
#define ORCHESTRA_CORE_TRUST_H_

#include <functional>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/transaction.h"
#include "core/update.h"

namespace orchestra::core {

/// Priority assigned to a participant's own transactions; always wins
/// ("the participant always picks its own version first", Fig. 2).
inline constexpr int kSelfPriority = std::numeric_limits<int>::max();

/// One acceptance rule (θ, v): a predicate over updates plus the integer
/// priority v assigned to updates satisfying it (Definition 1). The
/// predicate θ can constrain the update's origin, its relation, and —
/// via an arbitrary content predicate — its values.
class AcceptanceRule {
 public:
  AcceptanceRule() = default;

  /// Restricts the rule to updates originating at `origin`.
  AcceptanceRule& FromOrigin(ParticipantId origin) {
    origins_.insert(origin);
    return *this;
  }

  /// Restricts the rule to updates over `relation`.
  AcceptanceRule& OverRelation(std::string relation) {
    relation_ = std::move(relation);
    return *this;
  }

  /// Adds an arbitrary content predicate (e.g. "organism = 'rat'").
  AcceptanceRule& Where(std::function<bool(const Update&)> predicate) {
    content_predicate_ = std::move(predicate);
    return *this;
  }

  /// Sets the priority v (> 0 means trusted).
  AcceptanceRule& WithPriority(int priority) {
    priority_ = priority;
    return *this;
  }

  int priority() const { return priority_; }

  /// θ(δ): true if the update satisfies every constraint of this rule.
  bool Matches(const Update& update) const;

 private:
  std::set<ParticipantId> origins_;         // empty = any origin
  std::optional<std::string> relation_;     // nullopt = any relation
  std::function<bool(const Update&)> content_predicate_;  // null = any
  int priority_ = 0;
};

/// A(p_i): one participant's full set of acceptance rules, with the
/// paper's priority semantics (§4):
///   pri_i(X) = 0 if any δ ∈ X is untrusted (no rule with v > 0 matches)
///            = max over matching rules otherwise.
/// The participant's own updates are implicitly trusted at kSelfPriority.
class TrustPolicy {
 public:
  explicit TrustPolicy(ParticipantId self) : self_(self) {}

  ParticipantId self() const { return self_; }

  TrustPolicy& AddRule(AcceptanceRule rule) {
    rules_.push_back(std::move(rule));
    return *this;
  }

  /// Convenience: trust every update from `origin` at `priority`.
  TrustPolicy& TrustPeer(ParticipantId origin, int priority) {
    return AddRule(
        AcceptanceRule().FromOrigin(origin).WithPriority(priority));
  }

  /// Highest priority any rule assigns to this update; 0 if untrusted.
  int PriorityOf(const Update& update) const;

  /// pri_i(X) over a whole transaction, per §4.
  int PriorityOfTransaction(const Transaction& txn) const;

 private:
  ParticipantId self_;
  std::vector<AcceptanceRule> rules_;
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_TRUST_H_
