#include "core/update.h"

#include "common/check.h"
#include "db/serde.h"

namespace orchestra::core {

std::string_view UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert:
      return "insert";
    case UpdateKind::kDelete:
      return "delete";
    case UpdateKind::kModify:
      return "modify";
  }
  return "unknown";
}

Update Update::Insert(std::string relation, db::Tuple tuple,
                      ParticipantId origin) {
  return Update(UpdateKind::kInsert, std::move(relation), db::Tuple(),
                std::move(tuple), origin);
}

Update Update::Delete(std::string relation, db::Tuple tuple,
                      ParticipantId origin) {
  return Update(UpdateKind::kDelete, std::move(relation), std::move(tuple),
                db::Tuple(), origin);
}

Update Update::Modify(std::string relation, db::Tuple old_tuple,
                      db::Tuple new_tuple, ParticipantId origin) {
  return Update(UpdateKind::kModify, std::move(relation),
                std::move(old_tuple), std::move(new_tuple), origin);
}

std::optional<db::Tuple> Update::ReadKey(
    const db::RelationSchema& schema) const {
  if (is_insert()) return std::nullopt;
  return schema.KeyOf(old_tuple_);
}

std::optional<db::Tuple> Update::WriteKey(
    const db::RelationSchema& schema) const {
  if (is_delete()) return std::nullopt;
  return schema.KeyOf(new_tuple_);
}

std::vector<RelKey> Update::TouchedKeys(
    const db::RelationSchema& schema) const {
  std::vector<RelKey> out;
  if (auto read = ReadKey(schema)) {
    out.push_back(RelKey{relation_, std::move(*read)});
  }
  if (auto write = WriteKey(schema)) {
    RelKey rk{relation_, std::move(*write)};
    if (out.empty() || !(out.front() == rk)) out.push_back(std::move(rk));
  }
  return out;
}

std::string Update::ToString() const {
  switch (kind_) {
    case UpdateKind::kInsert:
      return "+" + relation_ + new_tuple_.ToString() + ";" +
             std::to_string(origin_);
    case UpdateKind::kDelete:
      return "-" + relation_ + old_tuple_.ToString() + ";" +
             std::to_string(origin_);
    case UpdateKind::kModify:
      return relation_ + "(" + old_tuple_.ToString() + " -> " +
             new_tuple_.ToString() + ");" + std::to_string(origin_);
  }
  return "?";
}

void EncodeUpdate(std::string* out, const Update& update) {
  out->push_back(static_cast<char>(update.kind()));
  db::PutLengthPrefixed(out, update.relation());
  db::PutVarint64(out, update.origin());
  db::EncodeTuple(out, update.old_tuple());
  db::EncodeTuple(out, update.new_tuple());
}

size_t EncodedUpdateSize(const Update& update) {
  const size_t relation = update.relation().size();
  return 1 + db::VarintLength(relation) + relation +
         db::VarintLength(update.origin()) +
         db::EncodedTupleSize(update.old_tuple()) +
         db::EncodedTupleSize(update.new_tuple());
}

Result<Update> DecodeUpdate(std::string_view data, size_t* pos) {
  if (*pos >= data.size()) return Status::Corruption("truncated update kind");
  const auto kind = static_cast<UpdateKind>(data[(*pos)++]);
  ORCH_ASSIGN_OR_RETURN(std::string relation, db::GetLengthPrefixed(data, pos));
  ORCH_ASSIGN_OR_RETURN(uint64_t origin, db::GetVarint64(data, pos));
  ORCH_ASSIGN_OR_RETURN(db::Tuple old_tuple, db::DecodeTuple(data, pos));
  ORCH_ASSIGN_OR_RETURN(db::Tuple new_tuple, db::DecodeTuple(data, pos));
  switch (kind) {
    case UpdateKind::kInsert:
      return Update::Insert(std::move(relation), std::move(new_tuple),
                            static_cast<ParticipantId>(origin));
    case UpdateKind::kDelete:
      return Update::Delete(std::move(relation), std::move(old_tuple),
                            static_cast<ParticipantId>(origin));
    case UpdateKind::kModify:
      return Update::Modify(std::move(relation), std::move(old_tuple),
                            std::move(new_tuple),
                            static_cast<ParticipantId>(origin));
  }
  return Status::Corruption("unknown update kind tag");
}

}  // namespace orchestra::core
