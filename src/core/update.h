#ifndef ORCHESTRA_CORE_UPDATE_H_
#define ORCHESTRA_CORE_UPDATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "db/schema.h"
#include "db/tuple.h"
#include "core/ids.h"

namespace orchestra::core {

/// The three update operations of §3.2.
enum class UpdateKind {
  kInsert = 0,  // +R(a; i)
  kDelete = 1,  // -R(a; i)
  kModify = 2,  // R(a -> a'; i)
};

std::string_view UpdateKindName(UpdateKind kind);

/// A (relation, key) pair identifying the logical tuple an update touches.
/// Used for conflict bucketing and the dirty-value set.
struct RelKey {
  std::string relation;
  db::Tuple key;

  std::string ToString() const { return relation + key.ToString(); }

  friend bool operator==(const RelKey& a, const RelKey& b) {
    return a.relation == b.relation && a.key == b.key;
  }
  friend bool operator<(const RelKey& a, const RelKey& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.key < b.key;
  }
};

struct RelKeyHash {
  size_t operator()(const RelKey& rk) const {
    return static_cast<size_t>(
        HashCombine(Fnv1a64(rk.relation), rk.key.Hash()));
  }
};

/// One value-level update, annotated with the identity of its originating
/// participant (§3.1 trust policies require origin annotations).
///
/// Representation invariants:
///  - kInsert: new_tuple set, old_tuple empty
///  - kDelete: old_tuple set, new_tuple empty
///  - kModify: both set (the key may change between them)
class Update {
 public:
  static Update Insert(std::string relation, db::Tuple tuple,
                       ParticipantId origin);
  static Update Delete(std::string relation, db::Tuple tuple,
                       ParticipantId origin);
  static Update Modify(std::string relation, db::Tuple old_tuple,
                       db::Tuple new_tuple, ParticipantId origin);

  UpdateKind kind() const { return kind_; }
  const std::string& relation() const { return relation_; }
  const db::Tuple& old_tuple() const { return old_tuple_; }
  const db::Tuple& new_tuple() const { return new_tuple_; }
  ParticipantId origin() const { return origin_; }

  bool is_insert() const { return kind_ == UpdateKind::kInsert; }
  bool is_delete() const { return kind_ == UpdateKind::kDelete; }
  bool is_modify() const { return kind_ == UpdateKind::kModify; }

  /// The key this update reads (pre-image key): delete/modify read the
  /// old tuple's key; inserts read nothing (nullopt).
  std::optional<db::Tuple> ReadKey(const db::RelationSchema& schema) const;

  /// The key this update writes (post-image key): insert/modify write the
  /// new tuple's key; deletes write nothing (they clear the read key).
  std::optional<db::Tuple> WriteKey(const db::RelationSchema& schema) const;

  /// Every (relation, key) this update touches — read or written. This is
  /// the footprint checked against the dirty-value set (§5).
  std::vector<RelKey> TouchedKeys(const db::RelationSchema& schema) const;

  /// Renders as "+F(rat, prot1, 'x'; 3)" / "-F(...)" / "F(a -> b; i)".
  std::string ToString() const;

  friend bool operator==(const Update& a, const Update& b) {
    return a.kind_ == b.kind_ && a.relation_ == b.relation_ &&
           a.old_tuple_ == b.old_tuple_ && a.new_tuple_ == b.new_tuple_ &&
           a.origin_ == b.origin_;
  }
  friend bool operator!=(const Update& a, const Update& b) {
    return !(a == b);
  }

 private:
  Update(UpdateKind kind, std::string relation, db::Tuple old_tuple,
         db::Tuple new_tuple, ParticipantId origin)
      : kind_(kind),
        relation_(std::move(relation)),
        old_tuple_(std::move(old_tuple)),
        new_tuple_(std::move(new_tuple)),
        origin_(origin) {}

  UpdateKind kind_;
  std::string relation_;
  db::Tuple old_tuple_;
  db::Tuple new_tuple_;
  ParticipantId origin_;
};

/// Binary (de)serialization, used for durability and for the simulated
/// network's message-size accounting.
void EncodeUpdate(std::string* out, const Update& update);
Result<Update> DecodeUpdate(std::string_view data, size_t* pos);

/// Encoded size in bytes, computed arithmetically (no encoding is
/// materialized); must agree with EncodeUpdate exactly.
size_t EncodedUpdateSize(const Update& update);

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_UPDATE_H_
