#ifndef ORCHESTRA_CORE_UPDATE_STORE_H_
#define ORCHESTRA_CORE_UPDATE_STORE_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/analysis.h"
#include "core/ids.h"
#include "core/provenance.h"
#include "core/reconciler.h"
#include "core/transaction.h"
#include "core/trust.h"

namespace orchestra::core {

/// Cumulative cost counters for one participant's interactions with an
/// update store. `sim_network_micros` is deterministic simulated message
/// latency + transfer time; `store_cpu_micros` is measured wall time of
/// store-side computation. Together they make up the "Store Time" bars
/// of the paper's Figures 10 and 12.
struct StoreStats {
  int64_t sim_network_micros = 0;
  int64_t store_cpu_micros = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t calls = 0;

  int64_t TotalStoreMicros() const {
    return sim_network_micros + store_cpu_micros;
  }

  friend StoreStats operator-(StoreStats a, const StoreStats& b) {
    a.sim_network_micros -= b.sim_network_micros;
    a.store_cpu_micros -= b.store_cpu_micros;
    a.messages -= b.messages;
    a.bytes -= b.bytes;
    a.calls -= b.calls;
    return a;
  }
  friend StoreStats operator+(StoreStats a, const StoreStats& b) {
    a.sim_network_micros += b.sim_network_micros;
    a.store_cpu_micros += b.store_cpu_micros;
    a.messages += b.messages;
    a.bytes += b.bytes;
    a.calls += b.calls;
    return a;
  }
};

/// How a store assembles each reconciliation's fetch.
enum class FetchMode {
  /// Re-scan and re-filter the entire published history every round
  /// (ignores the peer's epoch watermark for the scan window). The
  /// honest full-fetch baseline: correct — the participant's catch-up
  /// machinery absorbs re-sent material — but its per-round cost grows
  /// with history.
  kFull,
  /// The watermark-windowed fetch: scan only epochs in (prev, stable],
  /// one store access / DHT message per key. No caching, no batching.
  kWindowed,
  /// kWindowed plus the incremental pipeline: a shared decoded-
  /// transaction arena (decode each committed transaction once across
  /// all peers and rounds), per-peer applied-set suppression of lookups
  /// whose answer must be "not relevant", and — on the DHT — per-owner
  /// batched multi-get messages instead of one message per key. Fetch
  /// contents are bit-identical to kWindowed by construction.
  kDelta,
};

inline std::string_view FetchModeName(FetchMode mode) {
  switch (mode) {
    case FetchMode::kFull:
      return "full";
    case FetchMode::kWindowed:
      return "windowed";
    case FetchMode::kDelta:
      return "delta";
  }
  return "unknown";
}

/// Per-fetch accounting for the incremental pipeline (all zero under
/// kFull/kWindowed except `decoded`).
struct FetchStats {
  int64_t decoded = 0;              // transactions decoded this fetch
  int64_t cache_hits = 0;           // decodes avoided via the arena
  int64_t suppressed_lookups = 0;   // per-key lookups skipped (applied set)
  int64_t batched_messages = 0;     // multi-get messages sent (DHT)
  int64_t corrupt_reads = 0;        // checksum-rejected replica/row reads
  int64_t read_repairs = 0;         // corrupt replicas healed from a good copy
  int64_t failover_probes = 0;      // extra replica probes after a bad read

  FetchStats& operator+=(const FetchStats& o) {
    decoded += o.decoded;
    cache_hits += o.cache_hits;
    suppressed_lookups += o.suppressed_lookups;
    batched_messages += o.batched_messages;
    corrupt_reads += o.corrupt_reads;
    read_repairs += o.read_repairs;
    failover_probes += o.failover_probes;
    return *this;
  }
};

/// Everything a participant needs from the store to run one
/// reconciliation: the allocated reconciliation number, the stable epoch
/// it covers, the fully trusted undecided transactions with their trust
/// priorities, and a self-contained bundle of transactions covering the
/// trusted transactions plus their antecedent closures (excluding
/// transactions the participant already applied).
struct ReconcileFetch {
  int64_t recno = 0;
  Epoch epoch = kNoEpoch;
  std::vector<std::pair<TransactionId, int>> trusted;
  std::vector<Transaction> transactions;
  /// How the store assembled this fetch (cache hits, suppressed
  /// lookups, batching); purely diagnostic.
  FetchStats stats;
};

/// Everything required to reconstruct a participant that lost its local
/// state (§5.2: the client holds only soft state — the store can rebuild
/// it up to the last reconciliation). `applied` is sorted by publication
/// order; `undecided` covers transactions the peer had fetched but
/// neither applied nor rejected (i.e. its deferred backlog), along with
/// their antecedent closures in `closure`.
struct RecoveryBundle {
  int64_t recno = 0;
  Epoch epoch = kNoEpoch;  // the peer's reconciliation watermark
  /// Last reconciliation whose decisions were recorded in full. When
  /// this trails `recno`, the peer crashed between fetching
  /// reconciliation `recno` and recording its outcome; the store's
  /// decision log is complete only through `last_decided_recno`.
  int64_t last_decided_recno = 0;
  std::vector<Transaction> applied;
  std::vector<TransactionId> rejected;
  std::vector<std::pair<TransactionId, int>> undecided;
  std::vector<Transaction> closure;
};

/// What a network-centric reconciliation ships to the client: the usual
/// fetch, plus transaction extensions and the flattening/conflict
/// analysis, all computed inside the store ("across the network" for the
/// DHT, server-side for the central store). The client merges its
/// locally cached deferred backlog and runs only the decision phases.
struct NetworkCentricFetch {
  ReconcileFetch base;
  /// Parallel to base.trusted, with extensions computed store-side.
  std::vector<TrustedTxn> trusted_txns;
  /// Flattened extensions and direct conflicts over trusted_txns.
  ReconcileAnalysis analysis;
};

/// Optional capability interface: stores that can perform the
/// reconciliation analysis themselves (§5's network-centric mode,
/// proposed in the paper as future work and implemented here). Both
/// shipped stores support it; discover it with a dynamic_cast from
/// UpdateStore.
class NetworkCentricStore {
 public:
  virtual ~NetworkCentricStore() = default;

  /// Like UpdateStore::BeginReconciliation, but the store also computes
  /// the transaction extensions, flattened update extensions, and direct
  /// conflicts, charging that work to the store rather than the client.
  virtual Result<NetworkCentricFetch> BeginNetworkCentricReconciliation(
      ParticipantId peer) = 0;
};

/// The update store of §5.2: publishes and retrieves transactions,
/// associates each published transaction with a client reconciliation,
/// and durably records which transactions each peer accepted or
/// rejected. The two implementations — a centralized RDBMS-style store
/// (§5.2.1) and a distributed DHT-based store (§5.2.2) — live in
/// src/store.
class UpdateStore {
 public:
  virtual ~UpdateStore() = default;

  /// Registers a peer and its trust policy. The store applies trust
  /// predicates store-side so that only relevant transactions travel
  /// over the network (§5.2.1). The policy must outlive the store.
  virtual Status RegisterParticipant(ParticipantId peer,
                                     const TrustPolicy* policy) = 0;

  /// Publishes a batch of transactions from `peer` as one epoch and
  /// records them as already accepted by their publisher. Returns the
  /// allocated epoch.
  virtual Result<Epoch> Publish(ParticipantId peer,
                                std::vector<Transaction> txns) = 0;

  /// Starts a reconciliation for `peer`: allocates a reconciliation
  /// number, determines the latest stable epoch (§5.2.1), and returns
  /// the newly relevant transactions. Each published transaction is
  /// returned to a given peer at most once across reconciliations.
  virtual Result<ReconcileFetch> BeginReconciliation(ParticipantId peer) = 0;

  /// Durably records the outcome of reconciliation `recno`: the
  /// transactions applied (accepted roots plus transitively accepted
  /// antecedents) and those explicitly rejected.
  virtual Status RecordDecisions(
      ParticipantId peer, int64_t recno,
      const std::vector<TransactionId>& applied,
      const std::vector<TransactionId>& rejected) = 0;

  /// Persists the decision-provenance records of reconciliation `recno`
  /// alongside the decision log. Best-effort and advisory: provenance
  /// explains decisions but is never needed to make them, so stores may
  /// drop records under faults rather than fail the round — callers
  /// must not treat an error here as a failed reconciliation. The
  /// default keeps no provenance (stores opt in).
  virtual Status RecordProvenance(ParticipantId peer, int64_t recno,
                                  const std::vector<ProvenanceRecord>& records) {
    (void)peer;
    (void)recno;
    (void)records;
    return Status::OK();
  }

  /// Retrieves the full durable state of `peer` for crash recovery: its
  /// applied transactions (in publication order), rejected transaction
  /// ids, and the undecided (deferred) transactions within its
  /// reconciliation watermark. See RecoveryBundle.
  virtual Result<RecoveryBundle> FetchRecoveryState(
      ParticipantId peer) const = 0;

  /// Bootstraps `new_peer` from `source_peer`'s published state (§1:
  /// participants populate fresh local instances with downloaded data).
  /// Records, store-side, that `new_peer` has applied exactly what
  /// `source_peer` applied, moves its epoch watermark to the source's,
  /// and returns the applied transactions (in publication order) for
  /// local replay. The new peer's own trust policy governs everything
  /// *after* the bootstrap point; the source's rejections are
  /// deliberately not inherited (they reflect the source's policy, not
  /// the new peer's), and the bundle's `undecided` set — transactions in
  /// the adopted window that the source neither applied nor the new
  /// peer's policy distrusts — lets the new peer defer or decide them
  /// under its own rules.
  virtual Result<RecoveryBundle> Bootstrap(ParticipantId new_peer,
                                           ParticipantId source_peer) = 0;

  /// Cumulative interaction costs charged to `peer`.
  virtual StoreStats StatsFor(ParticipantId peer) const = 0;

  /// Human-readable implementation name ("central", "dht").
  virtual std::string_view name() const = 0;
};

}  // namespace orchestra::core

#endif  // ORCHESTRA_CORE_UPDATE_STORE_H_
