#include "db/instance.h"

#include "common/check.h"

namespace orchestra::db {

Instance::Instance(const Catalog* catalog) : catalog_(catalog) {
  ORCH_CHECK(catalog != nullptr);
  for (const auto& [name, schema] : catalog->relations()) {
    tables_.emplace(name, Table(schema));
  }
}

Result<Table*> Instance::GetTable(std::string_view relation) {
  auto it = tables_.find(relation);
  if (it == tables_.end()) {
    return Status::NotFound("relation " + std::string(relation) +
                            " not in instance");
  }
  return &it->second;
}

Result<const Table*> Instance::GetTable(std::string_view relation) const {
  auto it = tables_.find(relation);
  if (it == tables_.end()) {
    return Status::NotFound("relation " + std::string(relation) +
                            " not in instance");
  }
  return &it->second;
}

size_t Instance::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) n += table.size();
  return n;
}

Status Instance::CheckForeignKeys() const {
  for (const ForeignKey& fk : catalog_->foreign_keys()) {
    auto child_it = tables_.find(fk.child_relation);
    auto parent_it = tables_.find(fk.parent_relation);
    ORCH_CHECK(child_it != tables_.end() && parent_it != tables_.end());
    for (const Tuple& child : child_it->second.Scan()) {
      Tuple ref = child.Project(fk.child_columns);
      bool all_null = true;
      for (const Value& v : ref.values()) {
        if (!v.is_null()) all_null = false;
      }
      if (all_null) continue;  // NULL references are vacuously satisfied
      if (!parent_it->second.ContainsKey(ref)) {
        return Status::ConstraintViolation(
            "tuple " + child.ToString() + " in " + fk.child_relation +
            " references missing key " + ref.ToString() + " of " +
            fk.parent_relation);
      }
    }
  }
  return Status::OK();
}

bool operator==(const Instance& a, const Instance& b) {
  return a.tables_ == b.tables_;
}

std::string Instance::ToString() const {
  std::string out;
  for (const auto& [name, table] : tables_) {
    out += name + ":\n";
    for (const Tuple& t : table.ScanSorted()) {
      out += "  " + t.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace orchestra::db
