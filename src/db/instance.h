#ifndef ORCHESTRA_DB_INSTANCE_H_
#define ORCHESTRA_DB_INSTANCE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/schema.h"
#include "db/table.h"

namespace orchestra::db {

/// A full database instance I_i(Σ): one Table per relation in the shared
/// catalog, plus multi-relation integrity checking. Each CDSS participant
/// owns one Instance; the catalog itself is shared and read-only.
class Instance {
 public:
  /// Creates an empty instance with one table per catalog relation.
  /// The catalog must outlive the instance.
  explicit Instance(const Catalog* catalog);

  Instance(const Instance&) = default;
  Instance& operator=(const Instance&) = default;

  const Catalog& catalog() const { return *catalog_; }

  /// The table for `relation`; NotFound if the catalog lacks it.
  Result<Table*> GetTable(std::string_view relation);
  Result<const Table*> GetTable(std::string_view relation) const;

  /// Total number of tuples across all relations.
  size_t TotalTuples() const;

  /// Verifies every foreign key over the current contents. Violations are
  /// reported with the offending child tuple. Used after applying a
  /// flattened update set, per Definition 5 requirement (2).
  Status CheckForeignKeys() const;

  /// True if both instances hold exactly the same tuples in every relation.
  friend bool operator==(const Instance& a, const Instance& b);

  /// Deterministic multi-line rendering (relations in name order, tuples
  /// in key order); used by tests and the examples.
  std::string ToString() const;

 private:
  const Catalog* catalog_;
  std::map<std::string, Table, std::less<>> tables_;
};

}  // namespace orchestra::db

#endif  // ORCHESTRA_DB_INSTANCE_H_
