#include "db/schema.h"

#include <unordered_set>

#include "common/string_util.h"

namespace orchestra::db {

Result<RelationSchema> RelationSchema::Make(std::string name,
                                            std::vector<Column> columns,
                                            std::vector<size_t> key_columns) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("relation " + name + " has no columns");
  }
  std::unordered_set<std::string> seen_names;
  for (const Column& c : columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("relation " + name +
                                     " has an unnamed column");
    }
    if (!seen_names.insert(c.name).second) {
      return Status::InvalidArgument("relation " + name +
                                     " repeats column name " + c.name);
    }
    if (c.type == ValueType::kNull) {
      return Status::InvalidArgument("column " + c.name +
                                     " cannot have type null");
    }
  }
  if (key_columns.empty()) {
    return Status::InvalidArgument("relation " + name +
                                   " must declare a primary key");
  }
  std::unordered_set<size_t> seen_keys;
  for (size_t k : key_columns) {
    if (k >= columns.size()) {
      return Status::InvalidArgument("key column index " + std::to_string(k) +
                                     " out of range in relation " + name);
    }
    if (!seen_keys.insert(k).second) {
      return Status::InvalidArgument("key column index " + std::to_string(k) +
                                     " repeated in relation " + name);
    }
    if (columns[k].nullable) {
      return Status::InvalidArgument("key column " + columns[k].name +
                                     " must not be nullable");
    }
  }
  RelationSchema schema;
  schema.name_ = std::move(name);
  schema.columns_ = std::move(columns);
  schema.key_columns_ = std::move(key_columns);
  return schema;
}

std::optional<size_t> RelationSchema::ColumnIndex(
    std::string_view column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column_name) return i;
  }
  return std::nullopt;
}

bool RelationSchema::IsKeyColumn(size_t column) const {
  for (size_t k : key_columns_) {
    if (k == column) return true;
  }
  return false;
}

Status RelationSchema::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " does not match " +
        name_ + " arity " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Value& v = tuple[i];
    if (v.is_null()) {
      if (!columns_[i].nullable) {
        return Status::ConstraintViolation("column " + columns_[i].name +
                                           " of " + name_ + " is NOT NULL");
      }
      continue;
    }
    if (v.type() != columns_[i].type) {
      return Status::InvalidArgument(
          "column " + columns_[i].name + " of " + name_ + " expects " +
          std::string(ValueTypeName(columns_[i].type)) + ", got " +
          std::string(ValueTypeName(v.type())));
    }
  }
  return Status::OK();
}

std::string RelationSchema::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::string c = columns_[i].name + " " +
                    std::string(ValueTypeName(columns_[i].type));
    if (IsKeyColumn(i)) c += " KEY";
    if (columns_[i].nullable) c += " NULL";
    cols.push_back(std::move(c));
  }
  return name_ + "(" + Join(cols, ", ") + ")";
}

Status Catalog::AddRelation(RelationSchema schema) {
  const std::string name = schema.name();
  if (!relations_.emplace(name, std::move(schema)).second) {
    return Status::AlreadyExists("relation " + name + " already declared");
  }
  return Status::OK();
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  auto child = GetRelation(fk.child_relation);
  if (!child.ok()) return child.status();
  auto parent = GetRelation(fk.parent_relation);
  if (!parent.ok()) return parent.status();
  if (fk.child_columns.size() != (*parent)->key_columns().size()) {
    return Status::InvalidArgument(
        "foreign key from " + fk.child_relation + " to " + fk.parent_relation +
        " has arity " + std::to_string(fk.child_columns.size()) +
        " but the parent key has arity " +
        std::to_string((*parent)->key_columns().size()));
  }
  for (size_t c : fk.child_columns) {
    if (c >= (*child)->arity()) {
      return Status::InvalidArgument("foreign key column index " +
                                     std::to_string(c) + " out of range in " +
                                     fk.child_relation);
    }
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

Result<const RelationSchema*> Catalog::GetRelation(
    std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + std::string(name) +
                            " is not declared in the catalog");
  }
  return &it->second;
}

bool Catalog::HasRelation(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

std::vector<const ForeignKey*> Catalog::ForeignKeysOf(
    std::string_view relation) const {
  std::vector<const ForeignKey*> out;
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.child_relation == relation) out.push_back(&fk);
  }
  return out;
}

std::vector<const ForeignKey*> Catalog::ForeignKeysReferencing(
    std::string_view relation) const {
  std::vector<const ForeignKey*> out;
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.parent_relation == relation) out.push_back(&fk);
  }
  return out;
}

}  // namespace orchestra::db
