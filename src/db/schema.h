#ifndef ORCHESTRA_DB_SCHEMA_H_
#define ORCHESTRA_DB_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/tuple.h"
#include "db/value.h"

namespace orchestra::db {

/// One column in a relation schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = false;
};

/// Referential integrity constraint: each child tuple's `child_columns`
/// projection must appear as the primary key of some tuple in
/// `parent_relation` (or be all-NULL if the columns are nullable).
struct ForeignKey {
  std::string child_relation;
  std::vector<size_t> child_columns;
  std::string parent_relation;
};

/// Schema of one relation: name, typed columns, and the primary-key
/// column indices. Immutable after construction (use Make).
class RelationSchema {
 public:
  /// Validates and builds a schema. Fails if the name or columns are
  /// empty, column names repeat, key indices are out of range or
  /// repeated, or a key column is nullable.
  static Result<RelationSchema> Make(std::string name,
                                     std::vector<Column> columns,
                                     std::vector<size_t> key_columns);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }
  size_t arity() const { return columns_.size(); }

  /// Index of the column named `name`, if present.
  std::optional<size_t> ColumnIndex(std::string_view column_name) const;

  /// Projects the primary-key attributes out of a full tuple.
  Tuple KeyOf(const Tuple& tuple) const { return tuple.Project(key_columns_); }

  /// True if `column` participates in the primary key.
  bool IsKeyColumn(size_t column) const;

  /// Checks arity, types, and NOT NULL constraints of a full tuple.
  Status ValidateTuple(const Tuple& tuple) const;

  std::string ToString() const;

 private:
  RelationSchema() = default;

  std::string name_;
  std::vector<Column> columns_;
  std::vector<size_t> key_columns_;
};

/// The database schema Σ: a set of relation schemas plus foreign keys.
/// Shared (read-only after setup) by every participant in a CDSS.
class Catalog {
 public:
  /// Registers a relation; fails on duplicate names.
  Status AddRelation(RelationSchema schema);

  /// Registers a foreign key; both relations must already exist, and the
  /// child column list must match the parent key's arity.
  Status AddForeignKey(ForeignKey fk);

  /// Looks up a relation schema by name.
  Result<const RelationSchema*> GetRelation(std::string_view name) const;

  bool HasRelation(std::string_view name) const;

  const std::map<std::string, RelationSchema, std::less<>>& relations() const {
    return relations_;
  }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Foreign keys whose child is `relation`.
  std::vector<const ForeignKey*> ForeignKeysOf(std::string_view relation) const;

  /// Foreign keys whose parent is `relation`.
  std::vector<const ForeignKey*> ForeignKeysReferencing(
      std::string_view relation) const;

 private:
  std::map<std::string, RelationSchema, std::less<>> relations_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace orchestra::db

#endif  // ORCHESTRA_DB_SCHEMA_H_
