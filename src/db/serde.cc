#include "db/serde.h"

#include <cstring>

#include "common/crc32c.h"

namespace orchestra::db {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

Result<uint64_t> GetVarint64(std::string_view data, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < data.size()) {
    const uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    if (shift >= 64) {
      return Status::Corruption("varint too long");
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::Corruption("truncated varint");
}

void PutLengthPrefixed(std::string* out, std::string_view value) {
  PutVarint64(out, value.size());
  out->append(value);
}

Result<std::string_view> GetLengthPrefixedView(std::string_view data,
                                               size_t* pos) {
  ORCH_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(data, pos));
  if (len > data.size() - *pos) {  // written to avoid uint64 overflow
    return Status::Corruption("truncated length-prefixed field");
  }
  std::string_view out = data.substr(*pos, len);
  *pos += len;
  return out;
}

Result<std::string> GetLengthPrefixed(std::string_view data, size_t* pos) {
  ORCH_ASSIGN_OR_RETURN(std::string_view view,
                        GetLengthPrefixedView(data, pos));
  return std::string(view);
}

void EncodeValue(std::string* out, const Value& value) {
  out->push_back(static_cast<char>(value.type()));
  switch (value.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64: {
      // Zigzag so negative values stay short.
      const int64_t v = value.AsInt64();
      PutVarint64(out, (static_cast<uint64_t>(v) << 1) ^
                           static_cast<uint64_t>(v >> 63));
      break;
    }
    case ValueType::kDouble: {
      const double d = value.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      char buf[8];
      std::memcpy(buf, &bits, sizeof(bits));
      out->append(buf, sizeof(buf));
      break;
    }
    case ValueType::kString:
      PutLengthPrefixed(out, value.AsString());
      break;
  }
}

Value ValueView::ToValue() const {
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64:
      return Value(i64);
    case ValueType::kDouble:
      return Value(f64);
    case ValueType::kString:
      return Value(std::string(str));
  }
  return Value::Null();
}

Result<ValueView> DecodeValueView(std::string_view data, size_t* pos) {
  if (*pos >= data.size()) return Status::Corruption("truncated value tag");
  ValueView view;
  view.type = static_cast<ValueType>(data[(*pos)++]);
  switch (view.type) {
    case ValueType::kNull:
      return view;
    case ValueType::kInt64: {
      ORCH_ASSIGN_OR_RETURN(uint64_t zz, GetVarint64(data, pos));
      view.i64 = static_cast<int64_t>(zz >> 1) ^ -static_cast<int64_t>(zz & 1);
      return view;
    }
    case ValueType::kDouble: {
      if (*pos + 8 > data.size()) {
        return Status::Corruption("truncated double");
      }
      uint64_t bits;
      std::memcpy(&bits, data.data() + *pos, sizeof(bits));
      *pos += 8;
      std::memcpy(&view.f64, &bits, sizeof(view.f64));
      return view;
    }
    case ValueType::kString: {
      ORCH_ASSIGN_OR_RETURN(view.str, GetLengthPrefixedView(data, pos));
      return view;
    }
  }
  return Status::Corruption("unknown value type tag");
}

Result<Value> DecodeValue(std::string_view data, size_t* pos) {
  ORCH_ASSIGN_OR_RETURN(ValueView view, DecodeValueView(data, pos));
  return view.ToValue();
}

void EncodeTuple(std::string* out, const Tuple& tuple) {
  out->reserve(out->size() + EncodedTupleSize(tuple));
  PutVarint64(out, tuple.size());
  for (const Value& v : tuple.values()) EncodeValue(out, v);
}

Status DecodeTupleView(std::string_view data, size_t* pos,
                       std::vector<ValueView>* out) {
  out->clear();
  ORCH_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(data, pos));
  // Every value occupies at least one byte; a larger count is corrupt
  // input (and must not drive an allocation).
  if (count > data.size() - *pos) {
    return Status::Corruption("tuple arity " + std::to_string(count) +
                              " exceeds the remaining input");
  }
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ORCH_ASSIGN_OR_RETURN(ValueView v, DecodeValueView(data, pos));
    out->push_back(v);
  }
  return Status::OK();
}

Result<Tuple> DecodeTuple(std::string_view data, size_t* pos) {
  ORCH_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(data, pos));
  if (count > data.size() - *pos) {
    return Status::Corruption("tuple arity " + std::to_string(count) +
                              " exceeds the remaining input");
  }
  std::vector<Value> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ORCH_ASSIGN_OR_RETURN(ValueView v, DecodeValueView(data, pos));
    values.push_back(v.ToValue());
  }
  return Tuple(std::move(values));
}

size_t EncodedValueSize(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt64: {
      const int64_t v = value.AsInt64();
      return 1 + VarintLength((static_cast<uint64_t>(v) << 1) ^
                              static_cast<uint64_t>(v >> 63));
    }
    case ValueType::kDouble:
      return 1 + 8;
    case ValueType::kString: {
      const size_t len = value.AsString().size();
      return 1 + VarintLength(len) + len;
    }
  }
  return 1;
}

size_t EncodedTupleSize(const Tuple& tuple) {
  size_t size = VarintLength(tuple.size());
  for (const Value& v : tuple.values()) size += EncodedValueSize(v);
  return size;
}

namespace {

/// Varint read that tells a cut-short buffer (kOutOfRange: more bytes
/// might complete it) apart from an over-long encoding (kCorruption).
/// GetVarint64 collapses both into kCorruption, which is right for
/// whole-buffer decodes but loses the torn-tail distinction the WAL
/// replay path depends on.
Result<uint64_t> ReadEnvelopeVarint(std::string_view data, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < data.size()) {
    const uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    if (shift >= 64) return Status::Corruption("envelope varint too long");
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::OutOfRange("envelope length cut short");
}

uint32_t ReadCrcLE(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

Result<std::string_view> ReadEnvelopeImpl(std::string_view data, size_t* pos,
                                          bool check_crc) {
  if (*pos + 3 > data.size()) {
    return Status::OutOfRange("envelope header cut short");
  }
  if (data[*pos] != kEnvelopeMagic0 || data[*pos + 1] != kEnvelopeMagic1) {
    return Status::Corruption("bad envelope magic");
  }
  if (data[*pos + 2] != kEnvelopeVersion) {
    return Status::Corruption(
        "unsupported envelope version " +
        std::to_string(static_cast<int>(
            static_cast<uint8_t>(data[*pos + 2]))));
  }
  size_t cursor = *pos + 3;
  ORCH_ASSIGN_OR_RETURN(uint64_t len, ReadEnvelopeVarint(data, &cursor));
  if (len > data.size() - cursor || data.size() - cursor - len < 4) {
    return Status::OutOfRange("envelope payload cut short");
  }
  const uint32_t stored = ReadCrcLE(data.data() + cursor);
  cursor += 4;
  std::string_view payload = data.substr(cursor, len);
  if (check_crc && stored != Crc32c(0, payload)) {
    return Status::Corruption("envelope checksum mismatch");
  }
  *pos = cursor + len;
  return payload;
}

}  // namespace

size_t EnvelopeOverhead(size_t payload_len) {
  return 3 + VarintLength(payload_len) + 4;
}

bool HasEnvelopeHeader(std::string_view data) {
  return data.size() >= 3 && data[0] == kEnvelopeMagic0 &&
         data[1] == kEnvelopeMagic1 && data[2] == kEnvelopeVersion;
}

void WrapEnvelope(std::string* out, std::string_view payload) {
  out->reserve(out->size() + EnvelopeOverhead(payload.size()) +
               payload.size());
  out->push_back(kEnvelopeMagic0);
  out->push_back(kEnvelopeMagic1);
  out->push_back(kEnvelopeVersion);
  PutVarint64(out, payload.size());
  const uint32_t crc = Crc32c(0, payload);
  out->push_back(static_cast<char>(crc & 0xFF));
  out->push_back(static_cast<char>((crc >> 8) & 0xFF));
  out->push_back(static_cast<char>((crc >> 16) & 0xFF));
  out->push_back(static_cast<char>((crc >> 24) & 0xFF));
  out->append(payload);
}

Result<std::string_view> ReadEnvelope(std::string_view data, size_t* pos) {
  return ReadEnvelopeImpl(data, pos, /*check_crc=*/true);
}

Result<std::string_view> UnwrapEnvelope(std::string_view data,
                                        EnvelopePolicy policy) {
  if (!HasEnvelopeHeader(data)) {
    if (policy == EnvelopePolicy::kAllowUnframed) return data;
    return Status::Corruption("expected integrity envelope");
  }
  size_t pos = 0;
  auto payload = ReadEnvelopeImpl(
      data, &pos,
      /*check_crc=*/policy != EnvelopePolicy::kTrustUnverified);
  if (!payload.ok()) {
    // A whole-buffer unwrap has no "more bytes coming" case: a cut-short
    // frame here is corruption of a stored value, not a torn tail.
    if (payload.status().code() == StatusCode::kOutOfRange) {
      return Status::Corruption("truncated envelope: " +
                                payload.status().message());
    }
    return payload.status();
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes after envelope");
  }
  return payload;
}

}  // namespace orchestra::db
