#ifndef ORCHESTRA_DB_SERDE_H_
#define ORCHESTRA_DB_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "db/tuple.h"
#include "db/value.h"

namespace orchestra::db {

/// Binary encoding for db values/tuples. Used by the WAL (durability of
/// the central store) and by the simulated network to account message
/// sizes. The format is length-prefixed and self-describing:
///   varint  LEB128 unsigned
///   value   [type:1 byte][payload]
///   tuple   [varint count][value...]

/// Appends a LEB128-encoded unsigned integer to `out`.
void PutVarint64(std::string* out, uint64_t value);

/// Reads a varint from data[*pos...], advancing *pos.
Result<uint64_t> GetVarint64(std::string_view data, size_t* pos);

/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* out, std::string_view value);
Result<std::string> GetLengthPrefixed(std::string_view data, size_t* pos);

void EncodeValue(std::string* out, const Value& value);
Result<Value> DecodeValue(std::string_view data, size_t* pos);

void EncodeTuple(std::string* out, const Tuple& tuple);
Result<Tuple> DecodeTuple(std::string_view data, size_t* pos);

/// Size in bytes of the encoded tuple (for message accounting without
/// materializing the encoding).
size_t EncodedTupleSize(const Tuple& tuple);

}  // namespace orchestra::db

#endif  // ORCHESTRA_DB_SERDE_H_
