#ifndef ORCHESTRA_DB_SERDE_H_
#define ORCHESTRA_DB_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/tuple.h"
#include "db/value.h"

namespace orchestra::db {

/// Binary encoding for db values/tuples. Used by the WAL (durability of
/// the central store) and by the simulated network to account message
/// sizes. The format is length-prefixed and self-describing:
///   varint  LEB128 unsigned
///   value   [type:1 byte][payload]
///   tuple   [varint count][value...]
///
/// Two decode paths share one set of parsers: the *copying* decoders
/// return owning Value/Tuple objects, and the *zero-copy* decoders
/// return string_view slices over the input buffer (valid only while
/// the buffer outlives them). The copying path is implemented on top of
/// the zero-copy one, so the two cannot disagree about the format.

/// Appends a LEB128-encoded unsigned integer to `out`.
void PutVarint64(std::string* out, uint64_t value);

/// Number of bytes PutVarint64 would append for `value`.
size_t VarintLength(uint64_t value);

/// Reads a varint from data[*pos...], advancing *pos.
Result<uint64_t> GetVarint64(std::string_view data, size_t* pos);

/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* out, std::string_view value);
Result<std::string> GetLengthPrefixed(std::string_view data, size_t* pos);

/// Zero-copy variant: the returned view aliases `data` and is valid
/// only while the underlying buffer is.
Result<std::string_view> GetLengthPrefixedView(std::string_view data,
                                               size_t* pos);

void EncodeValue(std::string* out, const Value& value);
Result<Value> DecodeValue(std::string_view data, size_t* pos);

/// A decoded value whose string payload (if any) aliases the input
/// buffer instead of owning a copy. Convert with ToValue() only where
/// an owning Value is actually needed.
struct ValueView {
  ValueType type = ValueType::kNull;
  int64_t i64 = 0;
  double f64 = 0;
  std::string_view str;

  Value ToValue() const;
};

Result<ValueView> DecodeValueView(std::string_view data, size_t* pos);

void EncodeTuple(std::string* out, const Tuple& tuple);
Result<Tuple> DecodeTuple(std::string_view data, size_t* pos);

/// Zero-copy tuple decode: appends one ValueView per attribute to
/// `out` (cleared first). Views alias `data`.
Status DecodeTupleView(std::string_view data, size_t* pos,
                       std::vector<ValueView>* out);

/// Size in bytes of the encoded value/tuple, computed arithmetically —
/// no encoding is materialized. Used by the simulated network for
/// message accounting on the reconciliation hot path.
size_t EncodedValueSize(const Value& value);
size_t EncodedTupleSize(const Tuple& tuple);

/// --- Integrity envelope ------------------------------------------------
///
/// A length+CRC32C frame wrapped around every payload the system stores
/// or ships: WAL records, staged/committed publish rows, DHT replica
/// values, and simulated network payloads. Layout:
///
///   [magic 0xC6][magic 0x32][version 0x01]
///   [varint payload_len][crc32c 4B little-endian][payload]
///
/// The checksum covers the payload bytes only; length and checksum
/// together detect truncation, bit flips, and torn writes. The version
/// byte leaves room for future framings; the two magic bytes make the
/// frame self-identifying so readers can tell a framed buffer from
/// legacy unframed data written before this format existed (see
/// EnvelopePolicy).

inline constexpr char kEnvelopeMagic0 = static_cast<char>(0xC6);
inline constexpr char kEnvelopeMagic1 = static_cast<char>(0x32);
inline constexpr char kEnvelopeVersion = 0x01;

/// How UnwrapEnvelope treats a buffer that does not start with the
/// envelope magic.
enum class EnvelopePolicy {
  /// The buffer must be framed; anything else is kCorruption. Use
  /// wherever the writer is known to frame (all new-format data).
  kRequireFrame,
  /// A buffer without the magic header is passed through verbatim as a
  /// legacy unframed payload. Only safe when the source provably
  /// predates framing (e.g. rows recovered from a legacy-format WAL) —
  /// an unframed buffer carries no checksum, so corruption in it is
  /// undetectable by construction.
  kAllowUnframed,
  /// The frame structure (magic, version, length) is parsed but the
  /// checksum is NOT compared: whatever payload bytes are there come
  /// back, rot and all. Exists solely for the corruption sweep's
  /// checksums-disabled control arm — it models a deployment without
  /// end-to-end verification. Never use it on a production read path.
  kTrustUnverified,
};

/// Bytes of framing overhead for a payload of `payload_len` bytes.
size_t EnvelopeOverhead(size_t payload_len);

/// True when `data` begins with the envelope magic + version header.
bool HasEnvelopeHeader(std::string_view data);

/// Appends the envelope frame for `payload` to `out`.
void WrapEnvelope(std::string* out, std::string_view payload);

/// Verifies the frame occupying the whole of `data` and returns a view
/// of the payload (aliasing `data`). kCorruption on bad magic/version/
/// checksum, length mismatch, or trailing garbage; under kAllowUnframed
/// an unframed buffer is returned as-is without verification.
Result<std::string_view> UnwrapEnvelope(std::string_view data,
                                        EnvelopePolicy policy);

/// Streaming variant for concatenated frames (the WAL): reads one
/// envelope at data[*pos...], advancing *pos past it. kOutOfRange when
/// the frame is cut short by the end of the buffer (a torn tail — the
/// bytes so far are a valid prefix), kCorruption when the bytes are
/// inconsistent with any frame (bad magic/version/checksum).
Result<std::string_view> ReadEnvelope(std::string_view data, size_t* pos);

}  // namespace orchestra::db

#endif  // ORCHESTRA_DB_SERDE_H_
