#ifndef ORCHESTRA_DB_SERDE_H_
#define ORCHESTRA_DB_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/tuple.h"
#include "db/value.h"

namespace orchestra::db {

/// Binary encoding for db values/tuples. Used by the WAL (durability of
/// the central store) and by the simulated network to account message
/// sizes. The format is length-prefixed and self-describing:
///   varint  LEB128 unsigned
///   value   [type:1 byte][payload]
///   tuple   [varint count][value...]
///
/// Two decode paths share one set of parsers: the *copying* decoders
/// return owning Value/Tuple objects, and the *zero-copy* decoders
/// return string_view slices over the input buffer (valid only while
/// the buffer outlives them). The copying path is implemented on top of
/// the zero-copy one, so the two cannot disagree about the format.

/// Appends a LEB128-encoded unsigned integer to `out`.
void PutVarint64(std::string* out, uint64_t value);

/// Number of bytes PutVarint64 would append for `value`.
size_t VarintLength(uint64_t value);

/// Reads a varint from data[*pos...], advancing *pos.
Result<uint64_t> GetVarint64(std::string_view data, size_t* pos);

/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* out, std::string_view value);
Result<std::string> GetLengthPrefixed(std::string_view data, size_t* pos);

/// Zero-copy variant: the returned view aliases `data` and is valid
/// only while the underlying buffer is.
Result<std::string_view> GetLengthPrefixedView(std::string_view data,
                                               size_t* pos);

void EncodeValue(std::string* out, const Value& value);
Result<Value> DecodeValue(std::string_view data, size_t* pos);

/// A decoded value whose string payload (if any) aliases the input
/// buffer instead of owning a copy. Convert with ToValue() only where
/// an owning Value is actually needed.
struct ValueView {
  ValueType type = ValueType::kNull;
  int64_t i64 = 0;
  double f64 = 0;
  std::string_view str;

  Value ToValue() const;
};

Result<ValueView> DecodeValueView(std::string_view data, size_t* pos);

void EncodeTuple(std::string* out, const Tuple& tuple);
Result<Tuple> DecodeTuple(std::string_view data, size_t* pos);

/// Zero-copy tuple decode: appends one ValueView per attribute to
/// `out` (cleared first). Views alias `data`.
Status DecodeTupleView(std::string_view data, size_t* pos,
                       std::vector<ValueView>* out);

/// Size in bytes of the encoded value/tuple, computed arithmetically —
/// no encoding is materialized. Used by the simulated network for
/// message accounting on the reconciliation hot path.
size_t EncodedValueSize(const Value& value);
size_t EncodedTupleSize(const Tuple& tuple);

}  // namespace orchestra::db

#endif  // ORCHESTRA_DB_SERDE_H_
