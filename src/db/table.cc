#include "db/table.h"

#include <algorithm>

namespace orchestra::db {

Status Table::Insert(const Tuple& tuple) {
  ORCH_RETURN_IF_ERROR(schema_.ValidateTuple(tuple));
  Tuple key = schema_.KeyOf(tuple);
  auto [it, inserted] = rows_.emplace(std::move(key), tuple);
  if (!inserted) {
    return Status::AlreadyExists("key " + it->first.ToString() +
                                 " already present in " + schema_.name());
  }
  return Status::OK();
}

Status Table::DeleteByKey(const Tuple& key) {
  if (rows_.erase(key) == 0) {
    return Status::NotFound("key " + key.ToString() + " not present in " +
                            schema_.name());
  }
  return Status::OK();
}

Status Table::Replace(const Tuple& old_tuple, const Tuple& new_tuple) {
  ORCH_RETURN_IF_ERROR(schema_.ValidateTuple(new_tuple));
  const Tuple old_key = schema_.KeyOf(old_tuple);
  const Tuple new_key = schema_.KeyOf(new_tuple);
  auto it = rows_.find(old_key);
  if (it == rows_.end()) {
    return Status::NotFound("key " + old_key.ToString() + " not present in " +
                            schema_.name());
  }
  if (new_key == old_key) {
    it->second = new_tuple;
    return Status::OK();
  }
  if (rows_.find(new_key) != rows_.end()) {
    return Status::AlreadyExists("replacement key " + new_key.ToString() +
                                 " collides in " + schema_.name());
  }
  rows_.erase(it);
  rows_.emplace(new_key, new_tuple);
  return Status::OK();
}

Result<Tuple> Table::GetByKey(const Tuple& key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("key " + key.ToString() + " not present in " +
                            schema_.name());
  }
  return it->second;
}

bool Table::ContainsTuple(const Tuple& tuple) const {
  auto it = rows_.find(schema_.KeyOf(tuple));
  return it != rows_.end() && it->second == tuple;
}

std::vector<Tuple> Table::Scan() const {
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (const auto& [key, tuple] : rows_) out.push_back(tuple);
  return out;
}

std::vector<Tuple> Table::ScanSorted() const {
  std::vector<Tuple> out = Scan();
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace orchestra::db
