#ifndef ORCHESTRA_DB_TABLE_H_
#define ORCHESTRA_DB_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/schema.h"
#include "db/tuple.h"

namespace orchestra::db {

/// One relation instance: a set of full tuples indexed by primary key.
/// Enforces key uniqueness and per-tuple schema validity; multi-relation
/// constraints (foreign keys) are checked at the Instance level.
class Table {
 public:
  /// The table keeps a copy of the schema so it remains self-contained.
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts a full tuple. Fails with AlreadyExists if a tuple with the
  /// same key is present (even an identical one — idempotence is handled
  /// one level up, by the reconciler's compatibility checks).
  Status Insert(const Tuple& tuple);

  /// Deletes the tuple whose key matches `key`; NotFound if absent.
  Status DeleteByKey(const Tuple& key);

  /// Replaces the tuple matching old_tuple's key with new_tuple. The key
  /// may change; fails if the old key is absent or the new key collides
  /// with a different existing tuple.
  Status Replace(const Tuple& old_tuple, const Tuple& new_tuple);

  /// Full tuple for `key`, or NotFound.
  Result<Tuple> GetByKey(const Tuple& key) const;

  bool ContainsKey(const Tuple& key) const {
    return rows_.find(key) != rows_.end();
  }

  /// True if the exact full tuple is present.
  bool ContainsTuple(const Tuple& tuple) const;

  /// All tuples in unspecified order.
  std::vector<Tuple> Scan() const;

  /// All tuples in key order (deterministic; used by tests and diffing).
  std::vector<Tuple> ScanSorted() const;

  friend bool operator==(const Table& a, const Table& b) {
    return a.rows_ == b.rows_;
  }

 private:
  RelationSchema schema_;
  std::unordered_map<Tuple, Tuple, TupleHash> rows_;  // key -> full tuple
};

}  // namespace orchestra::db

#endif  // ORCHESTRA_DB_TABLE_H_
