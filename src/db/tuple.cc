#include "db/tuple.h"

#include "common/check.h"
#include "common/string_util.h"

namespace orchestra::db {

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (size_t i : indices) {
    ORCH_CHECK_LT(i, values_.size(), "projection index out of range");
    out.push_back(values_[i]);
  }
  return Tuple(std::move(out));
}

uint64_t Tuple::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace orchestra::db
