#ifndef ORCHESTRA_DB_TUPLE_H_
#define ORCHESTRA_DB_TUPLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "db/value.h"

namespace orchestra::db {

/// An ordered list of attribute values. Tuples are plain values: copyable,
/// hashable, and totally ordered (lexicographically), with no schema
/// attached — the schema lives in RelationSchema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& at(size_t i) const { return values_.at(i); }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Returns the sub-tuple made of the given column indices (in order).
  /// Indices must be in range.
  Tuple Project(const std::vector<size_t>& indices) const;

  /// Stable 64-bit hash over all values.
  uint64_t Hash() const;

  /// Renders as "(v1, v2, ...)".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<Value> values_;
};

/// Hash functor for unordered containers keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(t.Hash());
  }
};

}  // namespace orchestra::db

#endif  // ORCHESTRA_DB_TUPLE_H_
