#include "db/value.h"

#include <cstring>

#include "common/string_util.h"

namespace orchestra::db {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

uint64_t Value::Hash() const {
  const uint64_t tag = static_cast<uint64_t>(type());
  switch (type()) {
    case ValueType::kNull:
      return HashCombine(tag, 0);
    case ValueType::kInt64:
      return HashCombine(tag, static_cast<uint64_t>(AsInt64()));
    case ValueType::kDouble: {
      double d = AsDouble();
      if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashCombine(tag, bits);
    }
    case ValueType::kString:
      return HashCombine(tag, Fnv1a64(AsString()));
  }
  return 0;
}

}  // namespace orchestra::db
