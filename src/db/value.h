#ifndef ORCHESTRA_DB_VALUE_H_
#define ORCHESTRA_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace orchestra::db {

/// Column type tags for schema declarations.
enum class ValueType { kNull = 0, kInt64, kDouble, kString };

std::string_view ValueTypeName(ValueType type);

/// SQL-style NULL marker; all NULLs compare equal (simplified semantics —
/// adequate for the reconciliation workloads, which never branch on the
/// three-valued logic subtleties).
struct NullValue {
  friend bool operator==(NullValue, NullValue) { return true; }
  friend bool operator<(NullValue, NullValue) { return false; }
};

/// A single typed attribute value. Small, copyable, totally ordered
/// (ordered first by type tag, then by payload) so that values can key
/// ordered and unordered containers alike.
class Value {
 public:
  Value() : data_(NullValue{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; the caller must have checked type().
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Renders the value for logs and error messages ('str', 42, 3.5, NULL).
  std::string ToString() const;

  /// Stable 64-bit hash (type-tag aware).
  uint64_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.data_ < b.data_;
  }

 private:
  std::variant<NullValue, int64_t, double, std::string> data_;
};

}  // namespace orchestra::db

#endif  // ORCHESTRA_DB_VALUE_H_
