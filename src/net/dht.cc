#include "net/dht.h"

#include <algorithm>

namespace orchestra::net {

DhtRing::DhtRing(size_t n) {
  ORCH_CHECK_GT(n, 0u);
  ids_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    NodeId id = KeyHash("node:" + std::to_string(i));
    // Exceedingly unlikely, but ids must be unique for ring ownership to
    // be well-defined; nudge duplicates.
    while (std::find(ids_.begin(), ids_.end(), id) != ids_.end()) ++id;
    ids_.push_back(id);
  }
  sorted_.resize(n);
  for (size_t i = 0; i < n; ++i) sorted_[i] = i;
  std::sort(sorted_.begin(), sorted_.end(),
            [this](size_t a, size_t b) { return ids_[a] < ids_[b]; });

  // Finger tables: finger[k] of node x owns id(x) + 2^k.
  fingers_.assign(n, std::vector<size_t>(64));
  for (size_t i = 0; i < n; ++i) {
    for (int k = 0; k < 64; ++k) {
      const NodeId target = ids_[i] + (NodeId{1} << k);  // wraps mod 2^64
      fingers_[i][k] = OwnerOf(target);
    }
  }
}

size_t DhtRing::OwnerOf(NodeId key) const {
  // Successor ownership: the first node id >= key, wrapping to the
  // smallest id.
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [this](size_t node, NodeId k) { return ids_[node] < k; });
  if (it == sorted_.end()) it = sorted_.begin();
  return *it;
}

bool DhtRing::InInterval(NodeId x, NodeId a, NodeId b) {
  // Half-open ring interval (a, b]; when a == b the interval is the
  // whole ring.
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

RouteResult DhtRing::Route(size_t from, NodeId key) const {
  RouteResult result;
  size_t current = from;
  const size_t owner = OwnerOf(key);
  // Greedy Chord routing: forward to the farthest finger that does not
  // overshoot the key, until the current node's successor owns it.
  while (current != owner) {
    size_t next = current;
    for (int k = 63; k >= 0; --k) {
      const size_t candidate = fingers_[current][k];
      if (candidate == current) continue;
      if (InInterval(ids_[candidate], ids_[current], key)) {
        next = candidate;
        break;
      }
    }
    if (next == current) {
      // No finger strictly precedes the key: the successor owns it.
      next = owner;
    }
    ++result.hops;
    current = next;
    if (result.hops > static_cast<int64_t>(ids_.size())) {
      // Defensive: routing must converge within n hops.
      ORCH_CHECK(false, "DHT routing failed to converge");
    }
  }
  result.owner = owner;
  return result;
}

}  // namespace orchestra::net
