#include "net/dht.h"

#include <algorithm>

#include "common/metrics.h"

namespace orchestra::net {

DhtRing::DhtRing(size_t n, size_t successor_list_length)
    : successor_list_length_(successor_list_length) {
  ORCH_CHECK_GT(n, 0u);
  ORCH_CHECK_GT(successor_list_length_, 0u);
  ids_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const NodeId id = KeyHash("node:" + std::to_string(next_name_++));
    // Two nodes on the same ring position would silently shadow one
    // node's arc (every key in it routes to whichever sorts first), so a
    // collision is a hard configuration error, not something to paper
    // over by nudging ids.
    ORCH_CHECK(std::find(ids_.begin(), ids_.end(), id) == ids_.end(),
               "ring id collision: two nodes hash to %llu",
               static_cast<unsigned long long>(id));
    ids_.push_back(id);
  }
  alive_.assign(n, 1);
  sorted_.resize(n);
  for (size_t i = 0; i < n; ++i) sorted_[i] = i;
  std::sort(sorted_.begin(), sorted_.end(),
            [this](size_t a, size_t b) { return ids_[a] < ids_[b]; });

  fingers_.assign(n, std::vector<size_t>(64));
  for (size_t i = 0; i < n; ++i) BuildFingers(i);
  succ_.assign(n, {});
  RebuildSuccessorLists();
}

size_t DhtRing::OwnerOf(NodeId key) const {
  // Successor ownership: the first live node id >= key, wrapping to the
  // smallest id.
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [this](size_t node, NodeId k) { return ids_[node] < k; });
  if (it == sorted_.end()) it = sorted_.begin();
  return *it;
}

std::vector<size_t> DhtRing::ReplicaGroup(NodeId key, size_t k) const {
  ORCH_CHECK_GT(k, 0u);
  const size_t count = std::min(k, sorted_.size());
  std::vector<size_t> group;
  group.reserve(count);
  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), key,
      [this](size_t node, NodeId kk) { return ids_[node] < kk; });
  size_t pos = it == sorted_.end()
                   ? 0
                   : static_cast<size_t>(it - sorted_.begin());
  for (size_t i = 0; i < count; ++i) {
    group.push_back(sorted_[(pos + i) % sorted_.size()]);
  }
  return group;
}

void DhtRing::BuildFingers(size_t index) {
  for (int k = 0; k < 64; ++k) {
    const NodeId target = ids_[index] + (NodeId{1} << k);  // wraps mod 2^64
    fingers_[index][k] = OwnerOf(target);
  }
}

void DhtRing::RebuildSuccessorLists() {
  const size_t n = sorted_.size();
  const size_t len = std::min(successor_list_length_, n > 0 ? n - 1 : 0);
  for (size_t pos = 0; pos < n; ++pos) {
    const size_t node = sorted_[pos];
    succ_[node].clear();
    for (size_t i = 1; i <= len; ++i) {
      succ_[node].push_back(sorted_[(pos + i) % n]);
    }
  }
}

size_t DhtRing::Insert(NodeId id) {
  const size_t index = ids_.size();
  ids_.push_back(id);
  alive_.push_back(1);
  fingers_.emplace_back(64);
  succ_.emplace_back();

  auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [this](size_t node, NodeId k) { return ids_[node] < k; });
  const size_t pos = static_cast<size_t>(it - sorted_.begin());
  sorted_.insert(it, index);

  BuildFingers(index);
  // Incremental repair: the new node took over the arc (pred, id], so
  // exactly the finger entries whose target falls in that arc must move
  // to it. With one live node before the insert the arc is the whole
  // ring minus the old node's own id; the interval test handles both.
  if (sorted_.size() > 1) {
    const size_t pred =
        sorted_[(pos + sorted_.size() - 1) % sorted_.size()];
    const NodeId pred_id = ids_[pred];
    for (size_t node : sorted_) {
      if (node == index) continue;
      for (int k = 0; k < 64; ++k) {
        const NodeId target = ids_[node] + (NodeId{1} << k);
        if (InInterval(target, pred_id, id)) fingers_[node][k] = index;
      }
    }
  }
  RebuildSuccessorLists();
  return index;
}

Result<size_t> DhtRing::Join() {
  return JoinWithId(KeyHash("node:" + std::to_string(next_name_++)));
}

Result<size_t> DhtRing::JoinWithId(NodeId id) {
  for (size_t node : sorted_) {
    if (ids_[node] == id) {
      return Status::AlreadyExists(
          "ring id collision: node " + std::to_string(node) +
          " already occupies ring position " + std::to_string(id));
    }
  }
  return Insert(id);
}

Status DhtRing::Remove(size_t index, bool repair_fingers) {
  if (index >= ids_.size() || !IsLive(index)) {
    return Status::InvalidArgument("node " + std::to_string(index) +
                                   " is not a live ring member");
  }
  if (sorted_.size() == 1) {
    return Status::InvalidArgument(
        "cannot remove the last live node from the ring");
  }
  auto it = std::find(sorted_.begin(), sorted_.end(), index);
  ORCH_CHECK(it != sorted_.end());
  sorted_.erase(it);
  alive_[index] = 0;
  if (repair_fingers) {
    // The departed node's arc transferred to its live successor; every
    // finger entry through it moves there too.
    const size_t heir = OwnerOf(ids_[index]);
    for (size_t node : sorted_) {
      for (int k = 0; k < 64; ++k) {
        if (fingers_[node][k] == index) fingers_[node][k] = heir;
      }
    }
  }
  RebuildSuccessorLists();
  return Status::OK();
}

Status DhtRing::Leave(size_t index) { return Remove(index, true); }

Status DhtRing::Crash(size_t index) {
  // Successor lists (the correctness substrate) are repaired eagerly by
  // stabilization; finger tables are not — routes discover the dead
  // entries, pay a failed probe, and fix them lazily.
  return Remove(index, false);
}

bool DhtRing::InInterval(NodeId x, NodeId a, NodeId b) {
  // Half-open ring interval (a, b]; when a == b the interval is the
  // whole ring.
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

RouteResult DhtRing::Route(size_t from, NodeId key) const {
  ORCH_CHECK(IsLive(from), "route must start at a live node");
  RouteResult result;
  size_t current = from;
  const size_t owner = OwnerOf(key);
  // Greedy Chord routing: forward to the farthest finger that does not
  // overshoot the key, until the current node's successor owns it. A
  // finger still pointing at a crashed node costs a failed probe; the
  // entry is repaired to the dead node's live successor on the spot.
  while (current != owner) {
    size_t next = current;
    for (int k = 63; k >= 0; --k) {
      size_t candidate = fingers_[current][k];
      if (candidate == current) continue;
      if (!InInterval(ids_[candidate], ids_[current], key)) continue;
      if (!IsLive(candidate)) {
        ++result.failed_probes;
        const size_t repaired = OwnerOf(ids_[candidate]);
        fingers_[current][k] = repaired;
        candidate = repaired;
        if (candidate == current ||
            !InInterval(ids_[candidate], ids_[current], key)) {
          continue;  // the repaired finger overshoots; try a shorter one
        }
      }
      next = candidate;
      break;
    }
    if (next == current) {
      // No live finger strictly precedes the key: detour via the
      // successor list — the farthest live successor not past the key,
      // else the immediate successor, which owns it.
      for (auto s = succ_[current].rbegin(); s != succ_[current].rend();
           ++s) {
        if (InInterval(ids_[*s], ids_[current], key)) {
          next = *s;
          break;
        }
      }
      if (next == current) next = owner;
    }
    ++result.hops;
    current = next;
    if (result.hops > static_cast<int64_t>(ids_.size()) + 64) {
      // Defensive: routing must converge within n hops.
      ORCH_CHECK(false, "DHT routing failed to converge");
    }
  }
  result.owner = owner;
  static Counter& routes = MetricsRegistry::Global().GetCounter("dht.routes");
  static Counter& hops = MetricsRegistry::Global().GetCounter("dht.route_hops");
  static Counter& failed_probes =
      MetricsRegistry::Global().GetCounter("dht.failed_probes");
  routes.Increment();
  hops.Add(result.hops);
  failed_probes.Add(result.failed_probes);
  return result;
}

}  // namespace orchestra::net
