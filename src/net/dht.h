#ifndef ORCHESTRA_NET_DHT_H_
#define ORCHESTRA_NET_DHT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "common/string_util.h"

namespace orchestra::net {

/// Position on the 64-bit identifier ring.
using NodeId = uint64_t;

/// Hashes an application-level key ("epoch:7", "txn:3:12") onto the
/// ring. FNV-1a alone clusters similar short strings in the high bits
/// (ring position is decided by the most significant bits, so that would
/// pile node ids and keys onto one arc); a SplitMix64-style finalizer
/// avalanches the bits first.
inline NodeId KeyHash(std::string_view key) {
  uint64_t z = Fnv1a64(key);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Result of routing a key lookup: which node owns the key, how many
/// overlay hops the lookup message traversed, and how many dead fingers
/// the route probed before detouring around them (each failed probe is a
/// timed-out message the initiator paid for).
struct RouteResult {
  size_t owner = 0;          // index into the ring's node list
  int64_t hops = 0;          // messages sent to reach the owner
  int64_t failed_probes = 0; // probes to crashed nodes along the way
};

/// A Chord-style structured overlay with dynamic membership: nodes own
/// the arc of the identifier ring ending at their id (successor
/// ownership), each node keeps a finger table with successors of
/// n + 2^k for greedy O(log n) routing, plus a successor list used for
/// replica placement and for detouring around failed fingers.
///
/// This is the stand-in for the paper's FreePastry substrate (§5.2.2):
/// the reconciliation experiments depend on key→owner placement and
/// per-message hop counts, both of which a Chord ring reproduces with
/// the same asymptotics. Like Pastry, the overlay tolerates node
/// failures: nodes may Join, Leave gracefully, or Crash, and routing
/// detects dead hops and detours via the successor list.
///
/// Node *indices* are stable handles: a departed or crashed node keeps
/// its slot (IsLive(i) == false) so external per-node state can stay
/// index-addressed across membership changes.
///
/// Membership repair is deliberately asymmetric, as in Chord:
///  - Join/Leave are cooperative, so successor lists and the finger
///    entries whose targets changed owner are repaired eagerly and
///    incrementally (no full table rebuild);
///  - Crash is abrupt: successor lists (the correctness substrate) are
///    repaired eagerly, but other nodes' finger tables keep stale
///    entries pointing at the dead node until a route trips over one —
///    Route() counts the failed probe and repairs that entry in place,
///    Chord's lazy finger fixing.
class DhtRing {
 public:
  static constexpr size_t kDefaultSuccessorListLength = 8;

  /// Builds a ring of `n` live nodes. Node i gets id hash("node:<i>"),
  /// so placement is deterministic yet well-spread. CHECK-fails on a
  /// ring-id collision (two nodes hashing to the same id would silently
  /// shadow one node's arc).
  explicit DhtRing(size_t n,
                   size_t successor_list_length = kDefaultSuccessorListLength);

  /// Total node slots ever allocated, live or not.
  size_t size() const { return ids_.size(); }
  /// Live nodes currently on the ring.
  size_t live_count() const { return sorted_.size(); }
  bool IsLive(size_t index) const { return alive_[index] != 0; }

  /// Ring id of node `index` (valid for dead slots too).
  NodeId IdOf(size_t index) const { return ids_[index]; }

  /// Adds a node with the next deterministic id hash("node:<j>") and
  /// returns its index. AlreadyExists on a ring-id collision.
  Result<size_t> Join();
  /// Adds a node with an explicit id (tests use this to craft rings).
  Result<size_t> JoinWithId(NodeId id);
  /// Graceful departure: ownership of the node's arc moves to its
  /// successor and finger entries through it are repaired eagerly.
  /// FailedPrecondition when the node is not live or is the last one.
  Status Leave(size_t index);
  /// Abrupt failure: like Leave, but other nodes' finger tables are left
  /// stale — routes discover the dead entries and detour (see Route).
  Status Crash(size_t index);

  /// Index of the live node owning `key` (its successor on the ring).
  size_t OwnerOf(NodeId key) const;

  /// The first min(k, live_count) live successors of `key`, primary
  /// first: the key's replica group.
  std::vector<size_t> ReplicaGroup(NodeId key, size_t k) const;

  /// The successor list of live node `index`: up to
  /// `successor_list_length` live nodes following it on the ring.
  const std::vector<size_t>& SuccessorList(size_t index) const {
    ORCH_CHECK(IsLive(index));
    return succ_[index];
  }

  /// Routes a lookup for `key` starting at live node `from` using finger
  /// tables; returns the owner, the number of hops taken (0 when `from`
  /// already owns the key), and the number of dead fingers probed. A
  /// probe that hits a crashed node repairs that finger entry to the
  /// dead node's live successor and the route detours via the successor
  /// list, so the lookup always terminates at the true owner.
  RouteResult Route(size_t from, NodeId key) const;

  /// The k-th finger of node `index`: the node owning id + 2^k (may be
  /// stale — pointing at a crashed node — until a route repairs it).
  size_t Finger(size_t index, int k) const { return fingers_[index][k]; }

 private:
  /// True if `x` lies in the half-open ring interval (a, b].
  static bool InInterval(NodeId x, NodeId a, NodeId b);

  /// Inserts an already-validated node into the live structures and
  /// incrementally repairs fingers whose targets it now owns.
  size_t Insert(NodeId id);
  /// Shared tail of Leave/Crash; `repair_fingers` distinguishes them.
  Status Remove(size_t index, bool repair_fingers);
  /// Fully (re)builds node `index`'s own finger table.
  void BuildFingers(size_t index);
  /// Rebuilds every live node's successor list from the sorted order.
  void RebuildSuccessorLists();

  size_t successor_list_length_;
  size_t next_name_ = 0;             // counter behind hash("node:<j>") ids
  std::vector<NodeId> ids_;          // per node index (stable slots)
  std::vector<char> alive_;          // per node index
  std::vector<size_t> sorted_;       // live node indices sorted by id
  mutable std::vector<std::vector<size_t>> fingers_;  // [node][k] -> index
  std::vector<std::vector<size_t>> succ_;  // [node] -> successor list
};

}  // namespace orchestra::net

#endif  // ORCHESTRA_NET_DHT_H_
