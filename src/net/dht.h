#ifndef ORCHESTRA_NET_DHT_H_
#define ORCHESTRA_NET_DHT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"

namespace orchestra::net {

/// Position on the 64-bit identifier ring.
using NodeId = uint64_t;

/// Hashes an application-level key ("epoch:7", "txn:3:12") onto the
/// ring. FNV-1a alone clusters similar short strings in the high bits
/// (ring position is decided by the most significant bits, so that would
/// pile node ids and keys onto one arc); a SplitMix64-style finalizer
/// avalanches the bits first.
inline NodeId KeyHash(std::string_view key) {
  uint64_t z = Fnv1a64(key);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Result of routing a key lookup: which node owns the key and how many
/// overlay hops the lookup message traversed.
struct RouteResult {
  size_t owner = 0;  // index into the ring's node list
  int64_t hops = 0;  // messages sent to reach the owner
};

/// A Chord-style structured overlay: nodes own the arc of the identifier
/// ring ending at their id (successor ownership), and each node keeps a
/// finger table with successors of n + 2^k for greedy O(log n) routing.
///
/// This is the stand-in for the paper's FreePastry substrate (§5.2.2):
/// the reconciliation experiments depend on key→owner placement and
/// per-message hop counts, both of which a Chord ring reproduces with
/// the same asymptotics. Fault tolerance is out of scope, as in the
/// paper ("we assume successful message delivery").
class DhtRing {
 public:
  /// Builds a ring of `n` nodes. Node i gets id hash("node:<i>"), so
  /// placement is deterministic yet well-spread.
  explicit DhtRing(size_t n);

  size_t size() const { return ids_.size(); }

  /// Ring id of node `index`.
  NodeId IdOf(size_t index) const { return ids_[index]; }

  /// Index of the node owning `key` (its successor on the ring).
  size_t OwnerOf(NodeId key) const;

  /// Routes a lookup for `key` starting at node `from` using finger
  /// tables; returns the owner and the number of hops taken (0 when
  /// `from` already owns the key).
  RouteResult Route(size_t from, NodeId key) const;

  /// The k-th finger of node `index`: the node owning id + 2^k.
  size_t Finger(size_t index, int k) const { return fingers_[index][k]; }

 private:
  /// True if `x` lies in the half-open ring interval (a, b].
  static bool InInterval(NodeId x, NodeId a, NodeId b);

  std::vector<NodeId> ids_;          // per node index
  std::vector<size_t> sorted_;       // node indices sorted by id
  std::vector<std::vector<size_t>> fingers_;  // [node][k] -> node index
};

}  // namespace orchestra::net

#endif  // ORCHESTRA_NET_DHT_H_
