#include "net/sim_network.h"

#include "common/metrics.h"

namespace orchestra::net {

int64_t SimNetwork::Charge(uint32_t endpoint, int64_t hops, int64_t bytes) {
  // Function-local statics: the registry lock is paid once, after which
  // the per-message cost is two relaxed atomic adds.
  static Counter& net_messages =
      MetricsRegistry::Global().GetCounter("net.messages");
  static Counter& net_bytes = MetricsRegistry::Global().GetCounter("net.bytes");
  const int64_t micros = hops * MessageCostMicros(bytes);
  NetStats& stats = per_endpoint_[endpoint];
  if (sim_tracer_ != nullptr) {
    sim_tracer_->Instant(endpoint, "net.send", stats.micros, hops * bytes);
    sim_tracer_->Instant(endpoint, "net.recv", stats.micros + micros,
                         hops * bytes);
  }
  stats.micros += micros;
  stats.messages += hops;
  stats.bytes += hops * bytes;
  global_.micros += micros;
  global_.messages += hops;
  global_.bytes += hops * bytes;
  net_messages.Add(hops);
  net_bytes.Add(hops * bytes);
  return micros;
}

Status SimNetwork::TryCharge(uint32_t endpoint, int64_t hops, int64_t bytes) {
  Charge(endpoint, hops, bytes);
  if (injector_ == nullptr) return Status::OK();
  Status status = injector_->MaybeFail("net.send");
  if (!status.ok()) {
    static Counter& dropped =
        MetricsRegistry::Global().GetCounter("net.dropped_sends");
    dropped.Increment();
  }
  return status;
}

Result<std::string> SimNetwork::TryChargePayload(uint32_t endpoint,
                                                 int64_t hops,
                                                 std::string_view payload) {
  ORCH_RETURN_IF_ERROR(
      TryCharge(endpoint, hops, static_cast<int64_t>(payload.size())));
  std::string delivered(payload);
  if (injector_ != nullptr &&
      injector_->MaybeCorrupt("net.payload_corrupt", &delivered)) {
    static Counter& corrupted = MetricsRegistry::Global().GetCounter(
        "integrity.payloads_corrupted_in_flight");
    corrupted.Increment();
  }
  return delivered;
}

NetStats SimNetwork::StatsFor(uint32_t endpoint) const {
  auto it = per_endpoint_.find(endpoint);
  return it == per_endpoint_.end() ? NetStats{} : it->second;
}

}  // namespace orchestra::net
