#include "net/sim_network.h"

namespace orchestra::net {

int64_t SimNetwork::Charge(uint32_t endpoint, int64_t hops, int64_t bytes) {
  const int64_t micros = hops * MessageCostMicros(bytes);
  NetStats& stats = per_endpoint_[endpoint];
  stats.micros += micros;
  stats.messages += hops;
  stats.bytes += hops * bytes;
  global_.micros += micros;
  global_.messages += hops;
  global_.bytes += hops * bytes;
  return micros;
}

Status SimNetwork::TryCharge(uint32_t endpoint, int64_t hops, int64_t bytes) {
  Charge(endpoint, hops, bytes);
  if (injector_ == nullptr) return Status::OK();
  return injector_->MaybeFail("net.send");
}

NetStats SimNetwork::StatsFor(uint32_t endpoint) const {
  auto it = per_endpoint_.find(endpoint);
  return it == per_endpoint_.end() ? NetStats{} : it->second;
}

}  // namespace orchestra::net
