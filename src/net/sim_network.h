#ifndef ORCHESTRA_NET_SIM_NETWORK_H_
#define ORCHESTRA_NET_SIM_NETWORK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/result.h"
#include "common/sim_trace.h"
#include "common/status.h"

namespace orchestra::net {

/// Deterministic network cost model. The paper's experiments add a delay
/// of at least 500 microseconds to every DHT message (and reply) and run
/// the central store over switched 100 Mb Ethernet; we reproduce those
/// costs as simulated time so results do not depend on host load.
struct NetworkConfig {
  /// One-way per-message latency (propagation + processing).
  int64_t one_way_latency_micros = 500;
  /// Link bandwidth in bytes per microsecond (12.5 = 100 Mb/s).
  double bytes_per_micro = 12.5;
};

/// Per-endpoint traffic counters.
struct NetStats {
  int64_t micros = 0;
  int64_t messages = 0;
  int64_t bytes = 0;

  friend NetStats operator-(NetStats a, const NetStats& b) {
    a.micros -= b.micros;
    a.messages -= b.messages;
    a.bytes -= b.bytes;
    return a;
  }
};

/// Accounts simulated network time, message counts and bytes, per
/// charged endpoint (participant) and globally.
class SimNetwork {
 public:
  explicit SimNetwork(NetworkConfig config = {}) : config_(config) {}

  const NetworkConfig& config() const { return config_; }

  /// Simulated cost of one message of `bytes` payload over one hop.
  int64_t MessageCostMicros(int64_t bytes) const {
    return config_.one_way_latency_micros +
           static_cast<int64_t>(static_cast<double>(bytes) /
                                config_.bytes_per_micro);
  }

  /// Charges `hops` sequential message transmissions of `bytes` each to
  /// `endpoint` and returns the charged simulated time.
  int64_t Charge(uint32_t endpoint, int64_t hops, int64_t bytes);

  /// Like Charge, but the message can be lost: when a fault injector is
  /// installed it is consulted once per call and may return Unavailable.
  /// The transmission is charged either way — a lost message still
  /// consumed the wire. Callers on failable protocol paths use this;
  /// pure cost-accounting paths keep using Charge.
  Status TryCharge(uint32_t endpoint, int64_t hops, int64_t bytes);

  /// Payload-carrying TryCharge: ships actual bytes instead of a pure
  /// byte count, and returns what the receiver sees. Loss (net.send)
  /// still surfaces as kUnavailable; in-flight corruption
  /// (net.payload_corrupt) mutates the delivered copy *silently* —
  /// exactly like a real link — so the receiver's envelope checksum is
  /// the only line of defense. Costs are charged either way.
  Result<std::string> TryChargePayload(uint32_t endpoint, int64_t hops,
                                       std::string_view payload);

  /// Installs (or clears) a fault injector for TryCharge. Must outlive
  /// the network or be cleared first.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Installs (or clears) a simulated-time tracer: every Charge emits a
  /// "net.send" instant at the endpoint's clock before the transfer and
  /// a "net.recv" instant after it, on the endpoint's track. Timestamps
  /// come from the deterministic per-endpoint accumulated micros, so
  /// traces are bit-identical across same-seed runs. Must outlive the
  /// network or be cleared first.
  void set_sim_tracer(SimTracer* tracer) { sim_tracer_ = tracer; }

  NetStats StatsFor(uint32_t endpoint) const;
  const NetStats& global() const { return global_; }

  void Reset() {
    per_endpoint_.clear();
    global_ = NetStats{};
  }

 private:
  NetworkConfig config_;
  std::unordered_map<uint32_t, NetStats> per_endpoint_;
  NetStats global_;
  FaultInjector* injector_ = nullptr;
  SimTracer* sim_tracer_ = nullptr;
};

}  // namespace orchestra::net

#endif  // ORCHESTRA_NET_SIM_NETWORK_H_
