#include "sim/cdss.h"

#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace orchestra::sim {

using core::ParticipantId;

Result<std::unique_ptr<Cdss>> Cdss::Make(CdssConfig config) {
  if (config.participants == 0) {
    return Status::InvalidArgument("need at least one participant");
  }
  if (config.transaction_size == 0) {
    return Status::InvalidArgument("transaction size must be positive");
  }
  // A typo'd failure or corruption site would otherwise run the whole
  // experiment with injection silently disabled.
  ORCH_RETURN_IF_ERROR(FaultInjector::ValidateConfig(config.fault));
  auto cdss = std::unique_ptr<Cdss>(new Cdss(std::move(config)));
  // ORCH_SIM_TRACE=<path> switches the deterministic sim trace on from
  // the outside (bench_runner's traced leg); ORCH_SIM_TRACE=1 enables
  // it without writing a file. An explicit config wins over the env.
  if (const char* env = std::getenv("ORCH_SIM_TRACE");
      env != nullptr && env[0] != '\0' && !cdss->config_.sim_trace) {
    cdss->config_.sim_trace = true;
    if (std::strcmp(env, "1") != 0) cdss->config_.sim_trace_path = env;
  }
  const CdssConfig& cfg = cdss->config_;

  ORCH_ASSIGN_OR_RETURN(cdss->catalog_, workload::MakeSwissProtCatalog());
  cdss->network_ = net::SimNetwork(cfg.network);
  if (cfg.sim_trace) cdss->network_.set_sim_tracer(&cdss->sim_tracer_);
  cdss->fault_injector_.Configure(cfg.fault);

  // The injector is threaded through whichever layer carries the store's
  // side effects: the storage engine for the central store, the
  // simulated network for the DHT's protocol messages.
  switch (cfg.store) {
    case StoreKind::kCentral: {
      cdss->engine_ = storage::StorageEngine::InMemory();
      cdss->engine_->set_fault_injector(&cdss->fault_injector_);
      store::CentralStoreOptions opts;
      opts.stuck_epoch_reap_threshold = cfg.stuck_epoch_reap_threshold;
      opts.fetch_mode = cfg.fetch_mode;
      opts.verify_checksums = cfg.verify_checksums;
      cdss->store_ = std::make_unique<store::CentralStore>(
          cdss->engine_.get(), &cdss->network_, opts, &cdss->catalog_);
      break;
    }
    case StoreKind::kDht: {
      cdss->network_.set_fault_injector(&cdss->fault_injector_);
      store::DhtStoreOptions opts;
      opts.stuck_epoch_reap_threshold = cfg.stuck_epoch_reap_threshold;
      opts.replication_factor = cfg.replication_factor;
      opts.fetch_mode = cfg.fetch_mode;
      opts.verify_checksums = cfg.verify_checksums;
      auto dht = std::make_unique<store::DhtStore>(
          cfg.participants, &cdss->network_, &cdss->catalog_, opts);
      cdss->dht_ = dht.get();
      cdss->store_ = std::move(dht);
      break;
    }
  }

  if (cfg.churn.enabled) {
    if (cdss->dht_ == nullptr) {
      return Status::InvalidArgument(
          "churn schedules need the DHT store; the central store has no "
          "ring to churn");
    }
    FaultInjectorConfig churn_fault;
    churn_fault.failure_probability = cfg.churn.crash_probability;
    churn_fault.seed = cfg.churn.seed;
    churn_fault.site_prefix = "net.node_crash";
    cdss->churn_injector_.Configure(churn_fault);
    cdss->churn_rng_.Seed(cfg.churn.seed ^ 0xc2b2ae3d27d4eb4fULL);
  }

  // Trust topology (kUniform reproduces §6's equal mutual trust).
  for (size_t i = 0; i < cfg.participants; ++i) {
    const ParticipantId id = static_cast<ParticipantId>(i);
    auto policy = std::make_unique<core::TrustPolicy>(id);
    for (size_t j = 0; j < cfg.participants; ++j) {
      if (j == i) continue;
      int priority = cfg.trust_priority;
      switch (cfg.topology) {
        case TrustTopology::kUniform:
          break;
        case TrustTopology::kTiered:
          priority = 1 + static_cast<int>(j % 3);
          break;
        case TrustTopology::kStar:
          priority = j == 0 ? cfg.trust_priority + 1 : cfg.trust_priority;
          break;
      }
      policy->TrustPeer(static_cast<ParticipantId>(j), priority);
    }
    cdss->policies_.push_back(std::move(policy));
  }
  for (size_t i = 0; i < cfg.participants; ++i) {
    const ParticipantId id = static_cast<ParticipantId>(i);
    core::ReconcileOptions recon_opts{cfg.num_threads};
    recon_opts.record_provenance = cfg.record_provenance;
    cdss->participants_.push_back(std::make_unique<core::Participant>(
        id, &cdss->catalog_, *cdss->policies_[i], recon_opts));
    if (cfg.sim_trace) {
      // One track per peer, clocked by that peer's accumulated simulated
      // network time — the only deterministic notion of "now" a peer has.
      cdss->sim_tracer_.SetTrackName(id, "peer-" + std::to_string(i));
      net::SimNetwork* network = &cdss->network_;
      cdss->participants_.back()->BindSimTrace(
          &cdss->sim_tracer_, id,
          [network, id] { return network->StatsFor(id).micros; });
    }
    ORCH_RETURN_IF_ERROR(
        cdss->store_->RegisterParticipant(id, cdss->policies_[i].get()));
  }

  workload::WorkloadConfig wl = cfg.workload;
  wl.transaction_size = cfg.transaction_size;
  wl.seed = cfg.seed;
  cdss->workload_ = std::make_unique<workload::SwissProtWorkload>(wl);
  return cdss;
}

Result<core::ReconcileReport> Cdss::StepParticipant(size_t index) {
  ORCH_CHECK_LT(index, participants_.size());
  core::Participant& p = *participants_[index];
  for (size_t t = 0; t < config_.txns_between_recons; ++t) {
    std::vector<core::Update> updates =
        workload_->NextTransaction(p.id(), p.instance());
    if (updates.empty()) continue;  // the generator had nothing to change
    auto txn = p.ExecuteTransaction(std::move(updates));
    if (!txn.ok()) {
      // Workload raced with its own earlier ops; skip rather than abort.
      continue;
    }
    ++running_.transactions_published;
  }
  // Publish and reconcile through the retry layer: injected transient
  // faults surface as Unavailable and are absorbed here, with the
  // exponential backoff charged as simulated time.
  core::RetryStats publish_retry;
  ORCH_RETURN_IF_ERROR(
      p.PublishWithRetry(store_.get(), config_.retry, &publish_retry)
          .status());
  core::RetryStats reconcile_retry;
  auto report_result =
      config_.network_centric
          ? p.ReconcileNetworkCentricWithRetry(store_.get(), config_.retry,
                                               &reconcile_retry)
          : p.ReconcileWithRetry(store_.get(), config_.retry,
                                 &reconcile_retry);
  ORCH_ASSIGN_OR_RETURN(core::ReconcileReport report,
                        std::move(report_result));
  running_.retried_operations += (publish_retry.attempts > 1 ? 1 : 0) +
                                 (reconcile_retry.attempts > 1 ? 1 : 0);
  running_.backoff_micros +=
      publish_retry.backoff_micros + reconcile_retry.backoff_micros;
  ++running_.reconciliations;
  running_.accepted += report.accepted.size();
  running_.rejected += report.rejected.size();
  running_.deferred += report.deferred.size();
  running_.avg_local_micros += static_cast<double>(report.local_micros);
  running_.avg_store_micros +=
      static_cast<double>(report.store.TotalStoreMicros());
  return report;
}

Status Cdss::ApplyChurn() {
  if (!config_.churn.enabled || dht_ == nullptr) return Status::OK();
  const ChurnConfig& churn = config_.churn;
  const auto check_invariant = [&] {
    if (!dht_->CheckReplicationInvariant()) {
      running_.replication_invariant_ok = false;
    }
  };
  // One possible join first: fresh capacity arrives before any departure
  // this boundary.
  if (churn.join_probability > 0 &&
      churn_rng_.NextBool(churn.join_probability)) {
    ORCH_RETURN_IF_ERROR(dht_->JoinNode().status());
    ++running_.node_joins;
    check_invariant();
  }
  // One possible graceful leave of a uniformly chosen live node.
  if (churn.leave_probability > 0 &&
      churn_rng_.NextBool(churn.leave_probability) &&
      dht_->live_node_count() > churn.min_live_nodes) {
    std::vector<size_t> live;
    for (size_t node = 0; node < dht_->ring().size(); ++node) {
      if (dht_->ring().IsLive(node)) live.push_back(node);
    }
    const size_t victim = live[churn_rng_.NextBounded(live.size())];
    ORCH_RETURN_IF_ERROR(dht_->LeaveNode(victim));
    ++running_.node_leaves;
    check_invariant();
  }
  // Crash draws: one per live node through the net.node_crash site. Each
  // crash re-replicates before the next draw, so only the loss of a
  // whole replica group in a *single* event could destroy data — which a
  // single-node crash cannot, for replication_factor > 1.
  for (size_t node = 0; node < dht_->ring().size(); ++node) {
    if (!dht_->ring().IsLive(node)) continue;
    if (dht_->live_node_count() <= churn.min_live_nodes) break;
    if (churn_injector_.MaybeFail("net.node_crash").ok()) continue;
    ORCH_RETURN_IF_ERROR(dht_->CrashNode(node));
    ++running_.node_crashes;
    check_invariant();
  }
  return Status::OK();
}

Result<CdssResult> Cdss::Run() {
  running_ = CdssResult{};
  // Round-boundary registry snapshots: the registry is process-global,
  // so per-round deltas (not absolute values) describe this run.
  const std::map<std::string, int64_t> run_start =
      MetricsRegistry::Global().CounterValues();
  std::map<std::string, int64_t> round_start = run_start;
  for (size_t round = 0; round < config_.rounds; ++round) {
    TraceSpan round_span("cdss.round");
    if (round > 0) ORCH_RETURN_IF_ERROR(ApplyChurn());
    // Background scrub cadence: walk every replica, heal detected rot
    // from a verified copy. Decision-neutral — it only moves bytes.
    if (config_.scrub_interval_rounds > 0 && dht_ != nullptr && round > 0 &&
        round % config_.scrub_interval_rounds == 0) {
      dht_->ScrubReplicas();
    }
    for (size_t i = 0; i < participants_.size(); ++i) {
      ORCH_RETURN_IF_ERROR(StepParticipant(i).status());
    }
    std::map<std::string, int64_t> round_end =
        MetricsRegistry::Global().CounterValues();
    CdssResult::RoundMetrics round_metrics;
    round_metrics.round = round;
    round_metrics.counters = CounterDeltas(round_start, round_end);
    running_.round_metrics.push_back(std::move(round_metrics));
    round_start = std::move(round_end);
  }
  running_.metrics = CounterDeltas(run_start, round_start);
  CdssResult result = running_;
  if (result.reconciliations > 0) {
    result.total_local_micros_per_peer =
        result.avg_local_micros / static_cast<double>(participants_.size());
    result.total_store_micros_per_peer =
        result.avg_store_micros / static_cast<double>(participants_.size());
    result.avg_local_micros /= static_cast<double>(result.reconciliations);
    result.avg_store_micros /= static_cast<double>(result.reconciliations);
  }
  result.state_ratio = CurrentStateRatio();
  result.faults_injected = fault_injector_.injected();
  const auto metric = [&](const char* name) {
    auto it = result.metrics.find(name);
    return it == result.metrics.end() ? int64_t{0} : it->second;
  };
  result.corrupt_reads_detected = metric("integrity.corrupt_replica_reads") +
                                  metric("integrity.corrupt_rows_detected") +
                                  metric("integrity.corrupt_payloads_detected");
  result.read_repairs =
      metric("integrity.read_repairs") + metric("integrity.scrub_repairs");
  result.undetected_corrupt_reads =
      metric("integrity.unverified_corrupt_reads");
  core::StoreStats totals;
  for (const auto& p : participants_) {
    totals = totals + store_->StatsFor(p->id());
  }
  result.messages = totals.messages;
  result.bytes = totals.bytes;
  if (config_.sim_trace && !config_.sim_trace_path.empty()) {
    ORCH_RETURN_IF_ERROR(sim_tracer_.WriteTo(config_.sim_trace_path));
  }
  return result;
}

double Cdss::CurrentStateRatio() const {
  std::vector<const core::Participant*> view;
  view.reserve(participants_.size());
  for (const auto& p : participants_) view.push_back(p.get());
  return StateRatio(view, workload::kFunctionRelation);
}

}  // namespace orchestra::sim
