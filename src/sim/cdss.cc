#include "sim/cdss.h"

#include "common/check.h"

namespace orchestra::sim {

using core::ParticipantId;

Result<std::unique_ptr<Cdss>> Cdss::Make(CdssConfig config) {
  if (config.participants == 0) {
    return Status::InvalidArgument("need at least one participant");
  }
  if (config.transaction_size == 0) {
    return Status::InvalidArgument("transaction size must be positive");
  }
  auto cdss = std::unique_ptr<Cdss>(new Cdss(std::move(config)));
  const CdssConfig& cfg = cdss->config_;

  ORCH_ASSIGN_OR_RETURN(cdss->catalog_, workload::MakeSwissProtCatalog());
  cdss->network_ = net::SimNetwork(cfg.network);

  switch (cfg.store) {
    case StoreKind::kCentral:
      cdss->engine_ = storage::StorageEngine::InMemory();
      cdss->store_ = std::make_unique<store::CentralStore>(
          cdss->engine_.get(), &cdss->network_, store::CentralStoreOptions{},
          &cdss->catalog_);
      break;
    case StoreKind::kDht:
      cdss->store_ = std::make_unique<store::DhtStore>(
          cfg.participants, &cdss->network_, &cdss->catalog_);
      break;
  }

  // Trust topology (kUniform reproduces §6's equal mutual trust).
  for (size_t i = 0; i < cfg.participants; ++i) {
    const ParticipantId id = static_cast<ParticipantId>(i);
    auto policy = std::make_unique<core::TrustPolicy>(id);
    for (size_t j = 0; j < cfg.participants; ++j) {
      if (j == i) continue;
      int priority = cfg.trust_priority;
      switch (cfg.topology) {
        case TrustTopology::kUniform:
          break;
        case TrustTopology::kTiered:
          priority = 1 + static_cast<int>(j % 3);
          break;
        case TrustTopology::kStar:
          priority = j == 0 ? cfg.trust_priority + 1 : cfg.trust_priority;
          break;
      }
      policy->TrustPeer(static_cast<ParticipantId>(j), priority);
    }
    cdss->policies_.push_back(std::move(policy));
  }
  for (size_t i = 0; i < cfg.participants; ++i) {
    const ParticipantId id = static_cast<ParticipantId>(i);
    cdss->participants_.push_back(std::make_unique<core::Participant>(
        id, &cdss->catalog_, *cdss->policies_[i],
        core::ReconcileOptions{cfg.num_threads}));
    ORCH_RETURN_IF_ERROR(
        cdss->store_->RegisterParticipant(id, cdss->policies_[i].get()));
  }

  workload::WorkloadConfig wl = cfg.workload;
  wl.transaction_size = cfg.transaction_size;
  wl.seed = cfg.seed;
  cdss->workload_ = std::make_unique<workload::SwissProtWorkload>(wl);
  return cdss;
}

Result<core::ReconcileReport> Cdss::StepParticipant(size_t index) {
  ORCH_CHECK_LT(index, participants_.size());
  core::Participant& p = *participants_[index];
  for (size_t t = 0; t < config_.txns_between_recons; ++t) {
    std::vector<core::Update> updates =
        workload_->NextTransaction(p.id(), p.instance());
    if (updates.empty()) continue;  // the generator had nothing to change
    auto txn = p.ExecuteTransaction(std::move(updates));
    if (!txn.ok()) {
      // Workload raced with its own earlier ops; skip rather than abort.
      continue;
    }
    ++running_.transactions_published;
  }
  ORCH_RETURN_IF_ERROR(p.Publish(store_.get()).status());
  auto report_result = config_.network_centric
                           ? p.ReconcileNetworkCentric(store_.get())
                           : p.Reconcile(store_.get());
  ORCH_ASSIGN_OR_RETURN(core::ReconcileReport report,
                        std::move(report_result));
  ++running_.reconciliations;
  running_.accepted += report.accepted.size();
  running_.rejected += report.rejected.size();
  running_.deferred += report.deferred.size();
  running_.avg_local_micros += static_cast<double>(report.local_micros);
  running_.avg_store_micros +=
      static_cast<double>(report.store.TotalStoreMicros());
  return report;
}

Result<CdssResult> Cdss::Run() {
  running_ = CdssResult{};
  for (size_t round = 0; round < config_.rounds; ++round) {
    for (size_t i = 0; i < participants_.size(); ++i) {
      ORCH_RETURN_IF_ERROR(StepParticipant(i).status());
    }
  }
  CdssResult result = running_;
  if (result.reconciliations > 0) {
    result.total_local_micros_per_peer =
        result.avg_local_micros / static_cast<double>(participants_.size());
    result.total_store_micros_per_peer =
        result.avg_store_micros / static_cast<double>(participants_.size());
    result.avg_local_micros /= static_cast<double>(result.reconciliations);
    result.avg_store_micros /= static_cast<double>(result.reconciliations);
  }
  result.state_ratio = CurrentStateRatio();
  core::StoreStats totals;
  for (const auto& p : participants_) {
    totals = totals + store_->StatsFor(p->id());
  }
  result.messages = totals.messages;
  result.bytes = totals.bytes;
  return result;
}

double Cdss::CurrentStateRatio() const {
  std::vector<const core::Participant*> view;
  view.reserve(participants_.size());
  for (const auto& p : participants_) view.push_back(p.get());
  return StateRatio(view, workload::kFunctionRelation);
}

}  // namespace orchestra::sim
