#ifndef ORCHESTRA_SIM_CDSS_H_
#define ORCHESTRA_SIM_CDSS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/result.h"
#include "common/sim_trace.h"
#include "core/participant.h"
#include "core/update_store.h"
#include "net/sim_network.h"
#include "sim/metrics.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "store/dht_store.h"
#include "workload/swissprot.h"

namespace orchestra::sim {

enum class StoreKind { kCentral, kDht };

/// Seeded DHT node-churn schedule (StoreKind::kDht only): membership
/// events applied at round boundaries, interleaved with the
/// publish/reconcile schedule. Crash draws flow through a dedicated
/// FaultInjector at the "net.node_crash" site — one draw per live node
/// per boundary — so a given (seed, schedule) always kills the same
/// nodes; joins and graceful leaves come from a separate stream of the
/// same seed. Every event triggers the store's key-range re-replication
/// immediately, so no two events can compound against one replica group.
struct ChurnConfig {
  bool enabled = false;
  /// Per live node, per round boundary: probability the node crashes
  /// (abrupt — its state dies; replicas restore it).
  double crash_probability = 0.0;
  /// Per round boundary: probability one fresh node joins the ring.
  double join_probability = 0.0;
  /// Per round boundary: probability one random live node leaves
  /// gracefully (handing off its keys first).
  double leave_probability = 0.0;
  uint64_t seed = 1;
  /// The schedule never shrinks the ring below this many live nodes
  /// (it must stay above the replication factor for crashes to be
  /// survivable).
  size_t min_live_nodes = 4;
};

/// Shape of the confederation's trust relationships.
enum class TrustTopology {
  /// Everyone trusts everyone at the same priority (§6's setup — every
  /// conflict must be resolved manually).
  kUniform,
  /// Peers are striped into three authority tiers; updates from a
  /// tier-t peer are accepted at priority t. Cross-tier conflicts
  /// resolve automatically in favor of the higher tier.
  kTiered,
  /// Peer 0 is a curated hub trusted at a higher priority by everyone;
  /// all other peers are mutually trusted at priority 1.
  kStar,
};

/// Full-system configuration for one simulated confederation run,
/// mirroring the experimental setup of §6: N participants who all trust
/// one another at equal priority (so conflicts defer), publishing and
/// reconciling in a round-robin epoch schedule.
struct CdssConfig {
  size_t participants = 10;
  StoreKind store = StoreKind::kCentral;
  /// Use network-centric reconciliation (§5, Fig. 3): the store computes
  /// extensions, flattening and conflicts; the client only decides.
  bool network_centric = false;
  /// Function updates per transaction (Fig. 8's x-axis).
  size_t transaction_size = 1;
  /// Transactions published between two reconciliations of the same
  /// peer — the reconciliation interval RI (Figs. 9-10).
  size_t txns_between_recons = 4;
  /// Reconciliations each participant performs over the run.
  size_t rounds = 10;
  /// Mutual trust priority (equal everywhere per §6, so that conflicts
  /// "must be manually rather than automatically resolved").
  int trust_priority = 1;
  /// Trust topology; kUniform reproduces the paper's experiments.
  TrustTopology topology = TrustTopology::kUniform;
  /// Threads each participant's reconciliation engine uses for the
  /// data-parallel phases (flatten / conflict testing / CheckState).
  /// 1 is the exact serial path; any value produces identical decisions
  /// and instances (the determinism contract).
  size_t num_threads = 1;
  uint64_t seed = 42;
  workload::WorkloadConfig workload;
  net::NetworkConfig network;
  /// Fault injection over the store's side-effecting operations (storage
  /// writes for the central store, protocol messages for the DHT).
  /// Disabled by default (failure_probability 0 and fail_at_call 0).
  FaultInjectorConfig fault;
  /// Retry policy participants use when the store reports a transient
  /// (Unavailable) failure — an injected fault or a reaped epoch.
  core::ReconcileRetryOptions retry;
  /// Stuck-epoch reaping threshold passed to the store (see
  /// CentralStoreOptions / DhtStoreOptions).
  int stuck_epoch_reap_threshold = 3;
  /// How the store assembles reconciliation fetches (see core::FetchMode).
  /// kDelta is the shipping default; kWindowed/kFull exist for the
  /// equivalence tests and the delta-sweep baseline.
  core::FetchMode fetch_mode = core::FetchMode::kDelta;
  /// Replicas per DHT key (DhtStoreOptions::replication_factor); 1
  /// disables replication, so a node crash loses data.
  size_t replication_factor = 3;
  /// DHT node churn interleaved with the rounds (kDht only; rejected for
  /// the central store, which has no ring to churn).
  ChurnConfig churn;
  /// Verify envelope checksums on stored reads (both stores). False is
  /// the corruption sweep's control arm: rot flows to readers undetected
  /// (the strict check still runs as an accounting ledger).
  bool verify_checksums = true;
  /// Run a DHT background scrub (verify + heal every replica) at every
  /// Nth round boundary; 0 disables. kDht only — the central store's
  /// rot is per-read, so there is nothing at rest to scrub.
  size_t scrub_interval_rounds = 0;
  /// Collect per-decision provenance through the reconciler and persist
  /// it store-side (core/provenance.h). On by default; the overhead
  /// sweep's control arm turns it off.
  bool record_provenance = true;
  /// Emit the deterministic simulated-time trace (common/sim_trace.h):
  /// one track per peer plus per-message net.send/net.recv instants,
  /// timestamps taken from the per-endpoint simulated clocks — so the
  /// trace is bit-identical across same-seed runs. Also switched on by
  /// the ORCH_SIM_TRACE environment variable (see Make).
  bool sim_trace = false;
  /// Where Run() writes the sim trace; empty keeps it in memory only
  /// (tests read sim_tracer() directly).
  std::string sim_trace_path;
};

/// Aggregated results of a run.
struct CdssResult {
  double state_ratio = 1.0;
  size_t reconciliations = 0;
  size_t transactions_published = 0;
  size_t accepted = 0;
  size_t rejected = 0;
  size_t deferred = 0;
  /// Fault-tolerance accounting: injected faults observed, operations
  /// that needed more than one attempt, and total simulated backoff.
  int64_t faults_injected = 0;
  int64_t retried_operations = 0;
  int64_t backoff_micros = 0;
  /// Churn accounting: membership events the schedule actually applied,
  /// and whether the replica-placement invariant held after every event.
  int64_t node_crashes = 0;
  int64_t node_joins = 0;
  int64_t node_leaves = 0;
  bool replication_invariant_ok = true;
  /// Integrity accounting: checksum-rejected reads caught at any site
  /// (replica, stored row, in-flight payload), replicas healed (read-
  /// repair plus scrub), and — control arm only — reads served despite a
  /// failing checksum (always 0 when verify_checksums is true).
  int64_t corrupt_reads_detected = 0;
  int64_t read_repairs = 0;
  int64_t undetected_corrupt_reads = 0;
  /// Mean per-reconciliation times (microseconds).
  double avg_local_micros = 0;
  double avg_store_micros = 0;
  /// Totals per participant over the whole run (microseconds) — the
  /// quantity of Fig. 10.
  double total_local_micros_per_peer = 0;
  double total_store_micros_per_peer = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  /// Movement of the process-wide metrics registry (common/metrics.h)
  /// during one round of this run: counter deltas taken at the round
  /// boundary, zero deltas dropped. The registry is global and
  /// accumulates for the process lifetime; deltas isolate what *this*
  /// run's round actually did.
  struct RoundMetrics {
    size_t round = 0;
    std::map<std::string, int64_t> counters;
  };
  std::vector<RoundMetrics> round_metrics;
  /// Whole-run counter deltas (the sum of round_metrics entries).
  std::map<std::string, int64_t> metrics;
};

/// A whole simulated CDSS: catalog, trust policies, participants, the
/// chosen update store, and the workload generator. Drives the epoch
/// schedule and collects the paper's metrics.
class Cdss {
 public:
  /// Builds and wires the confederation. Fails only on configuration
  /// errors.
  static Result<std::unique_ptr<Cdss>> Make(CdssConfig config);

  /// Runs the configured number of rounds: in each round every
  /// participant executes `txns_between_recons` transactions, publishes
  /// them, and reconciles.
  Result<CdssResult> Run();

  /// Runs a single peer's turn (used by tests for finer control).
  Result<core::ReconcileReport> StepParticipant(size_t index);

  core::Participant& participant(size_t index) { return *participants_[index]; }
  size_t participant_count() const { return participants_.size(); }
  core::UpdateStore& store() { return *store_; }
  const CdssConfig& config() const { return config_; }
  /// The fault injector threaded through the store (always present;
  /// inert when the config disables injection).
  FaultInjector& fault_injector() { return fault_injector_; }
  /// The DHT store when StoreKind::kDht was configured, else nullptr.
  store::DhtStore* dht_store() { return dht_; }
  /// The central store's storage engine when StoreKind::kCentral was
  /// configured, else nullptr. Tools and tests use it to inspect the
  /// durable tables ("prov:<peer>", "declog:<peer>") directly.
  storage::StorageEngine* engine() { return engine_.get(); }
  /// The simulated-time tracer when sim_trace is on, else nullptr.
  SimTracer* sim_tracer() {
    return config_.sim_trace ? &sim_tracer_ : nullptr;
  }

  /// Current state ratio over the Function relation.
  double CurrentStateRatio() const;

 private:
  explicit Cdss(CdssConfig config) : config_(std::move(config)) {}

  /// Applies one round boundary's worth of churn: a possible join, a
  /// possible graceful leave, then per-node crash draws through the
  /// "net.node_crash" site. Checks the replication invariant after each
  /// event and latches any violation into the running result.
  Status ApplyChurn();

  CdssConfig config_;
  db::Catalog catalog_;
  net::SimNetwork network_;
  /// Simulated-time event stream; populated only when config_.sim_trace.
  SimTracer sim_tracer_;
  FaultInjector fault_injector_;
  /// Dedicated injector for the churn schedule's crash draws; kept apart
  /// from fault_injector_ so message-loss faults and membership churn
  /// compose without perturbing each other's random streams.
  FaultInjector churn_injector_;
  Rng churn_rng_{0};
  store::DhtStore* dht_ = nullptr;
  std::unique_ptr<storage::StorageEngine> engine_;
  std::unique_ptr<core::UpdateStore> store_;
  std::vector<std::unique_ptr<core::TrustPolicy>> policies_;
  std::vector<std::unique_ptr<core::Participant>> participants_;
  std::unique_ptr<workload::SwissProtWorkload> workload_;
  CdssResult running_;
};

}  // namespace orchestra::sim

#endif  // ORCHESTRA_SIM_CDSS_H_
