#include "sim/experiment.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace orchestra::sim {

std::string TrialStats::ToString() const {
  return Fmt(mean) + " ± " + Fmt(ci95);
}

TrialStats Summarize(const std::vector<double>& samples) {
  TrialStats stats;
  if (samples.empty()) return stats;
  double sum = 0;
  for (double s : samples) sum += s;
  stats.mean = sum / static_cast<double>(samples.size());
  if (samples.size() < 2) return stats;
  double var = 0;
  for (double s : samples) var += (s - stats.mean) * (s - stats.mean);
  var /= static_cast<double>(samples.size() - 1);
  const double sem = std::sqrt(var / static_cast<double>(samples.size()));
  stats.ci95 = 1.96 * sem;
  return stats;
}

Result<AggregateResult> RunTrials(const CdssConfig& config, size_t trials) {
  std::vector<double> ratio, local_avg, store_avg, local_pp, store_pp;
  AggregateResult agg;
  for (size_t t = 0; t < trials; ++t) {
    CdssConfig trial_config = config;
    trial_config.seed = config.seed + 7919 * (t + 1);
    ORCH_ASSIGN_OR_RETURN(std::unique_ptr<Cdss> cdss,
                          Cdss::Make(trial_config));
    ORCH_ASSIGN_OR_RETURN(CdssResult result, cdss->Run());
    ratio.push_back(result.state_ratio);
    local_avg.push_back(result.avg_local_micros);
    store_avg.push_back(result.avg_store_micros);
    local_pp.push_back(result.total_local_micros_per_peer);
    store_pp.push_back(result.total_store_micros_per_peer);
    agg.deferred += static_cast<double>(result.deferred);
    agg.rejected += static_cast<double>(result.rejected);
    agg.accepted += static_cast<double>(result.accepted);
    agg.messages += static_cast<double>(result.messages);
  }
  const double n = static_cast<double>(trials);
  agg.deferred /= n;
  agg.rejected /= n;
  agg.accepted /= n;
  agg.messages /= n;
  agg.state_ratio = Summarize(ratio);
  agg.avg_local_micros = Summarize(local_avg);
  agg.avg_store_micros = Summarize(store_avg);
  agg.total_local_micros_pp = Summarize(local_pp);
  agg.total_store_micros_pp = Summarize(store_pp);
  return agg;
}

TablePrinter::TablePrinter(std::vector<std::string> headers) {
  widths_.reserve(headers.size());
  for (const std::string& h : headers) {
    widths_.push_back(std::max<size_t>(h.size() + 2, 14));
  }
  Row(headers);
  std::string rule;
  for (size_t w : widths_) rule += std::string(w, '-');
  std::printf("%s\n", rule.c_str());
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    const size_t width = i < widths_.size() ? widths_[i] : 14;
    std::string cell = cells[i];
    // Pad to the column width, keeping at least two spaces between
    // columns even when a cell overflows.
    cell += std::string(
        cell.size() < width ? width - cell.size() : 2, ' ');
    line += cell;
  }
  std::printf("%s\n", line.c_str());
}

std::string Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

size_t ThreadsFromEnv() {
  const char* env = std::getenv("ORCH_THREADS");
  if (env == nullptr) return 1;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : 1;
}

}  // namespace orchestra::sim
