#ifndef ORCHESTRA_SIM_EXPERIMENT_H_
#define ORCHESTRA_SIM_EXPERIMENT_H_

#include <string>
#include <vector>

#include "sim/cdss.h"

namespace orchestra::sim {

/// Mean and half-width of a 95% confidence interval over repeated
/// trials, as reported in every figure of the paper's evaluation.
struct TrialStats {
  double mean = 0;
  double ci95 = 0;

  std::string ToString() const;
};

/// Computes mean and 95% CI (normal approximation, as is standard for
/// the paper's 5-trial setups) from raw samples.
TrialStats Summarize(const std::vector<double>& samples);

/// Aggregate of `trials` runs of one configuration, varying the seed.
struct AggregateResult {
  TrialStats state_ratio;
  TrialStats avg_local_micros;        // per reconciliation
  TrialStats avg_store_micros;        // per reconciliation
  TrialStats total_local_micros_pp;   // per participant over the run
  TrialStats total_store_micros_pp;   // per participant over the run
  double deferred = 0;
  double rejected = 0;
  double accepted = 0;
  double messages = 0;
};

/// Runs `trials` independent simulations of `config` (seeds derived from
/// config.seed) and aggregates the metrics.
Result<AggregateResult> RunTrials(const CdssConfig& config, size_t trials);

/// Prints an aligned experiment table row-by-row. Usage:
///   TablePrinter t({"Txn size", "State ratio", "95% CI"});
///   t.Row({"1", "1.52", "0.03"});
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void Row(const std::vector<std::string>& cells);

 private:
  std::vector<size_t> widths_;
};

/// Formats a double with `decimals` places.
std::string Fmt(double value, int decimals = 2);

/// Reconciliation thread count for bench binaries: the ORCH_THREADS
/// environment variable when set to a positive integer, else 1 (the
/// exact serial path, keeping published figure runs deterministic by
/// default).
size_t ThreadsFromEnv();

}  // namespace orchestra::sim

#endif  // ORCHESTRA_SIM_EXPERIMENT_H_
