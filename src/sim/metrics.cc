#include "sim/metrics.h"

#include <map>
#include <set>

#include "common/check.h"
#include "db/table.h"

namespace orchestra::sim {

namespace {

// key -> (distinct present values, number of peers holding the key)
using KeyStates = std::map<db::Tuple, std::pair<std::set<db::Tuple>, size_t>>;

KeyStates CollectStates(
    const std::vector<const core::Participant*>& participants,
    std::string_view relation) {
  KeyStates states;
  for (const core::Participant* p : participants) {
    auto table = p->instance().GetTable(relation);
    ORCH_CHECK(table.ok(), "relation missing from instance");
    for (const db::Tuple& tuple : (*table)->Scan()) {
      const db::Tuple key = (*table)->schema().KeyOf(tuple);
      auto& [values, holders] = states[key];
      values.insert(tuple);
      holders += 1;
    }
  }
  return states;
}

}  // namespace

double StateRatio(const std::vector<const core::Participant*>& participants,
                  std::string_view relation) {
  ORCH_CHECK(!participants.empty());
  const KeyStates states = CollectStates(participants, relation);
  if (states.empty()) return 1.0;
  double total = 0;
  for (const auto& [key, entry] : states) {
    const auto& [values, holders] = entry;
    size_t distinct = values.size();
    if (holders < participants.size()) distinct += 1;  // "lack of a value"
    total += static_cast<double>(distinct);
  }
  return total / static_cast<double>(states.size());
}

double FullAgreementFraction(
    const std::vector<const core::Participant*>& participants,
    std::string_view relation) {
  ORCH_CHECK(!participants.empty());
  const KeyStates states = CollectStates(participants, relation);
  if (states.empty()) return 1.0;
  size_t agreed = 0;
  for (const auto& [key, entry] : states) {
    const auto& [values, holders] = entry;
    if (values.size() == 1 && holders == participants.size()) ++agreed;
  }
  return static_cast<double>(agreed) / static_cast<double>(states.size());
}

}  // namespace orchestra::sim
