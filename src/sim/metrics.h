#ifndef ORCHESTRA_SIM_METRICS_H_
#define ORCHESTRA_SIM_METRICS_H_

#include <string_view>
#include <vector>

#include "core/participant.h"

namespace orchestra::sim {

/// The paper's *state ratio* (§6): the average, over every key that
/// appears in any participant's instance of `relation`, of the number of
/// distinct states participants hold for that key — where a state is
/// either the key's full tuple value or the lack of a value. Ranges from
/// 1 (all peers agree on everything) to the number of peers (no overlap
/// at all); lower means higher-quality sharing.
double StateRatio(const std::vector<const core::Participant*>& participants,
                  std::string_view relation);

/// Fraction of keys on which every participant holds the same value
/// (complementary agreement metric used by the extension experiments).
double FullAgreementFraction(
    const std::vector<const core::Participant*>& participants,
    std::string_view relation);

}  // namespace orchestra::sim

#endif  // ORCHESTRA_SIM_METRICS_H_
