#include "storage/engine.h"

#include "common/metrics.h"
#include "db/serde.h"

namespace orchestra::storage {

namespace {
// WAL record types.
constexpr uint8_t kPut = 1;
constexpr uint8_t kDelete = 2;
constexpr uint8_t kSequence = 3;

std::string EncodeKV(std::string_view table, std::string_view key,
                     std::string_view value) {
  std::string out;
  db::PutLengthPrefixed(&out, table);
  db::PutLengthPrefixed(&out, key);
  db::PutLengthPrefixed(&out, value);
  return out;
}
}  // namespace

std::unique_ptr<StorageEngine> StorageEngine::InMemory() {
  return std::unique_ptr<StorageEngine>(new StorageEngine());
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::OpenDurable(
    std::string wal_path, FaultInjector* injector) {
  auto engine = std::unique_ptr<StorageEngine>(new StorageEngine());
  ORCH_ASSIGN_OR_RETURN(engine->wal_, WriteAheadLog::Open(std::move(wal_path)));
  engine->set_fault_injector(injector);
  ORCH_RETURN_IF_ERROR(engine->Recover());
  return engine;
}

Status StorageEngine::Recover() {
  return wal_->ReplayWithStats(
      [this](uint8_t type, std::string_view payload) {
    size_t pos = 0;
    switch (type) {
      case kPut: {
        ORCH_ASSIGN_OR_RETURN(std::string table,
                              db::GetLengthPrefixed(payload, &pos));
        ORCH_ASSIGN_OR_RETURN(std::string key,
                              db::GetLengthPrefixed(payload, &pos));
        ORCH_ASSIGN_OR_RETURN(std::string value,
                              db::GetLengthPrefixed(payload, &pos));
        tables_[table][key] = value;
        return Status::OK();
      }
      case kDelete: {
        ORCH_ASSIGN_OR_RETURN(std::string table,
                              db::GetLengthPrefixed(payload, &pos));
        ORCH_ASSIGN_OR_RETURN(std::string key,
                              db::GetLengthPrefixed(payload, &pos));
        auto it = tables_.find(table);
        if (it != tables_.end()) it->second.erase(key);
        return Status::OK();
      }
      case kSequence: {
        ORCH_ASSIGN_OR_RETURN(std::string name,
                              db::GetLengthPrefixed(payload, &pos));
        ORCH_ASSIGN_OR_RETURN(uint64_t value, db::GetVarint64(payload, &pos));
        sequences_[name] = static_cast<int64_t>(value);
        return Status::OK();
      }
      default:
        return Status::Corruption("unknown WAL record type " +
                                  std::to_string(type));
    }
      },
      &replay_stats_);
}

Status StorageEngine::LogPut(std::string_view table, std::string_view key,
                             std::string_view value) {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Append(kPut, EncodeKV(table, key, value));
}

Status StorageEngine::LogDelete(std::string_view table, std::string_view key) {
  if (wal_ == nullptr) return Status::OK();
  std::string payload;
  db::PutLengthPrefixed(&payload, table);
  db::PutLengthPrefixed(&payload, key);
  return wal_->Append(kDelete, payload);
}

Status StorageEngine::Put(std::string_view table, std::string_view key,
                          std::string_view value) {
  if (injector_ != nullptr) {
    ORCH_RETURN_IF_ERROR(injector_->MaybeFail("storage.put"));
  }
  ORCH_RETURN_IF_ERROR(LogPut(table, key, value));
  tables_[std::string(table)][std::string(key)] = std::string(value);
  static Counter& puts = MetricsRegistry::Global().GetCounter("storage.puts");
  puts.Increment();
  return Status::OK();
}

Result<std::string> StorageEngine::Get(std::string_view table,
                                       std::string_view key) const {
  auto table_it = tables_.find(table);
  if (table_it == tables_.end()) {
    return Status::NotFound("no table " + std::string(table));
  }
  auto it = table_it->second.find(key);
  if (it == table_it->second.end()) {
    return Status::NotFound("key " + std::string(key) + " not in " +
                            std::string(table));
  }
  return it->second;
}

bool StorageEngine::Contains(std::string_view table,
                             std::string_view key) const {
  auto table_it = tables_.find(table);
  return table_it != tables_.end() &&
         table_it->second.find(key) != table_it->second.end();
}

Status StorageEngine::Delete(std::string_view table, std::string_view key) {
  if (injector_ != nullptr) {
    ORCH_RETURN_IF_ERROR(injector_->MaybeFail("storage.delete"));
  }
  ORCH_RETURN_IF_ERROR(LogDelete(table, key));
  auto table_it = tables_.find(table);
  if (table_it != tables_.end()) table_it->second.erase(std::string(key));
  static Counter& deletes =
      MetricsRegistry::Global().GetCounter("storage.deletes");
  deletes.Increment();
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> StorageEngine::ScanRange(
    std::string_view table, std::string_view lo, std::string_view hi) const {
  std::vector<std::pair<std::string, std::string>> out;
  auto table_it = tables_.find(table);
  if (table_it == tables_.end()) return out;
  auto it = table_it->second.lower_bound(lo);
  for (; it != table_it->second.end(); ++it) {
    if (!hi.empty() && it->first >= std::string(hi)) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> StorageEngine::ScanPrefix(
    std::string_view table, std::string_view prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  auto table_it = tables_.find(table);
  if (table_it == tables_.end()) return out;
  for (auto it = table_it->second.lower_bound(prefix);
       it != table_it->second.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

size_t StorageEngine::TableSize(std::string_view table) const {
  auto table_it = tables_.find(table);
  return table_it == tables_.end() ? 0 : table_it->second.size();
}

std::vector<std::string> StorageEngine::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, rows] : tables_) out.push_back(name);
  return out;
}

Result<int64_t> StorageEngine::NextSequence(std::string_view name) {
  if (injector_ != nullptr) {
    ORCH_RETURN_IF_ERROR(injector_->MaybeFail("storage.sequence"));
  }
  const int64_t next = sequences_[std::string(name)] + 1;
  if (wal_ != nullptr) {
    std::string payload;
    db::PutLengthPrefixed(&payload, name);
    db::PutVarint64(&payload, static_cast<uint64_t>(next));
    ORCH_RETURN_IF_ERROR(wal_->Append(kSequence, payload));
    ORCH_RETURN_IF_ERROR(wal_->Sync());
  }
  sequences_[std::string(name)] = next;
  return next;
}

int64_t StorageEngine::CurrentSequence(std::string_view name) const {
  auto it = sequences_.find(name);
  return it == sequences_.end() ? 0 : it->second;
}

Status StorageEngine::Sync() {
  if (injector_ != nullptr) {
    ORCH_RETURN_IF_ERROR(injector_->MaybeFail("storage.sync"));
  }
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

}  // namespace orchestra::storage
