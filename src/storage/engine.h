#ifndef ORCHESTRA_STORAGE_ENGINE_H_
#define ORCHESTRA_STORAGE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/wal.h"

namespace orchestra::storage {

/// The embedded storage engine backing the centralized update store —
/// our stand-in for the paper's "major commercial RDBMS" (§5.2.1). It
/// provides named ordered key/value tables, named monotonic sequences
/// (the paper's SQL sequence used as the epoch counter), and optional
/// WAL-based durability with crash recovery.
///
/// Tables are ordered by key so that epoch-range scans (the core access
/// pattern of reconciliation-input retrieval) are efficient.
class StorageEngine {
 public:
  /// Pure in-memory engine (no durability); used by benchmarks.
  static std::unique_ptr<StorageEngine> InMemory();

  /// Durable engine logging to `wal_path`; recovers existing state from
  /// the log on open. When `injector` is given it is installed *before*
  /// recovery so replay-time corruption sites (storage.truncate_tail,
  /// storage.bit_flip) can fire during the recovery pass itself.
  static Result<std::unique_ptr<StorageEngine>> OpenDurable(
      std::string wal_path, FaultInjector* injector = nullptr);

  /// Writes `value` under `key` in `table` (upsert).
  Status Put(std::string_view table, std::string_view key,
             std::string_view value);

  /// Value stored under `key`, or NotFound.
  Result<std::string> Get(std::string_view table, std::string_view key) const;

  bool Contains(std::string_view table, std::string_view key) const;

  /// Removes `key`; idempotent (absent keys are fine).
  Status Delete(std::string_view table, std::string_view key);

  /// All (key, value) pairs with key in [lo, hi), in key order. An empty
  /// `hi` means "to the end of the table".
  std::vector<std::pair<std::string, std::string>> ScanRange(
      std::string_view table, std::string_view lo, std::string_view hi) const;

  /// All (key, value) pairs whose key starts with `prefix`, in key order.
  std::vector<std::pair<std::string, std::string>> ScanPrefix(
      std::string_view table, std::string_view prefix) const;

  /// Number of keys in `table`.
  size_t TableSize(std::string_view table) const;

  /// Names of every (non-empty or previously written) table, in name
  /// order. Diagnostic — tools use it to discover per-peer table
  /// families ("prov:<peer>", "declog:<peer>") without knowing the peer
  /// set.
  std::vector<std::string> TableNames() const;

  /// Returns the next value of the named sequence (1, 2, 3, ...). The
  /// allocation is durable before it is returned.
  Result<int64_t> NextSequence(std::string_view name);

  /// Current value of the named sequence without advancing (0 if never
  /// allocated).
  int64_t CurrentSequence(std::string_view name) const;

  /// Forces buffered WAL records to disk (no-op in memory mode).
  Status Sync();

  bool durable() const { return wal_ != nullptr; }

  /// Installs (or clears, with nullptr) a fault injector consulted before
  /// every mutating operation (Put, Delete, NextSequence, Sync). Reads
  /// are never failed: the update stores' consistency obligations concern
  /// what they *wrote*, and read faults only re-exercise the same retry
  /// paths. The injector must outlive the engine or be cleared first.
  void set_fault_injector(FaultInjector* injector) {
    injector_ = injector;
    if (wal_ != nullptr) wal_->set_fault_injector(injector);
  }
  FaultInjector* fault_injector() const { return injector_; }

  /// Accounting from the recovery replay (zero-valued for in-memory
  /// engines). A nonzero skipped_regions means recovered state has a
  /// gap; stores with completeness witnesses (the central store's
  /// decision-log marker) cross-check and surface kDataLoss.
  const WriteAheadLog::ReplayStats& replay_stats() const {
    return replay_stats_;
  }

  /// True when the WAL predates the v2 checksummed format. Values read
  /// back from such an engine may be legacy unframed payloads, so
  /// consumers unwrap them with EnvelopePolicy::kAllowUnframed.
  bool recovered_from_legacy_wal() const {
    return wal_ != nullptr && wal_->legacy_format();
  }

 private:
  StorageEngine() = default;

  Status LogPut(std::string_view table, std::string_view key,
                std::string_view value);
  Status LogDelete(std::string_view table, std::string_view key);
  Status Recover();

  using Table = std::map<std::string, std::string, std::less<>>;
  std::map<std::string, Table, std::less<>> tables_;
  std::map<std::string, int64_t, std::less<>> sequences_;
  std::unique_ptr<WriteAheadLog> wal_;
  WriteAheadLog::ReplayStats replay_stats_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_ENGINE_H_
