#include "storage/wal.h"

#include <array>
#include <cstring>
#include <vector>

#include "common/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define ORCH_WAL_HAS_FSYNC 1
#endif

#include "db/serde.h"

namespace orchestra::storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffU;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffU;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(std::string path) {
  std::FILE* file = std::fopen(path.c_str(), "ab+");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL at " + path);
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(path), file));
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::Append(uint8_t type, std::string_view payload) {
  static Counter& appends = MetricsRegistry::Global().GetCounter("wal.appends");
  static Counter& append_bytes =
      MetricsRegistry::Global().GetCounter("wal.append_bytes");
  std::string body;
  body.push_back(static_cast<char>(type));
  body.append(payload);
  const uint32_t crc = Crc32(body);

  std::string record;
  record.resize(4);
  std::memcpy(record.data(), &crc, 4);
  db::PutVarint64(&record, payload.size());
  record.append(body);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError("short write to WAL " + path_);
  }
  appends.Increment();
  append_bytes.Add(static_cast<int64_t>(record.size()));
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  static Counter& syncs = MetricsRegistry::Global().GetCounter("wal.syncs");
  static Counter& fsyncs = MetricsRegistry::Global().GetCounter("wal.fsyncs");
  syncs.Increment();
  // fflush only moves stdio-buffered bytes into the OS page cache; the
  // durability claim ("decisions survive a crash once Sync returns")
  // additionally needs fsync to push them to stable storage.
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed on WAL " + path_);
  }
#ifdef ORCH_WAL_HAS_FSYNC
  if (fsync(fileno(file_)) != 0) {
    return Status::IOError("fsync failed on WAL " + path_);
  }
  fsyncs.Increment();
#else
  (void)fsyncs;
#endif
  return Status::OK();
}

Status WriteAheadLog::Replay(
    const std::function<Status(uint8_t, std::string_view)>& visitor) const {
  std::FILE* file = std::fopen(path_.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL for replay at " + path_);
  }
  std::string contents;
  {
    char buffer[1 << 16];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(file);
  }
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t record_start = pos;
    if (pos + 4 > contents.size()) break;  // torn tail
    uint32_t stored_crc;
    std::memcpy(&stored_crc, contents.data() + pos, 4);
    pos += 4;
    auto len = db::GetVarint64(contents, &pos);
    if (!len.ok()) break;  // torn tail
    if (pos + 1 + *len > contents.size()) break;  // torn tail
    const std::string_view body(contents.data() + pos, 1 + *len);
    pos += 1 + *len;
    if (Crc32(body) != stored_crc) {
      if (pos >= contents.size()) break;  // torn final record
      return Status::Corruption("WAL CRC mismatch at offset " +
                                std::to_string(record_start) + " in " + path_);
    }
    const uint8_t type = static_cast<uint8_t>(body[0]);
    ORCH_RETURN_IF_ERROR(visitor(type, body.substr(1)));
  }
  return Status::OK();
}

}  // namespace orchestra::storage
