#include "storage/wal.h"

#include <array>
#include <cstring>
#include <vector>

#include "common/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define ORCH_WAL_HAS_FSYNC 1
#endif

#include "db/serde.h"

namespace orchestra::storage {

namespace {

/// v2 file header. A v1 file starts with the CRC32 of its first record,
/// which matches this magic with probability 2^-64 — close enough to
/// never for format detection.
constexpr char kFileMagic[8] = {'O', 'R', 'C', 'W', 'A', 'L', '0', '2'};

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffU;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffU;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(std::string path) {
  // Peek at the existing file (if any) to decide the format before the
  // append handle pins us to the end.
  bool legacy = false;
  bool needs_header = true;
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    char head[sizeof(kFileMagic)];
    const size_t n = std::fread(head, 1, sizeof(head), probe);
    std::fclose(probe);
    if (n > 0) {
      needs_header = false;
      legacy = n < sizeof(kFileMagic) ||
               std::memcmp(head, kFileMagic, sizeof(kFileMagic)) != 0;
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab+");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL at " + path);
  }
  if (needs_header) {
    if (std::fwrite(kFileMagic, 1, sizeof(kFileMagic), file) !=
        sizeof(kFileMagic)) {
      std::fclose(file);
      return Status::IOError("cannot write WAL header at " + path);
    }
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(path), file, legacy));
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::Append(uint8_t type, std::string_view payload) {
  static Counter& appends = MetricsRegistry::Global().GetCounter("wal.appends");
  static Counter& append_bytes =
      MetricsRegistry::Global().GetCounter("wal.append_bytes");
  std::string body;
  body.push_back(static_cast<char>(type));
  body.append(payload);

  std::string record;
  if (legacy_) {
    const uint32_t crc = Crc32(body);
    record.resize(4);
    std::memcpy(record.data(), &crc, 4);
    db::PutVarint64(&record, payload.size());
    record.append(body);
  } else {
    db::WrapEnvelope(&record, body);
  }
  // A torn physical write leaves a strict prefix of the record on disk;
  // nothing after it is parseable, which replay treats as a torn tail.
  if (injector_ != nullptr) {
    injector_->MaybeCorrupt("storage.torn_write", &record);
  }
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError("short write to WAL " + path_);
  }
  appends.Increment();
  append_bytes.Add(static_cast<int64_t>(record.size()));
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  static Counter& syncs = MetricsRegistry::Global().GetCounter("wal.syncs");
  static Counter& fsyncs = MetricsRegistry::Global().GetCounter("wal.fsyncs");
  syncs.Increment();
  // fflush only moves stdio-buffered bytes into the OS page cache; the
  // durability claim ("decisions survive a crash once Sync returns")
  // additionally needs fsync to push them to stable storage.
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed on WAL " + path_);
  }
#ifdef ORCH_WAL_HAS_FSYNC
  if (fsync(fileno(file_)) != 0) {
    return Status::IOError("fsync failed on WAL " + path_);
  }
  fsyncs.Increment();
#else
  (void)fsyncs;
#endif
  return Status::OK();
}

Status WriteAheadLog::Replay(
    const std::function<Status(uint8_t, std::string_view)>& visitor) const {
  return ReplayWithStats(visitor, nullptr);
}

Status WriteAheadLog::ReplayWithStats(
    const std::function<Status(uint8_t, std::string_view)>& visitor,
    ReplayStats* stats) const {
  std::FILE* file = std::fopen(path_.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL for replay at " + path_);
  }
  std::string contents;
  {
    char buffer[1 << 16];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(file);
  }
  if (injector_ != nullptr) {
    // At-rest corruption surfaces at recovery time: a truncated tail
    // (lost sectors) or flipped bits anywhere in the image.
    injector_->MaybeCorrupt("storage.truncate_tail", &contents);
    injector_->MaybeCorrupt("storage.bit_flip", &contents);
  }
  ReplayStats local;
  ReplayStats* s = stats != nullptr ? stats : &local;
  *s = ReplayStats{};
  s->legacy_format = legacy_;
  const Status status = legacy_ ? ReplayLegacy(visitor, contents, s)
                                : ReplayFramed(visitor, contents, s);
  static Counter& skipped = MetricsRegistry::Global().GetCounter(
      "integrity.wal_records_skipped");
  static Counter& dropped = MetricsRegistry::Global().GetCounter(
      "integrity.wal_tail_dropped_bytes");
  skipped.Add(s->skipped_regions);
  dropped.Add(s->dropped_tail_bytes);
  return status;
}

Status WriteAheadLog::ReplayLegacy(
    const std::function<Status(uint8_t, std::string_view)>& visitor,
    std::string_view contents, ReplayStats* stats) const {
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t record_start = pos;
    if (pos + 4 > contents.size()) break;  // torn tail
    uint32_t stored_crc;
    std::memcpy(&stored_crc, contents.data() + pos, 4);
    pos += 4;
    auto len = db::GetVarint64(contents, &pos);
    if (!len.ok()) {  // torn tail
      pos = record_start;
      break;
    }
    if (pos + 1 + *len > contents.size()) {  // torn tail
      pos = record_start;
      break;
    }
    const std::string_view body(contents.data() + pos, 1 + *len);
    pos += 1 + *len;
    if (Crc32(body) != stored_crc) {
      if (pos >= contents.size()) {  // torn final record
        pos = record_start;
        break;
      }
      return Status::Corruption("WAL CRC mismatch at offset " +
                                std::to_string(record_start) + " in " + path_);
    }
    const uint8_t type = static_cast<uint8_t>(body[0]);
    ORCH_RETURN_IF_ERROR(visitor(type, body.substr(1)));
    ++stats->records;
  }
  stats->dropped_tail_bytes +=
      static_cast<int64_t>(contents.size() - pos);
  return Status::OK();
}

Status WriteAheadLog::ReplayFramed(
    const std::function<Status(uint8_t, std::string_view)>& visitor,
    std::string_view contents, ReplayStats* stats) const {
  size_t pos = 0;
  if (contents.size() >= sizeof(kFileMagic) &&
      std::memcmp(contents.data(), kFileMagic, sizeof(kFileMagic)) == 0) {
    pos = sizeof(kFileMagic);
  } else if (contents.size() < sizeof(kFileMagic)) {
    // Torn header write: the file holds a prefix of the magic and no
    // records can have followed it.
    stats->dropped_tail_bytes += static_cast<int64_t>(contents.size());
    return Status::OK();
  } else {
    return Status::Corruption("WAL header mangled in " + path_);
  }
  // Finds the next plausible frame start at or after `from`. A payload
  // byte string can embed the 3-byte envelope prologue, so a hit is only
  // a *candidate* — a false one fails its checksum and the scan resumes.
  const auto next_frame = [&](size_t from) -> size_t {
    for (size_t i = from; i + 3 <= contents.size(); ++i) {
      if (contents[i] == db::kEnvelopeMagic0 &&
          contents[i + 1] == db::kEnvelopeMagic1 &&
          contents[i + 2] == db::kEnvelopeVersion) {
        return i;
      }
    }
    return contents.size();
  };
  while (pos < contents.size()) {
    const size_t record_start = pos;
    auto body = db::ReadEnvelope(contents, &pos);
    if (body.ok() && !body->empty()) {
      const uint8_t type = static_cast<uint8_t>((*body)[0]);
      ORCH_RETURN_IF_ERROR(visitor(type, body->substr(1)));
      ++stats->records;
      continue;
    }
    // Unparseable (or empty-bodied, which Append never writes) region:
    // either a torn tail or a corrupted record mid-log. If another
    // frame follows, skip to it and account for the gap; otherwise
    // truncate here.
    const size_t resume = next_frame(record_start + 1);
    if (resume >= contents.size()) {
      pos = record_start;
      break;
    }
    ++stats->skipped_regions;
    stats->skipped_bytes += static_cast<int64_t>(resume - record_start);
    pos = resume;
  }
  stats->dropped_tail_bytes +=
      static_cast<int64_t>(contents.size() - pos);
  return Status::OK();
}

}  // namespace orchestra::storage
