#ifndef ORCHESTRA_STORAGE_WAL_H_
#define ORCHESTRA_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/fault_injector.h"
#include "common/result.h"
#include "common/status.h"

namespace orchestra::storage {

/// CRC32 (IEEE polynomial) over `data`; validates legacy (v1) WAL
/// records. New logs use the CRC32C integrity envelope (db/serde) — a
/// different polynomial, so the two formats cannot validate each
/// other's records by accident.
uint32_t Crc32(std::string_view data);

/// Append-only write-ahead log.
///
/// v2 (current) format: an 8-byte file header ("ORCWAL02") followed by
/// one integrity envelope (db::WrapEnvelope) per record, whose payload
/// is [type:1 byte][record payload]. Recovery semantics:
///   - a torn tail (final record cut short) is truncated at the last
///     valid record, as before;
///   - a corrupted record *mid-log* is skipped by scanning forward to
///     the next envelope magic, with the skip counted in ReplayStats —
///     replay itself stays available, and callers that cannot tolerate
///     a gap (e.g. the central store's decision-log marker cross-check)
///     turn a nonzero skip count into a typed kDataLoss error.
///
/// v1 (legacy) format, headerless: records are
///   [crc32 of (type+payload) : 4 bytes LE]
///   [payload length          : varint]
///   [type                    : 1 byte]
///   [payload                 : length bytes]
/// A file that exists and lacks the v2 header keeps its legacy format:
/// replay uses the v1 parser (torn tail tolerated, mid-log CRC mismatch
/// reported as Corruption) and appends continue in v1 so the file stays
/// self-consistent. Only newly created logs get the v2 header.
class WriteAheadLog {
 public:
  /// Outcome accounting for one Replay pass.
  struct ReplayStats {
    int64_t records = 0;             // records delivered to the visitor
    int64_t skipped_regions = 0;     // corrupted mid-log stretches skipped
    int64_t skipped_bytes = 0;       // bytes inside those stretches
    int64_t dropped_tail_bytes = 0;  // torn tail truncated at replay
    bool legacy_format = false;      // parsed with the v1 parser
  };

  /// Opens (creating if needed) the log at `path` for appending. A new
  /// file is stamped with the v2 header; an existing headerless file is
  /// opened in legacy mode.
  static Result<std::unique_ptr<WriteAheadLog>> Open(std::string path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record. Buffered; call Sync to force it to disk.
  Status Append(uint8_t type, std::string_view payload);

  /// Flushes buffered appends and fsyncs the file.
  Status Sync();

  /// Replays every valid record from the start of the file, invoking
  /// `visitor(type, payload)` for each. Stops cleanly at a torn tail;
  /// skips corrupted mid-log records in v2 files (see ReplayStats).
  Status Replay(
      const std::function<Status(uint8_t, std::string_view)>& visitor) const;

  /// Replay with skip/truncation accounting; `stats` may be null.
  Status ReplayWithStats(
      const std::function<Status(uint8_t, std::string_view)>& visitor,
      ReplayStats* stats) const;

  /// Installs (or clears) a fault injector. Corruption sites:
  ///   storage.torn_write    — a fired Append writes only a strict
  ///                           prefix of the record (the crash tears
  ///                           the physical write);
  ///   storage.truncate_tail — a fired Replay drops tail bytes of the
  ///                           in-memory image before parsing;
  ///   storage.bit_flip      — a fired Replay flips bits in the image
  ///                           (at-rest corruption surfacing at read).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// True when the file predates the v2 header. Data recovered from a
  /// legacy log carries no checksums, so downstream envelope unwrapping
  /// must use EnvelopePolicy::kAllowUnframed for it.
  bool legacy_format() const { return legacy_; }

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, std::FILE* file, bool legacy)
      : path_(std::move(path)), file_(file), legacy_(legacy) {}

  Status ReplayLegacy(
      const std::function<Status(uint8_t, std::string_view)>& visitor,
      std::string_view contents, ReplayStats* stats) const;
  Status ReplayFramed(
      const std::function<Status(uint8_t, std::string_view)>& visitor,
      std::string_view contents, ReplayStats* stats) const;

  std::string path_;
  std::FILE* file_;
  bool legacy_ = false;
  FaultInjector* injector_ = nullptr;
};

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_WAL_H_
