#ifndef ORCHESTRA_STORAGE_WAL_H_
#define ORCHESTRA_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace orchestra::storage {

/// CRC32 (IEEE polynomial) over `data`; used to validate WAL records.
uint32_t Crc32(std::string_view data);

/// Append-only write-ahead log. Record format:
///   [crc32 of (type+payload) : 4 bytes LE]
///   [payload length          : varint]
///   [type                    : 1 byte]
///   [payload                 : length bytes]
/// A torn tail (partial final record or CRC mismatch at the end) is
/// tolerated during replay — the log is truncated at the last valid
/// record, matching standard recovery semantics. A CRC mismatch in the
/// middle of the log is reported as Corruption.
class WriteAheadLog {
 public:
  /// Opens (creating if needed) the log at `path` for appending.
  static Result<std::unique_ptr<WriteAheadLog>> Open(std::string path);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record. Buffered; call Sync to force it to disk.
  Status Append(uint8_t type, std::string_view payload);

  /// Flushes buffered appends and fsyncs the file.
  Status Sync();

  /// Replays every valid record from the start of the file, invoking
  /// `visitor(type, payload)` for each. Stops cleanly at a torn tail.
  Status Replay(
      const std::function<Status(uint8_t, std::string_view)>& visitor) const;

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;
};

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_WAL_H_
