#include "store/central_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <deque>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "db/serde.h"
#include "core/extension.h"

namespace orchestra::store {

using core::Epoch;
using core::ParticipantId;
using core::ProvenanceRecord;
using core::ReconcileFetch;
using core::Transaction;
using core::TransactionId;
using core::TxnIdSet;

CentralStore::CentralStore(storage::StorageEngine* engine,
                           net::SimNetwork* network,
                           CentralStoreOptions options,
                           const db::Catalog* catalog)
    : engine_(engine), network_(network), options_(options),
      catalog_(catalog) {
  ORCH_CHECK(engine != nullptr && network != nullptr);
}

std::string CentralStore::TxnKey(const TransactionId& id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%010u:%016" PRIu64, id.origin, id.seq);
  return buf;
}

std::string CentralStore::EpochKey(Epoch epoch) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRId64, epoch);
  return buf;
}

TransactionId CentralStore::ParseTxnKey(const std::string& key) {
  // TxnKey is "%010u:%016u" — fixed-width decimal, ':' at offset 10.
  TransactionId id;
  id.origin =
      static_cast<ParticipantId>(std::strtoul(key.c_str(), nullptr, 10));
  id.seq = std::strtoull(key.c_str() + 11, nullptr, 10);
  return id;
}

Status CentralStore::RegisterParticipant(ParticipantId peer,
                                         const core::TrustPolicy* policy) {
  ORCH_CHECK(policy != nullptr);
  policies_[peer] = policy;
  // Re-registration (e.g. after the store recovers from its WAL) must
  // preserve the peer's durable epoch watermark.
  if (!engine_->Contains("peers", std::to_string(peer))) {
    ORCH_RETURN_IF_ERROR(engine_->Put("peers", std::to_string(peer),
                                      EpochKey(0)));
  }
  return Status::OK();
}

namespace {
/// Re-reads of a row whose checksum failed; the per-read corruption
/// draw is fresh each time, so persistent failure (kDataLoss) means the
/// row is rotten beyond what redundancy can fix — vanishingly unlikely
/// under any realistic corruption probability.
constexpr int kRowReadAttempts = 4;
}  // namespace

Result<std::string> CentralStore::ReadTxnBlob(
    const std::string& txn_key) const {
  static Counter& detected = MetricsRegistry::Global().GetCounter(
      "integrity.corrupt_rows_detected");
  static Counter& rereads =
      MetricsRegistry::Global().GetCounter("integrity.row_rereads");
  static Counter& unverified = MetricsRegistry::Global().GetCounter(
      "integrity.unverified_corrupt_reads");
  Status last = Status::OK();
  for (int attempt = 0; attempt < kRowReadAttempts; ++attempt) {
    if (attempt > 0) rereads.Increment();
    ORCH_ASSIGN_OR_RETURN(std::string framed, engine_->Get("txn", txn_key));
    if (engine_->recovered_from_legacy_wal() &&
        !db::HasEnvelopeHeader(framed)) {
      // A row written before the framed format existed carries no
      // checksum; there is nothing to verify (and corrupting it would
      // be undetectable by construction, so the site is not applied).
      return framed;
    }
    if (FaultInjector* injector = engine_->fault_injector();
        injector != nullptr) {
      injector->MaybeCorrupt("storage.bit_flip", &framed);
    }
    if (!options_.verify_checksums) {
      // Control arm: whatever the read returned is what the caller
      // gets. The strict check still runs as the sweep's ledger of
      // reads a checksummed deployment would have caught.
      if (!db::UnwrapEnvelope(framed, db::EnvelopePolicy::kRequireFrame)
               .ok()) {
        unverified.Increment();
      }
      auto loose =
          db::UnwrapEnvelope(framed, db::EnvelopePolicy::kTrustUnverified);
      if (loose.ok()) return std::string(*loose);
      return framed;  // structural garbage: hand the caller the rot
    }
    auto body = db::UnwrapEnvelope(framed, db::EnvelopePolicy::kRequireFrame);
    if (body.ok()) return std::string(*body);
    detected.Increment();
    last = body.status();
  }
  return Status::DataLoss("stored transaction row " + txn_key +
                          " failed verification on every read: " +
                          last.message());
}

Result<Transaction> CentralStore::LoadTxn(const TransactionId& id) const {
  ORCH_ASSIGN_OR_RETURN(std::string blob, ReadTxnBlob(TxnKey(id)));
  size_t pos = 0;
  return core::DecodeTransaction(blob, &pos);
}

Result<Transaction> CentralStore::LoadTxnCached(const TransactionId& id) const {
  if (options_.fetch_mode == core::FetchMode::kDelta) {
    if (const Transaction* hit = cache_.Lookup(id)) return *hit;
  }
  ORCH_ASSIGN_OR_RETURN(Transaction txn, LoadTxn(id));
  // Only committed transactions are immutable (a committed id can never
  // be republished); residue of an aborted publish must not be cached.
  if (options_.fetch_mode == core::FetchMode::kDelta &&
      EpochCommitted(EpochKey(txn.epoch))) {
    cache_.Admit(txn);
  }
  return txn;
}

bool CentralStore::HasDecision(ParticipantId peer,
                               const TransactionId& id) const {
  return engine_->Contains("dec:" + std::to_string(peer), TxnKey(id));
}

bool CentralStore::IsApplied(ParticipantId peer,
                             const TransactionId& id) const {
  auto value = engine_->Get("dec:" + std::to_string(peer), TxnKey(id));
  return value.ok() && *value == "A";
}

bool CentralStore::EpochCommitted(const std::string& epoch_key) const {
  auto state = engine_->Get("epochs", epoch_key);
  return state.ok() && *state == "done";
}

bool CentralStore::IsCommittedTxn(const std::string& txn_key) const {
  if (!engine_->Contains("txn", txn_key)) return false;
  auto blob = ReadTxnBlob(txn_key);
  // An unreadable (rotten-everywhere) row is treated as present:
  // refusing the republish is safer than silently overwriting data we
  // cannot interpret.
  if (!blob.ok()) return true;
  // Only the epoch field matters here; decoding the header alone skips
  // the row's updates and antecedents on the publish hot path.
  size_t pos = 0;
  auto header = core::DecodeTransactionHeader(*blob, &pos);
  // An unreadable row is treated as present: refusing the republish is
  // safer than silently overwriting data we cannot interpret.
  if (!header.ok()) return true;
  return EpochCommitted(EpochKey(header->epoch));
}

void CentralStore::AbortPublish(Epoch epoch,
                                const std::vector<StagedRow>& staged) {
  // A sticky fault means the publishing process crashed: its cleanup
  // never runs, and the epoch stays "open" until the reaper gets it. A
  // transient fault leaves a live process whose cleanup writes are not
  // themselves subject to injection.
  FaultInjector* injector = engine_->fault_injector();
  if (injector != nullptr && injector->tripped()) return;
  FaultInjector::ScopedDisable guard(injector);
  for (const StagedRow& row : staged) {
    (void)engine_->Delete(row.table, row.key);
  }
  (void)engine_->Put("epochs", EpochKey(epoch), "aborted");
  (void)engine_->Sync();
}

Result<Epoch> CentralStore::Publish(ParticipantId peer,
                                    std::vector<Transaction> txns) {
  TraceSpan span("central.publish");
  Stopwatch cpu;
  // Allocate the publication epoch (the SQL sequence of §5.2.1). A
  // failure past this point burns the number; gaps in the epoch sequence
  // are harmless because reconcilers scan the epochs *table*.
  ORCH_ASSIGN_OR_RETURN(int64_t epoch, engine_->NextSequence("epoch"));

  // Stage: validate the whole batch and encode every row before anything
  // is written. A duplicate transaction id — within the batch or against
  // a committed epoch — must leave no trace in the store, or a single
  // bad publish would freeze the stable watermark for every peer.
  int64_t bytes = 0;
  const std::string dec_table = "dec:" + std::to_string(peer);
  std::vector<StagedRow> staged;
  staged.reserve(txns.size() * 3);
  TxnIdSet batch_ids;
  for (Transaction& txn : txns) {
    txn.epoch = epoch;
    const std::string key = TxnKey(txn.id);
    if (!batch_ids.insert(txn.id).second || IsCommittedTxn(key)) {
      return Status::AlreadyExists("transaction " + txn.id.ToString() +
                                   " already published");
    }
    std::string encoded;
    core::EncodeTransaction(&encoded, txn);
    // Stored envelope-framed: the checksum written here is what every
    // later read of this row verifies against.
    std::string blob;
    db::WrapEnvelope(&blob, encoded);
    bytes += static_cast<int64_t>(blob.size());
    staged.push_back({"txn", key, std::move(blob)});
    staged.push_back({"epoch_txns", EpochKey(epoch) + ":" + key, ""});
    // The publisher has, by definition, already accepted its own work.
    staged.push_back({dec_table, key, "A"});
  }

  // Commit: open the epoch, land the staged rows, flip to "done", sync.
  // The "done" flip is the commit point — until it lands, no scan can
  // observe any of the staged rows.
  const Status commit = [&]() -> Status {
    ORCH_RETURN_IF_ERROR(engine_->Put("epochs", EpochKey(epoch), "open"));
    for (const StagedRow& row : staged) {
      ORCH_RETURN_IF_ERROR(engine_->Put(row.table, row.key, row.value));
    }
    // The stuck-epoch reaper may have aborted the epoch under a slow
    // publisher; an aborted epoch can never commit (peers have already
    // advanced their watermark past it).
    auto state = engine_->Get("epochs", EpochKey(epoch));
    if (!state.ok() || *state != "open") {
      return Status::Unavailable("epoch " + std::to_string(epoch) +
                                 " was aborted before commit; republish");
    }
    ORCH_RETURN_IF_ERROR(engine_->Put("epochs", EpochKey(epoch), "done"));
    return engine_->Sync();
  }();
  if (!commit.ok()) {
    AbortPublish(epoch, staged);
    return commit;
  }

  if (options_.fetch_mode == core::FetchMode::kDelta) {
    // The batch just committed: its transactions are immutable and the
    // publisher has accepted them durably (the staged "A" rows).
    for (const Transaction& txn : txns) {
      cache_.Admit(txn);
      cache_.MarkApplied(peer, txn.id);
    }
  }

  // One begin-publish round trip, the batch upload, one finish round
  // trip (§5.2.1 records publish start and finish separately).
  network_->Charge(peer, 4, bytes / 4);
  cpu_micros_[peer] += cpu.ElapsedMicros() + options_.procedure_overhead_micros;
  calls_[peer] += 1;
  static Counter& publishes =
      MetricsRegistry::Global().GetCounter("store.central.publishes");
  static Counter& published_txns =
      MetricsRegistry::Global().GetCounter("store.central.published_txns");
  publishes.Increment();
  published_txns.Add(static_cast<int64_t>(txns.size()));
  return epoch;
}

Result<ReconcileFetch> CentralStore::BeginReconciliation(ParticipantId peer) {
  TraceSpan span("central.fetch");
  Stopwatch cpu;
  auto policy_it = policies_.find(peer);
  if (policy_it == policies_.end()) {
    return Status::NotFound("peer " + std::to_string(peer) +
                            " is not registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  const bool delta = options_.fetch_mode == core::FetchMode::kDelta;
  const core::FetchCache::Stats cache_before = cache_.stats();
  int64_t decoded = 0;
  // Integrity counter snapshots for the per-round FetchStats: detected
  // rotten rows, and the re-reads (the central analog of a replica
  // failover probe) that absorbed them.
  static Counter& corrupt_rows = MetricsRegistry::Global().GetCounter(
      "integrity.corrupt_rows_detected");
  static Counter& row_rereads =
      MetricsRegistry::Global().GetCounter("integrity.row_rereads");
  const int64_t corrupt_before = corrupt_rows.value();
  const int64_t rereads_before = row_rereads.value();

  ReconcileFetch fetch;
  ORCH_ASSIGN_OR_RETURN(fetch.recno,
                        engine_->NextSequence("recno:" + std::to_string(peer)));

  // Latest stable epoch: largest epoch not preceded by an *open* one.
  // Aborted epochs are empty (their rows are filtered below), so the
  // watermark passes straight over them. An epoch observed open by
  // `stuck_epoch_reap_threshold` scans belongs to a crashed publisher:
  // reap it to "aborted" rather than blocking every peer forever.
  //
  // Under kDelta the scan starts past the stable floor — the largest
  // epoch with everything at or below it terminal. Epoch numbers are
  // allocated monotonically, so no row can ever appear at or below the
  // floor again and skipping that prefix cannot change the result.
  ORCH_ASSIGN_OR_RETURN(std::string last_epoch_key,
                        engine_->Get("peers", std::to_string(peer)));
  Epoch stable = delta ? floor_stable_ : 0;
  Epoch floor = delta ? stable_floor_ : 0;
  const std::string scan_from = delta ? EpochKey(stable_floor_ + 1) : "";
  for (const auto& [key, state] : engine_->ScanRange("epochs", scan_from, "")) {
    const Epoch e = std::strtoll(key.c_str(), nullptr, 10);
    if (state == "done") {
      stable = e;
      floor = e;
      continue;
    }
    if (state == "aborted") {
      floor = e;
      continue;
    }
    const int strikes = ++epoch_strikes_[e];
    if (strikes >= options_.stuck_epoch_reap_threshold &&
        engine_->Put("epochs", key, "aborted").ok()) {
      epoch_strikes_.erase(e);
      floor = e;
      continue;
    }
    break;  // still open: the stable window ends just before it
  }
  fetch.epoch = stable;
  if (delta && floor > stable_floor_) {
    stable_floor_ = floor;
    floor_stable_ = stable;
  }
  // kFull ignores the watermark and re-scans the whole history; the
  // participant's catch-up path absorbs the resent material.
  const Epoch prev =
      options_.fetch_mode == core::FetchMode::kFull
          ? 0
          : std::strtoll(last_epoch_key.c_str(), nullptr, 10);

  // Relevant transactions: everything published in (prev, stable] whose
  // epoch committed. Rows under open/aborted epochs in the window are
  // residue of unfinished publishes and must stay invisible. Under
  // kDelta each transaction is decoded at most once across all peers
  // and rounds: an arena hit skips the engine read and the decode.
  std::unordered_map<std::string, bool> committed_cache;
  auto epoch_committed = [&](const std::string& epoch_key) {
    auto it = committed_cache.find(epoch_key);
    if (it == committed_cache.end()) {
      it = committed_cache.emplace(epoch_key, EpochCommitted(epoch_key)).first;
    }
    return it->second;
  };
  std::vector<Transaction> relevant;
  for (const auto& [key, unused] :
       engine_->ScanRange("epoch_txns", EpochKey(prev + 1),
                          EpochKey(stable + 1))) {
    (void)unused;
    const size_t sep = key.find(':');
    if (!epoch_committed(key.substr(0, sep))) continue;
    const std::string txn_key = key.substr(sep + 1);
    if (delta) {
      if (const Transaction* hit = cache_.Lookup(ParseTxnKey(txn_key))) {
        relevant.push_back(*hit);
        continue;
      }
    }
    ORCH_ASSIGN_OR_RETURN(std::string blob, ReadTxnBlob(txn_key));
    size_t pos = 0;
    ORCH_ASSIGN_OR_RETURN(Transaction txn, core::DecodeTransaction(blob, &pos));
    ++decoded;
    // The window filter above established the epoch committed, so the
    // decoded transaction is immutable and admissible.
    if (delta) cache_.Admit(txn);
    relevant.push_back(std::move(txn));
  }

  // Trust predicates are evaluated inside the store so that only fully
  // trusted transactions and their antecedent closures are shipped. A
  // known-applied hit suppresses the decision lookup whose answer must
  // be "already decided" — the applied overlay only ever holds durably
  // recorded accepts, so the filter outcome is unchanged.
  TxnIdSet shipped;
  std::deque<TransactionId> pending;
  for (const Transaction& txn : relevant) {
    if (delta && cache_.KnownApplied(peer, txn.id)) continue;
    if (HasDecision(peer, txn.id)) continue;  // own or already decided
    const int priority = policy.PriorityOfTransaction(txn);
    if (priority <= 0) continue;
    fetch.trusted.emplace_back(txn.id, priority);
    if (shipped.insert(txn.id).second) {
      fetch.transactions.push_back(txn);
      for (const TransactionId& ante : txn.antecedents) {
        pending.push_back(ante);
      }
    }
  }
  // Antecedent closure, stopping at transactions the peer has already
  // applied (their effects are in the peer's instance).
  while (!pending.empty()) {
    const TransactionId id = pending.front();
    pending.pop_front();
    if (shipped.count(id) != 0) continue;
    if (delta && cache_.KnownApplied(peer, id)) continue;
    if (IsApplied(peer, id)) continue;
    ORCH_ASSIGN_OR_RETURN(Transaction txn, LoadTxnCached(id));
    shipped.insert(id);
    for (const TransactionId& ante : txn.antecedents) pending.push_back(ante);
    fetch.transactions.push_back(std::move(txn));
  }
  if (delta) {
    const core::FetchCache::Stats& after = cache_.stats();
    fetch.stats.cache_hits = after.hits - cache_before.hits;
    fetch.stats.decoded = after.misses - cache_before.misses;
    fetch.stats.suppressed_lookups = after.suppressed - cache_before.suppressed;
  } else {
    fetch.stats.decoded = decoded;
  }

  // Record the reconciliation and advance the peer's epoch watermark
  // only now that the fetch is assembled: a failure anywhere above must
  // not move the watermark, or the window (prev, stable] would be lost.
  ORCH_RETURN_IF_ERROR(engine_->Put("recons:" + std::to_string(peer),
                                    EpochKey(fetch.recno), EpochKey(stable)));
  ORCH_RETURN_IF_ERROR(
      engine_->Put("peers", std::to_string(peer), EpochKey(stable)));

  int64_t bytes = 0;
  for (const Transaction& txn : fetch.transactions) {
    bytes += static_cast<int64_t>(core::EncodedTransactionSize(txn));
  }
  fetch.stats.corrupt_reads = corrupt_rows.value() - corrupt_before;
  fetch.stats.failover_probes = row_rereads.value() - rereads_before;
  // Begin-reconciliation round trip plus the bulk reply.
  network_->Charge(peer, 2, bytes / 2);
  cpu_micros_[peer] += cpu.ElapsedMicros() + options_.procedure_overhead_micros;
  calls_[peer] += 1;
  // Registry mirror of FetchStats, accumulated store-side so registry
  // consumers need not sum per-round reports.
  static Counter& fetches =
      MetricsRegistry::Global().GetCounter("store.central.fetches");
  static Counter& shipped_txns =
      MetricsRegistry::Global().GetCounter("store.central.shipped_txns");
  static Counter& decoded_ctr =
      MetricsRegistry::Global().GetCounter("store.central.decoded_txns");
  static Counter& cache_hits =
      MetricsRegistry::Global().GetCounter("store.central.cache_hits");
  static Counter& suppressed = MetricsRegistry::Global().GetCounter(
      "store.central.suppressed_lookups");
  fetches.Increment();
  shipped_txns.Add(static_cast<int64_t>(fetch.transactions.size()));
  decoded_ctr.Add(fetch.stats.decoded);
  cache_hits.Add(fetch.stats.cache_hits);
  suppressed.Add(fetch.stats.suppressed_lookups);
  return fetch;
}

Status CentralStore::RecordDecisions(
    ParticipantId peer, int64_t recno,
    const std::vector<TransactionId>& applied,
    const std::vector<TransactionId>& rejected) {
  TraceSpan span("central.record_decisions");
  static Counter& records =
      MetricsRegistry::Global().GetCounter("store.central.record_decisions");
  static Counter& decisions =
      MetricsRegistry::Global().GetCounter("store.central.decisions");
  records.Increment();
  decisions.Add(static_cast<int64_t>(applied.size() + rejected.size()));
  Stopwatch cpu;
  const std::string dec_table = "dec:" + std::to_string(peer);
  const std::string log_table = "declog:" + std::to_string(peer);
  for (const TransactionId& id : applied) {
    ORCH_RETURN_IF_ERROR(engine_->Put(dec_table, TxnKey(id), "A"));
    ORCH_RETURN_IF_ERROR(
        engine_->Put(log_table, EpochKey(recno) + ":" + TxnKey(id), "A"));
  }
  for (const TransactionId& id : rejected) {
    ORCH_RETURN_IF_ERROR(engine_->Put(dec_table, TxnKey(id), "R"));
    ORCH_RETURN_IF_ERROR(
        engine_->Put(log_table, EpochKey(recno) + ":" + TxnKey(id), "R"));
  }
  // Written last: this marker is the witness that reconciliation `recno`
  // recorded all of its decisions. Recovery compares it against the
  // recno sequence to detect an interrupted reconciliation, and against
  // the decision count appended here to detect declog rows lost to a
  // corrupt WAL region (replay skips the bad region; without the count
  // the marker would vouch for decisions that no longer exist).
  ORCH_RETURN_IF_ERROR(engine_->Put(
      "decmeta:" + std::to_string(peer), "last_recno",
      EpochKey(recno) + ":" +
          std::to_string(applied.size() + rejected.size())));
  ORCH_RETURN_IF_ERROR(engine_->Sync());
  if (options_.fetch_mode == core::FetchMode::kDelta) {
    // Only now — past the sync — are the accepts durable enough for the
    // suppression overlay. A failure above leaves the overlay untouched
    // and the next fetch falls back to the engine's decision rows.
    for (const TransactionId& id : applied) cache_.MarkApplied(peer, id);
  }
  const int64_t bytes =
      static_cast<int64_t>((applied.size() + rejected.size()) * 16);
  network_->Charge(peer, 2, bytes / 2);
  cpu_micros_[peer] += cpu.ElapsedMicros() + options_.procedure_overhead_micros;
  calls_[peer] += 1;
  return Status::OK();
}

Status CentralStore::RecordProvenance(
    ParticipantId peer, int64_t recno,
    const std::vector<ProvenanceRecord>& records) {
  if (records.empty()) return Status::OK();
  TraceSpan span("central.record_provenance");
  static Counter& stored =
      MetricsRegistry::Global().GetCounter("store.central.provenance_records");
  static Counter& drops =
      MetricsRegistry::Global().GetCounter("store.central.provenance_drops");
  Stopwatch cpu;
  // Provenance is advisory (see UpdateStore::RecordProvenance): rows that
  // fail to land are counted and dropped, never surfaced as a failed
  // reconciliation. The rows ride the RecordDecisions batch — no extra
  // sync or network charge — so a crash can lose the explanation while
  // keeping the decision, which is the intended asymmetry.
  const std::string prov_table = "prov:" + std::to_string(peer);
  char idx[24];
  for (size_t i = 0; i < records.size(); ++i) {
    std::snprintf(idx, sizeof(idx), "%06zu", i);
    std::string blob;
    db::WrapEnvelope(&blob, records[i].ToJson());
    Status put =
        engine_->Put(prov_table, EpochKey(recno) + ":" + idx, blob);
    if (!put.ok()) {
      drops.Add(static_cast<int64_t>(records.size() - i));
      break;
    }
    stored.Increment();
  }
  cpu_micros_[peer] += cpu.ElapsedMicros();
  return Status::OK();
}

Result<core::RecoveryBundle> CentralStore::FetchRecoveryState(
    ParticipantId peer) const {
  Stopwatch cpu;
  auto policy_it = policies_.find(peer);
  if (policy_it == policies_.end()) {
    return Status::NotFound("peer " + std::to_string(peer) +
                            " is not registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  core::RecoveryBundle bundle;
  bundle.recno = engine_->CurrentSequence("recno:" + std::to_string(peer));
  ORCH_ASSIGN_OR_RETURN(std::string watermark,
                        engine_->Get("peers", std::to_string(peer)));
  bundle.epoch = std::strtoll(watermark.c_str(), nullptr, 10);
  // Last reconciliation whose decisions were recorded in full. A value
  // below bundle.recno means the peer crashed between fetching a
  // reconciliation and recording its outcome.
  auto last_recno = engine_->Get("decmeta:" + std::to_string(peer),
                                 "last_recno");
  // The marker is "recno" (legacy) or "recno:count"; strtoll stops at
  // the ':' either way.
  bundle.last_decided_recno =
      last_recno.ok() ? std::strtoll(last_recno->c_str(), nullptr, 10) : 0;
  if (last_recno.ok() && bundle.last_decided_recno > 0) {
    const size_t sep = last_recno->find(':');
    if (sep != std::string::npos) {
      // Cross-check the marker's decision count against the declog rows
      // that actually survived. Replay of a corrupt WAL region can drop
      // decision Puts while the marker (written later, in an intact
      // record) survives — silently resuming from such a marker would
      // re-run reconciliation `last_decided_recno` as if it were
      // decided. Surface the shortfall as typed data loss instead.
      const int64_t expected =
          std::strtoll(last_recno->c_str() + sep + 1, nullptr, 10);
      const int64_t found = static_cast<int64_t>(
          engine_->ScanPrefix("declog:" + std::to_string(peer),
                              EpochKey(bundle.last_decided_recno) + ":")
              .size());
      if (found < expected) {
        return Status::DataLoss(
            "decision log for peer " + std::to_string(peer) +
            " reconciliation " + std::to_string(bundle.last_decided_recno) +
            " lost " + std::to_string(expected - found) + " of " +
            std::to_string(expected) +
            " recorded decisions (corrupt WAL region dropped on replay)");
      }
    }
  }

  // Recorded decisions. Rejected rows need only the id, which the key
  // itself encodes; applied rows load through the arena.
  int64_t bytes = 0;
  for (const auto& [txn_key, decision] :
       engine_->ScanRange("dec:" + std::to_string(peer), "", "")) {
    const TransactionId id = ParseTxnKey(txn_key);
    if (decision == "A") {
      ORCH_ASSIGN_OR_RETURN(Transaction txn, LoadTxnCached(id));
      bytes += static_cast<int64_t>(core::EncodedTransactionSize(txn));
      bundle.applied.push_back(std::move(txn));
    } else {
      bundle.rejected.push_back(id);
      bytes += 16;
    }
  }
  std::sort(bundle.applied.begin(), bundle.applied.end(),
            [](const Transaction& a, const Transaction& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.id < b.id;
            });
  if (options_.fetch_mode == core::FetchMode::kDelta) {
    // The scan above is the authoritative applied set; replace the
    // conservative overlay with it so the recovered peer's first fetch
    // suppresses everything it durably applied.
    TxnIdSet applied_ids;
    for (const Transaction& txn : bundle.applied) applied_ids.insert(txn.id);
    cache_.ResetApplied(peer, std::move(applied_ids));
  }

  // Undecided trusted transactions within the watermark: the deferred
  // backlog, plus the antecedent closures needed to re-reconcile them.
  TxnIdSet shipped;
  std::deque<TransactionId> pending;
  for (const auto& [key, unused] :
       engine_->ScanRange("epoch_txns", EpochKey(1),
                          EpochKey(bundle.epoch + 1))) {
    (void)unused;
    const size_t sep = key.find(':');
    if (!EpochCommitted(key.substr(0, sep))) continue;
    const std::string txn_key = key.substr(sep + 1);
    ORCH_ASSIGN_OR_RETURN(std::string blob, ReadTxnBlob(txn_key));
    size_t pos = 0;
    ORCH_ASSIGN_OR_RETURN(Transaction txn, core::DecodeTransaction(blob, &pos));
    if (HasDecision(peer, txn.id)) continue;
    const int priority = policy.PriorityOfTransaction(txn);
    if (priority <= 0) continue;
    bundle.undecided.emplace_back(txn.id, priority);
    if (shipped.insert(txn.id).second) {
      bytes += static_cast<int64_t>(blob.size());
      for (const TransactionId& ante : txn.antecedents) pending.push_back(ante);
      bundle.closure.push_back(std::move(txn));
    }
  }
  while (!pending.empty()) {
    const TransactionId id = pending.front();
    pending.pop_front();
    if (shipped.count(id) != 0) continue;
    if (IsApplied(peer, id)) continue;
    ORCH_ASSIGN_OR_RETURN(Transaction txn, LoadTxn(id));
    shipped.insert(id);
    bytes += static_cast<int64_t>(core::EncodedTransactionSize(txn));
    for (const TransactionId& ante : txn.antecedents) pending.push_back(ante);
    bundle.closure.push_back(std::move(txn));
  }

  network_->Charge(peer, 2, bytes / 2);
  cpu_micros_[peer] += cpu.ElapsedMicros() + options_.procedure_overhead_micros;
  calls_[peer] += 1;
  return bundle;
}

Result<core::NetworkCentricFetch> CentralStore::BeginNetworkCentricReconciliation(
    ParticipantId peer) {
  if (catalog_ == nullptr) {
    return Status::NotSupported(
        "central store was built without a catalog; network-centric "
        "reconciliation needs the shared schema");
  }
  core::NetworkCentricFetch fetch;
  ORCH_ASSIGN_OR_RETURN(fetch.base, BeginReconciliation(peer));

  // Server-side analysis: one more stored procedure's worth of work.
  Stopwatch cpu;
  core::TransactionMap bundle;
  for (const Transaction& txn : fetch.base.transactions) bundle.Put(txn);
  for (const auto& [txn_id, priority] : fetch.base.trusted) {
    core::TrustedTxn t;
    t.id = txn_id;
    t.priority = priority;
    t.extension = core::ComputeExtensionFromBundle(bundle, txn_id);
    fetch.trusted_txns.push_back(std::move(t));
  }
  fetch.analysis =
      core::AnalyzeExtensions(*catalog_, bundle, fetch.trusted_txns);

  // The analysis rides in the reply: flattened updates plus one fixed
  // record per conflicting pair.
  int64_t bytes = 0;
  for (const auto& up_ex : fetch.analysis.up_ex) {
    for (const core::Update& u : up_ex) {
      std::string buf;
      core::EncodeUpdate(&buf, u);
      bytes += static_cast<int64_t>(buf.size());
    }
  }
  bytes += static_cast<int64_t>(fetch.analysis.conflicts.size()) * 48;
  network_->Charge(peer, 1, bytes);
  cpu_micros_[peer] += cpu.ElapsedMicros() + options_.procedure_overhead_micros;
  calls_[peer] += 1;
  return fetch;
}

Result<core::RecoveryBundle> CentralStore::Bootstrap(
    ParticipantId new_peer, ParticipantId source_peer) {
  Stopwatch cpu;
  auto policy_it = policies_.find(new_peer);
  if (policy_it == policies_.end()) {
    return Status::NotFound("peer " + std::to_string(new_peer) +
                            " is not registered");
  }
  if (policies_.count(source_peer) == 0) {
    return Status::NotFound("source peer " + std::to_string(source_peer) +
                            " is not registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;

  core::RecoveryBundle bundle;
  ORCH_ASSIGN_OR_RETURN(std::string watermark,
                        engine_->Get("peers", std::to_string(source_peer)));
  bundle.epoch = std::strtoll(watermark.c_str(), nullptr, 10);
  bundle.recno =
      engine_->CurrentSequence("recno:" + std::to_string(new_peer));

  // Adopt the source's applied set as the new peer's own decisions.
  const std::string source_dec = "dec:" + std::to_string(source_peer);
  const std::string new_dec = "dec:" + std::to_string(new_peer);
  int64_t bytes = 0;
  for (const auto& [txn_key, decision] :
       engine_->ScanRange(source_dec, "", "")) {
    if (decision != "A") continue;
    ORCH_ASSIGN_OR_RETURN(Transaction txn, LoadTxnCached(ParseTxnKey(txn_key)));
    ORCH_RETURN_IF_ERROR(engine_->Put(new_dec, txn_key, "A"));
    bytes += static_cast<int64_t>(core::EncodedTransactionSize(txn));
    bundle.applied.push_back(std::move(txn));
  }
  std::sort(bundle.applied.begin(), bundle.applied.end(),
            [](const Transaction& a, const Transaction& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.id < b.id;
            });
  // Advance the watermark so the adopted window is not re-fetched.
  ORCH_RETURN_IF_ERROR(engine_->Put("peers", std::to_string(new_peer),
                                    EpochKey(bundle.epoch)));

  // Transactions in the adopted window the source did not apply and the
  // new peer's own policy trusts: handed over as the undecided backlog,
  // with antecedent closures.
  TxnIdSet shipped;
  std::deque<TransactionId> pending;
  for (const auto& [key, unused] :
       engine_->ScanRange("epoch_txns", EpochKey(1),
                          EpochKey(bundle.epoch + 1))) {
    (void)unused;
    const size_t sep = key.find(':');
    if (!EpochCommitted(key.substr(0, sep))) continue;
    const std::string txn_key = key.substr(sep + 1);
    ORCH_ASSIGN_OR_RETURN(std::string blob, ReadTxnBlob(txn_key));
    size_t pos = 0;
    ORCH_ASSIGN_OR_RETURN(Transaction txn, core::DecodeTransaction(blob, &pos));
    if (HasDecision(new_peer, txn.id)) continue;  // adopted above
    const int priority = policy.PriorityOfTransaction(txn);
    if (priority <= 0) continue;
    bundle.undecided.emplace_back(txn.id, priority);
    if (shipped.insert(txn.id).second) {
      bytes += static_cast<int64_t>(blob.size());
      for (const TransactionId& ante : txn.antecedents) pending.push_back(ante);
      bundle.closure.push_back(std::move(txn));
    }
  }
  while (!pending.empty()) {
    const TransactionId id = pending.front();
    pending.pop_front();
    if (shipped.count(id) != 0) continue;
    if (IsApplied(new_peer, id)) continue;
    ORCH_ASSIGN_OR_RETURN(Transaction txn, LoadTxn(id));
    shipped.insert(id);
    bytes += static_cast<int64_t>(core::EncodedTransactionSize(txn));
    for (const TransactionId& ante : txn.antecedents) pending.push_back(ante);
    bundle.closure.push_back(std::move(txn));
  }
  ORCH_RETURN_IF_ERROR(engine_->Sync());
  if (options_.fetch_mode == core::FetchMode::kDelta) {
    // The adopted accepts just synced under the new peer's own name.
    for (const Transaction& txn : bundle.applied) {
      cache_.MarkApplied(new_peer, txn.id);
    }
  }

  network_->Charge(new_peer, 2, bytes / 2);
  cpu_micros_[new_peer] +=
      cpu.ElapsedMicros() + options_.procedure_overhead_micros;
  calls_[new_peer] += 1;
  return bundle;
}

core::StoreStats CentralStore::StatsFor(ParticipantId peer) const {



  const net::NetStats net = network_->StatsFor(peer);
  core::StoreStats stats;
  stats.sim_network_micros = net.micros;
  stats.messages = net.messages;
  stats.bytes = net.bytes;
  auto cpu_it = cpu_micros_.find(peer);
  stats.store_cpu_micros = cpu_it == cpu_micros_.end() ? 0 : cpu_it->second;
  auto call_it = calls_.find(peer);
  stats.calls = call_it == calls_.end() ? 0 : call_it->second;
  return stats;
}

size_t CentralStore::TransactionCount() const {
  return engine_->TableSize("txn");
}

}  // namespace orchestra::store
