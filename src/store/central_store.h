#ifndef ORCHESTRA_STORE_CENTRAL_STORE_H_
#define ORCHESTRA_STORE_CENTRAL_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fetch_cache.h"
#include "core/update_store.h"
#include "net/sim_network.h"
#include "storage/engine.h"

namespace orchestra::store {

/// The centralized update store of §5.2.1: a single server backed by a
/// relational storage engine (our embedded StorageEngine standing in for
/// the paper's commercial RDBMS). An epoch sequence timestamps each
/// published batch; publishing is decoupled from reconciliation, and a
/// reconciling peer uses the latest epoch not preceded by an unfinished
/// epoch. Trust predicates are applied store-side so only relevant
/// transactions and their antecedent closures travel over the network.
///
/// Engine layout (all keys are order-preserving encodings):
///   txn        txn-key -> encoded Transaction
///   epochs     epoch   -> "open"/"done"/"aborted"
///   epoch_txns epoch:txn-key -> ""
///   dec:<p>    txn-key -> "A" | "R"     (peer p's recorded decisions)
///   declog:<p> recno:txn-key -> "A"|"R" (decisions keyed by recno, §5.2.1)
///   decmeta:<p> "last_recno" -> recno   (last *fully* recorded recno)
///   recons:<p> recno -> epoch           (peer p's reconciliation log)
///   peers      peer -> last reconciliation epoch
/// Sequences: "epoch", "recno:<p>".
///
/// Publishing is stage-then-commit: the whole batch is validated and
/// encoded before any row is written, rows land while the epoch is
/// "open", and the epoch flips to "done" (the commit point) only after
/// every row and the WAL sync succeeded. Any failure aborts the epoch;
/// rows under non-"done" epochs are invisible to every scan, and an
/// epoch stuck "open" (publisher crashed mid-rollback) is reaped to
/// "aborted" after `stuck_epoch_reap_threshold` observations so it
/// cannot freeze the stable watermark.
/// Cost model for the parts of the paper's RDBMS server that our
/// embedded engine does not reproduce (SQL parse/plan, lock manager,
/// group commit, ODBC marshalling). Charged as simulated store-side CPU
/// per stored-procedure invocation, so that the *shape* of the central
/// store's cost — a fixed per-reconciliation overhead that dominates at
/// small reconciliation intervals (Fig. 10) — matches the paper's setup.
struct CentralStoreOptions {
  int64_t procedure_overhead_micros = 25000;
  /// Stuck-epoch reaping: an epoch still "open" after this many
  /// reconciliation scans have observed it is marked "aborted" so it
  /// stops blocking the stable watermark (a crashed publisher must not
  /// freeze every peer forever). Committed ("done") epochs are never
  /// touched; an aborted epoch can never commit.
  int stuck_epoch_reap_threshold = 3;
  /// How reconciliation fetches are assembled; kDelta adds the decoded-
  /// transaction arena, applied-set lookup suppression, and the
  /// monotone stable-floor scan bound. Decisions are identical across
  /// modes (see core::FetchMode).
  core::FetchMode fetch_mode = core::FetchMode::kDelta;
  /// Verify the envelope checksum on every stored transaction row read
  /// (detected rot is re-read; the storage.bit_flip site draws fresh
  /// randomness per read, so a re-read models fetching the page from
  /// the RDBMS's redundant storage). False is the corruption sweep's
  /// control arm: rot flows to the caller undetected.
  bool verify_checksums = true;
};

class CentralStore : public core::UpdateStore,
                     public core::NetworkCentricStore {
 public:
  /// `engine` provides durability (or not); `network` models the
  /// client-server link. Both must outlive the store.
  /// `catalog` enables network-centric reconciliation (the server must
  /// know the shared schema Σ to flatten and compare updates); pass
  /// nullptr to run client-centric only.
  CentralStore(storage::StorageEngine* engine, net::SimNetwork* network,
               CentralStoreOptions options = {},
               const db::Catalog* catalog = nullptr);

  Status RegisterParticipant(core::ParticipantId peer,
                             const core::TrustPolicy* policy) override;
  Result<core::Epoch> Publish(core::ParticipantId peer,
                              std::vector<core::Transaction> txns) override;
  Result<core::ReconcileFetch> BeginReconciliation(
      core::ParticipantId peer) override;
  Status RecordDecisions(
      core::ParticipantId peer, int64_t recno,
      const std::vector<core::TransactionId>& applied,
      const std::vector<core::TransactionId>& rejected) override;
  Status RecordProvenance(
      core::ParticipantId peer, int64_t recno,
      const std::vector<core::ProvenanceRecord>& records) override;
  Result<core::RecoveryBundle> FetchRecoveryState(
      core::ParticipantId peer) const override;
  Result<core::NetworkCentricFetch> BeginNetworkCentricReconciliation(
      core::ParticipantId peer) override;
  Result<core::RecoveryBundle> Bootstrap(
      core::ParticipantId new_peer, core::ParticipantId source_peer) override;
  core::StoreStats StatsFor(core::ParticipantId peer) const override;
  std::string_view name() const override { return "central"; }

  /// Total published transactions (all peers); used by tests.
  size_t TransactionCount() const;

 private:
  /// One buffered write of a staged (not yet committed) publish.
  struct StagedRow {
    std::string table;
    std::string key;
    std::string value;
  };

  /// Order-preserving key for a transaction.
  static std::string TxnKey(const core::TransactionId& id);
  static std::string EpochKey(core::Epoch epoch);
  /// Inverse of TxnKey (the key format is fixed-width decimal).
  static core::TransactionId ParseTxnKey(const std::string& key);

  /// Reads and verifies the stored envelope-framed blob for `txn_key`,
  /// returning the payload (the encoded Transaction). At-rest corruption
  /// (storage.bit_flip) is applied to the read copy; a detected checksum
  /// failure re-reads up to kRowReadAttempts times before reporting
  /// kDataLoss. Legacy unframed rows (engine recovered from a
  /// pre-checksum WAL) pass through unverified — they carry no checksum.
  Result<std::string> ReadTxnBlob(const std::string& txn_key) const;

  Result<core::Transaction> LoadTxn(const core::TransactionId& id) const;
  /// LoadTxn via the decoded-transaction arena (kDelta): an arena hit
  /// skips both the engine read and the decode; a miss decodes and
  /// admits the transaction when its epoch committed. Under
  /// kFull/kWindowed this is exactly LoadTxn.
  Result<core::Transaction> LoadTxnCached(const core::TransactionId& id) const;
  bool HasDecision(core::ParticipantId peer,
                   const core::TransactionId& id) const;
  bool IsApplied(core::ParticipantId peer, const core::TransactionId& id) const;

  /// True when `epoch_key`'s epoch committed ("done"). Rows under open or
  /// aborted epochs are residue of unfinished publishes and invisible to
  /// every scan.
  bool EpochCommitted(const std::string& epoch_key) const;
  /// True when the transaction exists under a *committed* epoch. A row
  /// left behind by an aborted publish does not count: the publisher
  /// must be able to republish it.
  bool IsCommittedTxn(const std::string& txn_key) const;
  /// Best-effort rollback of a failed publish: deletes the staged rows
  /// and marks the epoch "aborted". Failures are swallowed — a stale
  /// "open" epoch is eventually reaped, and scans filter its rows.
  void AbortPublish(core::Epoch epoch, const std::vector<StagedRow>& staged);

  storage::StorageEngine* engine_;
  net::SimNetwork* network_;
  CentralStoreOptions options_;
  const db::Catalog* catalog_;
  std::unordered_map<core::ParticipantId, const core::TrustPolicy*> policies_;
  /// Soft state: open-epoch observation counts driving the reaper.
  std::unordered_map<core::Epoch, int> epoch_strikes_;
  /// Soft state for kDelta: the shared decoded-transaction arena and
  /// per-peer applied overlays. Mutable because recovery reads
  /// (FetchRecoveryState) refresh it.
  mutable core::FetchCache cache_;
  /// Largest epoch with every epoch at or below it terminal (done or
  /// aborted). Epoch numbers are allocated monotonically, so rows never
  /// appear at or below the floor again and the stable-epoch scan can
  /// start past it (kDelta only).
  core::Epoch stable_floor_ = 0;
  /// Largest committed ("done") epoch at or below stable_floor_ — the
  /// scan's starting value for the stable watermark.
  core::Epoch floor_stable_ = 0;
  mutable std::unordered_map<core::ParticipantId, int64_t> cpu_micros_;
  mutable std::unordered_map<core::ParticipantId, int64_t> calls_;
};

}  // namespace orchestra::store

#endif  // ORCHESTRA_STORE_CENTRAL_STORE_H_
