#include "store/dht_store.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/check.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/extension.h"
#include "db/serde.h"

namespace orchestra::store {

using core::Epoch;
using core::ParticipantId;
using core::ReconcileFetch;
using core::Transaction;
using core::TransactionId;
using core::TxnIdSet;

DhtStore::DhtStore(size_t nodes, net::SimNetwork* network,
                   const db::Catalog* catalog, DhtStoreOptions options)
    : ring_(nodes), network_(network), catalog_(catalog), options_(options),
      nodes_(nodes) {
  ORCH_CHECK(network != nullptr);
  ORCH_CHECK_GT(options_.replication_factor, 0u);
}

size_t DhtStore::NodeOfPeer(ParticipantId peer) const {
  const size_t slot = static_cast<size_t>(peer) % ring_.size();
  if (ring_.IsLive(slot)) return slot;
  // The peer's home node churned away; its client re-attaches to the
  // slot's live successor on the ring.
  return ring_.OwnerOf(ring_.IdOf(slot) + 1);
}

size_t DhtStore::RoutedSend(ParticipantId peer, size_t from_node,
                            net::NodeId key, int64_t bytes) {
  const net::RouteResult route = ring_.Route(from_node, key);
  // A probe into a crashed node is a timed-out message the initiator
  // paid for before detouring via the successor list.
  if (route.failed_probes > 0) network_->Charge(peer, route.failed_probes, 8);
  if (route.hops > 0) network_->Charge(peer, route.hops, bytes);
  return route.owner;
}

void DhtStore::DirectSend(ParticipantId peer, int64_t bytes) {
  network_->Charge(peer, 1, bytes);
}

void DhtStore::ReplicatedSend(ParticipantId peer, size_t from_node,
                              const std::string& key, int64_t bytes) {
  RoutedSend(peer, from_node, net::KeyHash(key), bytes);
  const size_t fanout = GroupFor(key).size() - 1;
  if (fanout > 0) network_->Charge(peer, static_cast<int64_t>(fanout), bytes);
}

namespace {
// A DHT protocol operation is made of many messages, so per-message
// loss must be absorbed per message — retransmitting, and paying for
// the retransmission — the way a reliable transport would. Otherwise
// an operation with N messages fails with probability ~1-(1-p)^N and
// no operation-level retry budget can keep up. Sticky faults (crashed
// links/nodes) exhaust the budget and surface to the caller.
constexpr int kMaxTransmits = 5;

/// Registry counter for link-level retransmissions: attempts beyond a
/// send's first, successful or not.
Counter& RetransmitCounter() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("net.retransmits");
  return counter;
}
}  // namespace

Result<size_t> DhtStore::TryRoutedSend(ParticipantId peer, size_t from_node,
                                       net::NodeId key, int64_t bytes) {
  const net::RouteResult route = ring_.Route(from_node, key);
  if (route.failed_probes > 0) network_->Charge(peer, route.failed_probes, 8);
  if (route.hops > 0) {
    Status sent;
    for (int attempt = 0; attempt < kMaxTransmits; ++attempt) {
      if (attempt > 0) RetransmitCounter().Increment();
      sent = network_->TryCharge(peer, route.hops, bytes);
      if (sent.ok()) break;
    }
    ORCH_RETURN_IF_ERROR(sent);
  }
  return route.owner;
}

Status DhtStore::TryDirectSend(ParticipantId peer, int64_t bytes) {
  Status sent;
  for (int attempt = 0; attempt < kMaxTransmits; ++attempt) {
    if (attempt > 0) RetransmitCounter().Increment();
    sent = network_->TryCharge(peer, 1, bytes);
    if (sent.ok()) break;
  }
  return sent;
}

Status DhtStore::TryReplicatedSend(ParticipantId peer, size_t from_node,
                                   const std::string& key, int64_t bytes) {
  ORCH_RETURN_IF_ERROR(
      TryRoutedSend(peer, from_node, net::KeyHash(key), bytes).status());
  const size_t fanout = GroupFor(key).size() - 1;
  for (size_t i = 0; i < fanout; ++i) {
    ORCH_RETURN_IF_ERROR(TryDirectSend(peer, bytes));
  }
  return Status::OK();
}

namespace {
/// Envelope-framed encoding of `txn` — the DHT's stored and wire form.
std::string WireOf(const Transaction& txn) {
  std::string encoded;
  core::EncodeTransaction(&encoded, txn);
  std::string wire;
  db::WrapEnvelope(&wire, encoded);
  return wire;
}

/// Strict verify-and-decode of a stored or delivered wire blob.
Result<Transaction> DecodeWire(std::string_view wire) {
  ORCH_ASSIGN_OR_RETURN(
      std::string_view body,
      db::UnwrapEnvelope(wire, db::EnvelopePolicy::kRequireFrame));
  size_t pos = 0;
  return core::DecodeTransaction(body, &pos);
}

Counter& CorruptReplicaReads() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "integrity.corrupt_replica_reads");
  return c;
}
Counter& ReadRepairs() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("integrity.read_repairs");
  return c;
}
Counter& UnverifiedCorruptReads() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "integrity.unverified_corrupt_reads");
  return c;
}
}  // namespace

void DhtStore::InstallTxnReplica(NodeState& node, const Transaction& txn,
                                 const std::string& wire) const {
  std::string stored = wire;
  if (FaultInjector* injector = network_->fault_injector();
      injector != nullptr) {
    // Each replica's copy rots (or not) independently — that is what
    // makes failover and read-repair meaningful.
    injector->MaybeCorrupt("storage.bit_flip", &stored);
  }
  node.txns.insert_or_assign(txn.id, txn);
  node.txn_wire.insert_or_assign(txn.id, std::move(stored));
}

std::vector<size_t> DhtStore::ReadOrderFor(const std::string& key) const {
  std::vector<size_t> group = GroupFor(key);
  std::stable_partition(group.begin(), group.end(),
                        [&](size_t node) { return !Quarantined(node); });
  return group;
}

void DhtStore::ScoreCorruptServe(size_t node) const {
  const bool was = Quarantined(node);
  corrupt_serves_[node] += 1;
  if (!was && Quarantined(node)) {
    static Counter& quarantined =
        MetricsRegistry::Global().GetCounter("integrity.quarantined_nodes");
    quarantined.Increment();
  }
}

Result<DhtStore::TxnRead> DhtStore::ReadTxnVerified(
    ParticipantId peer, const TransactionId& id) const {
  static Counter& failover_probes =
      MetricsRegistry::Global().GetCounter("store.dht.failover_probes");
  const std::string key = "txn:" + id.ToString();
  std::vector<size_t> corrupt_nodes;
  for (size_t node : ReadOrderFor(key)) {
    const NodeState& n = nodes_[node];
    auto wire_it = n.txn_wire.find(id);
    if (wire_it == n.txn_wire.end()) {
      failover_probes.Increment();
      network_->Charge(peer, 1, 16);  // probe + miss reply
      continue;
    }
    if (!options_.verify_checksums) {
      // Control arm: consume the first copy found without checking it.
      // The checksum is still *computed* — that is the sweep's
      // undetected-corruption ledger, counting exactly the reads a
      // checksummed deployment would have caught.
      if (!db::UnwrapEnvelope(wire_it->second,
                              db::EnvelopePolicy::kRequireFrame)
               .ok()) {
        UnverifiedCorruptReads().Increment();
      }
      auto loose = db::UnwrapEnvelope(wire_it->second,
                                      db::EnvelopePolicy::kTrustUnverified);
      if (loose.ok()) {
        size_t pos = 0;
        if (auto txn = core::DecodeTransaction(*loose, &pos); txn.ok()) {
          return TxnRead{*std::move(txn), node, wire_it->second};
        }
      }
      // Structurally undecodable garbage: serve the decode index — the
      // bytes a pre-checksum deployment would have cached in memory.
      auto txn_it = n.txns.find(id);
      ORCH_CHECK(txn_it != n.txns.end());
      return TxnRead{txn_it->second, node, wire_it->second};
    }
    if (auto txn = DecodeWire(wire_it->second); txn.ok()) {
      TxnRead read{*std::move(txn), node, wire_it->second};
      // Read-repair: recopy the verified blob over every corrupt
      // replica probed on the way here. Replica-to-replica transfers,
      // charged to the repair endpoint like churn re-replication.
      for (size_t bad : corrupt_nodes) {
        network_->Charge(kRepairEndpoint, 1,
                         static_cast<int64_t>(read.wire.size()));
        nodes_[bad].txn_wire.insert_or_assign(id, read.wire);
        nodes_[bad].txns.insert_or_assign(id, read.txn);
        ReadRepairs().Increment();
      }
      return read;
    }
    // The replica shipped its copy and the receiver's checksum caught
    // the rot: the bytes were paid for but are useless.
    CorruptReplicaReads().Increment();
    ScoreCorruptServe(node);
    network_->Charge(peer, 1,
                     static_cast<int64_t>(wire_it->second.size()));
    corrupt_nodes.push_back(node);
  }
  if (!corrupt_nodes.empty()) {
    static Counter& unrecoverable = MetricsRegistry::Global().GetCounter(
        "integrity.unrecoverable_reads");
    unrecoverable.Increment();
    return Status::DataLoss("every replica of transaction " + id.ToString() +
                            " failed its checksum");
  }
  // Every id reached here came from a committed epoch's contents, so its
  // transaction was durably replicated at its controller group; no
  // surviving replica means churn outran the replication factor and the
  // data is unrecoverably gone.
  return Status::DataLoss("transaction controller lost " + id.ToString());
}

Result<Transaction> DhtStore::ReadLocalOrRepair(
    ParticipantId peer, size_t node, const TransactionId& id) const {
  const NodeState& n = nodes_[node];
  auto wire_it = n.txn_wire.find(id);
  ORCH_CHECK(wire_it != n.txn_wire.end());
  if (!options_.verify_checksums) {
    if (!db::UnwrapEnvelope(wire_it->second,
                            db::EnvelopePolicy::kRequireFrame)
             .ok()) {
      UnverifiedCorruptReads().Increment();
    }
    auto loose = db::UnwrapEnvelope(wire_it->second,
                                    db::EnvelopePolicy::kTrustUnverified);
    if (loose.ok()) {
      size_t pos = 0;
      if (auto txn = core::DecodeTransaction(*loose, &pos); txn.ok()) {
        return *std::move(txn);
      }
    }
    return n.txns.at(id);
  }
  if (auto txn = DecodeWire(wire_it->second); txn.ok()) return *std::move(txn);
  CorruptReplicaReads().Increment();
  ScoreCorruptServe(node);
  ORCH_ASSIGN_OR_RETURN(TxnRead read, ReadTxnVerified(peer, id));
  // The group read already healed the replicas it probed past; heal the
  // copy that sent us there too.
  if (read.holder != node) {
    network_->Charge(kRepairEndpoint, 1,
                     static_cast<int64_t>(read.wire.size()));
    nodes_[node].txn_wire.insert_or_assign(id, read.wire);
    nodes_[node].txns.insert_or_assign(id, read.txn);
    ReadRepairs().Increment();
  }
  return std::move(read.txn);
}

Result<std::string> DhtStore::ShipPayload(ParticipantId peer,
                                          std::string_view wire) const {
  Result<std::string> delivered = Status::Unavailable("payload unsent");
  for (int attempt = 0; attempt < kMaxTransmits; ++attempt) {
    if (attempt > 0) RetransmitCounter().Increment();
    delivered = network_->TryChargePayload(peer, 1, wire);
    if (delivered.ok()) break;
  }
  return delivered;
}

Result<Transaction> DhtStore::ShipTxn(ParticipantId peer,
                                      const std::string& wire,
                                      const Transaction& fallback) const {
  ORCH_ASSIGN_OR_RETURN(std::string delivered, ShipPayload(peer, wire));
  if (options_.verify_checksums) {
    auto txn = DecodeWire(delivered);
    if (!txn.ok()) {
      static Counter& detected = MetricsRegistry::Global().GetCounter(
          "integrity.corrupt_payloads_detected");
      detected.Increment();
      // Transient by construction: a re-sent payload draws fresh
      // randomness, so the participant's retry loop re-fetches.
      return Status::Corruption("transaction " + fallback.id.ToString() +
                                " corrupted in flight");
    }
    return txn;
  }
  if (!db::UnwrapEnvelope(delivered, db::EnvelopePolicy::kRequireFrame)
           .ok()) {
    UnverifiedCorruptReads().Increment();
  }
  auto loose =
      db::UnwrapEnvelope(delivered, db::EnvelopePolicy::kTrustUnverified);
  if (loose.ok()) {
    size_t pos = 0;
    if (auto txn = core::DecodeTransaction(*loose, &pos); txn.ok()) {
      return *std::move(txn);
    }
  }
  return fallback;
}

bool DhtStore::EpochCommitted(Epoch e) const {
  for (size_t node : GroupFor("epoch:" + std::to_string(e))) {
    if (!nodes_[node].KnowsEpoch(e)) continue;
    return nodes_[node].epoch_done.count(e) != 0 &&
           nodes_[node].epoch_aborted.count(e) == 0;
  }
  return false;
}

bool DhtStore::IsCommittedTxn(const TransactionId& id) const {
  for (size_t node : GroupFor("txn:" + id.ToString())) {
    auto it = nodes_[node].txns.find(id);
    if (it == nodes_[node].txns.end()) continue;
    return EpochCommitted(it->second.epoch);
  }
  return false;
}

void DhtStore::AbortEpoch(ParticipantId peer, Epoch epoch,
                          const std::vector<TransactionId>& staged) {
  // A sticky fault models a crashed publisher: its cleanup never runs,
  // the epoch stays unfinished, and the reaper eventually marks it
  // aborted from the reconciliation path instead.
  FaultInjector* injector = network_->fault_injector();
  if (injector != nullptr && injector->tripped()) return;
  FaultInjector::ScopedDisable guard(injector);
  const size_t my_node = NodeOfPeer(peer);
  for (const TransactionId& id : staged) {
    const std::string key = "txn:" + id.ToString();
    ReplicatedSend(peer, my_node, key, 24);
    MutateGroup(key, [&](NodeState& node) {
      node.txns.erase(id);
      node.txn_wire.erase(id);
      auto dec_it = node.decisions.find(id);
      if (dec_it != node.decisions.end()) {
        dec_it->second.erase(peer);
        if (dec_it->second.empty()) node.decisions.erase(dec_it);
      }
    });
  }
  const std::string ekey = "epoch:" + std::to_string(epoch);
  ReplicatedSend(peer, my_node, ekey, 24);
  MutateGroup(ekey, [&](NodeState& node) {
    node.epoch_contents.erase(epoch);
    node.epoch_aborted.insert(epoch);
  });
}

Status DhtStore::RegisterParticipant(ParticipantId peer,
                                     const core::TrustPolicy* policy) {
  ORCH_CHECK(policy != nullptr);
  policies_[peer] = policy;
  MutateGroup("peer:" + std::to_string(peer),
              [&](NodeState& node) { node.coordinated.emplace(peer, CoordEntry{}); });
  return Status::OK();
}

Result<Epoch> DhtStore::Publish(ParticipantId peer,
                                std::vector<Transaction> txns) {
  TraceSpan span("dht.publish");
  Stopwatch cpu;
  const size_t my_node = NodeOfPeer(peer);

  // Fig. 6 message sequence, made crash-consistent: the epoch controller
  // confirms the epoch *finished* — the commit point — only after every
  // transaction controller has accepted its transaction. Any message
  // lost before that aborts the epoch and leaves nothing visible.
  // Every controller write fans out to the key's whole replica group so
  // a node crash between operations loses nothing (for k > 1).
  // (1) request epoch -> allocator group.
  ORCH_RETURN_IF_ERROR(
      TryReplicatedSend(peer, my_node, "epoch-allocator", 16));
  const Epoch epoch = nodes_[AllocatorNode()].epoch_counter + 1;
  MutateGroup("epoch-allocator",
              [&](NodeState& node) { node.epoch_counter = epoch; });
  const std::string ekey = "epoch:" + std::to_string(epoch);
  // A failure past this point burns the number; reconcilers tolerate
  // gaps via the stuck-epoch reaper.
  std::vector<TransactionId> staged;
  const auto abort_with = [&](Status status) {
    AbortEpoch(peer, epoch, staged);
    return status;
  };
  // (2) allocator -> epoch controller group: begin epoch e.
  if (Status s = TryReplicatedSend(peer, AllocatorNode(), ekey, 16); !s.ok()) {
    return abort_with(s);
  }
  MutateGroup(ekey, [&](NodeState& node) {
    node.epoch_contents[epoch];  // mark as begun (open)
  });
  // (3) controller -> allocator: confirm epoch begun.
  // (4) allocator -> publishing peer: begin publishing at epoch e.
  if (Status s = TryDirectSend(peer, 8); !s.ok()) return abort_with(s);
  if (Status s = TryDirectSend(peer, 16); !s.ok()) return abort_with(s);

  // Validate before any transaction lands: a duplicate — within the
  // batch or against a *committed* epoch — must leave no trace, or one
  // bad publish would freeze the stable watermark for every peer.
  // Residue of an aborted epoch is republishable and gets overwritten.
  TxnIdSet batch_ids;
  for (Transaction& txn : txns) {
    txn.epoch = epoch;
    if (!batch_ids.insert(txn.id).second || IsCommittedTxn(txn.id)) {
      return abort_with(Status::AlreadyExists(
          "transaction " + txn.id.ToString() + " already published"));
    }
  }

  // (5) publish transaction IDs for epoch e -> epoch controller group.
  std::vector<TransactionId> ids;
  ids.reserve(txns.size());
  for (const Transaction& txn : txns) ids.push_back(txn.id);
  if (Status s = TryReplicatedSend(
          peer, my_node, ekey, static_cast<int64_t>(16 * ids.size() + 16));
      !s.ok()) {
    return abort_with(s);
  }
  MutateGroup(ekey,
              [&](NodeState& node) { node.epoch_contents[epoch] = ids; });

  // (6) the peer sends each transaction to its transaction controller
  // group as an envelope-framed blob, which each replica stores as-is
  // (the at-rest form reads verify) while recording the publisher's
  // implicit self-acceptance.
  for (Transaction& txn : txns) {
    const std::string wire = WireOf(txn);
    const TransactionId id = txn.id;
    const std::string key = "txn:" + id.ToString();
    if (Status s = TryReplicatedSend(peer, my_node, key,
                                     static_cast<int64_t>(wire.size()));
        !s.ok()) {
      return abort_with(s);
    }
    MutateGroup(key, [&](NodeState& node) {
      InstallTxnReplica(node, txn, wire);
      node.decisions[id][peer] = Decision{'A', 0};
    });
    staged.push_back(id);
    if (Status s = TryDirectSend(peer, 8); !s.ok()) return abort_with(s);
  }

  // (7) controller confirms the epoch finished: the commit point. The
  // reaper may have aborted the epoch under a slow publisher; an aborted
  // epoch can never finish (peers already advanced past it).
  if (Status s = TryReplicatedSend(peer, my_node, ekey, 16); !s.ok()) {
    return abort_with(s);
  }
  if (nodes_[EpochControllerNode(epoch)].epoch_aborted.count(epoch) != 0) {
    return abort_with(Status::Unavailable(
        "epoch " + std::to_string(epoch) +
        " was aborted before commit; republish"));
  }
  MutateGroup(ekey, [&](NodeState& node) { node.epoch_done.insert(epoch); });
  if (options_.fetch_mode == core::FetchMode::kDelta) {
    // The publisher's implicit self-accepts just committed with the
    // epoch; future fetches need not ask their controllers.
    for (const Transaction& txn : txns) cache_.MarkApplied(peer, txn.id);
  }
  DirectSend(peer, 8);  // ack to publisher (commit already durable)
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  static Counter& publishes =
      MetricsRegistry::Global().GetCounter("store.dht.publishes");
  static Counter& published_txns =
      MetricsRegistry::Global().GetCounter("store.dht.published_txns");
  publishes.Increment();
  published_txns.Add(static_cast<int64_t>(txns.size()));
  return epoch;
}

Result<ReconcileFetch> DhtStore::BeginReconciliation(ParticipantId peer) {
  Stopwatch cpu;
  auto policy_it = policies_.find(peer);
  if (policy_it == policies_.end()) {
    return Status::NotFound("peer " + std::to_string(peer) +
                            " is not registered");
  }
  TraceSpan span("dht.fetch");
  const core::TrustPolicy& policy = *policy_it->second;
  const size_t my_node = NodeOfPeer(peer);
  const bool delta = options_.fetch_mode == core::FetchMode::kDelta;
  const core::FetchCache::Stats cache_before = cache_.stats();
  // Integrity counter snapshots: the deltas over this fetch become the
  // per-round FetchStats integrity fields.
  static Counter& probe_ctr =
      MetricsRegistry::Global().GetCounter("store.dht.failover_probes");
  const int64_t corrupt_before = CorruptReplicaReads().value();
  const int64_t repairs_before = ReadRepairs().value();
  const int64_t probes_before = probe_ctr.value();
  ReconcileFetch fetch;

  // Most recent epoch from the allocator (request + reply).
  ORCH_RETURN_IF_ERROR(
      TryRoutedSend(peer, my_node, net::KeyHash("epoch-allocator"), 16)
          .status());
  const Epoch latest = nodes_[AllocatorNode()].epoch_counter;
  ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 16));

  // Prior watermark and recno from this peer's coordinator group. The
  // recno is allocated now (a failure later burns it, harmlessly); the
  // watermark is committed only once the whole fetch has been assembled.
  const std::string pkey = "peer:" + std::to_string(peer);
  ORCH_RETURN_IF_ERROR(TryReplicatedSend(peer, my_node, pkey, 16));
  CoordEntry coord_entry = nodes_[CoordinatorNode(peer)].coordinated[peer];
  // kFull ignores the durable watermark for the scan window and re-walks
  // the whole history; the participant's catch-up path absorbs resends.
  const Epoch prev =
      options_.fetch_mode == core::FetchMode::kFull ? 0 : coord_entry.epoch;
  coord_entry.recno += 1;
  MutateGroup(pkey,
              [&](NodeState& node) { node.coordinated[peer] = coord_entry; });
  fetch.recno = coord_entry.recno;
  ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 16));

  // Fetch the contents of every epoch since the previous reconciliation
  // from the epoch controllers, and find the latest stable epoch (no
  // unfinished epoch preceding it). Aborted epochs are empty and are
  // skipped; an epoch observed unfinished by `stuck_epoch_reap_threshold`
  // scans belongs to a crashed publisher and is reaped to aborted so it
  // cannot freeze the watermark. Reads try the primary and fail over
  // down the replica group.
  Epoch stable = prev;
  std::vector<TransactionId> published;
  // Per-owner coalescing (kDelta): epochs in (prev, latest] grouped by
  // their controller's primary owner, one routed multi-get request and
  // one accumulated direct reply per owner instead of one round trip per
  // epoch. Keys sharing a primary share the whole replica group, so
  // failover reads behave exactly as in the per-key path; the epochs are
  // still *processed* strictly in order, with the same strike/reap/stop
  // transitions, so the assembled window is identical.
  std::vector<size_t> epoch_owner_order;
  std::unordered_map<size_t, int64_t> epoch_reply_bytes;
  if (delta) {
    std::unordered_map<size_t, std::pair<Epoch, int64_t>> batches;
    for (Epoch e = prev + 1; e <= latest; ++e) {
      const size_t owner = EpochControllerNode(e);
      auto [it, inserted] = batches.try_emplace(owner, e, 0);
      if (inserted) epoch_owner_order.push_back(owner);
      it->second.second += 1;
    }
    for (size_t owner : epoch_owner_order) {
      const auto& [first_epoch, count] = batches[owner];
      // Route the batch along the first epoch's key: same primary, same
      // route. 8 bytes per requested epoch number + header.
      ORCH_RETURN_IF_ERROR(
          TryRoutedSend(peer, my_node,
                        net::KeyHash("epoch:" + std::to_string(first_epoch)),
                        8 * count + 8)
              .status());
      epoch_reply_bytes[owner] = 8;
      fetch.stats.batched_messages += 1;
    }
  }
  for (Epoch e = prev + 1; e <= latest; ++e) {
    const std::string ekey = "epoch:" + std::to_string(e);
    if (!delta) {
      ORCH_RETURN_IF_ERROR(
          TryRoutedSend(peer, my_node, net::KeyHash(ekey), 16).status());
    }
    const auto holder = FirstHolder(
        peer, ekey, [&](const NodeState& n) { return n.KnowsEpoch(e); });
    if (holder.has_value() &&
        nodes_[*holder].epoch_aborted.count(e) != 0) {
      if (delta) {
        epoch_reply_bytes[EpochControllerNode(e)] += 8;
      } else {
        ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 8));
      }
      stable = e;  // nothing to ship, but the watermark passes over it
      continue;
    }
    const bool done =
        holder.has_value() && nodes_[*holder].epoch_done.count(e) != 0;
    const auto* contents =
        holder.has_value() &&
                nodes_[*holder].epoch_contents.count(e) != 0
            ? &nodes_[*holder].epoch_contents.at(e)
            : nullptr;
    const size_t count = contents == nullptr ? 0 : contents->size();
    if (delta) {
      epoch_reply_bytes[EpochControllerNode(e)] +=
          static_cast<int64_t>(16 * count + 16);
    } else {
      ORCH_RETURN_IF_ERROR(
          TryDirectSend(peer, static_cast<int64_t>(16 * count + 16)));
    }
    if (!done) {
      const int strikes = ++epoch_strikes_[e];
      if (strikes >= options_.stuck_epoch_reap_threshold) {
        MutateGroup(ekey, [&](NodeState& node) {
          node.epoch_contents.erase(e);
          node.epoch_aborted.insert(e);
        });
        epoch_strikes_.erase(e);
        stable = e;
        continue;
      }
      break;  // everything after an unfinished epoch is unstable
    }
    stable = e;
    if (contents != nullptr) {
      for (const TransactionId& id : *contents) published.push_back(id);
    }
  }
  if (delta) {
    // One accumulated reply per controller owner (the owner streams its
    // epochs' states; the client stops consuming at the first unfinished
    // epoch, so bytes match what the per-key path would have shipped).
    for (size_t owner : epoch_owner_order) {
      ORCH_RETURN_IF_ERROR(TryDirectSend(peer, epoch_reply_bytes[owner]));
    }
  }
  fetch.epoch = stable;

  // Request every published transaction from its transaction controller,
  // following antecedent chains through a pending set (Fig. 7). The
  // controller evaluates the peer's trust predicates and decision log:
  // decided or (top-level) untrusted transactions yield a small
  // "not relevant" reply; everything else is shipped with its priority
  // and antecedent ids.
  TxnIdSet requested;
  if (!delta) {
    std::deque<std::pair<TransactionId, bool>> pending;  // (id, as_antecedent)
    for (const TransactionId& id : published) pending.emplace_back(id, false);
    while (!pending.empty()) {
      const auto [id, as_antecedent] = pending.front();
      pending.pop_front();
      if (!requested.insert(id).second) continue;
      const std::string tkey = "txn:" + id.ToString();
      ORCH_RETURN_IF_ERROR(
          TryRoutedSend(peer, my_node, net::KeyHash(tkey), 24).status());
      ORCH_ASSIGN_OR_RETURN(TxnRead read, ReadTxnVerified(peer, id));
      const NodeState& node = nodes_[read.holder];
      const Transaction& txn = read.txn;
      // Decision check at the controller.
      char decided = 0;
      auto dec_it = node.decisions.find(id);
      if (dec_it != node.decisions.end()) {
        auto peer_it = dec_it->second.find(peer);
        if (peer_it != dec_it->second.end()) decided = peer_it->second.verdict;
      }
      if (decided == 'A' || (!as_antecedent && decided != 0)) {
        ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 8));  // "not relevant"
        continue;
      }
      const int priority = policy.PriorityOfTransaction(txn);
      if (!as_antecedent && priority <= 0) {
        ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 8));  // "untrusted"
        continue;
      }
      // Ship the transaction end-to-end: the reply carries the verified
      // wire blob, and the peer unwraps and decodes what actually
      // arrived. The priority rides in a small side message.
      ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 8));
      ORCH_ASSIGN_OR_RETURN(Transaction delivered,
                            ShipTxn(peer, read.wire, txn));
      if (!as_antecedent) fetch.trusted.emplace_back(id, priority);
      for (const TransactionId& ante : delivered.antecedents) {
        pending.emplace_back(ante, true);
      }
      fetch.transactions.push_back(std::move(delivered));
    }
  } else {
    // The FIFO above drains one antecedent level completely before the
    // next, so walking the closure level by level visits ids in the
    // same order. Within a level, same-controller lookups coalesce into
    // one multi-get request and one accumulated reply per primary
    // owner; entries are still *processed* in arrival order, so the
    // shipped transactions come out in the identical sequence. Lookups
    // whose reply must be "not relevant" — the peer durably applied the
    // transaction — are suppressed before any message is sent.
    std::vector<std::pair<TransactionId, bool>> frontier;
    for (const TransactionId& id : published) frontier.emplace_back(id, false);
    while (!frontier.empty()) {
      std::vector<std::pair<TransactionId, bool>> level;
      for (const auto& [id, as_antecedent] : frontier) {
        if (!requested.insert(id).second) continue;
        if (cache_.KnownApplied(peer, id)) continue;  // would reply 'A'
        level.emplace_back(id, as_antecedent);
      }
      frontier.clear();
      if (level.empty()) continue;
      std::vector<size_t> owner_order;
      std::unordered_map<size_t, std::pair<int64_t, int64_t>>
          batch;  // owner -> (request count, reply bytes)
      for (const auto& [id, as_antecedent] : level) {
        (void)as_antecedent;
        const size_t owner = TxnControllerNode(id);
        auto [it, inserted] = batch.try_emplace(owner, 0, 8);
        if (inserted) owner_order.push_back(owner);
        it->second.first += 1;
      }
      for (size_t owner : owner_order) {
        // Find the first id owned by this controller to route along.
        const TransactionId* route_id = nullptr;
        for (const auto& [id, unused] : level) {
          if (TxnControllerNode(id) == owner) {
            route_id = &id;
            break;
          }
        }
        ORCH_RETURN_IF_ERROR(
            TryRoutedSend(peer, my_node,
                          net::KeyHash("txn:" + route_id->ToString()),
                          24 * batch[owner].first)
                .status());
        fetch.stats.batched_messages += 1;
      }
      // Shipped transactions accumulate per owner as one concatenated
      // payload of envelope frames; placeholders keep fetch.transactions
      // in arrival order and are overwritten by what actually arrives.
      std::unordered_map<size_t, std::string> ship_buf;
      std::unordered_map<size_t, std::vector<size_t>> ship_idx;
      for (const auto& [id, as_antecedent] : level) {
        ORCH_ASSIGN_OR_RETURN(TxnRead read, ReadTxnVerified(peer, id));
        const NodeState& node = nodes_[read.holder];
        const Transaction& txn = read.txn;
        const size_t owner = TxnControllerNode(id);
        int64_t& reply_bytes = batch[owner].second;
        char decided = 0;
        auto dec_it = node.decisions.find(id);
        if (dec_it != node.decisions.end()) {
          auto peer_it = dec_it->second.find(peer);
          if (peer_it != dec_it->second.end()) decided = peer_it->second.verdict;
        }
        if (decided == 'A' || (!as_antecedent && decided != 0)) {
          reply_bytes += 8;  // "not relevant"
          continue;
        }
        const int priority = policy.PriorityOfTransaction(txn);
        if (!as_antecedent && priority <= 0) {
          reply_bytes += 8;  // "untrusted"
          continue;
        }
        reply_bytes += 8;  // per-txn header; the blob rides the payload
        ship_buf[owner].append(read.wire);
        ship_idx[owner].push_back(fetch.transactions.size());
        if (!as_antecedent) fetch.trusted.emplace_back(id, priority);
        fetch.transactions.push_back(txn);
        for (const TransactionId& ante : txn.antecedents) {
          frontier.emplace_back(ante, true);
        }
      }
      for (size_t owner : owner_order) {
        ORCH_RETURN_IF_ERROR(TryDirectSend(peer, batch[owner].second));
        auto buf_it = ship_buf.find(owner);
        if (buf_it == ship_buf.end()) continue;
        // The owner's accumulated blob payload travels as one message;
        // the receiver walks the frames and keeps what verifies.
        ORCH_ASSIGN_OR_RETURN(const std::string delivered,
                              ShipPayload(peer, buf_it->second));
        size_t pos = 0;
        // Frames were appended in slot order, so walking the slots walks
        // the frames; the map only buckets per owner (the slot vector
        // itself is ordered).
        const std::vector<size_t>& slots = ship_idx[owner];
        for (size_t idx : slots) {
          auto body = db::ReadEnvelope(delivered, &pos);
          if (!body.ok()) {
            if (!options_.verify_checksums) {
              // Control arm: framing lost mid-batch; the remaining
              // placeholders (the sender-side copies) stand in, the way
              // an unchecksummed reader would never notice.
              UnverifiedCorruptReads().Increment();
              break;
            }
            static Counter& detected = MetricsRegistry::Global().GetCounter(
                "integrity.corrupt_payloads_detected");
            detected.Increment();
            return Status::Corruption(
                "multi-get reply corrupted in flight");
          }
          size_t bpos = 0;
          auto txn = core::DecodeTransaction(*body, &bpos);
          if (!txn.ok()) {
            if (!options_.verify_checksums) continue;
            return txn.status();
          }
          fetch.transactions[idx] = *std::move(txn);
        }
      }
    }
    fetch.stats.suppressed_lookups =
        cache_.stats().suppressed - cache_before.suppressed;
  }

  // Commit the new watermark at the coordinator group only now that the
  // fetch is fully assembled: a lost message anywhere above must not
  // advance it, or the window (prev, stable] would be skipped forever.
  ORCH_RETURN_IF_ERROR(TryReplicatedSend(peer, my_node, pkey, 24));
  coord_entry.epoch = stable;
  MutateGroup(pkey,
              [&](NodeState& node) { node.coordinated[peer] = coord_entry; });
  DirectSend(peer, 8);  // ack
  fetch.stats.corrupt_reads = CorruptReplicaReads().value() - corrupt_before;
  fetch.stats.read_repairs = ReadRepairs().value() - repairs_before;
  fetch.stats.failover_probes = probe_ctr.value() - probes_before;
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  // Registry mirror of FetchStats (see central_store.cc).
  static Counter& fetches =
      MetricsRegistry::Global().GetCounter("store.dht.fetches");
  static Counter& shipped_txns =
      MetricsRegistry::Global().GetCounter("store.dht.shipped_txns");
  static Counter& multi_get_batches =
      MetricsRegistry::Global().GetCounter("store.dht.multi_get_batches");
  static Counter& suppressed =
      MetricsRegistry::Global().GetCounter("store.dht.suppressed_lookups");
  fetches.Increment();
  shipped_txns.Add(static_cast<int64_t>(fetch.transactions.size()));
  multi_get_batches.Add(fetch.stats.batched_messages);
  suppressed.Add(fetch.stats.suppressed_lookups);
  return fetch;
}

Status DhtStore::RecordDecisions(ParticipantId peer, int64_t recno,
                                 const std::vector<TransactionId>& applied,
                                 const std::vector<TransactionId>& rejected) {
  TraceSpan span("dht.record_decisions");
  static Counter& records =
      MetricsRegistry::Global().GetCounter("store.dht.record_decisions");
  static Counter& decisions =
      MetricsRegistry::Global().GetCounter("store.dht.decisions");
  records.Increment();
  decisions.Add(static_cast<int64_t>(applied.size() + rejected.size()));
  Stopwatch cpu;
  const size_t my_node = NodeOfPeer(peer);
  // Notify each transaction's controller group, tagging the decision
  // with the reconciliation that produced it. Recording is idempotent,
  // so a retry after a lost message simply re-sends the whole outcome.
  if (options_.fetch_mode == core::FetchMode::kDelta) {
    // Same-controller notifications coalesce into one replicated
    // multi-put per primary owner (keys sharing a primary share the
    // whole replica group); every id's group state mutates exactly as
    // in the per-key path.
    std::vector<std::pair<TransactionId, char>> outcomes;
    outcomes.reserve(applied.size() + rejected.size());
    for (const TransactionId& id : applied) outcomes.emplace_back(id, 'A');
    for (const TransactionId& id : rejected) outcomes.emplace_back(id, 'R');
    std::vector<size_t> owner_order;
    std::unordered_map<size_t, std::vector<size_t>> batch;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const size_t owner = TxnControllerNode(outcomes[i].first);
      auto [it, inserted] = batch.try_emplace(owner);
      if (inserted) owner_order.push_back(owner);
      it->second.push_back(i);
    }
    for (size_t owner : owner_order) {
      const std::vector<size_t>& members = batch[owner];
      const std::string route_key =
          "txn:" + outcomes[members.front()].first.ToString();
      ORCH_RETURN_IF_ERROR(TryReplicatedSend(
          peer, my_node, route_key,
          static_cast<int64_t>(24 * members.size())));
      for (size_t i : members) {
        const TransactionId id = outcomes[i].first;
        const char verdict = outcomes[i].second;
        MutateGroup("txn:" + id.ToString(), [&](NodeState& node) {
          node.decisions[id][peer] = Decision{verdict, recno};
        });
      }
    }
  } else {
    for (const TransactionId& id : applied) {
      const std::string key = "txn:" + id.ToString();
      ORCH_RETURN_IF_ERROR(TryReplicatedSend(peer, my_node, key, 24));
      MutateGroup(key, [&](NodeState& node) {
        node.decisions[id][peer] = Decision{'A', recno};
      });
    }
    for (const TransactionId& id : rejected) {
      const std::string key = "txn:" + id.ToString();
      ORCH_RETURN_IF_ERROR(TryReplicatedSend(peer, my_node, key, 24));
      MutateGroup(key, [&](NodeState& node) {
        node.decisions[id][peer] = Decision{'R', recno};
      });
    }
  }
  // Last message: the coordinator's completion witness. Until it lands,
  // recovery reports the reconciliation as interrupted
  // (last_decided_recno < recno).
  const std::string pkey = "peer:" + std::to_string(peer);
  ORCH_RETURN_IF_ERROR(TryReplicatedSend(peer, my_node, pkey, 24));
  MutateGroup(pkey, [&](NodeState& node) {
    node.coordinated[peer].decided_recno = recno;
  });
  if (options_.fetch_mode == core::FetchMode::kDelta) {
    // Only now — past the completion witness — are the accepts durable
    // enough for the suppression overlay. A failure above leaves the
    // overlay untouched and the next fetch asks the controllers again.
    for (const TransactionId& id : applied) cache_.MarkApplied(peer, id);
  }
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return Status::OK();
}

Status DhtStore::RecordProvenance(
    ParticipantId peer, int64_t recno,
    const std::vector<core::ProvenanceRecord>& records) {
  if (records.empty()) return Status::OK();
  (void)recno;  // records already carry their recno
  TraceSpan span("dht.record_provenance");
  static Counter& stored =
      MetricsRegistry::Global().GetCounter("store.dht.provenance_records");
  // Advisory, node-local at the coordinator, piggybacking on the
  // RecordDecisions batch: no extra messages, no replication (see the
  // header comment on provenance_log).
  std::vector<core::ProvenanceRecord>& log = provenance_log_[peer];
  log.insert(log.end(), records.begin(), records.end());
  stored.Add(static_cast<int64_t>(records.size()));
  return Status::OK();
}

const std::vector<core::ProvenanceRecord>& DhtStore::provenance_log(
    ParticipantId peer) const {
  static const std::vector<core::ProvenanceRecord> kEmpty;
  auto it = provenance_log_.find(peer);
  return it == provenance_log_.end() ? kEmpty : it->second;
}

Result<core::RecoveryBundle> DhtStore::FetchRecoveryState(
    ParticipantId peer) const {
  Stopwatch cpu;
  auto policy_it = policies_.find(peer);
  if (policy_it == policies_.end()) {
    return Status::NotFound("peer " + std::to_string(peer) +
                            " is not registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  core::RecoveryBundle bundle;

  // Watermark, recno and completion witness from the peer coordinator
  // group (one round trip, failing over past crashed members).
  {
    const auto holder = FirstHolder(
        peer, "peer:" + std::to_string(peer),
        [&](const NodeState& n) { return n.coordinated.count(peer) != 0; });
    if (holder.has_value()) {
      const CoordEntry& entry = nodes_[*holder].coordinated.at(peer);
      bundle.recno = entry.recno;
      bundle.epoch = entry.epoch;
      bundle.last_decided_recno = entry.decided_recno;
      const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(*holder));
      network_->Charge(peer, route.hops + 1, 24);
    }
  }

  // Without its soft state the peer cannot know which transaction
  // controllers hold its decisions, so recovery sweeps every live node:
  // one request per node, one bulk reply carrying that node's
  // transactions and this peer's decisions on them. Replicas resend the
  // same decisions; the `decided` set dedupes them.
  core::TxnIdSet decided;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    if (!ring_.IsLive(node)) continue;
    int64_t bytes = 16;
    // Snapshot the id list first: verified reads may heal this node's
    // own maps mid-walk.
    std::vector<TransactionId> ids;
    for (const auto& [id, txn] : nodes_[node].txns) ids.push_back(id);
    for (const TransactionId& id : ids) {
      auto dec_it = nodes_[node].decisions.find(id);
      if (dec_it == nodes_[node].decisions.end()) continue;
      auto peer_it = dec_it->second.find(peer);
      if (peer_it == dec_it->second.end()) continue;
      if (!decided.insert(id).second) continue;  // already from a replica
      if (peer_it->second.verdict == 'A') {
        ORCH_ASSIGN_OR_RETURN(Transaction txn,
                              ReadLocalOrRepair(peer, node, id));
        bytes += static_cast<int64_t>(core::EncodedTransactionSize(txn));
        bundle.applied.push_back(std::move(txn));
      } else {
        bundle.rejected.push_back(id);
        bytes += 16;
      }
    }
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(node));
    network_->Charge(peer, route.hops, 16);
    network_->Charge(peer, 1, bytes);  // reply
  }
  std::sort(bundle.applied.begin(), bundle.applied.end(),
            [](const Transaction& a, const Transaction& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.id < b.id;
            });

  // Undecided trusted transactions within the watermark, from the epoch
  // controllers, plus antecedent closures from their controllers.
  core::TxnIdSet applied_ids;
  for (const Transaction& txn : bundle.applied) applied_ids.insert(txn.id);
  if (options_.fetch_mode == core::FetchMode::kDelta) {
    // The sweep above is the authoritative applied set; replace the
    // conservative overlay with it so the recovered peer's first fetch
    // suppresses everything it durably applied.
    cache_.ResetApplied(peer, applied_ids);
  }
  core::TxnIdSet shipped;
  std::deque<std::pair<TransactionId, bool>> pending;
  for (Epoch e = 1; e <= bundle.epoch; ++e) {
    const std::string ekey = "epoch:" + std::to_string(e);
    const auto holder = FirstHolder(
        peer, ekey, [&](const NodeState& n) { return n.KnowsEpoch(e); });
    const size_t controller = holder.value_or(EpochControllerNode(e));
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(controller));
    if (!EpochCommitted(e)) {  // aborted or unfinished: nothing to ship
      network_->Charge(peer, route.hops + 1, 16);
      continue;
    }
    const auto contents = nodes_[controller].epoch_contents.find(e);
    const size_t count = contents == nodes_[controller].epoch_contents.end()
                             ? 0
                             : contents->second.size();
    network_->Charge(peer, route.hops + 1,
                     static_cast<int64_t>(16 * count + 16));
    if (contents == nodes_[controller].epoch_contents.end()) continue;
    for (const TransactionId& id : contents->second) {
      if (decided.count(id) == 0) pending.emplace_back(id, false);
    }
  }
  while (!pending.empty()) {
    const auto [id, as_antecedent] = pending.front();
    pending.pop_front();
    if (!shipped.insert(id).second) continue;
    if (applied_ids.count(id) != 0) continue;
    ORCH_ASSIGN_OR_RETURN(TxnRead read, ReadTxnVerified(peer, id));
    const size_t node = read.holder;
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(node));
    const Transaction& txn = read.txn;
    const int priority = policy.PriorityOfTransaction(txn);
    if (!as_antecedent && priority <= 0) {
      network_->Charge(peer, route.hops + 1, 24);
      continue;
    }
    network_->Charge(
        peer, route.hops + 1,
        static_cast<int64_t>(core::EncodedTransactionSize(txn)) + 8);
    if (!as_antecedent) bundle.undecided.emplace_back(id, priority);
    bundle.closure.push_back(txn);
    for (const TransactionId& ante : txn.antecedents) {
      pending.emplace_back(ante, true);
    }
  }
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return bundle;
}

Result<core::NetworkCentricFetch> DhtStore::BeginNetworkCentricReconciliation(
    ParticipantId peer) {
  if (catalog_ == nullptr) {
    return Status::NotSupported(
        "DHT store was built without a catalog; network-centric "
        "reconciliation needs the shared schema");
  }
  core::NetworkCentricFetch fetch;
  ORCH_ASSIGN_OR_RETURN(fetch.base, BeginReconciliation(peer));

  Stopwatch cpu;
  const size_t my_node = NodeOfPeer(peer);
  core::TransactionMap bundle;
  for (const Transaction& txn : fetch.base.transactions) bundle.Put(txn);

  // Each trusted transaction's controller assembles its extension by
  // querying the antecedents' controllers (controller-to-controller
  // traffic charged per edge), then flattens it locally.
  for (const auto& [txn_id, priority] : fetch.base.trusted) {
    core::TrustedTxn t;
    t.id = txn_id;
    t.priority = priority;
    t.extension = core::ComputeExtensionFromBundle(bundle, txn_id);
    const size_t controller = TxnControllerNode(txn_id);
    for (const TransactionId& member : t.extension) {
      if (member == txn_id) continue;
      const auto route =
          ring_.Route(controller, net::KeyHash("txn:" + member.ToString()));
      int64_t sz = 64;
      if (auto txn = bundle.Get(member); txn.ok()) {
        sz = static_cast<int64_t>(core::EncodedTransactionSize(**txn));
      }
      network_->Charge(peer, route.hops + 1, sz);
    }
    fetch.trusted_txns.push_back(std::move(t));
  }
  fetch.analysis =
      core::AnalyzeExtensions(*catalog_, bundle, fetch.trusted_txns);

  // Conflict detection is distributed by key: every flattened update is
  // forwarded to the owner of its key, and each detected conflicting
  // pair is reported to the reconciling peer.
  for (size_t i = 0; i < fetch.analysis.up_ex.size(); ++i) {
    const size_t controller = TxnControllerNode(fetch.trusted_txns[i].id);
    for (const core::Update& u : fetch.analysis.up_ex[i]) {
      const db::RelationSchema& schema =
          *catalog_->GetRelation(u.relation()).value();
      for (const core::RelKey& rk : u.TouchedKeys(schema)) {
        const auto route =
            ring_.Route(controller, net::KeyHash(rk.ToString()));
        network_->Charge(peer, route.hops > 0 ? route.hops : 1, 48);
      }
    }
  }
  for (const auto& pair : fetch.analysis.conflicts) {
    (void)pair;
    network_->Charge(peer, 1 + static_cast<int64_t>(
                                  ring_.Route(my_node, ring_.IdOf(my_node))
                                      .hops),
                     64);
  }
  // Ship the extensions and analysis to the peer in one bulk message.
  int64_t bytes = 0;
  for (const auto& up_ex : fetch.analysis.up_ex) {
    for (const core::Update& u : up_ex) {
      std::string buf;
      core::EncodeUpdate(&buf, u);
      bytes += static_cast<int64_t>(buf.size());
    }
  }
  bytes += static_cast<int64_t>(fetch.analysis.conflicts.size()) * 48;
  DirectSend(peer, bytes);
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return fetch;
}

Result<core::RecoveryBundle> DhtStore::Bootstrap(ParticipantId new_peer,
                                                 ParticipantId source_peer) {
  Stopwatch cpu;
  auto policy_it = policies_.find(new_peer);
  if (policy_it == policies_.end() ||
      policies_.count(source_peer) == 0) {
    return Status::NotFound("bootstrap peers must both be registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  const size_t my_node = NodeOfPeer(new_peer);
  core::RecoveryBundle bundle;

  // Watermark from the source's coordinator group; record it as the new
  // peer's watermark at its own coordinator group.
  {
    const auto holder = FirstHolder(
        new_peer, "peer:" + std::to_string(source_peer),
        [&](const NodeState& n) {
          return n.coordinated.count(source_peer) != 0;
        });
    if (holder.has_value()) {
      bundle.epoch = nodes_[*holder].coordinated.at(source_peer).epoch;
      const auto route = ring_.Route(my_node, ring_.IdOf(*holder));
      network_->Charge(new_peer, route.hops + 1, 24);
    }
    MutateGroup("peer:" + std::to_string(new_peer), [&](NodeState& node) {
      node.coordinated[new_peer] = CoordEntry{0, bundle.epoch, 0};
    });
    const auto route2 =
        ring_.Route(my_node, ring_.IdOf(CoordinatorNode(new_peer)));
    network_->Charge(new_peer, route2.hops + 1, 24);
  }

  // Sweep every live node: copy the source's accept decisions onto the
  // new peer (one bulk round trip per node, as in recovery). Visiting a
  // replica re-adopts the same ids; `adopted` dedupes the bundle while
  // the decision write itself lands on every replica of the group.
  // Ordered: the kDelta branch below walks this set into the fetch
  // cache, and adoption must replay identically across runs.
  std::set<TransactionId> adopted;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    if (!ring_.IsLive(node)) continue;
    int64_t bytes = 16;
    for (auto& [id, decisions] : nodes_[node].decisions) {
      auto src_it = decisions.find(source_peer);
      if (src_it == decisions.end() || src_it->second.verdict != 'A') continue;
      decisions[new_peer] = Decision{'A', 0};
      if (!adopted.insert(id).second) continue;
      ORCH_CHECK(nodes_[node].txns.count(id) != 0);
      ORCH_ASSIGN_OR_RETURN(Transaction txn,
                            ReadLocalOrRepair(new_peer, node, id));
      bytes += static_cast<int64_t>(core::EncodedTransactionSize(txn));
      bundle.applied.push_back(std::move(txn));
    }
    const auto route = ring_.Route(my_node, ring_.IdOf(node));
    network_->Charge(new_peer, route.hops, 16);
    network_->Charge(new_peer, 1, bytes);
  }
  std::sort(bundle.applied.begin(), bundle.applied.end(),
            [](const Transaction& a, const Transaction& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.id < b.id;
            });
  if (options_.fetch_mode == core::FetchMode::kDelta) {
    // The adopted accepts landed on every replica of their groups.
    for (const TransactionId& id : adopted) cache_.MarkApplied(new_peer, id);
  }

  // Undecided trusted transactions within the adopted window.
  core::TxnIdSet shipped;
  std::deque<std::pair<TransactionId, bool>> pending;
  for (Epoch e = 1; e <= bundle.epoch; ++e) {
    const std::string ekey = "epoch:" + std::to_string(e);
    const auto holder = FirstHolder(
        new_peer, ekey, [&](const NodeState& n) { return n.KnowsEpoch(e); });
    const size_t controller = holder.value_or(EpochControllerNode(e));
    const auto route = ring_.Route(my_node, ring_.IdOf(controller));
    if (!EpochCommitted(e)) {  // aborted or unfinished: nothing to ship
      network_->Charge(new_peer, route.hops + 1, 16);
      continue;
    }
    const auto contents = nodes_[controller].epoch_contents.find(e);
    const size_t count = contents == nodes_[controller].epoch_contents.end()
                             ? 0
                             : contents->second.size();
    network_->Charge(new_peer, route.hops + 1,
                     static_cast<int64_t>(16 * count + 16));
    if (contents == nodes_[controller].epoch_contents.end()) continue;
    for (const TransactionId& id : contents->second) {
      if (adopted.count(id) == 0) pending.emplace_back(id, false);
    }
  }
  while (!pending.empty()) {
    const auto [id, as_antecedent] = pending.front();
    pending.pop_front();
    if (!shipped.insert(id).second) continue;
    if (adopted.count(id) != 0) continue;
    ORCH_ASSIGN_OR_RETURN(TxnRead read, ReadTxnVerified(new_peer, id));
    const size_t node = read.holder;
    const auto route = ring_.Route(my_node, ring_.IdOf(node));
    const Transaction& txn = read.txn;
    const int priority = policy.PriorityOfTransaction(txn);
    if (!as_antecedent && priority <= 0) {
      network_->Charge(new_peer, route.hops + 1, 24);
      continue;
    }
    network_->Charge(
        new_peer, route.hops + 1,
        static_cast<int64_t>(core::EncodedTransactionSize(txn)) + 8);
    if (!as_antecedent) bundle.undecided.emplace_back(id, priority);
    bundle.closure.push_back(txn);
    for (const TransactionId& ante : txn.antecedents) {
      pending.emplace_back(ante, true);
    }
  }
  cpu_micros_[new_peer] += cpu.ElapsedMicros();
  calls_[new_peer] += 1;
  return bundle;
}

Result<size_t> DhtStore::JoinNode() {
  ORCH_ASSIGN_OR_RETURN(const size_t node, ring_.Join());
  if (node >= nodes_.size()) nodes_.resize(node + 1);
  RepairReplication();
  return node;
}

Status DhtStore::LeaveNode(size_t node) {
  ORCH_RETURN_IF_ERROR(ring_.Leave(node));
  // The departed node's state is still readable during the handoff —
  // RepairReplication collects from every slot — so a graceful leave
  // loses nothing even with replication off.
  RepairReplication();
  nodes_[node] = NodeState{};
  return Status::OK();
}

Status DhtStore::CrashNode(size_t node, bool repair) {
  ORCH_RETURN_IF_ERROR(ring_.Crash(node));
  nodes_[node] = NodeState{};  // state dies with the node
  if (repair) RepairReplication();
  return Status::OK();
}

void DhtStore::RepairReplication() {
  // Key-range re-replication: for every item held anywhere, install it
  // on the replica-group members that lack it and drop it from nodes no
  // longer in the group. Collection reads every slot (a gracefully
  // departing node's state is a valid copy source until it is cleared);
  // placement touches only live nodes. Each installed copy is one
  // replica-to-replica transfer charged to kRepairEndpoint.
  const auto is_member = [](const std::vector<size_t>& group, size_t node) {
    return std::find(group.begin(), group.end(), node) != group.end();
  };

  // Epoch allocator counter: the authoritative value is the largest
  // surviving copy (replicas only ever agree or trail after a partial
  // fan-out abort); ex-replicas are reset so a later repair cannot
  // resurrect a stale counter.
  {
    const auto group = GroupFor("epoch-allocator");
    int64_t counter = 0;
    for (const NodeState& n : nodes_) {
      counter = std::max(counter, n.epoch_counter);
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!ring_.IsLive(i)) continue;
      const int64_t want = is_member(group, i) ? counter : 0;
      if (nodes_[i].epoch_counter != want) {
        if (want != 0) network_->Charge(kRepairEndpoint, 1, 16);
        nodes_[i].epoch_counter = want;
      }
    }
  }

  // Epoch controller records.
  struct EpochRec {
    std::vector<TransactionId> contents;
    bool has_contents = false;
    bool done = false;
    bool aborted = false;
  };
  std::map<Epoch, EpochRec> epochs;
  for (const NodeState& n : nodes_) {
    for (const auto& [e, contents] : n.epoch_contents) {
      EpochRec& rec = epochs[e];
      if (!rec.has_contents) {
        rec.contents = contents;
        rec.has_contents = true;
      }
    }
    for (Epoch e : n.epoch_done) epochs[e].done = true;
    for (Epoch e : n.epoch_aborted) epochs[e].aborted = true;
  }
  for (const auto& [e, rec] : epochs) {
    const auto group = GroupFor("epoch:" + std::to_string(e));
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!ring_.IsLive(i)) continue;
      NodeState& n = nodes_[i];
      if (!is_member(group, i)) {
        n.epoch_contents.erase(e);
        n.epoch_done.erase(e);
        n.epoch_aborted.erase(e);
        continue;
      }
      const bool knew = n.KnowsEpoch(e);
      if (rec.has_contents) {
        n.epoch_contents[e] = rec.contents;
      } else {
        n.epoch_contents.erase(e);
      }
      if (rec.done) n.epoch_done.insert(e); else n.epoch_done.erase(e);
      if (rec.aborted) n.epoch_aborted.insert(e); else n.epoch_aborted.erase(e);
      if (!knew) {
        network_->Charge(kRepairEndpoint, 1,
                         static_cast<int64_t>(16 * rec.contents.size() + 16));
      }
    }
  }

  // Transactions and the decision logs that ride on the same key.
  // Ordered unions: repair traffic and re-placement below walk them, and
  // that walk order must be reproducible (lint rule D3).
  std::map<TransactionId, Transaction> txn_union;
  std::map<TransactionId, std::map<ParticipantId, Decision>> dec_union;
  // Copy source for each id's wire blob: the first *verified* replica,
  // so repair propagates clean bytes, never rot. When no copy verifies
  // the first one found is kept (tentative) — re-placement cannot
  // invent data checksums say is gone.
  std::map<TransactionId, std::string> wire_union;
  std::set<TransactionId> wire_verified;
  for (const NodeState& n : nodes_) {
    for (const auto& [id, txn] : n.txns) txn_union.emplace(id, txn);
    for (const auto& [id, wire] : n.txn_wire) {
      if (wire_verified.count(id) != 0) continue;
      const bool ok =
          db::UnwrapEnvelope(wire, db::EnvelopePolicy::kRequireFrame).ok();
      if (ok) {
        wire_union[id] = wire;
        wire_verified.insert(id);
      } else {
        wire_union.emplace(id, wire);
      }
    }
    for (const auto& [id, per_peer] : n.decisions) {
      auto& merged = dec_union[id];
      for (const auto& [p, d] : per_peer) merged.emplace(p, d);
    }
  }
  for (const auto& [id, txn] : txn_union) {
    const auto group = GroupFor("txn:" + id.ToString());
    const auto dec_it = dec_union.find(id);
    auto wire_it = wire_union.find(id);
    if (wire_it == wire_union.end()) {
      // A copy installed before the framed format existed; re-frame it.
      wire_it = wire_union.emplace(id, WireOf(txn)).first;
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!ring_.IsLive(i)) continue;
      NodeState& n = nodes_[i];
      if (!is_member(group, i)) {
        n.txns.erase(id);
        n.txn_wire.erase(id);
        n.decisions.erase(id);
        continue;
      }
      if (n.txns.count(id) == 0) {
        network_->Charge(kRepairEndpoint, 1,
                         static_cast<int64_t>(wire_it->second.size()));
      }
      n.txns.insert_or_assign(id, txn);
      n.txn_wire.insert_or_assign(id, wire_it->second);
      if (dec_it != dec_union.end()) {
        n.decisions[id] = dec_it->second;
      } else {
        n.decisions.erase(id);
      }
    }
  }
  // Decision logs whose transaction is gone (aborted residue): keep them
  // placed with the same key discipline.
  for (const auto& [id, per_peer] : dec_union) {
    if (txn_union.count(id) != 0) continue;
    const auto group = GroupFor("txn:" + id.ToString());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!ring_.IsLive(i)) continue;
      if (!is_member(group, i)) {
        nodes_[i].decisions.erase(id);
      } else {
        nodes_[i].decisions[id] = per_peer;
      }
    }
  }

  // Peer coordinator entries.
  std::map<ParticipantId, CoordEntry> coord_union;
  for (const NodeState& n : nodes_) {
    for (const auto& [p, entry] : n.coordinated) {
      CoordEntry& merged = coord_union[p];
      merged.recno = std::max(merged.recno, entry.recno);
      merged.epoch = std::max(merged.epoch, entry.epoch);
      merged.decided_recno = std::max(merged.decided_recno, entry.decided_recno);
    }
  }
  for (const auto& [p, entry] : coord_union) {
    const auto group = GroupFor("peer:" + std::to_string(p));
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!ring_.IsLive(i)) continue;
      if (!is_member(group, i)) {
        nodes_[i].coordinated.erase(p);
        continue;
      }
      if (nodes_[i].coordinated.count(p) == 0) {
        network_->Charge(kRepairEndpoint, 1, 24);
      }
      nodes_[i].coordinated[p] = entry;
    }
  }
}

DhtStore::ScrubReport DhtStore::ScrubReplicas() {
  static Counter& checked = MetricsRegistry::Global().GetCounter(
      "integrity.scrub_replicas_checked");
  static Counter& found = MetricsRegistry::Global().GetCounter(
      "integrity.scrub_corrupt_found");
  static Counter& repairs =
      MetricsRegistry::Global().GetCounter("integrity.scrub_repairs");
  static Counter& lost = MetricsRegistry::Global().GetCounter(
      "integrity.scrub_unrecoverable");
  ScrubReport report;
  // Ordered union of stored ids (lint rule D3: deterministic walk).
  std::set<TransactionId> ids;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!ring_.IsLive(i)) continue;
    for (const auto& [id, wire] : nodes_[i].txn_wire) ids.insert(id);
  }
  for (const TransactionId& id : ids) {
    const auto group = GroupFor("txn:" + id.ToString());
    std::optional<size_t> good;
    std::vector<size_t> corrupt;
    for (size_t node : group) {
      auto it = nodes_[node].txn_wire.find(id);
      if (it == nodes_[node].txn_wire.end()) continue;
      ++report.replicas_checked;
      if (db::UnwrapEnvelope(it->second, db::EnvelopePolicy::kRequireFrame)
              .ok()) {
        if (!good.has_value()) good = node;
      } else {
        ++report.corrupt_found;
        corrupt.push_back(node);
      }
    }
    if (corrupt.empty()) continue;
    if (!good.has_value()) {
      // Rotten everywhere: nothing to heal from. The next read of this
      // id reports kDataLoss; the scrub only surfaces it early.
      ++report.unrecoverable;
      continue;
    }
    const std::string& wire = nodes_[*good].txn_wire.at(id);
    const auto decoded = DecodeWire(wire);
    for (size_t bad : corrupt) {
      network_->Charge(kRepairEndpoint, 1,
                       static_cast<int64_t>(wire.size()));
      nodes_[bad].txn_wire.insert_or_assign(id, wire);
      if (decoded.ok()) nodes_[bad].txns.insert_or_assign(id, *decoded);
      ++report.healed;
    }
  }
  checked.Add(report.replicas_checked);
  found.Add(report.corrupt_found);
  repairs.Add(report.healed);
  lost.Add(report.unrecoverable);
  return report;
}

bool DhtStore::CheckReplicationInvariant() const {
  const auto holders_equal_group = [&](const std::string& key,
                                       auto&& has) {
    const auto group = GroupFor(key);
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const bool member =
          std::find(group.begin(), group.end(), i) != group.end();
      const bool holds = ring_.IsLive(i) && has(nodes_[i]);
      if (member != holds) return false;
    }
    return true;
  };

  bool any_allocated = false;
  for (const NodeState& n : nodes_) any_allocated |= n.epoch_counter != 0;
  if (any_allocated &&
      !holders_equal_group("epoch-allocator", [](const NodeState& n) {
        return n.epoch_counter != 0;
      })) {
    return false;
  }

  // Ordered so the per-key invariant probes below run in a reproducible
  // order (they charge nothing, but determinism is the house style).
  std::set<Epoch> epochs;
  std::set<TransactionId> txn_ids;
  std::set<ParticipantId> peers;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!ring_.IsLive(i)) continue;
    const NodeState& n = nodes_[i];
    for (const auto& [e, c] : n.epoch_contents) epochs.insert(e);
    for (Epoch e : n.epoch_done) epochs.insert(e);
    for (Epoch e : n.epoch_aborted) epochs.insert(e);
    for (const auto& [id, txn] : n.txns) txn_ids.insert(id);
    for (const auto& [p, entry] : n.coordinated) peers.insert(p);
  }
  for (Epoch e : epochs) {
    if (!holders_equal_group(
            "epoch:" + std::to_string(e),
            [&](const NodeState& n) { return n.KnowsEpoch(e); })) {
      return false;
    }
  }
  for (const TransactionId& id : txn_ids) {
    if (!holders_equal_group(
            "txn:" + id.ToString(),
            [&](const NodeState& n) { return n.txns.count(id) != 0; })) {
      return false;
    }
  }
  for (ParticipantId p : peers) {
    if (!holders_equal_group("peer:" + std::to_string(p),
                             [&](const NodeState& n) {
                               return n.coordinated.count(p) != 0;
                             })) {
      return false;
    }
  }
  return true;
}

core::StoreStats DhtStore::StatsFor(ParticipantId peer) const {
  const net::NetStats net = network_->StatsFor(peer);
  core::StoreStats stats;
  stats.sim_network_micros = net.micros;
  stats.messages = net.messages;
  stats.bytes = net.bytes;
  auto cpu_it = cpu_micros_.find(peer);
  stats.store_cpu_micros = cpu_it == cpu_micros_.end() ? 0 : cpu_it->second;
  auto call_it = calls_.find(peer);
  stats.calls = call_it == calls_.end() ? 0 : call_it->second;
  return stats;
}

}  // namespace orchestra::store
