#include "store/dht_store.h"

#include <deque>

#include "common/check.h"
#include "common/clock.h"
#include "core/extension.h"

namespace orchestra::store {

using core::Epoch;
using core::ParticipantId;
using core::ReconcileFetch;
using core::Transaction;
using core::TransactionId;
using core::TxnIdSet;

DhtStore::DhtStore(size_t nodes, net::SimNetwork* network,
                   const db::Catalog* catalog, DhtStoreOptions options)
    : ring_(nodes), network_(network), catalog_(catalog), options_(options),
      nodes_(nodes) {
  ORCH_CHECK(network != nullptr);
}

size_t DhtStore::RoutedSend(ParticipantId peer, size_t from_node,
                            net::NodeId key, int64_t bytes) {
  const net::RouteResult route = ring_.Route(from_node, key);
  if (route.hops > 0) network_->Charge(peer, route.hops, bytes);
  return route.owner;
}

void DhtStore::DirectSend(ParticipantId peer, int64_t bytes) {
  network_->Charge(peer, 1, bytes);
}

namespace {
// A DHT protocol operation is made of many messages, so per-message
// loss must be absorbed per message — retransmitting, and paying for
// the retransmission — the way a reliable transport would. Otherwise
// an operation with N messages fails with probability ~1-(1-p)^N and
// no operation-level retry budget can keep up. Sticky faults (crashed
// links/nodes) exhaust the budget and surface to the caller.
constexpr int kMaxTransmits = 5;
}  // namespace

Result<size_t> DhtStore::TryRoutedSend(ParticipantId peer, size_t from_node,
                                       net::NodeId key, int64_t bytes) {
  const net::RouteResult route = ring_.Route(from_node, key);
  if (route.hops > 0) {
    Status sent;
    for (int attempt = 0; attempt < kMaxTransmits; ++attempt) {
      sent = network_->TryCharge(peer, route.hops, bytes);
      if (sent.ok()) break;
    }
    ORCH_RETURN_IF_ERROR(sent);
  }
  return route.owner;
}

Status DhtStore::TryDirectSend(ParticipantId peer, int64_t bytes) {
  Status sent;
  for (int attempt = 0; attempt < kMaxTransmits; ++attempt) {
    sent = network_->TryCharge(peer, 1, bytes);
    if (sent.ok()) break;
  }
  return sent;
}

bool DhtStore::EpochCommitted(Epoch e) const {
  const NodeState& node = nodes_[EpochControllerNode(e)];
  return node.epoch_done.count(e) != 0 && node.epoch_aborted.count(e) == 0;
}

bool DhtStore::IsCommittedTxn(const TransactionId& id) const {
  const NodeState& node = nodes_[TxnControllerNode(id)];
  auto it = node.txns.find(id);
  if (it == node.txns.end()) return false;
  return EpochCommitted(it->second.epoch);
}

void DhtStore::AbortEpoch(ParticipantId peer, Epoch epoch,
                          const std::vector<TransactionId>& staged) {
  // A sticky fault models a crashed publisher: its cleanup never runs,
  // the epoch stays unfinished, and the reaper eventually marks it
  // aborted from the reconciliation path instead.
  FaultInjector* injector = network_->fault_injector();
  if (injector != nullptr && injector->tripped()) return;
  FaultInjector::ScopedDisable guard(injector);
  const size_t my_node = NodeOfPeer(peer);
  for (const TransactionId& id : staged) {
    NodeState& node = nodes_[TxnControllerNode(id)];
    node.txns.erase(id);
    auto dec_it = node.decisions.find(id);
    if (dec_it != node.decisions.end()) {
      dec_it->second.erase(peer);
      if (dec_it->second.empty()) node.decisions.erase(dec_it);
    }
    RoutedSend(peer, my_node, net::KeyHash("txn:" + id.ToString()), 24);
  }
  const size_t controller = RoutedSend(
      peer, my_node, net::KeyHash("epoch:" + std::to_string(epoch)), 24);
  nodes_[controller].epoch_contents.erase(epoch);
  nodes_[controller].epoch_aborted.insert(epoch);
}

Status DhtStore::RegisterParticipant(ParticipantId peer,
                                     const core::TrustPolicy* policy) {
  ORCH_CHECK(policy != nullptr);
  policies_[peer] = policy;
  nodes_[CoordinatorNode(peer)].coordinated.emplace(peer, CoordEntry{});
  return Status::OK();
}

Result<Epoch> DhtStore::Publish(ParticipantId peer,
                                std::vector<Transaction> txns) {
  Stopwatch cpu;
  const size_t my_node = NodeOfPeer(peer);

  // Fig. 6 message sequence, made crash-consistent: the epoch controller
  // confirms the epoch *finished* — the commit point — only after every
  // transaction controller has accepted its transaction. Any message
  // lost before that aborts the epoch and leaves nothing visible.
  // (1) request epoch -> allocator.
  ORCH_ASSIGN_OR_RETURN(
      const size_t allocator,
      TryRoutedSend(peer, my_node, net::KeyHash("epoch-allocator"), 16));
  const Epoch epoch = ++nodes_[allocator].epoch_counter;
  // A failure past this point burns the number; reconcilers tolerate
  // gaps via the stuck-epoch reaper.
  std::vector<TransactionId> staged;
  const auto abort_with = [&](Status status) {
    AbortEpoch(peer, epoch, staged);
    return status;
  };
  // (2) allocator -> epoch controller: begin epoch e.
  auto begin = TryRoutedSend(peer, allocator,
                             net::KeyHash("epoch:" + std::to_string(epoch)),
                             16);
  if (!begin.ok()) return abort_with(begin.status());
  const size_t controller = *begin;
  nodes_[controller].epoch_contents[epoch];  // mark as begun (open)
  // (3) controller -> allocator: confirm epoch begun.
  // (4) allocator -> publishing peer: begin publishing at epoch e.
  if (Status s = TryDirectSend(peer, 8); !s.ok()) return abort_with(s);
  if (Status s = TryDirectSend(peer, 16); !s.ok()) return abort_with(s);

  // Validate before any transaction lands: a duplicate — within the
  // batch or against a *committed* epoch — must leave no trace, or one
  // bad publish would freeze the stable watermark for every peer.
  // Residue of an aborted epoch is republishable and gets overwritten.
  TxnIdSet batch_ids;
  for (Transaction& txn : txns) {
    txn.epoch = epoch;
    if (!batch_ids.insert(txn.id).second || IsCommittedTxn(txn.id)) {
      return abort_with(Status::AlreadyExists(
          "transaction " + txn.id.ToString() + " already published"));
    }
  }

  // (5) publish transaction IDs for epoch e -> epoch controller.
  std::vector<TransactionId> ids;
  ids.reserve(txns.size());
  for (const Transaction& txn : txns) ids.push_back(txn.id);
  if (Status s = TryRoutedSend(peer, my_node,
                               net::KeyHash("epoch:" + std::to_string(epoch)),
                               static_cast<int64_t>(16 * ids.size() + 16))
                     .status();
      !s.ok()) {
    return abort_with(s);
  }
  nodes_[controller].epoch_contents[epoch] = ids;

  // (6) the peer sends each transaction to its transaction controller,
  // which records the publisher's implicit self-acceptance.
  for (Transaction& txn : txns) {
    const int64_t size =
        static_cast<int64_t>(core::EncodedTransactionSize(txn));
    const TransactionId id = txn.id;
    auto sent =
        TryRoutedSend(peer, my_node, net::KeyHash("txn:" + id.ToString()),
                      size);
    if (!sent.ok()) return abort_with(sent.status());
    nodes_[*sent].txns.insert_or_assign(id, std::move(txn));
    nodes_[*sent].decisions[id][peer] = Decision{'A', 0};
    staged.push_back(id);
    if (Status s = TryDirectSend(peer, 8); !s.ok()) return abort_with(s);
  }

  // (7) controller confirms the epoch finished: the commit point. The
  // reaper may have aborted the epoch under a slow publisher; an aborted
  // epoch can never finish (peers already advanced past it).
  if (Status s = TryRoutedSend(peer, my_node,
                               net::KeyHash("epoch:" + std::to_string(epoch)),
                               16)
                     .status();
      !s.ok()) {
    return abort_with(s);
  }
  if (nodes_[controller].epoch_aborted.count(epoch) != 0) {
    return abort_with(Status::Unavailable(
        "epoch " + std::to_string(epoch) +
        " was aborted before commit; republish"));
  }
  nodes_[controller].epoch_done.insert(epoch);
  DirectSend(peer, 8);  // ack to publisher (commit already durable)
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return epoch;
}

Result<ReconcileFetch> DhtStore::BeginReconciliation(ParticipantId peer) {
  Stopwatch cpu;
  auto policy_it = policies_.find(peer);
  if (policy_it == policies_.end()) {
    return Status::NotFound("peer " + std::to_string(peer) +
                            " is not registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  const size_t my_node = NodeOfPeer(peer);
  ReconcileFetch fetch;

  // Most recent epoch from the allocator (request + reply).
  ORCH_ASSIGN_OR_RETURN(
      const size_t allocator,
      TryRoutedSend(peer, my_node, net::KeyHash("epoch-allocator"), 16));
  const Epoch latest = nodes_[allocator].epoch_counter;
  ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 16));

  // Prior watermark and recno from this peer's coordinator. The recno is
  // allocated now (a failure later burns it, harmlessly); the watermark
  // is committed only once the whole fetch has been assembled.
  ORCH_ASSIGN_OR_RETURN(
      const size_t coordinator,
      TryRoutedSend(peer, my_node, net::KeyHash("peer:" + std::to_string(peer)),
                    16));
  CoordEntry& coord_entry = nodes_[coordinator].coordinated[peer];
  const Epoch prev = coord_entry.epoch;
  coord_entry.recno += 1;
  fetch.recno = coord_entry.recno;
  ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 16));

  // Fetch the contents of every epoch since the previous reconciliation
  // from the epoch controllers, and find the latest stable epoch (no
  // unfinished epoch preceding it). Aborted epochs are empty and are
  // skipped; an epoch observed unfinished by `stuck_epoch_reap_threshold`
  // scans belongs to a crashed publisher and is reaped to aborted so it
  // cannot freeze the watermark.
  Epoch stable = prev;
  std::vector<TransactionId> published;
  for (Epoch e = prev + 1; e <= latest; ++e) {
    ORCH_ASSIGN_OR_RETURN(
        const size_t controller,
        TryRoutedSend(peer, my_node,
                      net::KeyHash("epoch:" + std::to_string(e)), 16));
    NodeState& node = nodes_[controller];
    if (node.epoch_aborted.count(e) != 0) {
      ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 8));
      stable = e;  // nothing to ship, but the watermark passes over it
      continue;
    }
    const bool done = node.epoch_done.count(e) != 0;
    const auto contents_it = node.epoch_contents.find(e);
    const size_t count = contents_it == node.epoch_contents.end()
                             ? 0
                             : contents_it->second.size();
    ORCH_RETURN_IF_ERROR(
        TryDirectSend(peer, static_cast<int64_t>(16 * count + 16)));
    if (!done) {
      const int strikes = ++epoch_strikes_[e];
      if (strikes >= options_.stuck_epoch_reap_threshold) {
        node.epoch_contents.erase(e);
        node.epoch_aborted.insert(e);
        epoch_strikes_.erase(e);
        stable = e;
        continue;
      }
      break;  // everything after an unfinished epoch is unstable
    }
    stable = e;
    if (contents_it != node.epoch_contents.end()) {
      for (const TransactionId& id : contents_it->second) {
        published.push_back(id);
      }
    }
  }
  fetch.epoch = stable;

  // Request every published transaction from its transaction controller,
  // following antecedent chains through a pending set (Fig. 7). The
  // controller evaluates the peer's trust predicates and decision log:
  // decided or (top-level) untrusted transactions yield a small
  // "not relevant" reply; everything else is shipped with its priority
  // and antecedent ids.
  TxnIdSet requested;
  std::deque<std::pair<TransactionId, bool>> pending;  // (id, as_antecedent)
  for (const TransactionId& id : published) pending.emplace_back(id, false);
  while (!pending.empty()) {
    const auto [id, as_antecedent] = pending.front();
    pending.pop_front();
    if (!requested.insert(id).second) continue;
    ORCH_ASSIGN_OR_RETURN(
        const size_t txn_node,
        TryRoutedSend(peer, my_node, net::KeyHash("txn:" + id.ToString()),
                      24));
    const NodeState& node = nodes_[txn_node];
    auto txn_it = node.txns.find(id);
    if (txn_it == node.txns.end()) {
      // Unreachable once publishing commits last: every id in a finished
      // epoch's contents has its transaction durably at its controller.
      return Status::Internal("transaction controller lost " + id.ToString());
    }
    const Transaction& txn = txn_it->second;
    // Decision check at the controller.
    char decided = 0;
    auto dec_it = node.decisions.find(id);
    if (dec_it != node.decisions.end()) {
      auto peer_it = dec_it->second.find(peer);
      if (peer_it != dec_it->second.end()) decided = peer_it->second.verdict;
    }
    if (decided == 'A' || (!as_antecedent && decided != 0)) {
      ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 8));  // "not relevant"
      continue;
    }
    const int priority = policy.PriorityOfTransaction(txn);
    if (!as_antecedent && priority <= 0) {
      ORCH_RETURN_IF_ERROR(TryDirectSend(peer, 8));  // "untrusted"
      continue;
    }
    // Ship the transaction, its priority, and its antecedents.
    ORCH_RETURN_IF_ERROR(TryDirectSend(
        peer, static_cast<int64_t>(core::EncodedTransactionSize(txn)) + 8));
    if (!as_antecedent) fetch.trusted.emplace_back(id, priority);
    fetch.transactions.push_back(txn);
    for (const TransactionId& ante : txn.antecedents) {
      pending.emplace_back(ante, true);
    }
  }

  // Commit the new watermark at the coordinator only now that the fetch
  // is fully assembled: a lost message anywhere above must not advance
  // it, or the window (prev, stable] would be skipped forever.
  ORCH_RETURN_IF_ERROR(
      TryRoutedSend(peer, my_node,
                    net::KeyHash("peer:" + std::to_string(peer)), 24)
          .status());
  coord_entry.epoch = stable;
  DirectSend(peer, 8);  // ack
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return fetch;
}

Status DhtStore::RecordDecisions(ParticipantId peer, int64_t recno,
                                 const std::vector<TransactionId>& applied,
                                 const std::vector<TransactionId>& rejected) {
  Stopwatch cpu;
  const size_t my_node = NodeOfPeer(peer);
  // Notify each transaction's controller, tagging the decision with the
  // reconciliation that produced it. Recording is idempotent, so a retry
  // after a lost message simply re-sends the whole outcome.
  for (const TransactionId& id : applied) {
    ORCH_ASSIGN_OR_RETURN(
        const size_t node,
        TryRoutedSend(peer, my_node, net::KeyHash("txn:" + id.ToString()),
                      24));
    nodes_[node].decisions[id][peer] = Decision{'A', recno};
  }
  for (const TransactionId& id : rejected) {
    ORCH_ASSIGN_OR_RETURN(
        const size_t node,
        TryRoutedSend(peer, my_node, net::KeyHash("txn:" + id.ToString()),
                      24));
    nodes_[node].decisions[id][peer] = Decision{'R', recno};
  }
  // Last message: the coordinator's completion witness. Until it lands,
  // recovery reports the reconciliation as interrupted
  // (last_decided_recno < recno).
  ORCH_ASSIGN_OR_RETURN(
      const size_t coordinator,
      TryRoutedSend(peer, my_node,
                    net::KeyHash("peer:" + std::to_string(peer)), 24));
  nodes_[coordinator].coordinated[peer].decided_recno = recno;
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return Status::OK();
}

Result<core::RecoveryBundle> DhtStore::FetchRecoveryState(
    ParticipantId peer) const {
  Stopwatch cpu;
  auto policy_it = policies_.find(peer);
  if (policy_it == policies_.end()) {
    return Status::NotFound("peer " + std::to_string(peer) +
                            " is not registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  core::RecoveryBundle bundle;

  // Watermark, recno and completion witness from the peer coordinator
  // (one round trip).
  {
    const size_t coordinator = CoordinatorNode(peer);
    auto it = nodes_[coordinator].coordinated.find(peer);
    if (it != nodes_[coordinator].coordinated.end()) {
      bundle.recno = it->second.recno;
      bundle.epoch = it->second.epoch;
      bundle.last_decided_recno = it->second.decided_recno;
    }
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(coordinator));
    network_->Charge(peer, route.hops + 1, 24);
  }

  // Without its soft state the peer cannot know which transaction
  // controllers hold its decisions, so recovery sweeps every node: one
  // request per node, one bulk reply carrying that node's transactions
  // and this peer's decisions on them.
  core::TxnIdSet decided;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    int64_t bytes = 16;
    for (const auto& [id, txn] : nodes_[node].txns) {
      auto dec_it = nodes_[node].decisions.find(id);
      if (dec_it == nodes_[node].decisions.end()) continue;
      auto peer_it = dec_it->second.find(peer);
      if (peer_it == dec_it->second.end()) continue;
      decided.insert(id);
      if (peer_it->second.verdict == 'A') {
        bundle.applied.push_back(txn);
        bytes += static_cast<int64_t>(core::EncodedTransactionSize(txn));
      } else {
        bundle.rejected.push_back(id);
        bytes += 16;
      }
    }
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(node));
    network_->Charge(peer, route.hops, 16);
    network_->Charge(peer, 1, bytes);  // reply
  }
  std::sort(bundle.applied.begin(), bundle.applied.end(),
            [](const Transaction& a, const Transaction& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.id < b.id;
            });

  // Undecided trusted transactions within the watermark, from the epoch
  // controllers, plus antecedent closures from their controllers.
  core::TxnIdSet applied_ids;
  for (const Transaction& txn : bundle.applied) applied_ids.insert(txn.id);
  core::TxnIdSet shipped;
  std::deque<std::pair<TransactionId, bool>> pending;
  for (Epoch e = 1; e <= bundle.epoch; ++e) {
    const size_t controller = EpochControllerNode(e);
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(controller));
    if (!EpochCommitted(e)) {  // aborted or unfinished: nothing to ship
      network_->Charge(peer, route.hops + 1, 16);
      continue;
    }
    const auto contents = nodes_[controller].epoch_contents.find(e);
    const size_t count = contents == nodes_[controller].epoch_contents.end()
                             ? 0
                             : contents->second.size();
    network_->Charge(peer, route.hops + 1,
                     static_cast<int64_t>(16 * count + 16));
    if (contents == nodes_[controller].epoch_contents.end()) continue;
    for (const TransactionId& id : contents->second) {
      if (decided.count(id) == 0) pending.emplace_back(id, false);
    }
  }
  while (!pending.empty()) {
    const auto [id, as_antecedent] = pending.front();
    pending.pop_front();
    if (!shipped.insert(id).second) continue;
    if (applied_ids.count(id) != 0) continue;
    const size_t node = TxnControllerNode(id);
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(node));
    auto txn_it = nodes_[node].txns.find(id);
    if (txn_it == nodes_[node].txns.end()) {
      return Status::Internal("transaction controller lost " + id.ToString());
    }
    const Transaction& txn = txn_it->second;
    const int priority = policy.PriorityOfTransaction(txn);
    if (!as_antecedent && priority <= 0) {
      network_->Charge(peer, route.hops + 1, 24);
      continue;
    }
    network_->Charge(
        peer, route.hops + 1,
        static_cast<int64_t>(core::EncodedTransactionSize(txn)) + 8);
    if (!as_antecedent) bundle.undecided.emplace_back(id, priority);
    bundle.closure.push_back(txn);
    for (const TransactionId& ante : txn.antecedents) {
      pending.emplace_back(ante, true);
    }
  }
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return bundle;
}

Result<core::NetworkCentricFetch> DhtStore::BeginNetworkCentricReconciliation(
    ParticipantId peer) {
  if (catalog_ == nullptr) {
    return Status::NotSupported(
        "DHT store was built without a catalog; network-centric "
        "reconciliation needs the shared schema");
  }
  core::NetworkCentricFetch fetch;
  ORCH_ASSIGN_OR_RETURN(fetch.base, BeginReconciliation(peer));

  Stopwatch cpu;
  const size_t my_node = NodeOfPeer(peer);
  core::TransactionMap bundle;
  for (const Transaction& txn : fetch.base.transactions) bundle.Put(txn);

  // Each trusted transaction's controller assembles its extension by
  // querying the antecedents' controllers (controller-to-controller
  // traffic charged per edge), then flattens it locally.
  for (const auto& [txn_id, priority] : fetch.base.trusted) {
    core::TrustedTxn t;
    t.id = txn_id;
    t.priority = priority;
    t.extension = core::ComputeExtensionFromBundle(bundle, txn_id);
    const size_t controller = TxnControllerNode(txn_id);
    for (const TransactionId& member : t.extension) {
      if (member == txn_id) continue;
      const auto route =
          ring_.Route(controller, net::KeyHash("txn:" + member.ToString()));
      int64_t sz = 64;
      if (auto txn = bundle.Get(member); txn.ok()) {
        sz = static_cast<int64_t>(core::EncodedTransactionSize(**txn));
      }
      network_->Charge(peer, route.hops + 1, sz);
    }
    fetch.trusted_txns.push_back(std::move(t));
  }
  fetch.analysis =
      core::AnalyzeExtensions(*catalog_, bundle, fetch.trusted_txns);

  // Conflict detection is distributed by key: every flattened update is
  // forwarded to the owner of its key, and each detected conflicting
  // pair is reported to the reconciling peer.
  for (size_t i = 0; i < fetch.analysis.up_ex.size(); ++i) {
    const size_t controller = TxnControllerNode(fetch.trusted_txns[i].id);
    for (const core::Update& u : fetch.analysis.up_ex[i]) {
      const db::RelationSchema& schema =
          *catalog_->GetRelation(u.relation()).value();
      for (const core::RelKey& rk : u.TouchedKeys(schema)) {
        const auto route =
            ring_.Route(controller, net::KeyHash(rk.ToString()));
        network_->Charge(peer, route.hops > 0 ? route.hops : 1, 48);
      }
    }
  }
  for (const auto& pair : fetch.analysis.conflicts) {
    (void)pair;
    network_->Charge(peer, 1 + static_cast<int64_t>(
                                  ring_.Route(my_node, ring_.IdOf(my_node))
                                      .hops),
                     64);
  }
  // Ship the extensions and analysis to the peer in one bulk message.
  int64_t bytes = 0;
  for (const auto& up_ex : fetch.analysis.up_ex) {
    for (const core::Update& u : up_ex) {
      std::string buf;
      core::EncodeUpdate(&buf, u);
      bytes += static_cast<int64_t>(buf.size());
    }
  }
  bytes += static_cast<int64_t>(fetch.analysis.conflicts.size()) * 48;
  DirectSend(peer, bytes);
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return fetch;
}

Result<core::RecoveryBundle> DhtStore::Bootstrap(ParticipantId new_peer,
                                                 ParticipantId source_peer) {
  Stopwatch cpu;
  auto policy_it = policies_.find(new_peer);
  if (policy_it == policies_.end() ||
      policies_.count(source_peer) == 0) {
    return Status::NotFound("bootstrap peers must both be registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  const size_t my_node = NodeOfPeer(new_peer);
  core::RecoveryBundle bundle;

  // Watermark from the source's coordinator; record it as the new
  // peer's watermark at its own coordinator.
  {
    const size_t src_coord = CoordinatorNode(source_peer);
    auto it = nodes_[src_coord].coordinated.find(source_peer);
    if (it != nodes_[src_coord].coordinated.end()) {
      bundle.epoch = it->second.epoch;
    }
    const auto route = ring_.Route(my_node, ring_.IdOf(src_coord));
    network_->Charge(new_peer, route.hops + 1, 24);
    nodes_[CoordinatorNode(new_peer)].coordinated[new_peer] =
        CoordEntry{0, bundle.epoch, 0};
    const auto route2 =
        ring_.Route(my_node, ring_.IdOf(CoordinatorNode(new_peer)));
    network_->Charge(new_peer, route2.hops + 1, 24);
  }

  // Sweep every node: copy the source's accept decisions onto the new
  // peer (one bulk round trip per node, as in recovery).
  core::TxnIdSet adopted;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    int64_t bytes = 16;
    for (auto& [id, decisions] : nodes_[node].decisions) {
      auto src_it = decisions.find(source_peer);
      if (src_it == decisions.end() || src_it->second.verdict != 'A') continue;
      decisions[new_peer] = Decision{'A', 0};
      adopted.insert(id);
      auto txn_it = nodes_[node].txns.find(id);
      ORCH_CHECK(txn_it != nodes_[node].txns.end());
      bundle.applied.push_back(txn_it->second);
      bytes +=
          static_cast<int64_t>(core::EncodedTransactionSize(txn_it->second));
    }
    const auto route = ring_.Route(my_node, ring_.IdOf(node));
    network_->Charge(new_peer, route.hops, 16);
    network_->Charge(new_peer, 1, bytes);
  }
  std::sort(bundle.applied.begin(), bundle.applied.end(),
            [](const Transaction& a, const Transaction& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.id < b.id;
            });

  // Undecided trusted transactions within the adopted window.
  core::TxnIdSet shipped;
  std::deque<std::pair<TransactionId, bool>> pending;
  for (Epoch e = 1; e <= bundle.epoch; ++e) {
    const size_t controller = EpochControllerNode(e);
    const auto route = ring_.Route(my_node, ring_.IdOf(controller));
    if (!EpochCommitted(e)) {  // aborted or unfinished: nothing to ship
      network_->Charge(new_peer, route.hops + 1, 16);
      continue;
    }
    const auto contents = nodes_[controller].epoch_contents.find(e);
    const size_t count = contents == nodes_[controller].epoch_contents.end()
                             ? 0
                             : contents->second.size();
    network_->Charge(new_peer, route.hops + 1,
                     static_cast<int64_t>(16 * count + 16));
    if (contents == nodes_[controller].epoch_contents.end()) continue;
    for (const TransactionId& id : contents->second) {
      if (adopted.count(id) == 0) pending.emplace_back(id, false);
    }
  }
  while (!pending.empty()) {
    const auto [id, as_antecedent] = pending.front();
    pending.pop_front();
    if (!shipped.insert(id).second) continue;
    if (adopted.count(id) != 0) continue;
    const size_t node = TxnControllerNode(id);
    const auto route = ring_.Route(my_node, ring_.IdOf(node));
    auto txn_it = nodes_[node].txns.find(id);
    if (txn_it == nodes_[node].txns.end()) {
      return Status::Internal("transaction controller lost " + id.ToString());
    }
    const Transaction& txn = txn_it->second;
    const int priority = policy.PriorityOfTransaction(txn);
    if (!as_antecedent && priority <= 0) {
      network_->Charge(new_peer, route.hops + 1, 24);
      continue;
    }
    network_->Charge(
        new_peer, route.hops + 1,
        static_cast<int64_t>(core::EncodedTransactionSize(txn)) + 8);
    if (!as_antecedent) bundle.undecided.emplace_back(id, priority);
    bundle.closure.push_back(txn);
    for (const TransactionId& ante : txn.antecedents) {
      pending.emplace_back(ante, true);
    }
  }
  cpu_micros_[new_peer] += cpu.ElapsedMicros();
  calls_[new_peer] += 1;
  return bundle;
}

core::StoreStats DhtStore::StatsFor(ParticipantId peer) const {



  const net::NetStats net = network_->StatsFor(peer);
  core::StoreStats stats;
  stats.sim_network_micros = net.micros;
  stats.messages = net.messages;
  stats.bytes = net.bytes;
  auto cpu_it = cpu_micros_.find(peer);
  stats.store_cpu_micros = cpu_it == cpu_micros_.end() ? 0 : cpu_it->second;
  auto call_it = calls_.find(peer);
  stats.calls = call_it == calls_.end() ? 0 : call_it->second;
  return stats;
}

}  // namespace orchestra::store
