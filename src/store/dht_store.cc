#include "store/dht_store.h"

#include <deque>

#include "common/check.h"
#include "common/clock.h"
#include "core/extension.h"

namespace orchestra::store {

using core::Epoch;
using core::ParticipantId;
using core::ReconcileFetch;
using core::Transaction;
using core::TransactionId;
using core::TxnIdSet;

DhtStore::DhtStore(size_t nodes, net::SimNetwork* network,
                   const db::Catalog* catalog)
    : ring_(nodes), network_(network), catalog_(catalog), nodes_(nodes) {
  ORCH_CHECK(network != nullptr);
}

size_t DhtStore::RoutedSend(ParticipantId peer, size_t from_node,
                            net::NodeId key, int64_t bytes) {
  const net::RouteResult route = ring_.Route(from_node, key);
  if (route.hops > 0) network_->Charge(peer, route.hops, bytes);
  return route.owner;
}

void DhtStore::DirectSend(ParticipantId peer, int64_t bytes) {
  network_->Charge(peer, 1, bytes);
}

Status DhtStore::RegisterParticipant(ParticipantId peer,
                                     const core::TrustPolicy* policy) {
  ORCH_CHECK(policy != nullptr);
  policies_[peer] = policy;
  nodes_[CoordinatorNode(peer)].coordinated.emplace(
      peer, std::pair<int64_t, Epoch>{0, 0});
  return Status::OK();
}

Result<Epoch> DhtStore::Publish(ParticipantId peer,
                                std::vector<Transaction> txns) {
  Stopwatch cpu;
  const size_t my_node = NodeOfPeer(peer);

  // Fig. 6 message sequence.
  // (1) request epoch -> allocator.
  const size_t allocator =
      RoutedSend(peer, my_node, net::KeyHash("epoch-allocator"), 16);
  const Epoch epoch = ++nodes_[allocator].epoch_counter;
  // (2) allocator -> epoch controller: begin epoch e.
  const size_t controller = RoutedSend(
      peer, allocator, net::KeyHash("epoch:" + std::to_string(epoch)), 16);
  nodes_[controller].epoch_contents[epoch];  // mark as begun (open)
  // (3) controller -> allocator: confirm epoch begun.
  DirectSend(peer, 8);
  // (4) allocator -> publishing peer: begin publishing at epoch e.
  DirectSend(peer, 16);

  // (5) publish transaction IDs for epoch e -> epoch controller.
  std::vector<TransactionId> ids;
  ids.reserve(txns.size());
  for (Transaction& txn : txns) {
    txn.epoch = epoch;
    ids.push_back(txn.id);
  }
  RoutedSend(peer, my_node, net::KeyHash("epoch:" + std::to_string(epoch)),
             static_cast<int64_t>(16 * ids.size() + 16));
  nodes_[controller].epoch_contents[epoch] = ids;
  // (6) controller confirms the epoch finished.
  nodes_[controller].epoch_done.insert(epoch);
  DirectSend(peer, 8);

  // Then the peer sends each transaction to its transaction controller,
  // which records the publisher's implicit self-acceptance.
  for (Transaction& txn : txns) {
    const int64_t size =
        static_cast<int64_t>(core::EncodedTransactionSize(txn));
    const TransactionId id = txn.id;
    const size_t txn_node =
        RoutedSend(peer, my_node, net::KeyHash("txn:" + id.ToString()), size);
    if (nodes_[txn_node].txns.count(id) != 0) {
      return Status::AlreadyExists("transaction " + id.ToString() +
                                   " already published");
    }
    nodes_[txn_node].txns.emplace(id, std::move(txn));
    nodes_[txn_node].decisions[id][peer] = 'A';
    DirectSend(peer, 8);  // ack
  }
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return epoch;
}

Result<ReconcileFetch> DhtStore::BeginReconciliation(ParticipantId peer) {
  Stopwatch cpu;
  auto policy_it = policies_.find(peer);
  if (policy_it == policies_.end()) {
    return Status::NotFound("peer " + std::to_string(peer) +
                            " is not registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  const size_t my_node = NodeOfPeer(peer);
  ReconcileFetch fetch;

  // Most recent epoch from the allocator (request + reply).
  const size_t allocator =
      RoutedSend(peer, my_node, net::KeyHash("epoch-allocator"), 16);
  const Epoch latest = nodes_[allocator].epoch_counter;
  DirectSend(peer, 16);

  // Prior watermark from this peer's coordinator.
  const size_t coordinator =
      RoutedSend(peer, my_node, net::KeyHash("peer:" + std::to_string(peer)),
                 16);
  auto& coord_entry = nodes_[coordinator].coordinated[peer];
  const Epoch prev = coord_entry.second;
  DirectSend(peer, 16);

  // Fetch the contents of every epoch since the previous reconciliation
  // from the epoch controllers, and find the latest stable epoch (no
  // unfinished epoch preceding it).
  Epoch stable = prev;
  std::vector<TransactionId> published;
  for (Epoch e = prev + 1; e <= latest; ++e) {
    const size_t controller =
        RoutedSend(peer, my_node, net::KeyHash("epoch:" + std::to_string(e)),
                   16);
    const bool done = nodes_[controller].epoch_done.count(e) != 0;
    const auto contents_it = nodes_[controller].epoch_contents.find(e);
    const size_t count =
        contents_it == nodes_[controller].epoch_contents.end()
            ? 0
            : contents_it->second.size();
    DirectSend(peer, static_cast<int64_t>(16 * count + 16));
    if (!done) break;  // everything after an unfinished epoch is unstable
    stable = e;
    if (contents_it != nodes_[controller].epoch_contents.end()) {
      for (const TransactionId& id : contents_it->second) {
        published.push_back(id);
      }
    }
  }

  // Record the reconciliation number and new watermark at the
  // coordinator.
  coord_entry.first += 1;
  coord_entry.second = stable;
  fetch.recno = coord_entry.first;
  fetch.epoch = stable;
  RoutedSend(peer, my_node, net::KeyHash("peer:" + std::to_string(peer)), 24);
  DirectSend(peer, 8);

  // Request every published transaction from its transaction controller,
  // following antecedent chains through a pending set (Fig. 7). The
  // controller evaluates the peer's trust predicates and decision log:
  // decided or (top-level) untrusted transactions yield a small
  // "not relevant" reply; everything else is shipped with its priority
  // and antecedent ids.
  TxnIdSet requested;
  std::deque<std::pair<TransactionId, bool>> pending;  // (id, as_antecedent)
  for (const TransactionId& id : published) pending.emplace_back(id, false);
  while (!pending.empty()) {
    const auto [id, as_antecedent] = pending.front();
    pending.pop_front();
    if (!requested.insert(id).second) continue;
    const size_t txn_node =
        RoutedSend(peer, my_node, net::KeyHash("txn:" + id.ToString()), 24);
    const NodeState& node = nodes_[txn_node];
    auto txn_it = node.txns.find(id);
    if (txn_it == node.txns.end()) {
      return Status::Internal("transaction controller lost " + id.ToString());
    }
    const Transaction& txn = txn_it->second;
    // Decision check at the controller.
    char decided = 0;
    auto dec_it = node.decisions.find(id);
    if (dec_it != node.decisions.end()) {
      auto peer_it = dec_it->second.find(peer);
      if (peer_it != dec_it->second.end()) decided = peer_it->second;
    }
    if (decided == 'A' || (!as_antecedent && decided != 0)) {
      DirectSend(peer, 8);  // "not relevant"
      continue;
    }
    const int priority = policy.PriorityOfTransaction(txn);
    if (!as_antecedent && priority <= 0) {
      DirectSend(peer, 8);  // "untrusted"
      continue;
    }
    // Ship the transaction, its priority, and its antecedents.
    DirectSend(peer,
               static_cast<int64_t>(core::EncodedTransactionSize(txn)) + 8);
    if (!as_antecedent) fetch.trusted.emplace_back(id, priority);
    fetch.transactions.push_back(txn);
    for (const TransactionId& ante : txn.antecedents) {
      pending.emplace_back(ante, true);
    }
  }
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return fetch;
}

Status DhtStore::RecordDecisions(ParticipantId peer, int64_t recno,
                                 const std::vector<TransactionId>& applied,
                                 const std::vector<TransactionId>& rejected) {
  (void)recno;
  Stopwatch cpu;
  const size_t my_node = NodeOfPeer(peer);
  // Notify each transaction's controller (no ack required).
  for (const TransactionId& id : applied) {
    const size_t node =
        RoutedSend(peer, my_node, net::KeyHash("txn:" + id.ToString()), 24);
    nodes_[node].decisions[id][peer] = 'A';
  }
  for (const TransactionId& id : rejected) {
    const size_t node =
        RoutedSend(peer, my_node, net::KeyHash("txn:" + id.ToString()), 24);
    nodes_[node].decisions[id][peer] = 'R';
  }
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return Status::OK();
}

Result<core::RecoveryBundle> DhtStore::FetchRecoveryState(
    ParticipantId peer) const {
  Stopwatch cpu;
  auto policy_it = policies_.find(peer);
  if (policy_it == policies_.end()) {
    return Status::NotFound("peer " + std::to_string(peer) +
                            " is not registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  core::RecoveryBundle bundle;

  // Watermark and recno from the peer coordinator (one round trip).
  {
    const size_t coordinator = CoordinatorNode(peer);
    auto it = nodes_[coordinator].coordinated.find(peer);
    if (it != nodes_[coordinator].coordinated.end()) {
      bundle.recno = it->second.first;
      bundle.epoch = it->second.second;
    }
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(coordinator));
    network_->Charge(peer, route.hops + 1, 24);
  }

  // Without its soft state the peer cannot know which transaction
  // controllers hold its decisions, so recovery sweeps every node: one
  // request per node, one bulk reply carrying that node's transactions
  // and this peer's decisions on them.
  core::TxnIdSet decided;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    int64_t bytes = 16;
    for (const auto& [id, txn] : nodes_[node].txns) {
      auto dec_it = nodes_[node].decisions.find(id);
      if (dec_it == nodes_[node].decisions.end()) continue;
      auto peer_it = dec_it->second.find(peer);
      if (peer_it == dec_it->second.end()) continue;
      decided.insert(id);
      if (peer_it->second == 'A') {
        bundle.applied.push_back(txn);
        bytes += static_cast<int64_t>(core::EncodedTransactionSize(txn));
      } else {
        bundle.rejected.push_back(id);
        bytes += 16;
      }
    }
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(node));
    network_->Charge(peer, route.hops, 16);
    network_->Charge(peer, 1, bytes);  // reply
  }
  std::sort(bundle.applied.begin(), bundle.applied.end(),
            [](const Transaction& a, const Transaction& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.id < b.id;
            });

  // Undecided trusted transactions within the watermark, from the epoch
  // controllers, plus antecedent closures from their controllers.
  core::TxnIdSet applied_ids;
  for (const Transaction& txn : bundle.applied) applied_ids.insert(txn.id);
  core::TxnIdSet shipped;
  std::deque<std::pair<TransactionId, bool>> pending;
  for (Epoch e = 1; e <= bundle.epoch; ++e) {
    const size_t controller = EpochControllerNode(e);
    const auto contents = nodes_[controller].epoch_contents.find(e);
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(controller));
    const size_t count = contents == nodes_[controller].epoch_contents.end()
                             ? 0
                             : contents->second.size();
    network_->Charge(peer, route.hops + 1,
                     static_cast<int64_t>(16 * count + 16));
    if (contents == nodes_[controller].epoch_contents.end()) continue;
    for (const TransactionId& id : contents->second) {
      if (decided.count(id) == 0) pending.emplace_back(id, false);
    }
  }
  while (!pending.empty()) {
    const auto [id, as_antecedent] = pending.front();
    pending.pop_front();
    if (!shipped.insert(id).second) continue;
    if (applied_ids.count(id) != 0) continue;
    const size_t node = TxnControllerNode(id);
    const auto route = ring_.Route(NodeOfPeer(peer), ring_.IdOf(node));
    auto txn_it = nodes_[node].txns.find(id);
    if (txn_it == nodes_[node].txns.end()) {
      return Status::Internal("transaction controller lost " + id.ToString());
    }
    const Transaction& txn = txn_it->second;
    const int priority = policy.PriorityOfTransaction(txn);
    if (!as_antecedent && priority <= 0) {
      network_->Charge(peer, route.hops + 1, 24);
      continue;
    }
    network_->Charge(
        peer, route.hops + 1,
        static_cast<int64_t>(core::EncodedTransactionSize(txn)) + 8);
    if (!as_antecedent) bundle.undecided.emplace_back(id, priority);
    bundle.closure.push_back(txn);
    for (const TransactionId& ante : txn.antecedents) {
      pending.emplace_back(ante, true);
    }
  }
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return bundle;
}

Result<core::NetworkCentricFetch> DhtStore::BeginNetworkCentricReconciliation(
    ParticipantId peer) {
  if (catalog_ == nullptr) {
    return Status::NotSupported(
        "DHT store was built without a catalog; network-centric "
        "reconciliation needs the shared schema");
  }
  core::NetworkCentricFetch fetch;
  ORCH_ASSIGN_OR_RETURN(fetch.base, BeginReconciliation(peer));

  Stopwatch cpu;
  const size_t my_node = NodeOfPeer(peer);
  core::TransactionMap bundle;
  for (const Transaction& txn : fetch.base.transactions) bundle.Put(txn);

  // Each trusted transaction's controller assembles its extension by
  // querying the antecedents' controllers (controller-to-controller
  // traffic charged per edge), then flattens it locally.
  for (const auto& [txn_id, priority] : fetch.base.trusted) {
    core::TrustedTxn t;
    t.id = txn_id;
    t.priority = priority;
    t.extension = core::ComputeExtensionFromBundle(bundle, txn_id);
    const size_t controller = TxnControllerNode(txn_id);
    for (const TransactionId& member : t.extension) {
      if (member == txn_id) continue;
      const auto route =
          ring_.Route(controller, net::KeyHash("txn:" + member.ToString()));
      int64_t sz = 64;
      if (auto txn = bundle.Get(member); txn.ok()) {
        sz = static_cast<int64_t>(core::EncodedTransactionSize(**txn));
      }
      network_->Charge(peer, route.hops + 1, sz);
    }
    fetch.trusted_txns.push_back(std::move(t));
  }
  fetch.analysis =
      core::AnalyzeExtensions(*catalog_, bundle, fetch.trusted_txns);

  // Conflict detection is distributed by key: every flattened update is
  // forwarded to the owner of its key, and each detected conflicting
  // pair is reported to the reconciling peer.
  for (size_t i = 0; i < fetch.analysis.up_ex.size(); ++i) {
    const size_t controller = TxnControllerNode(fetch.trusted_txns[i].id);
    for (const core::Update& u : fetch.analysis.up_ex[i]) {
      const db::RelationSchema& schema =
          *catalog_->GetRelation(u.relation()).value();
      for (const core::RelKey& rk : u.TouchedKeys(schema)) {
        const auto route =
            ring_.Route(controller, net::KeyHash(rk.ToString()));
        network_->Charge(peer, route.hops > 0 ? route.hops : 1, 48);
      }
    }
  }
  for (const auto& pair : fetch.analysis.conflicts) {
    (void)pair;
    network_->Charge(peer, 1 + static_cast<int64_t>(
                                  ring_.Route(my_node, ring_.IdOf(my_node))
                                      .hops),
                     64);
  }
  // Ship the extensions and analysis to the peer in one bulk message.
  int64_t bytes = 0;
  for (const auto& up_ex : fetch.analysis.up_ex) {
    for (const core::Update& u : up_ex) {
      std::string buf;
      core::EncodeUpdate(&buf, u);
      bytes += static_cast<int64_t>(buf.size());
    }
  }
  bytes += static_cast<int64_t>(fetch.analysis.conflicts.size()) * 48;
  DirectSend(peer, bytes);
  cpu_micros_[peer] += cpu.ElapsedMicros();
  calls_[peer] += 1;
  return fetch;
}

Result<core::RecoveryBundle> DhtStore::Bootstrap(ParticipantId new_peer,
                                                 ParticipantId source_peer) {
  Stopwatch cpu;
  auto policy_it = policies_.find(new_peer);
  if (policy_it == policies_.end() ||
      policies_.count(source_peer) == 0) {
    return Status::NotFound("bootstrap peers must both be registered");
  }
  const core::TrustPolicy& policy = *policy_it->second;
  const size_t my_node = NodeOfPeer(new_peer);
  core::RecoveryBundle bundle;

  // Watermark from the source's coordinator; record it as the new
  // peer's watermark at its own coordinator.
  {
    const size_t src_coord = CoordinatorNode(source_peer);
    auto it = nodes_[src_coord].coordinated.find(source_peer);
    if (it != nodes_[src_coord].coordinated.end()) {
      bundle.epoch = it->second.second;
    }
    const auto route = ring_.Route(my_node, ring_.IdOf(src_coord));
    network_->Charge(new_peer, route.hops + 1, 24);
    nodes_[CoordinatorNode(new_peer)].coordinated[new_peer] = {0,
                                                               bundle.epoch};
    const auto route2 =
        ring_.Route(my_node, ring_.IdOf(CoordinatorNode(new_peer)));
    network_->Charge(new_peer, route2.hops + 1, 24);
  }

  // Sweep every node: copy the source's accept decisions onto the new
  // peer (one bulk round trip per node, as in recovery).
  core::TxnIdSet adopted;
  for (size_t node = 0; node < nodes_.size(); ++node) {
    int64_t bytes = 16;
    for (auto& [id, decisions] : nodes_[node].decisions) {
      auto src_it = decisions.find(source_peer);
      if (src_it == decisions.end() || src_it->second != 'A') continue;
      decisions[new_peer] = 'A';
      adopted.insert(id);
      auto txn_it = nodes_[node].txns.find(id);
      ORCH_CHECK(txn_it != nodes_[node].txns.end());
      bundle.applied.push_back(txn_it->second);
      bytes +=
          static_cast<int64_t>(core::EncodedTransactionSize(txn_it->second));
    }
    const auto route = ring_.Route(my_node, ring_.IdOf(node));
    network_->Charge(new_peer, route.hops, 16);
    network_->Charge(new_peer, 1, bytes);
  }
  std::sort(bundle.applied.begin(), bundle.applied.end(),
            [](const Transaction& a, const Transaction& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.id < b.id;
            });

  // Undecided trusted transactions within the adopted window.
  core::TxnIdSet shipped;
  std::deque<std::pair<TransactionId, bool>> pending;
  for (Epoch e = 1; e <= bundle.epoch; ++e) {
    const size_t controller = EpochControllerNode(e);
    const auto contents = nodes_[controller].epoch_contents.find(e);
    const auto route = ring_.Route(my_node, ring_.IdOf(controller));
    const size_t count = contents == nodes_[controller].epoch_contents.end()
                             ? 0
                             : contents->second.size();
    network_->Charge(new_peer, route.hops + 1,
                     static_cast<int64_t>(16 * count + 16));
    if (contents == nodes_[controller].epoch_contents.end()) continue;
    for (const TransactionId& id : contents->second) {
      if (adopted.count(id) == 0) pending.emplace_back(id, false);
    }
  }
  while (!pending.empty()) {
    const auto [id, as_antecedent] = pending.front();
    pending.pop_front();
    if (!shipped.insert(id).second) continue;
    if (adopted.count(id) != 0) continue;
    const size_t node = TxnControllerNode(id);
    const auto route = ring_.Route(my_node, ring_.IdOf(node));
    auto txn_it = nodes_[node].txns.find(id);
    if (txn_it == nodes_[node].txns.end()) {
      return Status::Internal("transaction controller lost " + id.ToString());
    }
    const Transaction& txn = txn_it->second;
    const int priority = policy.PriorityOfTransaction(txn);
    if (!as_antecedent && priority <= 0) {
      network_->Charge(new_peer, route.hops + 1, 24);
      continue;
    }
    network_->Charge(
        new_peer, route.hops + 1,
        static_cast<int64_t>(core::EncodedTransactionSize(txn)) + 8);
    if (!as_antecedent) bundle.undecided.emplace_back(id, priority);
    bundle.closure.push_back(txn);
    for (const TransactionId& ante : txn.antecedents) {
      pending.emplace_back(ante, true);
    }
  }
  cpu_micros_[new_peer] += cpu.ElapsedMicros();
  calls_[new_peer] += 1;
  return bundle;
}

core::StoreStats DhtStore::StatsFor(ParticipantId peer) const {



  const net::NetStats net = network_->StatsFor(peer);
  core::StoreStats stats;
  stats.sim_network_micros = net.micros;
  stats.messages = net.messages;
  stats.bytes = net.bytes;
  auto cpu_it = cpu_micros_.find(peer);
  stats.store_cpu_micros = cpu_it == cpu_micros_.end() ? 0 : cpu_it->second;
  auto call_it = calls_.find(peer);
  stats.calls = call_it == calls_.end() ? 0 : call_it->second;
  return stats;
}

}  // namespace orchestra::store
