#ifndef ORCHESTRA_STORE_DHT_STORE_H_
#define ORCHESTRA_STORE_DHT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/update_store.h"
#include "net/dht.h"
#include "net/sim_network.h"

namespace orchestra::store {

/// The distributed, DHT-based update store of §5.2.2, realized over the
/// Chord-style ring in src/net (standing in for FreePastry). State and
/// work are spread across the peers themselves:
///
///  - the *epoch allocator* (owner of a well-known key) hands out epoch
///    numbers (Fig. 6);
///  - an *epoch controller* (owner of hash("epoch:<e>")) records which
///    transactions were published in epoch e and whether the epoch is
///    complete;
///  - a *transaction controller* (owner of hash("txn:<id>")) stores one
///    transaction, evaluates the requesting peer's trust predicates, and
///    tracks that peer's accept/reject decisions (Fig. 7);
///  - a *peer coordinator* (owner of hash("peer:<p>")) records peer p's
///    reconciliation numbers and epoch watermark.
///
/// Every key-addressed message is routed over the overlay and charged
/// hop-by-hop to the initiating peer; replies take one direct hop.
/// Requests to follow antecedent chains dominate reconciliation cost,
/// exactly as the paper reports.
///
/// Messages on the publish/reconcile/record paths can be lost when a
/// fault injector is installed on the network. Publishing is
/// stage-then-commit: the epoch controller marks the epoch finished (the
/// commit point) only after every transaction controller has accepted
/// its transaction; any earlier loss aborts the epoch, and an epoch left
/// unfinished by a crashed publisher is reaped to "aborted" once enough
/// reconciliation scans have observed it stuck.
struct DhtStoreOptions {
  /// An epoch still unfinished after this many reconciliation scans have
  /// observed it is marked aborted at its controller so it stops
  /// blocking the stable watermark. Finished epochs are never touched;
  /// an aborted epoch can never finish.
  int stuck_epoch_reap_threshold = 3;
};

class DhtStore : public core::UpdateStore,
                 public core::NetworkCentricStore {
 public:
  /// Creates a store whose ring has `nodes` DHT nodes. Peers must be
  /// registered before use; peer p runs on node p % nodes.
  /// `catalog` enables network-centric reconciliation (controllers must
  /// know the shared schema Σ to flatten and compare updates); pass
  /// nullptr to run client-centric only.
  DhtStore(size_t nodes, net::SimNetwork* network,
           const db::Catalog* catalog = nullptr, DhtStoreOptions options = {});

  Status RegisterParticipant(core::ParticipantId peer,
                             const core::TrustPolicy* policy) override;
  Result<core::Epoch> Publish(core::ParticipantId peer,
                              std::vector<core::Transaction> txns) override;
  Result<core::ReconcileFetch> BeginReconciliation(
      core::ParticipantId peer) override;
  Status RecordDecisions(
      core::ParticipantId peer, int64_t recno,
      const std::vector<core::TransactionId>& applied,
      const std::vector<core::TransactionId>& rejected) override;
  Result<core::RecoveryBundle> FetchRecoveryState(
      core::ParticipantId peer) const override;
  Result<core::NetworkCentricFetch> BeginNetworkCentricReconciliation(
      core::ParticipantId peer) override;
  Result<core::RecoveryBundle> Bootstrap(
      core::ParticipantId new_peer, core::ParticipantId source_peer) override;
  core::StoreStats StatsFor(core::ParticipantId peer) const override;
  std::string_view name() const override { return "dht"; }

  const net::DhtRing& ring() const { return ring_; }

 private:
  /// One recorded accept/reject, tagged with the reconciliation that
  /// produced it (0 for the publisher's implicit self-acceptance).
  struct Decision {
    char verdict = 0;  // 'A' or 'R'
    int64_t recno = 0;
  };

  /// Peer coordinator entry. `decided_recno` is the last reconciliation
  /// whose decisions were recorded in full — updated only after every
  /// transaction controller acknowledged, it is the completion witness
  /// recovery uses to detect an interrupted reconciliation.
  struct CoordEntry {
    int64_t recno = 0;
    core::Epoch epoch = 0;
    int64_t decided_recno = 0;
  };

  /// Per-DHT-node state; the role a node plays for a given key follows
  /// from ring ownership.
  struct NodeState {
    /// Epoch allocator state (meaningful only on the allocator node).
    int64_t epoch_counter = 0;
    /// Epoch controller state: epoch -> published transaction ids,
    /// whether the epoch finished (committed), and whether it aborted.
    std::map<core::Epoch, std::vector<core::TransactionId>> epoch_contents;
    std::unordered_set<core::Epoch> epoch_done;
    std::unordered_set<core::Epoch> epoch_aborted;
    /// Transaction controller state.
    std::unordered_map<core::TransactionId, core::Transaction,
                       core::TransactionIdHash>
        txns;
    /// Decisions recorded per transaction, per peer.
    std::unordered_map<core::TransactionId,
                       std::unordered_map<core::ParticipantId, Decision>,
                       core::TransactionIdHash>
        decisions;
    /// Peer coordinator state.
    std::unordered_map<core::ParticipantId, CoordEntry> coordinated;
  };

  size_t NodeOfPeer(core::ParticipantId peer) const {
    return static_cast<size_t>(peer) % ring_.size();
  }
  size_t AllocatorNode() const {
    return ring_.OwnerOf(net::KeyHash("epoch-allocator"));
  }
  size_t EpochControllerNode(core::Epoch epoch) const {
    return ring_.OwnerOf(net::KeyHash("epoch:" + std::to_string(epoch)));
  }
  size_t TxnControllerNode(const core::TransactionId& id) const {
    return ring_.OwnerOf(net::KeyHash("txn:" + id.ToString()));
  }
  size_t CoordinatorNode(core::ParticipantId peer) const {
    return ring_.OwnerOf(net::KeyHash("peer:" + std::to_string(peer)));
  }

  /// Routes one key-addressed message from `from_node` to the owner of
  /// `key`, charging `bytes` per hop to `peer`; returns the owner.
  size_t RoutedSend(core::ParticipantId peer, size_t from_node,
                    net::NodeId key, int64_t bytes);
  /// One direct (already-located) message.
  void DirectSend(core::ParticipantId peer, int64_t bytes);
  /// Failable variants for the publish/reconcile/record protocol paths:
  /// the message is charged either way, but an installed fault injector
  /// may declare it lost (Unavailable).
  Result<size_t> TryRoutedSend(core::ParticipantId peer, size_t from_node,
                               net::NodeId key, int64_t bytes);
  Status TryDirectSend(core::ParticipantId peer, int64_t bytes);

  /// True when epoch `e` committed (finished and not aborted).
  bool EpochCommitted(core::Epoch e) const;
  /// True when the transaction is stored under a committed epoch.
  /// Residue of an aborted publish does not count: it is overwritten on
  /// republish.
  bool IsCommittedTxn(const core::TransactionId& id) const;
  /// Best-effort rollback of a failed publish: removes the staged
  /// transactions, erases the epoch's contents, and marks the epoch
  /// aborted at its controller. Skipped entirely when the fault injector
  /// reports a sticky (crash) fault — a dead publisher cannot clean up,
  /// and the stuck-epoch reaper takes over.
  void AbortEpoch(core::ParticipantId peer, core::Epoch epoch,
                  const std::vector<core::TransactionId>& staged);

  net::DhtRing ring_;
  net::SimNetwork* network_;
  const db::Catalog* catalog_ = nullptr;
  DhtStoreOptions options_;
  std::vector<NodeState> nodes_;
  std::unordered_map<core::ParticipantId, const core::TrustPolicy*> policies_;
  /// Soft state: unfinished-epoch observation counts driving the reaper.
  std::unordered_map<core::Epoch, int> epoch_strikes_;
  mutable std::unordered_map<core::ParticipantId, int64_t> cpu_micros_;
  mutable std::unordered_map<core::ParticipantId, int64_t> calls_;
};

}  // namespace orchestra::store

#endif  // ORCHESTRA_STORE_DHT_STORE_H_
