#ifndef ORCHESTRA_STORE_DHT_STORE_H_
#define ORCHESTRA_STORE_DHT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/update_store.h"
#include "net/dht.h"
#include "net/sim_network.h"

namespace orchestra::store {

/// The distributed, DHT-based update store of §5.2.2, realized over the
/// Chord-style ring in src/net (standing in for FreePastry). State and
/// work are spread across the peers themselves:
///
///  - the *epoch allocator* (owner of a well-known key) hands out epoch
///    numbers (Fig. 6);
///  - an *epoch controller* (owner of hash("epoch:<e>")) records which
///    transactions were published in epoch e and whether the epoch is
///    complete;
///  - a *transaction controller* (owner of hash("txn:<id>")) stores one
///    transaction, evaluates the requesting peer's trust predicates, and
///    tracks that peer's accept/reject decisions (Fig. 7);
///  - a *peer coordinator* (owner of hash("peer:<p>")) records peer p's
///    reconciliation numbers and epoch watermark.
///
/// Every key-addressed message is routed over the overlay and charged
/// hop-by-hop to the initiating peer; replies take one direct hop.
/// Requests to follow antecedent chains dominate reconciliation cost,
/// exactly as the paper reports. Message delivery is assumed reliable
/// (as in the paper; fault tolerance is future work there and here).
class DhtStore : public core::UpdateStore,
                 public core::NetworkCentricStore {
 public:
  /// Creates a store whose ring has `nodes` DHT nodes. Peers must be
  /// registered before use; peer p runs on node p % nodes.
  /// `catalog` enables network-centric reconciliation (controllers must
  /// know the shared schema Σ to flatten and compare updates); pass
  /// nullptr to run client-centric only.
  DhtStore(size_t nodes, net::SimNetwork* network,
           const db::Catalog* catalog = nullptr);

  Status RegisterParticipant(core::ParticipantId peer,
                             const core::TrustPolicy* policy) override;
  Result<core::Epoch> Publish(core::ParticipantId peer,
                              std::vector<core::Transaction> txns) override;
  Result<core::ReconcileFetch> BeginReconciliation(
      core::ParticipantId peer) override;
  Status RecordDecisions(
      core::ParticipantId peer, int64_t recno,
      const std::vector<core::TransactionId>& applied,
      const std::vector<core::TransactionId>& rejected) override;
  Result<core::RecoveryBundle> FetchRecoveryState(
      core::ParticipantId peer) const override;
  Result<core::NetworkCentricFetch> BeginNetworkCentricReconciliation(
      core::ParticipantId peer) override;
  Result<core::RecoveryBundle> Bootstrap(
      core::ParticipantId new_peer, core::ParticipantId source_peer) override;
  core::StoreStats StatsFor(core::ParticipantId peer) const override;
  std::string_view name() const override { return "dht"; }

  const net::DhtRing& ring() const { return ring_; }

 private:
  /// Per-DHT-node state; the role a node plays for a given key follows
  /// from ring ownership.
  struct NodeState {
    /// Epoch allocator state (meaningful only on the allocator node).
    int64_t epoch_counter = 0;
    /// Epoch controller state: epoch -> published transaction ids, and
    /// whether the epoch is complete.
    std::map<core::Epoch, std::vector<core::TransactionId>> epoch_contents;
    std::unordered_set<core::Epoch> epoch_done;
    /// Transaction controller state.
    std::unordered_map<core::TransactionId, core::Transaction,
                       core::TransactionIdHash>
        txns;
    /// Decisions recorded per transaction: peer -> 'A'/'R'.
    std::unordered_map<core::TransactionId,
                       std::unordered_map<core::ParticipantId, char>,
                       core::TransactionIdHash>
        decisions;
    /// Peer coordinator state: peer -> (recno, last reconciled epoch).
    std::unordered_map<core::ParticipantId, std::pair<int64_t, core::Epoch>>
        coordinated;
  };

  size_t NodeOfPeer(core::ParticipantId peer) const {
    return static_cast<size_t>(peer) % ring_.size();
  }
  size_t AllocatorNode() const {
    return ring_.OwnerOf(net::KeyHash("epoch-allocator"));
  }
  size_t EpochControllerNode(core::Epoch epoch) const {
    return ring_.OwnerOf(net::KeyHash("epoch:" + std::to_string(epoch)));
  }
  size_t TxnControllerNode(const core::TransactionId& id) const {
    return ring_.OwnerOf(net::KeyHash("txn:" + id.ToString()));
  }
  size_t CoordinatorNode(core::ParticipantId peer) const {
    return ring_.OwnerOf(net::KeyHash("peer:" + std::to_string(peer)));
  }

  /// Routes one key-addressed message from `from_node` to the owner of
  /// `key`, charging `bytes` per hop to `peer`; returns the owner.
  size_t RoutedSend(core::ParticipantId peer, size_t from_node,
                    net::NodeId key, int64_t bytes);
  /// One direct (already-located) message.
  void DirectSend(core::ParticipantId peer, int64_t bytes);

  net::DhtRing ring_;
  net::SimNetwork* network_;
  const db::Catalog* catalog_ = nullptr;
  std::vector<NodeState> nodes_;
  std::unordered_map<core::ParticipantId, const core::TrustPolicy*> policies_;
  mutable std::unordered_map<core::ParticipantId, int64_t> cpu_micros_;
  mutable std::unordered_map<core::ParticipantId, int64_t> calls_;
};

}  // namespace orchestra::store

#endif  // ORCHESTRA_STORE_DHT_STORE_H_
