#ifndef ORCHESTRA_STORE_DHT_STORE_H_
#define ORCHESTRA_STORE_DHT_STORE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "core/fetch_cache.h"
#include "core/update_store.h"
#include "net/dht.h"
#include "net/sim_network.h"

namespace orchestra::store {

/// The distributed, DHT-based update store of §5.2.2, realized over the
/// Chord-style ring in src/net (standing in for FreePastry). State and
/// work are spread across the peers themselves:
///
///  - the *epoch allocator* (owner of a well-known key) hands out epoch
///    numbers (Fig. 6);
///  - an *epoch controller* (owner of hash("epoch:<e>")) records which
///    transactions were published in epoch e and whether the epoch is
///    complete;
///  - a *transaction controller* (owner of hash("txn:<id>")) stores one
///    transaction, evaluates the requesting peer's trust predicates, and
///    tracks that peer's accept/reject decisions (Fig. 7);
///  - a *peer coordinator* (owner of hash("peer:<p>")) records peer p's
///    reconciliation numbers and epoch watermark.
///
/// Every key-addressed message is routed over the overlay and charged
/// hop-by-hop to the initiating peer; replies take one direct hop.
/// Requests to follow antecedent chains dominate reconciliation cost,
/// exactly as the paper reports.
///
/// The store survives node churn: every controller's state is
/// replicated across the key's *replica group* — the key's first
/// `replication_factor` live successors on the ring. Writes fan out
/// from the primary to the whole group, reads try the primary and fail
/// over down the group, and membership changes (JoinNode / LeaveNode /
/// CrashNode) trigger key-range re-replication so that after each event
/// every key again has min(k, live nodes) replicas. With k=1
/// (replication off) a crash genuinely loses the crashed node's keys.
///
/// Messages on the publish/reconcile/record paths can be lost when a
/// fault injector is installed on the network. Publishing is
/// stage-then-commit: the epoch controller marks the epoch finished (the
/// commit point) only after every transaction controller has accepted
/// its transaction; any earlier loss aborts the epoch, and an epoch left
/// unfinished by a crashed publisher is reaped to "aborted" once enough
/// reconciliation scans have observed it stuck.
struct DhtStoreOptions {
  /// An epoch still unfinished after this many reconciliation scans have
  /// observed it is marked aborted at its controller so it stops
  /// blocking the stable watermark. Finished epochs are never touched;
  /// an aborted epoch can never finish.
  int stuck_epoch_reap_threshold = 3;
  /// Replicas per key (the key's replica group is its first
  /// `replication_factor` live successors). 1 disables replication: a
  /// node crash then loses every key the node owned.
  size_t replication_factor = 3;
  /// How reconciliation fetches are assembled. kDelta coalesces
  /// same-controller lookups into per-owner multi-get messages and
  /// suppresses lookups whose reply must be "not relevant"; decisions
  /// are identical across modes (see core::FetchMode).
  core::FetchMode fetch_mode = core::FetchMode::kDelta;
  /// End-to-end verification of transaction blobs: stored replicas are
  /// checked against their envelope checksum on every read (corrupt
  /// copies are failed over, read-repaired, and scored toward
  /// quarantine) and shipped payloads are verified at the receiver.
  /// False is the corruption sweep's control arm: rot flows through
  /// undetected, exactly like a deployment without checksums.
  bool verify_checksums = true;
  /// A node whose replica fails read verification this many times is
  /// quarantined: demoted to the back of every replica group's read
  /// preference until the process restarts. Demotion only reorders
  /// probes — post-verification data is identical — so decisions are
  /// unaffected.
  int64_t quarantine_threshold = 3;
};

class DhtStore : public core::UpdateStore,
                 public core::NetworkCentricStore {
 public:
  /// Creates a store whose ring has `nodes` DHT nodes. Peers must be
  /// registered before use; peer p runs on (the live successor of) node
  /// p % nodes.
  /// `catalog` enables network-centric reconciliation (controllers must
  /// know the shared schema Σ to flatten and compare updates); pass
  /// nullptr to run client-centric only.
  DhtStore(size_t nodes, net::SimNetwork* network,
           const db::Catalog* catalog = nullptr, DhtStoreOptions options = {});

  Status RegisterParticipant(core::ParticipantId peer,
                             const core::TrustPolicy* policy) override;
  Result<core::Epoch> Publish(core::ParticipantId peer,
                              std::vector<core::Transaction> txns) override;
  Result<core::ReconcileFetch> BeginReconciliation(
      core::ParticipantId peer) override;
  Status RecordDecisions(
      core::ParticipantId peer, int64_t recno,
      const std::vector<core::TransactionId>& applied,
      const std::vector<core::TransactionId>& rejected) override;
  Status RecordProvenance(
      core::ParticipantId peer, int64_t recno,
      const std::vector<core::ProvenanceRecord>& records) override;
  Result<core::RecoveryBundle> FetchRecoveryState(
      core::ParticipantId peer) const override;
  Result<core::NetworkCentricFetch> BeginNetworkCentricReconciliation(
      core::ParticipantId peer) override;
  Result<core::RecoveryBundle> Bootstrap(
      core::ParticipantId new_peer, core::ParticipantId source_peer) override;
  core::StoreStats StatsFor(core::ParticipantId peer) const override;
  std::string_view name() const override { return "dht"; }

  const net::DhtRing& ring() const { return ring_; }

  /// Provenance records retained for `peer`, in record order. The DHT
  /// keeps provenance at the peer's coordinator as a node-local
  /// diagnostic log piggybacking on the RecordDecisions batch (no extra
  /// messages); it is not replicated and does not survive coordinator
  /// churn — the advisory contract of RecordProvenance allows both.
  const std::vector<core::ProvenanceRecord>& provenance_log(
      core::ParticipantId peer) const;

  /// --- Membership (churn) ------------------------------------------
  ///
  /// Each event updates the overlay and then re-replicates so the
  /// replica invariant holds again. Re-replication traffic is charged
  /// to the synthetic kRepairEndpoint, not to any peer.

  /// Adds a fresh (empty) node to the ring and migrates onto it the key
  /// ranges it now participates in. Returns the node's index.
  Result<size_t> JoinNode();
  /// Graceful departure: the node hands its key ranges to the new
  /// owners before going away; no data is lost even with k=1.
  Status LeaveNode(size_t node);
  /// Abrupt failure: the node's state dies with it. `repair` re-creates
  /// the missing replicas from the survivors immediately (the default);
  /// tests pass false to observe the degraded window where reads must
  /// fail over down the replica group.
  Status CrashNode(size_t node, bool repair = true);
  /// Re-replication pass: for every item held by any node, copies it to
  /// replica-group members that lack it and drops it from nodes no
  /// longer in the group. Idempotent.
  void RepairReplication();
  /// True when every item held anywhere is held by exactly its replica
  /// group (min(k, live) live successors of its key) — the invariant
  /// membership events must restore. Exposed for tests.
  bool CheckReplicationInvariant() const;

  /// --- Integrity (at-rest corruption) ------------------------------

  /// Outcome of one background scrub pass.
  struct ScrubReport {
    int64_t replicas_checked = 0;
    int64_t corrupt_found = 0;
    int64_t healed = 0;
    /// Ids for which no replica verifies: the data is rotten everywhere
    /// and the next read returns kDataLoss.
    int64_t unrecoverable = 0;
  };
  /// Background scrub: verifies every stored transaction replica
  /// against its envelope checksum and heals corrupt copies from a
  /// verified one (replica-to-replica transfers charged to
  /// kRepairEndpoint). Deterministic walk order; idempotent.
  ScrubReport ScrubReplicas();

  /// True when `node` has been demoted from read preference after
  /// serving `quarantine_threshold` corrupt replicas. Exposed for tests.
  bool Quarantined(size_t node) const {
    auto it = corrupt_serves_.find(node);
    return it != corrupt_serves_.end() &&
           it->second >= options_.quarantine_threshold;
  }

  size_t live_node_count() const { return ring_.live_count(); }

  /// Endpoint re-replication traffic is charged to (membership repair
  /// has no initiating peer).
  static constexpr uint32_t kRepairEndpoint = 0xFFFFFFFFu;

 private:
  /// One recorded accept/reject, tagged with the reconciliation that
  /// produced it (0 for the publisher's implicit self-acceptance).
  struct Decision {
    char verdict = 0;  // 'A' or 'R'
    int64_t recno = 0;
  };

  /// Peer coordinator entry. `decided_recno` is the last reconciliation
  /// whose decisions were recorded in full — updated only after every
  /// transaction controller acknowledged, it is the completion witness
  /// recovery uses to detect an interrupted reconciliation.
  struct CoordEntry {
    int64_t recno = 0;
    core::Epoch epoch = 0;
    int64_t decided_recno = 0;
  };

  /// Per-DHT-node state; the role a node plays for a given key follows
  /// from ring ownership. Under replication every member of a key's
  /// replica group holds the same entries for that key.
  struct NodeState {
    /// Epoch allocator state (meaningful only on the allocator group).
    int64_t epoch_counter = 0;
    /// Epoch controller state: epoch -> published transaction ids,
    /// whether the epoch finished (committed), and whether it aborted.
    /// All controller state is kept in *ordered* containers (lint rule
    /// D3): recovery, adoption, and replication repair walk these maps
    /// whole, and their walk order must not depend on a hash function.
    /// Point lookups dominate and stay O(log n) over small per-node maps.
    std::map<core::Epoch, std::vector<core::TransactionId>> epoch_contents;
    std::set<core::Epoch> epoch_done;
    std::set<core::Epoch> epoch_aborted;
    /// Transaction controller state. `txn_wire` holds the *stored*
    /// representation — the envelope-framed encoding installed at
    /// publish time, which is what at-rest corruption rots and what
    /// every read verifies and decodes. `txns` is the decode index that
    /// rides along for metadata lookups (epoch of a committed txn,
    /// existence checks) and as the pre-checksum fallback in the
    /// corruption sweep's control arm; the two always share a key set.
    std::map<core::TransactionId, core::Transaction> txns;
    std::map<core::TransactionId, std::string> txn_wire;
    /// Decisions recorded per transaction, per peer.
    std::map<core::TransactionId, std::map<core::ParticipantId, Decision>>
        decisions;
    /// Peer coordinator state.
    std::map<core::ParticipantId, CoordEntry> coordinated;

    /// True when this node has any record of epoch `e`.
    bool KnowsEpoch(core::Epoch e) const {
      return epoch_contents.count(e) != 0 || epoch_done.count(e) != 0 ||
             epoch_aborted.count(e) != 0;
    }
  };

  /// The live node peer p's client runs on: slot p % size, failing over
  /// to that slot's live successor when the slot crashed or left.
  size_t NodeOfPeer(core::ParticipantId peer) const;
  /// Primaries (first live successor) for each controller key; reads
  /// must still fail over down the group via FirstHolder.
  size_t AllocatorNode() const {
    return ring_.OwnerOf(net::KeyHash("epoch-allocator"));
  }
  size_t EpochControllerNode(core::Epoch epoch) const {
    return ring_.OwnerOf(net::KeyHash("epoch:" + std::to_string(epoch)));
  }
  size_t TxnControllerNode(const core::TransactionId& id) const {
    return ring_.OwnerOf(net::KeyHash("txn:" + id.ToString()));
  }
  size_t CoordinatorNode(core::ParticipantId peer) const {
    return ring_.OwnerOf(net::KeyHash("peer:" + std::to_string(peer)));
  }

  /// The key's replica group (primary first).
  std::vector<size_t> GroupFor(const std::string& key) const {
    return ring_.ReplicaGroup(net::KeyHash(key), options_.replication_factor);
  }
  /// Applies `fn` to every replica of `key`; group writes are atomic in
  /// the simulation (message loss aborts the *protocol*, via the staged
  /// publish / reaping machinery, never half a group write).
  template <typename Fn>
  void MutateGroup(const std::string& key, Fn fn) {
    for (size_t node : GroupFor(key)) fn(nodes_[node]);
  }
  /// Failover read: the first replica of `key` satisfying `has`,
  /// primary first. Every miss past a replica is a failed probe charged
  /// to `peer` as one direct message. Empty when no replica holds the
  /// item — the data is lost (k was too small for the churn).
  template <typename Pred>
  std::optional<size_t> FirstHolder(core::ParticipantId peer,
                                    const std::string& key, Pred has) const {
    static Counter& failover_probes =
        MetricsRegistry::Global().GetCounter("store.dht.failover_probes");
    for (size_t node : GroupFor(key)) {
      if (has(nodes_[node])) return node;
      failover_probes.Increment();
      network_->Charge(peer, 1, 16);  // probe + miss reply
    }
    return std::nullopt;
  }

  /// Routes one key-addressed message from `from_node` to the owner of
  /// `key`, charging `bytes` per hop (and any dead-finger probe) to
  /// `peer`; returns the owner.
  size_t RoutedSend(core::ParticipantId peer, size_t from_node,
                    net::NodeId key, int64_t bytes);
  /// One direct (already-located) message.
  void DirectSend(core::ParticipantId peer, int64_t bytes);
  /// Routes to `key`'s primary and fans the message out to the rest of
  /// the replica group (k-1 direct messages).
  void ReplicatedSend(core::ParticipantId peer, size_t from_node,
                      const std::string& key, int64_t bytes);
  /// Failable variants for the publish/reconcile/record protocol paths:
  /// the message is charged either way, but an installed fault injector
  /// may declare it lost (Unavailable).
  Result<size_t> TryRoutedSend(core::ParticipantId peer, size_t from_node,
                               net::NodeId key, int64_t bytes);
  Status TryDirectSend(core::ParticipantId peer, int64_t bytes);
  Status TryReplicatedSend(core::ParticipantId peer, size_t from_node,
                           const std::string& key, int64_t bytes);

  /// One verified group read of a transaction: the decoded value, the
  /// node whose copy checked out (its decision log is read alongside),
  /// and the verified wire blob for shipping onward.
  struct TxnRead {
    core::Transaction txn;
    size_t holder = 0;
    std::string wire;
  };
  /// Group read of transaction `id` with end-to-end verification: walks
  /// the replica group in read-preference order (quarantined nodes
  /// last), verifies each holder's at-rest blob against its envelope
  /// checksum, and decodes the first copy that checks out. A corrupt
  /// replica costs `peer` its wasted reply, scores its node toward
  /// quarantine, and is read-repaired in place from the verified copy
  /// (the repair transfer goes to kRepairEndpoint). kDataLoss when no
  /// replica holds the id, or copies exist but none verifies — at-rest
  /// rot is persistent, so no retry can save it. With verify_checksums
  /// off the first copy found is decoded unverified (falling back to
  /// the decode index when the bytes are structural garbage) — the
  /// corruption sweep's control arm.
  Result<TxnRead> ReadTxnVerified(core::ParticipantId peer,
                                  const core::TransactionId& id) const;
  /// Bulk-sweep variant: reads `node`'s own copy of `id` (recovery and
  /// bootstrap walk every node), escalating to a verified group read
  /// when the local copy fails its checksum.
  Result<core::Transaction> ReadLocalOrRepair(
      core::ParticipantId peer, size_t node,
      const core::TransactionId& id) const;
  /// Installs a transaction (decoded + wire blob) on one replica,
  /// applying at-rest corruption (storage.bit_flip) independently per
  /// copy when an injector is armed — rot on one replica never implies
  /// rot on another.
  void InstallTxnReplica(NodeState& node, const core::Transaction& txn,
                         const std::string& wire) const;
  /// Replica group of `key` reordered for reads: quarantined nodes go
  /// last (stable within each class).
  std::vector<size_t> ReadOrderFor(const std::string& key) const;
  /// Bumps `node`'s corrupt-serve score; crossing the quarantine
  /// threshold counts integrity.quarantined_nodes once.
  void ScoreCorruptServe(size_t node) const;

  /// Ships `wire` to `peer` as an actual payload (retransmitting loss
  /// like TryDirectSend); in-flight corruption is silent and comes back
  /// in the delivered bytes.
  Result<std::string> ShipPayload(core::ParticipantId peer,
                                  std::string_view wire) const;
  /// Ships one transaction end-to-end: the receiver unwraps and decodes
  /// the delivered envelope. Detected in-flight corruption returns
  /// kCorruption — transient, the participant's retry loop re-fetches.
  /// With verify_checksums off a corrupt delivery decodes loosely or
  /// silently falls back to `fallback`.
  Result<core::Transaction> ShipTxn(core::ParticipantId peer,
                                    const std::string& wire,
                                    const core::Transaction& fallback) const;

  /// True when epoch `e` committed (finished and not aborted) on any
  /// replica still holding it.
  bool EpochCommitted(core::Epoch e) const;
  /// True when the transaction is stored under a committed epoch.
  /// Residue of an aborted publish does not count: it is overwritten on
  /// republish.
  bool IsCommittedTxn(const core::TransactionId& id) const;
  /// Best-effort rollback of a failed publish: removes the staged
  /// transactions, erases the epoch's contents, and marks the epoch
  /// aborted at its controller group. Skipped entirely when the fault
  /// injector reports a sticky (crash) fault — a dead publisher cannot
  /// clean up, and the stuck-epoch reaper takes over.
  void AbortEpoch(core::ParticipantId peer, core::Epoch epoch,
                  const std::vector<core::TransactionId>& staged);

  net::DhtRing ring_;
  net::SimNetwork* network_;
  const db::Catalog* catalog_ = nullptr;
  DhtStoreOptions options_;
  /// Mutable: verified reads are logically read-only at the protocol
  /// level but heal corrupt replicas in place (read-repair), including
  /// from the const recovery path.
  mutable std::vector<NodeState> nodes_;
  /// Corrupt-serve scores driving quarantine; mutable for the same
  /// reason. Ordered (lint rule D3).
  mutable std::map<size_t, int64_t> corrupt_serves_;
  std::unordered_map<core::ParticipantId, const core::TrustPolicy*> policies_;
  /// Soft state: unfinished-epoch observation counts driving the reaper.
  std::unordered_map<core::Epoch, int> epoch_strikes_;
  /// Soft state for kDelta: per-peer applied overlays behind lookup
  /// suppression. DHT nodes already hold decoded transactions, so the
  /// arena half of the cache is unused here. Mutable because recovery
  /// reads (FetchRecoveryState) refresh it.
  mutable core::FetchCache cache_;
  mutable std::unordered_map<core::ParticipantId, int64_t> cpu_micros_;
  mutable std::unordered_map<core::ParticipantId, int64_t> calls_;
  /// Per-peer provenance logs (see provenance_log). Ordered (lint rule
  /// D3): provenance_dump walks this map whole.
  std::map<core::ParticipantId, std::vector<core::ProvenanceRecord>>
      provenance_log_;
};

}  // namespace orchestra::store

#endif  // ORCHESTRA_STORE_DHT_STORE_H_
