#include "workload/swissprot.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace orchestra::workload {

namespace {

std::vector<std::string> MakeOrganisms() {
  return {
      "Homo sapiens",       "Mus musculus",       "Rattus norvegicus",
      "Danio rerio",        "Drosophila melanogaster",
      "Caenorhabditis elegans", "Saccharomyces cerevisiae",
      "Escherichia coli",   "Bacillus subtilis",  "Arabidopsis thaliana",
      "Gallus gallus",      "Bos taurus",         "Sus scrofa",
      "Xenopus laevis",     "Oryza sativa",       "Zea mays",
      "Canis familiaris",   "Felis catus",        "Macaca mulatta",
      "Pan troglodytes",    "Ovis aries",         "Equus caballus",
      "Oryctolagus cuniculus", "Cavia porcellus", "Mesocricetus auratus",
      "Schizosaccharomyces pombe", "Neurospora crassa",
      "Dictyostelium discoideum",  "Plasmodium falciparum",
      "Mycobacterium tuberculosis",
  };
}

std::vector<std::string> MakeFunctions() {
  // GO-style molecular function / biological process terms, expanded
  // combinatorially to reach a realistic vocabulary size.
  const std::vector<std::string> bases = {
      "cell-metabolism",        "immune-response",
      "cellular-respiration",   "signal-transduction",
      "dna-repair",             "dna-replication",
      "rna-splicing",           "protein-folding",
      "protein-phosphorylation","lipid-metabolism",
      "glycolysis",             "gluconeogenesis",
      "apoptosis",              "cell-cycle-regulation",
      "transcription-regulation","translation-initiation",
      "ion-transport",          "electron-transport",
      "oxidative-phosphorylation","photosynthesis",
      "proteolysis",            "ubiquitination",
      "chromatin-remodeling",   "histone-modification",
      "vesicle-transport",      "endocytosis",
      "exocytosis",             "cytoskeleton-organization",
      "cell-adhesion",          "cell-migration",
      "angiogenesis",           "neurotransmission",
      "synaptic-plasticity",    "muscle-contraction",
      "heme-binding",           "atp-binding",
      "gtpase-activity",        "kinase-activity",
      "phosphatase-activity",   "oxidoreductase-activity",
  };
  const std::vector<std::string> qualifiers = {
      "", "positive-regulation-of-", "negative-regulation-of-",
      "mitochondrial-", "nuclear-", "membrane-", "cytoplasmic-",
      "extracellular-", "regulation-of-", "response-to-",
  };
  std::vector<std::string> out;
  out.reserve(bases.size() * qualifiers.size());
  for (const std::string& q : qualifiers) {
    for (const std::string& b : bases) {
      out.push_back(q + b);
    }
  }
  return out;
}

std::vector<std::string> MakeCrossRefDbs() {
  return {"EMBL",    "PDB",      "PIR",       "PROSITE", "InterPro",
          "Pfam",    "GenBank",  "RefSeq",    "KEGG",    "GO",
          "OMIM",    "FlyBase",  "WormBase",  "SGD",     "MGI"};
}

}  // namespace

const std::vector<std::string>& OrganismVocabulary() {
  static const std::vector<std::string>& v =
      *new std::vector<std::string>(MakeOrganisms());
  return v;
}

const std::vector<std::string>& FunctionVocabulary() {
  static const std::vector<std::string>& v =
      *new std::vector<std::string>(MakeFunctions());
  return v;
}

const std::vector<std::string>& CrossRefDatabases() {
  static const std::vector<std::string>& v =
      *new std::vector<std::string>(MakeCrossRefDbs());
  return v;
}

Result<db::Catalog> MakeSwissProtCatalog() {
  db::Catalog catalog;
  {
    ORCH_ASSIGN_OR_RETURN(
        db::RelationSchema function_schema,
        db::RelationSchema::Make(
            kFunctionRelation,
            {{"organism", db::ValueType::kString, false},
             {"protein", db::ValueType::kString, false},
             {"function", db::ValueType::kString, false}},
            {0, 1}));
    ORCH_RETURN_IF_ERROR(catalog.AddRelation(std::move(function_schema)));
  }
  {
    ORCH_ASSIGN_OR_RETURN(
        db::RelationSchema crossref_schema,
        db::RelationSchema::Make(
            kCrossRefRelation,
            {{"organism", db::ValueType::kString, false},
             {"protein", db::ValueType::kString, false},
             {"xref_db", db::ValueType::kString, false},
             {"accession", db::ValueType::kString, false}},
            {0, 1, 2, 3}));
    ORCH_RETURN_IF_ERROR(catalog.AddRelation(std::move(crossref_schema)));
  }
  ORCH_RETURN_IF_ERROR(catalog.AddForeignKey(
      db::ForeignKey{kCrossRefRelation, {0, 1}, kFunctionRelation}));
  return catalog;
}

SwissProtWorkload::SwissProtWorkload(WorkloadConfig config)
    : config_(config),
      rng_(config.seed),
      key_zipf_(config.key_pool, config.key_zipf_s),
      function_zipf_(config.function_pool, config.zipf_s) {}

db::Tuple SwissProtWorkload::KeyAt(size_t rank) const {
  const auto& organisms = OrganismVocabulary();
  const std::string& organism = organisms[rank % organisms.size()];
  // SWISS-PROT-style accession: P + zero-padded pool index.
  char protein[16];
  std::snprintf(protein, sizeof(protein), "P%05zu", rank);
  return db::Tuple{db::Value(organism), db::Value(std::string(protein))};
}

std::string SwissProtWorkload::FunctionAt(size_t rank) const {
  const auto& functions = FunctionVocabulary();
  if (rank < functions.size()) return functions[rank];
  return functions[rank % functions.size()] + "-variant-" +
         std::to_string(rank / functions.size());
}

size_t SwissProtWorkload::SampleCrossRefCount() {
  // Knuth's Poisson sampler; mean is small (7.3).
  const double l = std::exp(-config_.crossrefs_per_insert);
  size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng_.NextDouble();
  } while (p > l);
  return k - 1;
}

std::vector<core::Update> SwissProtWorkload::NextTransaction(
    core::ParticipantId peer, const db::Instance& instance) {
  std::vector<core::Update> updates;
  auto function_table = instance.GetTable(kFunctionRelation);
  ORCH_CHECK(function_table.ok());
  const db::RelationSchema& schema = (*function_table)->schema();

  // Keys already written within this transaction (avoid generating a
  // self-conflicting sequence).
  std::vector<db::Tuple> written;
  auto touched = [&](const db::Tuple& key) {
    for (const db::Tuple& w : written) {
      if (w == key) return true;
    }
    return false;
  };

  for (size_t op = 0; op < config_.transaction_size; ++op) {
    if (config_.delete_fraction > 0 && !(*function_table)->empty() &&
        rng_.NextBool(config_.delete_fraction)) {
      // Retire a curated entry: delete the Function tuple and every
      // cross-reference of its key in the same transaction, so the
      // foreign key stays satisfied.
      std::vector<db::Tuple> rows = (*function_table)->Scan();
      const db::Tuple& victim = rows[rng_.NextBounded(rows.size())];
      const db::Tuple victim_key = schema.KeyOf(victim);
      if (touched(victim_key)) continue;
      auto crossref_table = instance.GetTable(kCrossRefRelation);
      ORCH_CHECK(crossref_table.ok());
      for (const db::Tuple& ref : (*crossref_table)->Scan()) {
        if (ref[0] == victim_key[0] && ref[1] == victim_key[1]) {
          updates.push_back(core::Update::Delete(kCrossRefRelation, ref, peer));
        }
      }
      updates.push_back(core::Update::Delete(kFunctionRelation, victim, peer));
      written.push_back(victim_key);
      continue;
    }
    const bool try_replace = !(*function_table)->empty() &&
                             rng_.NextBool(config_.replace_fraction);
    if (try_replace) {
      // Replace the function value of an existing tuple with a fresh
      // Zipf-drawn term (curation revises a conclusion).
      std::vector<db::Tuple> rows = (*function_table)->Scan();
      const db::Tuple& victim =
          rows[rng_.NextBounded(rows.size())];
      const db::Tuple victim_key = schema.KeyOf(victim);
      if (touched(victim_key)) continue;
      std::string new_function = FunctionAt(function_zipf_.Sample(rng_));
      if (victim[2].AsString() == new_function) {
        new_function = FunctionAt((function_zipf_.Sample(rng_) + 1) %
                                  config_.function_pool);
      }
      db::Tuple new_tuple{victim[0], victim[1],
                          db::Value(std::move(new_function))};
      if (new_tuple == victim) continue;
      updates.push_back(core::Update::Modify(kFunctionRelation, victim,
                                             new_tuple, peer));
      written.push_back(victim_key);
      continue;
    }
    // Insert a (possibly contested) key from the shared pool. If this
    // peer already has the key, fall back to replacing it.
    const size_t rank = key_zipf_.Sample(rng_);
    const db::Tuple key = KeyAt(rank);
    if (touched(key)) continue;
    const std::string function = FunctionAt(function_zipf_.Sample(rng_));
    db::Tuple tuple{key[0], key[1], db::Value(function)};
    auto existing = (*function_table)->GetByKey(key);
    if (existing.ok()) {
      if (*existing == tuple) continue;  // nothing to change
      updates.push_back(
          core::Update::Modify(kFunctionRelation, *existing, tuple, peer));
      written.push_back(key);
      continue;
    }
    updates.push_back(core::Update::Insert(kFunctionRelation, tuple, peer));
    written.push_back(key);
    // Database cross-references accompany every newly inserted key
    // (7.3 tuples on average, §6).
    const size_t n_refs = SampleCrossRefCount();
    const auto& dbs = CrossRefDatabases();
    for (size_t r = 0; r < n_refs; ++r) {
      const std::string& xref_db = dbs[rng_.NextBounded(dbs.size())];
      char accession[24];
      std::snprintf(accession, sizeof(accession), "%s%06" PRIu64 "",
                    xref_db.substr(0, 2).c_str(),
                    rng_.Next() % 1000000);
      updates.push_back(core::Update::Insert(
          kCrossRefRelation,
          db::Tuple{key[0], key[1], db::Value(xref_db),
                    db::Value(std::string(accession))},
          peer));
    }
  }
  return updates;
}

}  // namespace orchestra::workload
