#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace orchestra::workload {

ZipfDistribution::ZipfDistribution(size_t n, double s) : s_(s) {
  ORCH_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t k) const {
  ORCH_CHECK_LT(k, cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace orchestra::workload
