#ifndef ORCHESTRA_WORKLOAD_ZIPF_H_
#define ORCHESTRA_WORKLOAD_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace orchestra::workload {

/// Zipfian distribution over {0, ..., n-1} with characteristic exponent
/// s: P(k) ∝ 1 / (k+1)^s. The paper's synthetic workload samples update
/// values "according to a heavy-tailed Zipfian distribution with
/// characteristic s = 1.5" (§6). Sampling is by inversion over a
/// precomputed CDF (O(log n) per sample, exact).
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

  /// Draws one rank; rank 0 is the most popular.
  size_t Sample(Rng& rng) const;

  /// Probability of rank k.
  double Pmf(size_t k) const;

 private:
  double s_;
  std::vector<double> cdf_;
};

}  // namespace orchestra::workload

#endif  // ORCHESTRA_WORKLOAD_ZIPF_H_
