# DHT store session: network-centric reconciliation + bootstrap.
peers 4 dht
trust 1 2 1
trust 1 3 1
trust 2 1 1
trust 2 3 1
trust 3 1 1
trust 3 2 1
trust 4 1 1
trust 4 2 1
trust 4 3 1
exec 1 insert rat prot1 dna-repair
publish 1
reconcile 2 nc
show 2
exec 2 modify rat prot1 dna-repair rna-splicing
publish 2
reconcile 3 nc
show 3
bootstrap 4 3
show 4
stats 3
quit
