# Scripted dilemma for the `explain` verb: peers 2 and 3 insert
# conflicting tuples, peer 1 trusts both equally and must defer, then a
# user resolution rejects the loser. `explain` is asked for both
# verdicts before and after the resolution.
peers 3
trust 1 2 1
trust 1 3 1
trust 2 3 1
trust 3 2 1
exec 2 insert rat p1 metab
publish 2
exec 3 insert rat p1 immune
publish 3
reconcile 1
explain 1 X2:0
explain 1 X3:0
conflicts 1
resolve 1 0 0
explain 1 X2:0
explain 1 X3:0
quit
