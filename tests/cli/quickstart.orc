# Figure 2 walkthrough via the CLI.
peers 3
trust 1 2 1
trust 1 3 1
trust 2 1 2
trust 2 3 1
trust 3 2 1
exec 3 insert rat prot1 cell-metab
exec 3 modify rat prot1 cell-metab immune
publish 3
reconcile 3
exec 2 insert mouse prot2 immune
exec 2 insert rat prot1 cell-resp
publish 2
reconcile 2
reconcile 3
reconcile 1
conflicts 1
resolve 1 0 0
show 1
ratio
quit
