#!/bin/bash
set -e
CLI="$1"; SCRIPT="$2"
OUT=$("$CLI" < "$SCRIPT")
echo "$OUT"
echo "$OUT" | grep -q "confederation of 4 peers over the dht store" || { echo "FAIL: store kind"; exit 1; }
echo "$OUT" | grep -q "('rat', 'prot1', 'rna-splicing')" || { echo "FAIL: chain result missing"; exit 1; }
echo "$OUT" | grep -q "bootstrapped from peer 3" || { echo "FAIL: bootstrap missing"; exit 1; }
COUNT=$(echo "$OUT" | grep -c "('rat', 'prot1', 'rna-splicing')")
[ "$COUNT" -ge 2 ] || { echo "FAIL: bootstrap did not adopt tuple"; exit 1; }
echo "CLI DHT smoke test passed"
