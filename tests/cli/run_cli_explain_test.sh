#!/bin/bash
# Golden test for the `explain` verb: drive a scripted equal-priority
# dilemma through reconcile -> explain -> resolve -> explain and require
# the CLI's output to match the committed golden byte-for-byte. The
# explain lines are rendered from provenance records, so this pins both
# the cause attribution and the because-chain walk.
set -e
CLI="$1"
SCRIPT="$2"
GOLDEN="$3"
OUT=$("$CLI" < "$SCRIPT" 2>&1)
echo "$OUT"
if ! diff <(echo "$OUT") "$GOLDEN"; then
  echo "FAIL: explain output diverged from $GOLDEN"
  exit 1
fi
echo "CLI explain golden test passed"
