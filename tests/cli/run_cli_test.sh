#!/bin/bash
# Smoke test: drive the CLI through the Figure 2 walkthrough and check
# the key outcomes appear in the output.
set -e
CLI="$1"
SCRIPT="$2"
OUT=$("$CLI" < "$SCRIPT")
echo "$OUT"
echo "$OUT" | grep -q "confederation of 3 peers" || { echo "FAIL: no confederation"; exit 1; }
echo "$OUT" | grep -q "3 deferred (1 open conflict groups)" || { echo "FAIL: p1 deferral missing"; exit 1; }
echo "$OUT" | grep -q "insert/insert on Function('rat', 'prot1')" || { echo "FAIL: conflict group missing"; exit 1; }
echo "$OUT" | grep -q "('rat', 'prot1', 'immune')" || { echo "FAIL: resolved tuple missing"; exit 1; }
echo "$OUT" | grep -q "state ratio" || { echo "FAIL: ratio missing"; exit 1; }
echo "CLI smoke test passed"
