// CRC32C (Castagnoli): known-answer vectors from RFC 3720 §B.4 and the
// LevelDB test corpus, the streaming/extension property, and bit-exact
// equivalence between the hardware (SSE4.2) and portable table paths on
// fuzzed inputs — the property the integrity envelope's portability
// rests on.
#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace orchestra {
namespace {

TEST(Crc32cTest, Rfc3720KnownVectors) {
  // The classic CRC check string.
  EXPECT_EQ(Crc32c(0, "123456789"), 0xE3069283u);
  // RFC 3720 §B.4: 32 bytes of zeros / ones / ascending / descending.
  std::string buf(32, '\0');
  EXPECT_EQ(Crc32c(0, buf), 0x8A9136AAu);
  buf.assign(32, static_cast<char>(0xFF));
  EXPECT_EQ(Crc32c(0, buf), 0x62A8AB43u);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(0, buf), 0x46DD794Eu);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<char>(31 - i);
  EXPECT_EQ(Crc32c(0, buf), 0x113FDB5Cu);
}

TEST(Crc32cTest, EmptyInputIsIdentity) {
  EXPECT_EQ(Crc32c(0, ""), 0u);
  EXPECT_EQ(Crc32c(0x12345678u, ""), 0x12345678u);
}

TEST(Crc32cTest, StreamingExtensionMatchesOneShot) {
  const std::string data =
      "a reasonably long buffer, split at every possible point";
  const uint32_t whole = Crc32c(0, data);
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    const uint32_t first = Crc32c(0, data.substr(0, cut));
    EXPECT_EQ(Crc32c(first, data.substr(cut)), whole) << "cut at " << cut;
  }
}

TEST(Crc32cTest, SingleBitFlipAlwaysChangesChecksum) {
  const std::string data = "checksum sensitivity probe";
  const uint32_t clean = Crc32c(0, data);
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    std::string flipped = data;
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32c(0, flipped), clean) << "bit " << bit;
  }
}

TEST(Crc32cTest, HardwareAndPortablePathsAgreeOnFuzzedInputs) {
  if (!Crc32cHardwareAvailable()) {
    GTEST_SKIP() << "binary has no SSE4.2 CRC32C path";
  }
  Rng rng(20260808);
  for (int round = 0; round < 500; ++round) {
    // Lengths straddling the hardware path's 8/4/1-byte strides,
    // including empty, and random starting checksums.
    const size_t len = rng.NextBounded(257);
    std::string data(len, '\0');
    for (char& c : data) c = static_cast<char>(rng.NextBounded(256));
    const uint32_t start = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(Crc32cHardware(start, data), Crc32cPortable(start, data))
        << "round " << round << " len " << len;
  }
}

TEST(Crc32cTest, DispatchMatchesPortable) {
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    std::string data(rng.NextBounded(128), '\0');
    for (char& c : data) c = static_cast<char>(rng.NextBounded(256));
    EXPECT_EQ(Crc32c(0, data), Crc32cPortable(0, data));
  }
}

}  // namespace
}  // namespace orchestra
