// Unit tests for the deterministic fault injector: trigger composition
// (probability, fail-at-call, sticky), site filtering, determinism
// across same-seed runs, and the Disable/ScopedDisable machinery the
// stores' rollback paths rely on.
#include "common/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace orchestra {
namespace {

TEST(FaultInjectorTest, InertByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
  }
  // Disabled injectors do not even count calls (the hot path is free).
  EXPECT_EQ(injector.calls(), 0);
  EXPECT_EQ(injector.injected(), 0);
  EXPECT_FALSE(injector.tripped());
}

TEST(FaultInjectorTest, FailAtCallHitsExactlyTheNthCall) {
  FaultInjectorConfig cfg;
  cfg.fail_at_call = 3;
  FaultInjector injector(cfg);
  EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
  EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
  const Status third = injector.MaybeFail("storage.put");
  EXPECT_EQ(third.code(), StatusCode::kUnavailable);
  // Non-sticky: the outage is a single call.
  EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
  EXPECT_EQ(injector.injected(), 1);
  EXPECT_FALSE(injector.tripped());
}

TEST(FaultInjectorTest, StickyTurnsOneFaultIntoAPermanentOutage) {
  FaultInjectorConfig cfg;
  cfg.fail_at_call = 2;
  cfg.sticky = true;
  FaultInjector injector(cfg);
  EXPECT_TRUE(injector.MaybeFail("net.send").ok());
  EXPECT_FALSE(injector.MaybeFail("net.send").ok());
  EXPECT_TRUE(injector.tripped());
  // The simulated process is dead: every later call fails too.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.MaybeFail("net.send").code(),
              StatusCode::kUnavailable);
  }
}

TEST(FaultInjectorTest, SitePrefixFiltersEligibleCalls) {
  FaultInjectorConfig cfg;
  cfg.fail_at_call = 1;
  cfg.site_prefix = "storage.";
  FaultInjector injector(cfg);
  // Non-matching sites are ignored entirely (not counted, never fail).
  EXPECT_TRUE(injector.MaybeFail("net.send").ok());
  EXPECT_EQ(injector.calls(), 0);
  EXPECT_EQ(injector.MaybeFail("storage.sync").code(),
            StatusCode::kUnavailable);
}

TEST(FaultInjectorTest, SameSeedSameFaultSequence) {
  FaultInjectorConfig cfg;
  cfg.failure_probability = 0.2;
  cfg.seed = 7;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  std::vector<bool> pattern_a, pattern_b;
  for (int i = 0; i < 200; ++i) {
    pattern_a.push_back(a.MaybeFail("storage.put").ok());
    pattern_b.push_back(b.MaybeFail("storage.put").ok());
  }
  EXPECT_EQ(pattern_a, pattern_b);
  EXPECT_GT(a.injected(), 0);       // p=0.2 over 200 calls fires w.h.p.
  EXPECT_LT(a.injected(), 200);     // ... and not always
}

TEST(FaultInjectorTest, ConfigureResetsStreamAndCounters) {
  FaultInjectorConfig cfg;
  cfg.failure_probability = 0.5;
  cfg.seed = 3;
  cfg.sticky = true;
  FaultInjector injector(cfg);
  while (!injector.tripped()) {
    (void)injector.MaybeFail("storage.put");
  }
  injector.Configure(cfg);  // "reboot": same config, fresh stream
  EXPECT_FALSE(injector.tripped());
  EXPECT_EQ(injector.calls(), 0);
  EXPECT_EQ(injector.injected(), 0);
  // And Configure({}) turns injection off completely.
  injector.Configure(FaultInjectorConfig{});
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
}

TEST(FaultInjectorTest, ScopedDisableSuppressesAndRestores) {
  FaultInjectorConfig cfg;
  cfg.fail_at_call = 1;
  FaultInjector injector(cfg);
  {
    FaultInjector::ScopedDisable guard(&injector);
    // Rollback paths run fault-free even though injection is armed.
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(injector.MaybeFail("storage.delete").ok());
    }
  }
  EXPECT_TRUE(injector.enabled());
  EXPECT_EQ(injector.MaybeFail("storage.put").code(),
            StatusCode::kUnavailable);
  // A null injector is fine: components hold nullable pointers.
  FaultInjector::ScopedDisable null_guard(nullptr);
}

TEST(FaultInjectorTest, ValidateConfigRejectsUnknownCorruptionSite) {
  FaultInjectorConfig cfg;
  cfg.corruption_probability = 0.01;
  cfg.corruption_sites = {"storage.bit_flip", "storage.bitflip"};  // typo
  const Status status = FaultInjector::ValidateConfig(cfg);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("storage.bitflip"), std::string::npos);
}

TEST(FaultInjectorTest, ValidateConfigRejectsUnknownSitePrefix) {
  FaultInjectorConfig cfg;
  cfg.failure_probability = 0.01;
  cfg.site_prefix = "storge.";  // matches no known failure site
  EXPECT_EQ(FaultInjector::ValidateConfig(cfg).code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultInjectorTest, ValidateConfigRejectsOutOfRangeProbabilities) {
  FaultInjectorConfig cfg;
  cfg.corruption_probability = 1.5;
  EXPECT_EQ(FaultInjector::ValidateConfig(cfg).code(),
            StatusCode::kInvalidArgument);
  cfg.corruption_probability = 0.0;
  cfg.failure_probability = -0.1;
  EXPECT_EQ(FaultInjector::ValidateConfig(cfg).code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultInjectorTest, ValidateConfigAcceptsKnownSites) {
  FaultInjectorConfig cfg;
  cfg.failure_probability = 0.01;
  cfg.site_prefix = "storage.";
  cfg.corruption_probability = 0.005;
  for (std::string_view site : FaultInjector::KnownCorruptionSites()) {
    cfg.corruption_sites.emplace_back(site);
  }
  EXPECT_TRUE(FaultInjector::ValidateConfig(cfg).ok());
}

TEST(FaultInjectorTest, CorruptionSitesHonorTheirSemantics) {
  FaultInjectorConfig cfg;
  cfg.corruption_probability = 1.0;
  cfg.corruption_sites = {"storage.bit_flip", "storage.torn_write",
                          "storage.truncate_tail"};
  cfg.seed = 5;
  FaultInjector injector(cfg);
  const std::string original(64, 'a');

  std::string flipped = original;
  ASSERT_TRUE(injector.MaybeCorrupt("storage.bit_flip", &flipped));
  EXPECT_EQ(flipped.size(), original.size());  // flips, never resizes
  EXPECT_NE(flipped, original);

  std::string torn = original;
  ASSERT_TRUE(injector.MaybeCorrupt("storage.torn_write", &torn));
  EXPECT_LT(torn.size(), original.size());  // strict prefix
  EXPECT_EQ(torn, original.substr(0, torn.size()));

  // Unarmed site: untouched and uncounted even at probability 1.
  std::string spared = original;
  EXPECT_FALSE(injector.MaybeCorrupt("net.payload_corrupt", &spared));
  EXPECT_EQ(spared, original);
  EXPECT_EQ(injector.corrupted(), 2);
}

TEST(FaultInjectorTest, CorruptionIsDeterministicPerSeed) {
  const auto run = [](uint64_t seed) {
    FaultInjectorConfig cfg;
    cfg.corruption_probability = 0.5;
    cfg.corruption_sites = {"storage.bit_flip"};
    cfg.seed = seed;
    FaultInjector injector(cfg);
    std::vector<std::string> outcomes;
    for (int i = 0; i < 50; ++i) {
      std::string data = "deterministic-corruption-" + std::to_string(i);
      injector.MaybeCorrupt("storage.bit_flip", &data);
      outcomes.push_back(std::move(data));
    }
    return outcomes;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

}  // namespace
}  // namespace orchestra
