// Unit tests for the deterministic fault injector: trigger composition
// (probability, fail-at-call, sticky), site filtering, determinism
// across same-seed runs, and the Disable/ScopedDisable machinery the
// stores' rollback paths rely on.
#include "common/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace orchestra {
namespace {

TEST(FaultInjectorTest, InertByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
  }
  // Disabled injectors do not even count calls (the hot path is free).
  EXPECT_EQ(injector.calls(), 0);
  EXPECT_EQ(injector.injected(), 0);
  EXPECT_FALSE(injector.tripped());
}

TEST(FaultInjectorTest, FailAtCallHitsExactlyTheNthCall) {
  FaultInjectorConfig cfg;
  cfg.fail_at_call = 3;
  FaultInjector injector(cfg);
  EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
  EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
  const Status third = injector.MaybeFail("storage.put");
  EXPECT_EQ(third.code(), StatusCode::kUnavailable);
  // Non-sticky: the outage is a single call.
  EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
  EXPECT_EQ(injector.injected(), 1);
  EXPECT_FALSE(injector.tripped());
}

TEST(FaultInjectorTest, StickyTurnsOneFaultIntoAPermanentOutage) {
  FaultInjectorConfig cfg;
  cfg.fail_at_call = 2;
  cfg.sticky = true;
  FaultInjector injector(cfg);
  EXPECT_TRUE(injector.MaybeFail("net.send").ok());
  EXPECT_FALSE(injector.MaybeFail("net.send").ok());
  EXPECT_TRUE(injector.tripped());
  // The simulated process is dead: every later call fails too.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.MaybeFail("net.send").code(),
              StatusCode::kUnavailable);
  }
}

TEST(FaultInjectorTest, SitePrefixFiltersEligibleCalls) {
  FaultInjectorConfig cfg;
  cfg.fail_at_call = 1;
  cfg.site_prefix = "storage.";
  FaultInjector injector(cfg);
  // Non-matching sites are ignored entirely (not counted, never fail).
  EXPECT_TRUE(injector.MaybeFail("net.send").ok());
  EXPECT_EQ(injector.calls(), 0);
  EXPECT_EQ(injector.MaybeFail("storage.sync").code(),
            StatusCode::kUnavailable);
}

TEST(FaultInjectorTest, SameSeedSameFaultSequence) {
  FaultInjectorConfig cfg;
  cfg.failure_probability = 0.2;
  cfg.seed = 7;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  std::vector<bool> pattern_a, pattern_b;
  for (int i = 0; i < 200; ++i) {
    pattern_a.push_back(a.MaybeFail("storage.put").ok());
    pattern_b.push_back(b.MaybeFail("storage.put").ok());
  }
  EXPECT_EQ(pattern_a, pattern_b);
  EXPECT_GT(a.injected(), 0);       // p=0.2 over 200 calls fires w.h.p.
  EXPECT_LT(a.injected(), 200);     // ... and not always
}

TEST(FaultInjectorTest, ConfigureResetsStreamAndCounters) {
  FaultInjectorConfig cfg;
  cfg.failure_probability = 0.5;
  cfg.seed = 3;
  cfg.sticky = true;
  FaultInjector injector(cfg);
  while (!injector.tripped()) {
    (void)injector.MaybeFail("storage.put");
  }
  injector.Configure(cfg);  // "reboot": same config, fresh stream
  EXPECT_FALSE(injector.tripped());
  EXPECT_EQ(injector.calls(), 0);
  EXPECT_EQ(injector.injected(), 0);
  // And Configure({}) turns injection off completely.
  injector.Configure(FaultInjectorConfig{});
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.MaybeFail("storage.put").ok());
}

TEST(FaultInjectorTest, ScopedDisableSuppressesAndRestores) {
  FaultInjectorConfig cfg;
  cfg.fail_at_call = 1;
  FaultInjector injector(cfg);
  {
    FaultInjector::ScopedDisable guard(&injector);
    // Rollback paths run fault-free even though injection is armed.
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(injector.MaybeFail("storage.delete").ok());
    }
  }
  EXPECT_TRUE(injector.enabled());
  EXPECT_EQ(injector.MaybeFail("storage.put").code(),
            StatusCode::kUnavailable);
  // A null injector is fine: components hold nullable pointers.
  FaultInjector::ScopedDisable null_guard(nullptr);
}

}  // namespace
}  // namespace orchestra
