// EstimateQuantile: quantiles reconstructed from Histogram bucket
// snapshots. The contract: exact answers when the math allows it (a
// point mass, uniformly spread samples interpolating to a boundary),
// bucket-bounded error otherwise (estimates never leave the bucket the
// true quantile falls in), and graceful degenerate cases (empty
// snapshot, the unbounded last bucket).
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace orchestra {
namespace {

TEST(MetricsQuantileTest, EmptySnapshotIsZero) {
  Histogram h;
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(EstimateQuantile(snap, 0.5), 0);
  EXPECT_EQ(EstimateQuantile(snap, 0.99), 0);
}

TEST(MetricsQuantileTest, PointMassIsExact) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Observe(100);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  // All mass in (64,256]; every quantile interpolates to the same spot.
  // p50: rank 5 of 10 → lower + 0.5 * width is the midpoint estimate,
  // which for this bucket is 64 + 96 = 160; the estimator cannot know
  // the samples cluster at 100, but it must stay inside the bucket.
  const int64_t p50 = EstimateQuantile(snap, 0.5);
  EXPECT_GT(p50, 64);
  EXPECT_LE(p50, 256);
}

TEST(MetricsQuantileTest, UniformSamplesInterpolateExactly) {
  Histogram h;
  for (int64_t v = 1; v <= 100; ++v) h.Observe(v);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  // p50 rank 50 lands in bucket (16,64] holding samples 17..64: 16 seen
  // before it, 48 inside, frac (50-16)/48 → 16 + 34 = 50 exactly.
  EXPECT_EQ(EstimateQuantile(snap, 0.5), 50);
  // p95/p99 fall in (64,256] with samples 65..100; the estimate stays
  // inside that bucket even though interpolation overshoots the true
  // values (95, 99) because the bucket extends past the max sample.
  const int64_t p95 = EstimateQuantile(snap, 0.95);
  const int64_t p99 = EstimateQuantile(snap, 0.99);
  EXPECT_GT(p95, 64);
  EXPECT_LE(p95, 256);
  EXPECT_GT(p99, 64);
  EXPECT_LE(p99, 256);
  EXPECT_LE(EstimateQuantile(snap, 0.5), p95);
  EXPECT_LE(p95, p99);
}

TEST(MetricsQuantileTest, QuantileIsClampedToUnitRange) {
  Histogram h;
  for (int64_t v = 1; v <= 100; ++v) h.Observe(v);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(EstimateQuantile(snap, -0.5), EstimateQuantile(snap, 0.0));
  EXPECT_EQ(EstimateQuantile(snap, 1.5), EstimateQuantile(snap, 1.0));
}

TEST(MetricsQuantileTest, LastBucketReturnsItsLowerBound) {
  Histogram h;
  h.Observe(INT64_MAX / 2);  // far beyond the last finite boundary
  const Histogram::Snapshot snap = h.TakeSnapshot();
  // The final bucket is unbounded, so interpolation is impossible; the
  // estimator reports the bucket's lower bound (4^14) rather than
  // inventing a midpoint against INT64_MAX.
  EXPECT_EQ(EstimateQuantile(snap, 0.5),
            Histogram::BucketUpperBound(Histogram::kNumBuckets - 2));
}

}  // namespace
}  // namespace orchestra
