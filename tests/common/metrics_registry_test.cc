// MetricsRegistry: named counters/gauges/histograms with relaxed-atomic
// hot paths. The contract under test: totals are exact under
// concurrency, registration returns stable references, Reset() keeps
// every cached pointer valid, and delta arithmetic drops zero movement.
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

namespace orchestra {
namespace {

TEST(CounterTest, AddIncrementResetRoundTrip) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetOverwritesAddAdjusts) {
  Gauge g;
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);
  g.Set(100);
  EXPECT_EQ(g.value(), 100);
}

TEST(HistogramTest, BucketBoundsArePowersOfFour) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 4);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 16);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            std::numeric_limits<int64_t>::max());
}

TEST(HistogramTest, ObservePlacesSamplesInTheRightBuckets) {
  Histogram h;
  h.Observe(0);   // bucket 0: [0, 1]
  h.Observe(1);   // bucket 0
  h.Observe(2);   // bucket 1: (1, 4]
  h.Observe(4);   // bucket 1
  h.Observe(5);   // bucket 2: (4, 16]
  h.Observe(std::numeric_limits<int64_t>::max());  // last bucket
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 6);
  EXPECT_EQ(snap.buckets[0], 2);
  EXPECT_EQ(snap.buckets[1], 2);
  EXPECT_EQ(snap.buckets[2], 1);
  EXPECT_EQ(snap.buckets[Histogram::kNumBuckets - 1], 1);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.value(), 5);
  // Distinct kinds under distinct names coexist.
  registry.GetGauge("x.gauge").Set(9);
  registry.GetHistogram("x.hist").Observe(3);
  EXPECT_EQ(registry.TakeSnapshot().size(), 3u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter").Add(2);
  registry.GetGauge("a.gauge").Set(1);
  registry.GetHistogram("c.hist").Observe(10);
  const auto snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a.gauge");
  EXPECT_EQ(snapshot[0].kind, MetricsRegistry::Sample::Kind::kGauge);
  EXPECT_EQ(snapshot[0].value, 1);
  EXPECT_EQ(snapshot[1].name, "b.counter");
  EXPECT_EQ(snapshot[1].kind, MetricsRegistry::Sample::Kind::kCounter);
  EXPECT_EQ(snapshot[1].value, 2);
  EXPECT_EQ(snapshot[2].name, "c.hist");
  EXPECT_EQ(snapshot[2].kind, MetricsRegistry::Sample::Kind::kHistogram);
  EXPECT_EQ(snapshot[2].histogram.count, 1);
  EXPECT_EQ(snapshot[2].histogram.sum, 10);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsPointers) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("keep.me");
  c.Add(123);
  registry.Reset();
  EXPECT_EQ(c.value(), 0);       // the cached reference still works
  c.Increment();
  EXPECT_EQ(registry.GetCounter("keep.me").value(), 1);
}

TEST(MetricsRegistryTest, CounterDeltasDropZeroMovement) {
  MetricsRegistry registry;
  registry.GetCounter("moves").Add(10);
  registry.GetCounter("stays").Add(5);
  const auto before = registry.CounterValues();
  registry.GetCounter("moves").Add(7);
  registry.GetCounter("fresh").Add(2);  // registered after `before`
  const auto deltas = CounterDeltas(before, registry.CounterValues());
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas.at("moves"), 7);
  EXPECT_EQ(deltas.at("fresh"), 2);
  EXPECT_EQ(deltas.count("stays"), 0u);
}

// The tentpole's concurrency contract: N threads hammering the same
// instruments (and racing registration of the same names) lose no
// updates and produce exact totals. Run under the tsan preset this is
// also the data-race proof for the relaxed-atomic design.
TEST(MetricsRegistryTest, ConcurrentUpdatesProduceExactTotals) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread re-resolves by name: registration itself races.
      Counter& hits = registry.GetCounter("race.hits");
      Histogram& sizes = registry.GetHistogram("race.sizes");
      for (int i = 0; i < kIterations; ++i) {
        hits.Increment();
        registry.GetCounter("race.bytes").Add(3);
        sizes.Observe(t);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.GetCounter("race.hits").value(), kThreads * kIterations);
  EXPECT_EQ(registry.GetCounter("race.bytes").value(),
            int64_t{3} * kThreads * kIterations);
  const Histogram::Snapshot sizes =
      registry.GetHistogram("race.sizes").TakeSnapshot();
  EXPECT_EQ(sizes.count, kThreads * kIterations);
  // sum of 0..7, each observed kIterations times
  EXPECT_EQ(sizes.sum, int64_t{28} * kIterations);
}

}  // namespace
}  // namespace orchestra
