#include "common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace orchestra {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleIsRoughlyUniform) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(5);
  std::vector<uint64_t> first;
  for (int i = 0; i < 8; ++i) first.push_back(rng.Next());
  rng.Seed(5);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

}  // namespace
}  // namespace orchestra
