#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace orchestra {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Conflict("x").code(), StatusCode::kConflict);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("relation F").ToString(), "not_found: relation F");
  EXPECT_EQ(Status::Conflict("").ToString(), "conflict");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsConflict());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Conflict("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    ORCH_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);

  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    ORCH_RETURN_IF_ERROR(succeeds());
    return Status::Conflict("after");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kConflict);
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "not_found");
  EXPECT_EQ(StatusCodeName(StatusCode::kConstraintViolation),
            "constraint_violation");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Conflict("boom");
    return 41;
  };
  auto outer = [&](bool fail) -> Result<int> {
    ORCH_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(false).value(), 42);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kConflict);
}

}  // namespace
}  // namespace orchestra
