#include "common/string_util.h"

#include <gtest/gtest.h>

namespace orchestra {
namespace {

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"", ""}, "-"), "-");
}

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("trailing,", ','),
            (std::vector<std::string>{"trailing", ""}));
}

TEST(SplitTest, RoundTripsWithJoin) {
  const std::vector<std::string> parts{"x", "yy", "zzz"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(Fnv1a64Test, KnownValues) {
  // FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64Test, DistinctInputsDistinctHashes) {
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("acb"));
}

TEST(HashCombineTest, OrderSensitive) {
  const uint64_t a = Fnv1a64("a");
  const uint64_t b = Fnv1a64("b");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

TEST(HashCombineTest, DiffersFromInputs) {
  const uint64_t a = Fnv1a64("a");
  const uint64_t b = Fnv1a64("b");
  const uint64_t combined = HashCombine(a, b);
  EXPECT_NE(combined, a);
  EXPECT_NE(combined, b);
}

}  // namespace
}  // namespace orchestra
