#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace orchestra {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> out(100, 0);
  pool.ParallelFor(out.size(), [&](size_t i) { out[i] = static_cast<int>(i); });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.num_threads(), 8u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndTinyTripCounts) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
  pool.ParallelFor(1, [&](size_t i) { ran = i == 0; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, [&](size_t i) {
      sum.fetch_add(static_cast<int64_t>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, FreeFunctionSerialFallbacks) {
  // Null pool: plain serial loop on the caller.
  std::vector<int> out(10, 0);
  ParallelFor(nullptr, out.size(), [&](size_t i) { out[i] = 1 + (int)i; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 55);
  // One-thread pool: also the serial path.
  ThreadPool serial(1);
  int calls = 0;
  ParallelFor(&serial, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, UnevenWorkStillCompletes) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  pool.ParallelFor(64, [&](size_t i) {
    // Skewed per-iteration cost exercises chunk claiming.
    volatile size_t x = 0;
    for (size_t k = 0; k < (i % 8) * 1000; ++k) x += k;
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 64u);
}

}  // namespace
}  // namespace orchestra
