// Tracer: scoped spans rendered as Chrome trace_event JSON. The
// contract under test: disabled tracing records nothing (so tests and
// production runs stay quiet), and an enabled trace flushes to a file
// that is structurally valid JSON whose 'B'/'E' events nest — every
// span closes, per thread, in LIFO order with a matching name.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace orchestra {
namespace {

std::string TempTracePath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Minimal structural JSON validator (objects, arrays, strings with
// escapes, numbers, true/false/null). Returns true when the whole input
// is exactly one well-formed value.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // skip the escaped character
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

struct ParsedEvent {
  std::string name;
  char phase = '?';
  long tid = -1;
};

// Pulls name/ph/tid out of each {"name":...} element; the JSON is
// machine-written, so field order is fixed. Top-level events follow '['
// or ','; a metadata row's args payload ({"name":"thread-0"}) follows
// ':' and is skipped.
std::vector<ParsedEvent> ParseEvents(const std::string& json) {
  std::vector<ParsedEvent> events;
  size_t pos = 0;
  while ((pos = json.find("{\"name\":\"", pos)) != std::string::npos) {
    if (pos > 0 && json[pos - 1] != '[' && json[pos - 1] != ',') {
      pos += 9;
      continue;
    }
    ParsedEvent event;
    pos += 9;
    const size_t name_end = json.find('"', pos);
    event.name = json.substr(pos, name_end - pos);
    const size_t ph = json.find("\"ph\":\"", name_end);
    event.phase = json[ph + 6];
    const size_t tid = json.find("\"tid\":", ph);
    event.tid = std::strtol(json.c_str() + tid + 6, nullptr, 10);
    events.push_back(std::move(event));
    pos = name_end;
  }
  return events;
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  if (Tracer::Global().enabled()) Tracer::Global().Disable();
  const size_t before = Tracer::Global().event_count();
  {
    TraceSpan outer("quiet.outer");
    TraceSpan inner("quiet.inner");
  }
  EXPECT_EQ(Tracer::Global().event_count(), before);
}

TEST(TraceTest, FlushedTraceIsValidJsonWithBalancedSpans) {
  const std::string path = TempTracePath("trace_balanced.json");
  Tracer::Global().Enable(path);
  {
    TraceSpan outer("span.outer");
    {
      TraceSpan inner("span.inner");
    }
    // Spans from worker threads land under their own tids.
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([] {
        TraceSpan worker_span("span.worker");
        TraceSpan nested("span.worker_nested");
      });
    }
    for (std::thread& w : workers) w.join();
  }
  Tracer::Global().Disable();  // flushes

  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonScanner(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  std::vector<ParsedEvent> events = ParseEvents(json);
  // Thread-name metadata rows lead the stream: one "M" per registered
  // thread (at least the main thread and the 3 workers; the tracer is a
  // process singleton, so earlier tests may have registered more).
  size_t metadata = 0;
  while (metadata < events.size() && events[metadata].phase == 'M') {
    EXPECT_EQ(events[metadata].name, "thread_name");
    ++metadata;
  }
  EXPECT_GE(metadata, 4u);
  events.erase(events.begin(), events.begin() + metadata);
  // outer + inner + 3 threads * 2 spans, each a B/E pair.
  ASSERT_EQ(events.size(), 16u);
  std::map<long, std::vector<std::string>> open_per_tid;
  for (const ParsedEvent& event : events) {
    ASSERT_TRUE(event.phase == 'B' || event.phase == 'E') << event.phase;
    auto& stack = open_per_tid[event.tid];
    if (event.phase == 'B') {
      stack.push_back(event.name);
    } else {
      ASSERT_FALSE(stack.empty()) << "E without B on tid " << event.tid;
      EXPECT_EQ(stack.back(), event.name) << "interleaved spans on one tid";
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : open_per_tid) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  std::remove(path.c_str());
}

TEST(TraceTest, ThreadNameMetadataEmitted) {
  const std::string path = TempTracePath("trace_names.json");
  Tracer::Global().Enable(path);
  Tracer::Global().NameCurrentThread("trace-test-main");
  { TraceSpan s("named.span"); }
  Tracer::Global().Disable();
  const std::string json = ReadFile(path);
  EXPECT_TRUE(JsonScanner(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"trace-test-main\"}"),
            std::string::npos);
  std::remove(path.c_str());
}

// Regression: a span still alive across Disable()/Enable() must not
// emit its 'E' into the second session — before the session-generation
// check, the second flush began with an unmatched 'E' that confused
// viewers and broke span nesting.
TEST(TraceTest, SpanAliveAcrossSessionsDoesNotLeak) {
  const std::string p1 = TempTracePath("trace_sess1.json");
  const std::string p2 = TempTracePath("trace_sess2.json");
  Tracer::Global().Enable(p1);
  auto survivor = std::make_unique<TraceSpan>("leak.survivor");
  Tracer::Global().Disable();  // flushes the unmatched 'B', clears
  Tracer::Global().Enable(p2);
  survivor.reset();  // would previously leak an 'E' into session 2
  { TraceSpan s("leak.second"); }
  Tracer::Global().Disable();

  const std::string json = ReadFile(p2);
  EXPECT_TRUE(JsonScanner(json).Valid()) << json;
  EXPECT_EQ(json.find("leak.survivor"), std::string::npos) << json;
  EXPECT_NE(json.find("leak.second"), std::string::npos);
  for (const ParsedEvent& event : ParseEvents(json)) {
    if (event.phase == 'M') continue;
    EXPECT_EQ(event.name, "leak.second");
  }
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(TraceTest, DisableClearsTheBuffer) {
  const std::string path = TempTracePath("trace_clear.json");
  Tracer::Global().Enable(path);
  { TraceSpan s("clear.span"); }
  EXPECT_EQ(Tracer::Global().event_count(), 2u);
  Tracer::Global().Disable();
  // The flushed events are gone: a later flush (the atexit hook) cannot
  // write this session's events a second time.
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  std::remove(path.c_str());
}

TEST(TraceTest, ReEnableStartsAFreshBuffer) {
  const std::string path = TempTracePath("trace_fresh.json");
  Tracer::Global().Enable(path);
  { TraceSpan s("fresh.first"); }
  EXPECT_EQ(Tracer::Global().event_count(), 2u);
  Tracer::Global().Enable(path);  // re-enable clears the buffer
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  { TraceSpan s("fresh.second"); }
  Tracer::Global().Disable();
  const std::string json = ReadFile(path);
  EXPECT_EQ(json.find("fresh.first"), std::string::npos);
  EXPECT_NE(json.find("fresh.second"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace orchestra
