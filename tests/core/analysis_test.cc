#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/extension.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Ins;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::Txn;

class AnalysisTest : public ::testing::Test {
 protected:
  void Put(Transaction txn) { map_.Put(std::move(txn)); }

  TrustedTxn Trusted(TransactionId id, int priority = 1) {
    TrustedTxn t;
    t.id = id;
    t.priority = priority;
    auto ext = ComputeExtension(map_, id, {});
    ORCH_CHECK(ext.ok());
    t.extension = *std::move(ext);
    return t;
  }

  db::Catalog catalog_ = MakeProteinCatalog();
  TransactionMap map_;
};

TEST_F(AnalysisTest, FlattenExtensionsMarksValidity) {
  Put(Txn(1, 0, {Ins("rat", "p1", "x", 1)}, {}, 1));
  Put(Txn(2, 0, {Ins("rat", "p2", "a", 2), Ins("rat", "p2", "b", 2)}, {}, 1));
  std::vector<TrustedTxn> txns{Trusted({1, 0}), Trusted({2, 0})};
  ReconcileAnalysis analysis;
  FlattenExtensions(catalog_, map_, txns, &analysis);
  ASSERT_EQ(analysis.up_ex.size(), 2u);
  EXPECT_TRUE(analysis.flatten_ok[0]);
  EXPECT_EQ(analysis.up_ex[0].size(), 1u);
  EXPECT_FALSE(analysis.flatten_ok[1]);  // double insert of one key
}

TEST_F(AnalysisTest, FlattenExtensionsAppendsOnlyTail) {
  Put(Txn(1, 0, {Ins("rat", "p1", "x", 1)}, {}, 1));
  Put(Txn(2, 0, {Ins("rat", "p2", "y", 2)}, {}, 1));
  std::vector<TrustedTxn> txns{Trusted({1, 0})};
  ReconcileAnalysis analysis;
  FlattenExtensions(catalog_, map_, txns, &analysis);
  // Poison the head entry; a second call must not touch it.
  analysis.up_ex[0].clear();
  txns.push_back(Trusted({2, 0}));
  FlattenExtensions(catalog_, map_, txns, &analysis);
  EXPECT_TRUE(analysis.up_ex[0].empty());
  EXPECT_EQ(analysis.up_ex[1].size(), 1u);
}

TEST_F(AnalysisTest, AnalyzeFindsConflictPairs) {
  Put(Txn(1, 0, {Ins("rat", "p1", "x", 1)}, {}, 1));
  Put(Txn(2, 0, {Ins("rat", "p1", "y", 2)}, {}, 1));
  Put(Txn(3, 0, {Ins("mouse", "p9", "z", 3)}, {}, 1));
  std::vector<TrustedTxn> txns{Trusted({1, 0}), Trusted({2, 0}),
                               Trusted({3, 0})};
  ReconcileAnalysis analysis = AnalyzeExtensions(catalog_, map_, txns);
  ASSERT_EQ(analysis.conflicts.size(), 1u);
  EXPECT_EQ(analysis.conflicts[0].i, 0u);
  EXPECT_EQ(analysis.conflicts[0].j, 1u);
  ASSERT_EQ(analysis.conflicts[0].points.size(), 1u);
  EXPECT_EQ(analysis.conflicts[0].points[0].type,
            ConflictType::kInsertInsert);
}

TEST_F(AnalysisTest, SubsumptionExemptionApplies) {
  Put(Txn(1, 0, {Ins("rat", "p1", "x", 1)}, {}, 1));
  Put(Txn(1, 1, {Mod("rat", "p1", "x", "y", 1)}, {{1, 0}}, 2));
  std::vector<TrustedTxn> txns{Trusted({1, 0}), Trusted({1, 1})};
  ReconcileAnalysis analysis = AnalyzeExtensions(catalog_, map_, txns);
  EXPECT_TRUE(analysis.conflicts.empty());
}

TEST_F(AnalysisTest, SharedAntecedentsExcluded) {
  // Two dependents of one base transaction do not conflict merely
  // because one of them carries the base's insert in its extension.
  Put(Txn(9, 0, {Ins("rat", "p1", "base", 9)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "base", "a", 2)}, {{9, 0}}, 2));
  Put(Txn(3, 0, {Ins("mouse", "p2", "b", 3)}, {{9, 0}}, 2));
  std::vector<TrustedTxn> txns{Trusted({2, 0}), Trusted({3, 0})};
  ReconcileAnalysis analysis = AnalyzeExtensions(catalog_, map_, txns);
  EXPECT_TRUE(analysis.conflicts.empty());
}

TEST_F(AnalysisTest, IncrementalConflictSearchSkipsHeadPairs) {
  Put(Txn(1, 0, {Ins("rat", "p1", "x", 1)}, {}, 1));
  Put(Txn(2, 0, {Ins("rat", "p1", "y", 2)}, {}, 1));
  Put(Txn(3, 0, {Ins("rat", "p1", "z", 3)}, {}, 1));
  std::vector<TrustedTxn> txns{Trusted({1, 0}), Trusted({2, 0})};
  ReconcileAnalysis analysis;
  FlattenExtensions(catalog_, map_, txns, &analysis);
  FindExtensionConflicts(catalog_, map_, txns, 0, &analysis);
  ASSERT_EQ(analysis.conflicts.size(), 1u);
  // Extend with the third transaction; only pairs involving it appear.
  txns.push_back(Trusted({3, 0}));
  FlattenExtensions(catalog_, map_, txns, &analysis);
  FindExtensionConflicts(catalog_, map_, txns, 2, &analysis);
  EXPECT_EQ(analysis.conflicts.size(), 3u);  // (0,1) + (0,2) + (1,2)
  for (const auto& pair : analysis.conflicts) {
    EXPECT_LT(pair.i, pair.j);
  }
}

TEST_F(AnalysisTest, PrecomputedAnalysisMatchesLocal) {
  // Feeding the reconciler a precomputed analysis yields the same
  // decisions as letting it compute one.
  Put(Txn(1, 0, {Ins("rat", "p1", "x", 1)}, {}, 1));
  Put(Txn(2, 0, {Ins("rat", "p1", "y", 2)}, {}, 1));
  Put(Txn(3, 0, {Ins("mouse", "p2", "z", 3)}, {}, 1));
  std::vector<TrustedTxn> txns{Trusted({1, 0}, 2), Trusted({2, 0}, 1),
                               Trusted({3, 0}, 1)};
  const ReconcileAnalysis analysis = AnalyzeExtensions(catalog_, map_, txns);

  Reconciler reconciler(&catalog_);
  TxnIdSet applied, rejected;
  RelKeySet dirty;
  auto run = [&](const ReconcileAnalysis* precomputed) {
    db::Instance instance(&catalog_);
    ReconcileInput input;
    input.recno = 1;
    input.txns = txns;
    input.provider = &map_;
    input.applied = &applied;
    input.rejected = &rejected;
    input.dirty = &dirty;
    input.analysis = precomputed;
    auto outcome = reconciler.Run(input, &instance);
    ORCH_CHECK(outcome.ok());
    return *std::move(outcome);
  };
  const ReconcileOutcome local = run(nullptr);
  const ReconcileOutcome shipped = run(&analysis);
  EXPECT_EQ(local.accepted_roots, shipped.accepted_roots);
  EXPECT_EQ(local.rejected_roots, shipped.rejected_roots);
  EXPECT_EQ(local.deferred_roots, shipped.deferred_roots);
}

}  // namespace
}  // namespace orchestra::core
