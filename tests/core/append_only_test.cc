#include "core/append_only.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Del;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::T;
using orchestra::testing::Txn;

class AppendOnlyTest : public ::testing::Test {
 protected:
  AppendOnlyTest()
      : catalog_(MakeProteinCatalog()),
        instance_(&catalog_),
        policy_(1),
        reconciler_(&catalog_, &policy_) {
    for (ParticipantId peer = 2; peer <= 6; ++peer) {
      policy_.TrustPeer(peer, static_cast<int>(peer) - 1);  // 2->1 ... 6->5
    }
  }

  db::Catalog catalog_;
  db::Instance instance_;
  TrustPolicy policy_;
  AppendOnlyReconciler reconciler_;
};

TEST_F(AppendOnlyTest, SingleInsertApplies) {
  auto result =
      reconciler_.ApplyEpoch({Txn(2, 0, {Ins("rat", "p1", "x", 2)})},
                             &instance_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->applied.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "x"})}));
}

TEST_F(AppendOnlyTest, NonInsertIsInvalid) {
  auto result = reconciler_.ApplyEpoch(
      {Txn(2, 0, {Del("rat", "p1", "x", 2)})}, &instance_);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(instance_.TotalTuples(), 0u);
}

TEST_F(AppendOnlyTest, UntrustedTransactionsAreSkipped) {
  auto result = reconciler_.ApplyEpoch(
      {Txn(99, 0, {Ins("rat", "p1", "x", 99)})}, &instance_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applied.empty());
  EXPECT_EQ(result->skipped.size(), 1u);
  EXPECT_EQ(instance_.TotalTuples(), 0u);
}

TEST_F(AppendOnlyTest, EqualPrioritySameEpochTieDropsBoth) {
  auto result = reconciler_.ApplyEpoch(
      {Txn(2, 0, {Ins("rat", "p1", "a", 2)}),
       Txn(2, 1, {Ins("rat", "p1", "b", 2)})},
      &instance_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applied.empty());
  EXPECT_EQ(result->skipped.size(), 2u);
  EXPECT_EQ(instance_.TotalTuples(), 0u);
}

TEST_F(AppendOnlyTest, HigherPriorityWinsWithinEpoch) {
  auto result = reconciler_.ApplyEpoch(
      {Txn(2, 0, {Ins("rat", "p1", "low", 2)}),    // priority 1
       Txn(5, 0, {Ins("rat", "p1", "high", 5)})},  // priority 4
      &instance_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->applied.size(), 1u);
  EXPECT_EQ(result->applied[0], (TransactionId{5, 0}));
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "high"})}));
}

TEST_F(AppendOnlyTest, EarlierEpochBlocksLaterConflicts) {
  ASSERT_TRUE(reconciler_
                  .ApplyEpoch({Txn(2, 0, {Ins("rat", "p1", "first", 2)})},
                              &instance_)
                  .ok());
  // Even a much higher-priority later insert loses to the earlier epoch
  // (monotonicity: the applied value is never rolled back).
  auto result = reconciler_.ApplyEpoch(
      {Txn(6, 0, {Ins("rat", "p1", "late", 6)})}, &instance_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applied.empty());
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "first"})}));
}

TEST_F(AppendOnlyTest, UnappliedEarlierPublicationStillBlocks) {
  // Definition 2's second condition quantifies over *published*
  // transactions, not accepted ones: a tie in epoch 1 applies nothing,
  // yet still blocks either value's key in later epochs.
  ASSERT_TRUE(reconciler_
                  .ApplyEpoch({Txn(2, 0, {Ins("rat", "p1", "a", 2)}),
                               Txn(2, 1, {Ins("rat", "p1", "b", 2)})},
                              &instance_)
                  .ok());
  auto result = reconciler_.ApplyEpoch(
      {Txn(4, 0, {Ins("rat", "p1", "c", 4)})}, &instance_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applied.empty());
  EXPECT_EQ(instance_.TotalTuples(), 0u);
}

TEST_F(AppendOnlyTest, IdenticalInsertsAgreeAcrossEpochs) {
  ASSERT_TRUE(reconciler_
                  .ApplyEpoch({Txn(2, 0, {Ins("rat", "p1", "same", 2)})},
                              &instance_)
                  .ok());
  auto result = reconciler_.ApplyEpoch(
      {Txn(3, 0, {Ins("rat", "p1", "same", 3)})}, &instance_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->applied.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "same"})}));
}

TEST_F(AppendOnlyTest, MultiInsertTransactionIsAtomic) {
  // One update conflicting with history skips the whole transaction.
  ASSERT_TRUE(reconciler_
                  .ApplyEpoch({Txn(2, 0, {Ins("rat", "p1", "x", 2)})},
                              &instance_)
                  .ok());
  auto result = reconciler_.ApplyEpoch(
      {Txn(3, 0, {Ins("rat", "p1", "y", 3), Ins("rat", "p2", "z", 3)})},
      &instance_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applied.empty());
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "x"})}));
}

TEST_F(AppendOnlyTest, IndependentKeysFlowFreely) {
  for (int e = 0; e < 5; ++e) {
    const std::string protein = "p" + std::to_string(e);
    auto result = reconciler_.ApplyEpoch(
        {Txn(2, static_cast<uint64_t>(e),
             {Ins("rat", protein.c_str(), "fn", 2)})},
        &instance_);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->applied.size(), 1u);
  }
  EXPECT_EQ(instance_.TotalTuples(), 5u);
}

class AppendOnlyRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AppendOnlyRandomTest, FirstTrustedPublicationOfEachKeyWins) {
  // Oracle for random insert streams with distinct per-txn values and
  // one insert per epoch: the first trusted publication of each key is
  // exactly what ends up in the instance.
  Rng rng(GetParam());
  db::Catalog catalog = MakeProteinCatalog();
  db::Instance instance(&catalog);
  TrustPolicy policy(1);
  policy.TrustPeer(2, 1).TrustPeer(3, 1);
  AppendOnlyReconciler reconciler(&catalog, &policy);

  std::map<std::string, std::string> oracle;  // protein -> first value
  for (int e = 0; e < 120; ++e) {
    const std::string protein = "p" + std::to_string(rng.NextBounded(12));
    const std::string value = "v" + std::to_string(e);  // unique per epoch
    const auto origin =
        static_cast<ParticipantId>(2 + rng.NextBounded(3));  // 2,3 trusted; 4 not
    const bool trusted = origin != 4;
    auto result = reconciler.ApplyEpoch(
        {Txn(origin, static_cast<uint64_t>(e),
             {Ins("rat", protein.c_str(), value.c_str(), origin)})},
        &instance);
    ASSERT_TRUE(result.ok());
    // Untrusted publications are skipped but still block the key for
    // later epochs, so the oracle records every publication.
    if (oracle.emplace(protein, value).second && trusted) {
      EXPECT_EQ(result->applied.size(), 1u) << "epoch " << e;
    } else {
      EXPECT_TRUE(result->applied.empty()) << "epoch " << e;
    }
  }
  auto table = instance.GetTable("F");
  for (const db::Tuple& t : (*table)->Scan()) {
    EXPECT_EQ(oracle.at(t[1].AsString()), t[2].AsString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppendOnlyRandomTest,
                         ::testing::Values(21u, 22u, 23u));

}  // namespace
}  // namespace orchestra::core
