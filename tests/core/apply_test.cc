#include "core/apply.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Del;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;

class ApplyTest : public ::testing::Test {
 protected:
  db::Catalog catalog_ = MakeProteinCatalog();
  db::Instance instance_{&catalog_};

  void Seed(std::vector<db::Tuple> tuples) {
    auto table = instance_.GetTable("F");
    ORCH_CHECK(table.ok());
    for (db::Tuple& t : tuples) {
      ORCH_CHECK((*table)->Insert(t).ok());
    }
  }
};

TEST_F(ApplyTest, InsertIntoEmptyInstance) {
  ASSERT_TRUE(ApplyFlattened(&instance_, {Ins("rat", "p1", "x", 1)}).ok());
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "x"})}));
}

TEST_F(ApplyTest, InsertCollidingWithDifferentValueFails) {
  Seed({T({"rat", "p1", "x"})});
  auto status = CheckApplicable(instance_, {Ins("rat", "p1", "y", 1)});
  EXPECT_TRUE(status.IsConflict());
  // The instance is untouched by a failed check or apply.
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "x"})}));
}

TEST_F(ApplyTest, IdenticalInsertIsIdempotent) {
  Seed({T({"rat", "p1", "x"})});
  ASSERT_TRUE(ApplyFlattened(&instance_, {Ins("rat", "p1", "x", 1)}).ok());
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "x"})}));
}

TEST_F(ApplyTest, DeleteExistingTuple) {
  Seed({T({"rat", "p1", "x"})});
  ASSERT_TRUE(ApplyFlattened(&instance_, {Del("rat", "p1", "x", 1)}).ok());
  EXPECT_TRUE(InstanceHasExactly(instance_, {}));
}

TEST_F(ApplyTest, DeleteOfAbsentKeyIsIdempotent) {
  ASSERT_TRUE(ApplyFlattened(&instance_, {Del("rat", "p1", "x", 1)}).ok());
}

TEST_F(ApplyTest, DeleteWithStalePreImageFails) {
  Seed({T({"rat", "p1", "current"})});
  EXPECT_TRUE(CheckApplicable(instance_, {Del("rat", "p1", "stale", 1)})
                  .IsConflict());
}

TEST_F(ApplyTest, ModifyExistingTuple) {
  Seed({T({"rat", "p1", "a"})});
  ASSERT_TRUE(
      ApplyFlattened(&instance_, {Mod("rat", "p1", "a", "b", 1)}).ok());
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "b"})}));
}

TEST_F(ApplyTest, ModifyWithStalePreImageFails) {
  Seed({T({"rat", "p1", "other"})});
  EXPECT_TRUE(
      CheckApplicable(instance_, {Mod("rat", "p1", "a", "b", 1)}).IsConflict());
}

TEST_F(ApplyTest, ModifyAlreadyTakenEffectIsIdempotent) {
  Seed({T({"rat", "p1", "b"})});
  // Pre-image (rat,p1,a) is gone but the exact post-image is present.
  ASSERT_TRUE(
      ApplyFlattened(&instance_, {Mod("rat", "p1", "a", "b", 1)}).ok());
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "b"})}));
}

TEST_F(ApplyTest, ModifyOfAbsentTupleFails) {
  EXPECT_TRUE(
      CheckApplicable(instance_, {Mod("rat", "p1", "a", "b", 1)}).IsConflict());
}

TEST_F(ApplyTest, ModifyMovingOntoOccupiedKeyFails) {
  Seed({T({"rat", "p1", "a"}), T({"rat", "p2", "b"})});
  auto status = CheckApplicable(
      instance_,
      {Update::Modify("F", T({"rat", "p1", "a"}), T({"rat", "p2", "a"}), 1)});
  EXPECT_TRUE(status.IsConflict());
}

TEST_F(ApplyTest, DeleteFreesKeyForInsertInSameSet) {
  Seed({T({"rat", "p1", "a"})});
  ASSERT_TRUE(ApplyFlattened(&instance_, {Del("rat", "p1", "a", 1),
                                          Ins("rat", "p1", "b", 2)})
                  .ok());
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "b"})}));
}

TEST_F(ApplyTest, ChainedKeyMovesResolveViaFixpoint) {
  Seed({T({"rat", "p1", "a"}), T({"rat", "p2", "b"})});
  // p2 -> p3 must apply before p1 -> p2 can.
  const std::vector<Update> updates = {
      Update::Modify("F", T({"rat", "p1", "a"}), T({"rat", "p2", "a"}), 1),
      Update::Modify("F", T({"rat", "p2", "b"}), T({"rat", "p3", "b"}), 1),
  };
  ASSERT_TRUE(ApplyFlattened(&instance_, updates).ok());
  EXPECT_TRUE(InstanceHasExactly(
      instance_, {T({"rat", "p2", "a"}), T({"rat", "p3", "b"})}));
}

TEST_F(ApplyTest, SwapCycleFails) {
  Seed({T({"rat", "p1", "a"}), T({"rat", "p2", "b"})});
  const std::vector<Update> updates = {
      Update::Modify("F", T({"rat", "p1", "a"}), T({"rat", "p2", "a"}), 1),
      Update::Modify("F", T({"rat", "p2", "b"}), T({"rat", "p1", "b"}), 1),
  };
  EXPECT_FALSE(ApplyFlattened(&instance_, updates).ok());
  // All-or-nothing: nothing was applied.
  EXPECT_TRUE(InstanceHasExactly(
      instance_, {T({"rat", "p1", "a"}), T({"rat", "p2", "b"})}));
}

TEST_F(ApplyTest, OverlayGetSeesPendingChanges) {
  Seed({T({"rat", "p1", "a"})});
  InstanceOverlay overlay(&instance_);
  EXPECT_EQ(overlay.Get("F", T({"rat", "p1"})), T({"rat", "p1", "a"}));
  ASSERT_TRUE(overlay.Apply(Mod("rat", "p1", "a", "b", 1)).ok());
  EXPECT_EQ(overlay.Get("F", T({"rat", "p1"})), T({"rat", "p1", "b"}));
  ASSERT_TRUE(overlay.Apply(Del("rat", "p1", "b", 1)).ok());
  EXPECT_EQ(overlay.Get("F", T({"rat", "p1"})), std::nullopt);
  // Base instance untouched until commit.
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "a"})}));
}

TEST_F(ApplyTest, ForeignKeysCheckedOverPendingState) {
  db::Catalog catalog;
  {
    auto f = db::RelationSchema::Make(
        "F",
        {{"organism", db::ValueType::kString, false},
         {"protein", db::ValueType::kString, false},
         {"function", db::ValueType::kString, false}},
        {0, 1});
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(catalog.AddRelation(*std::move(f)).ok());
    auto x = db::RelationSchema::Make(
        "X",
        {{"organism", db::ValueType::kString, false},
         {"protein", db::ValueType::kString, false},
         {"db", db::ValueType::kString, false}},
        {0, 1, 2});
    ASSERT_TRUE(x.ok());
    ASSERT_TRUE(catalog.AddRelation(*std::move(x)).ok());
    ASSERT_TRUE(catalog.AddForeignKey({"X", {0, 1}, "F"}).ok());
  }
  db::Instance instance(&catalog);

  // Child + parent inserted together: FK satisfied through the overlay.
  ASSERT_TRUE(
      ApplyFlattened(&instance,
                     {Update::Insert("F", T({"rat", "p1", "fn"}), 1),
                      Update::Insert("X", T({"rat", "p1", "EMBL"}), 1)})
          .ok());

  // Child alone referencing a missing parent fails.
  auto status = CheckApplicable(
      instance, {Update::Insert("X", T({"rat", "p9", "EMBL"}), 1)});
  EXPECT_TRUE(status.IsConstraintViolation());

  // Deleting a referenced parent orphans the child and fails.
  status =
      CheckApplicable(instance, {Update::Delete("F", T({"rat", "p1", "fn"}), 1)});
  EXPECT_TRUE(status.IsConstraintViolation());

  // Deleting parent and child together succeeds.
  ASSERT_TRUE(
      ApplyFlattened(&instance,
                     {Update::Delete("F", T({"rat", "p1", "fn"}), 1),
                      Update::Delete("X", T({"rat", "p1", "EMBL"}), 1)})
          .ok());
  EXPECT_EQ(instance.TotalTuples(), 0u);
}

}  // namespace
}  // namespace orchestra::core
