#include "core/conflict.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Del;
using orchestra::testing::Ins;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;

class ConflictTest : public ::testing::Test {
 protected:
  db::Catalog catalog_ = MakeProteinCatalog();
  const db::RelationSchema& schema() {
    return **catalog_.GetRelation("F");
  }

  std::optional<ConflictPoint> Check(const Update& a, const Update& b) {
    auto ab = UpdatesConflict(schema(), a, b);
    auto ba = UpdatesConflict(schema(), b, a);
    // The conflict relation is symmetric.
    EXPECT_EQ(ab.has_value(), ba.has_value());
    if (ab && ba) {
      EXPECT_EQ(*ab, *ba);
    }
    return ab;
  }
};

TEST_F(ConflictTest, InsertInsertSameKeyDifferentValueConflicts) {
  auto cp = Check(Ins("rat", "p1", "immune", 2), Ins("rat", "p1", "metab", 3));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->type, ConflictType::kInsertInsert);
  EXPECT_EQ(cp->key.relation, "F");
}

TEST_F(ConflictTest, IdenticalInsertsAgree) {
  EXPECT_FALSE(
      Check(Ins("rat", "p1", "immune", 2), Ins("rat", "p1", "immune", 3)));
}

TEST_F(ConflictTest, InsertsOnDifferentKeysCompatible) {
  EXPECT_FALSE(Check(Ins("rat", "p1", "x", 1), Ins("rat", "p2", "x", 2)));
  EXPECT_FALSE(Check(Ins("rat", "p1", "x", 1), Ins("mouse", "p1", "x", 2)));
}

TEST_F(ConflictTest, DeleteVsInsertSameKeyConflicts) {
  auto cp = Check(Del("rat", "p1", "immune", 2), Ins("rat", "p1", "metab", 3));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->type, ConflictType::kDeleteVsWrite);
}

TEST_F(ConflictTest, DeleteVsModifySourceConflicts) {
  auto cp =
      Check(Del("rat", "p1", "immune", 2), Mod("rat", "p1", "immune", "x", 3));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->type, ConflictType::kDeleteVsWrite);
}

TEST_F(ConflictTest, DeleteVsModifyTargetConflicts) {
  // p3 deletes (rat,p1); p2 moves (rat,p2) onto key (rat,p1).
  auto cp = Check(Del("rat", "p1", "immune", 3),
                  Update::Modify("F", testing::T({"rat", "p2", "x"}),
                                 testing::T({"rat", "p1", "x"}), 2));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->type, ConflictType::kDeleteVsWrite);
}

TEST_F(ConflictTest, DeleteVsUnrelatedWriteCompatible) {
  EXPECT_FALSE(Check(Del("rat", "p1", "x", 1), Ins("rat", "p2", "y", 2)));
  EXPECT_FALSE(Check(Del("rat", "p1", "x", 1), Mod("rat", "p2", "y", "z", 2)));
}

TEST_F(ConflictTest, DeletesAgree) {
  EXPECT_FALSE(Check(Del("rat", "p1", "x", 1), Del("rat", "p1", "x", 2)));
}

TEST_F(ConflictTest, ReplaceReplaceSameSourceDifferentTargetConflicts) {
  auto cp =
      Check(Mod("rat", "p1", "a", "b", 1), Mod("rat", "p1", "a", "c", 2));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->type, ConflictType::kReplaceReplace);
}

TEST_F(ConflictTest, IdenticalReplacementsAgree) {
  EXPECT_FALSE(
      Check(Mod("rat", "p1", "a", "b", 1), Mod("rat", "p1", "a", "b", 2)));
}

TEST_F(ConflictTest, ReplaceSameKeyDifferentSourceConflicts) {
  // Divergent beliefs about the tuple's current value.
  auto cp =
      Check(Mod("rat", "p1", "a", "c", 1), Mod("rat", "p1", "b", "c", 2));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->type, ConflictType::kReplaceReplace);
}

TEST_F(ConflictTest, ModifiesConvergingOnOneKeyConflict) {
  auto cp = Check(Update::Modify("F", testing::T({"rat", "p2", "x"}),
                                 testing::T({"rat", "p1", "x"}), 1),
                  Update::Modify("F", testing::T({"rat", "p3", "y"}),
                                 testing::T({"rat", "p1", "y"}), 2));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->type, ConflictType::kKeyCollision);
}

TEST_F(ConflictTest, InsertVsModifyIntoSameKeyConflicts) {
  auto cp = Check(Ins("rat", "p1", "x", 1),
                  Update::Modify("F", testing::T({"rat", "p2", "x"}),
                                 testing::T({"rat", "p1", "x"}), 2));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->type, ConflictType::kKeyCollision);
}

TEST_F(ConflictTest, InsertVsModifyOfDifferentKeysCompatible) {
  EXPECT_FALSE(Check(Ins("rat", "p1", "x", 1), Mod("rat", "p2", "a", "b", 2)));
}

TEST_F(ConflictTest, DifferentRelationsNeverConflict) {
  db::Catalog catalog = MakeProteinCatalog();
  auto other = db::RelationSchema::Make(
      "G",
      {{"organism", db::ValueType::kString, false},
       {"protein", db::ValueType::kString, false},
       {"function", db::ValueType::kString, false}},
      {0, 1});
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(catalog.AddRelation(*std::move(other)).ok());
  const Update a = Ins("rat", "p1", "x", 1);
  const Update b = Update::Insert("G", testing::T({"rat", "p1", "y"}), 2);
  EXPECT_FALSE(UpdatesConflict(**catalog.GetRelation("F"), a, b));
}

TEST_F(ConflictTest, SetsConflictFindsAllPoints) {
  const std::vector<Update> a = {Ins("rat", "p1", "x", 1),
                                 Ins("mouse", "p2", "y", 1),
                                 Mod("rat", "p3", "a", "b", 1)};
  const std::vector<Update> b = {Ins("rat", "p1", "z", 2),   // conflict
                                 Ins("mouse", "p2", "y", 2),  // agree
                                 Mod("rat", "p3", "a", "c", 2)};  // conflict
  auto points = SetsConflict(catalog_, a, b);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].type, ConflictType::kInsertInsert);
  EXPECT_EQ(points[1].type, ConflictType::kReplaceReplace);
}

TEST_F(ConflictTest, SetsConflictEmptyInputs) {
  EXPECT_TRUE(SetsConflict(catalog_, {}, {Ins("rat", "p1", "x", 1)}).empty());
  EXPECT_TRUE(SetsConflict(catalog_, {Ins("rat", "p1", "x", 1)}, {}).empty());
}

TEST_F(ConflictTest, SetsConflictDeduplicatesPoints) {
  // Two updates in `a` touching the same contested key yield one point.
  const std::vector<Update> a = {Del("rat", "p1", "x", 1)};
  const std::vector<Update> b = {Ins("rat", "p1", "y", 2)};
  EXPECT_EQ(SetsConflict(catalog_, a, b).size(), 1u);
}

TEST_F(ConflictTest, ConflictPointOrderingAndNames) {
  EXPECT_EQ(ConflictTypeName(ConflictType::kInsertInsert), "insert/insert");
  EXPECT_EQ(ConflictTypeName(ConflictType::kDeleteVsWrite), "delete/write");
  EXPECT_EQ(ConflictTypeName(ConflictType::kReplaceReplace),
            "replace/replace");
  EXPECT_EQ(ConflictTypeName(ConflictType::kKeyCollision), "key-collision");
  const ConflictPoint p1{ConflictType::kInsertInsert,
                         RelKey{"F", testing::T({"a"})}};
  const ConflictPoint p2{ConflictType::kDeleteVsWrite,
                         RelKey{"F", testing::T({"a"})}};
  EXPECT_LT(p1, p2);
  EXPECT_NE(p1.ToString(), p2.ToString());
}

}  // namespace
}  // namespace orchestra::core
