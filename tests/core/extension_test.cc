#include "core/extension.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Ins;
using orchestra::testing::Mod;
using orchestra::testing::Txn;

class ExtensionTest : public ::testing::Test {
 protected:
  void Put(Transaction txn) { map_.Put(std::move(txn)); }

  std::vector<TransactionId> Ext(TransactionId root,
                                 TxnIdSet applied = {}) {
    auto result = ComputeExtension(map_, root, applied);
    ORCH_CHECK(result.ok(), "%s", result.status().ToString().c_str());
    return *std::move(result);
  }

  TransactionMap map_;
};

TEST_F(ExtensionTest, NoAntecedentsYieldsSelf) {
  Put(Txn(1, 0, {Ins("rat", "p1", "x", 1)}, {}, 1));
  EXPECT_EQ(Ext({1, 0}), (std::vector<TransactionId>{{1, 0}}));
}

TEST_F(ExtensionTest, DirectAntecedentIncluded) {
  Put(Txn(1, 0, {Ins("rat", "p1", "x", 1)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "x", "y", 2)}, {{1, 0}}, 2));
  EXPECT_EQ(Ext({2, 0}), (std::vector<TransactionId>{{1, 0}, {2, 0}}));
}

TEST_F(ExtensionTest, TransitiveClosure) {
  Put(Txn(1, 0, {Ins("rat", "p1", "a", 1)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "a", "b", 2)}, {{1, 0}}, 2));
  Put(Txn(3, 0, {Mod("rat", "p1", "b", "c", 3)}, {{2, 0}}, 3));
  EXPECT_EQ(Ext({3, 0}),
            (std::vector<TransactionId>{{1, 0}, {2, 0}, {3, 0}}));
}

TEST_F(ExtensionTest, StopsAtAppliedTransactions) {
  // Definition 3: antecedents already accepted by p_i are excluded.
  Put(Txn(1, 0, {Ins("rat", "p1", "a", 1)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "a", "b", 2)}, {{1, 0}}, 2));
  Put(Txn(3, 0, {Mod("rat", "p1", "b", "c", 3)}, {{2, 0}}, 3));
  TxnIdSet applied{{2, 0}};
  // Stopping at X2:0 also cuts off X1:0 (reachable only through it).
  EXPECT_EQ(Ext({3, 0}, applied), (std::vector<TransactionId>{{3, 0}}));
}

TEST_F(ExtensionTest, DiamondDependenciesDeduplicated) {
  Put(Txn(1, 0, {Ins("rat", "p1", "a", 1)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "a", "b", 2)}, {{1, 0}}, 2));
  Put(Txn(2, 1, {Ins("rat", "p2", "c", 2)}, {{1, 0}}, 2));
  Put(Txn(3, 0, {Mod("rat", "p1", "b", "d", 3), Mod("rat", "p2", "c", "e", 3)},
          {{2, 0}, {2, 1}}, 3));
  const auto ext = Ext({3, 0});
  EXPECT_EQ(ext.size(), 4u);
  EXPECT_EQ(ext.front(), (TransactionId{1, 0}));
  EXPECT_EQ(ext.back(), (TransactionId{3, 0}));
}

TEST_F(ExtensionTest, SortedByEpochThenId) {
  Put(Txn(5, 0, {Ins("rat", "p1", "a", 5)}, {}, 3));
  Put(Txn(2, 0, {Ins("rat", "p2", "b", 2)}, {}, 1));
  Put(Txn(1, 9, {Mod("rat", "p1", "a", "c", 1), Mod("rat", "p2", "b", "d", 1)},
          {{5, 0}, {2, 0}}, 5));
  EXPECT_EQ(Ext({1, 9}),
            (std::vector<TransactionId>{{2, 0}, {5, 0}, {1, 9}}));
}

TEST_F(ExtensionTest, MissingAntecedentFails) {
  Put(Txn(2, 0, {Mod("rat", "p1", "a", "b", 2)}, {{1, 0}}, 2));
  EXPECT_TRUE(ComputeExtension(map_, {2, 0}, {}).status().IsNotFound());
}

TEST_F(ExtensionTest, SubsumptionChecks) {
  const std::vector<TransactionId> big{{1, 0}, {2, 0}, {3, 0}};
  const std::vector<TransactionId> small{{1, 0}, {3, 0}};
  const std::vector<TransactionId> other{{1, 0}, {4, 0}};
  EXPECT_TRUE(Subsumes(big, small));
  EXPECT_TRUE(Subsumes(big, big));
  EXPECT_FALSE(Subsumes(small, big));
  EXPECT_FALSE(Subsumes(big, other));
  EXPECT_TRUE(Subsumes(small, {}));
}

TEST_F(ExtensionTest, UpdateFootprintConcatenatesInOrder) {
  Put(Txn(1, 0, {Ins("rat", "p1", "a", 1)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "a", "b", 2)}, {{1, 0}}, 2));
  const auto footprint = UpdateFootprint(map_, Ext({2, 0}));
  ASSERT_EQ(footprint.size(), 2u);
  EXPECT_EQ(footprint[0], Ins("rat", "p1", "a", 1));
  EXPECT_EQ(footprint[1], Mod("rat", "p1", "a", "b", 2));
}

TEST_F(ExtensionTest, UpdateFootprintHonorsExcludeSet) {
  Put(Txn(1, 0, {Ins("rat", "p1", "a", 1)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "a", "b", 2)}, {{1, 0}}, 2));
  TxnIdSet exclude{{1, 0}};
  const auto footprint = UpdateFootprint(map_, Ext({2, 0}), exclude);
  ASSERT_EQ(footprint.size(), 1u);
  EXPECT_EQ(footprint[0], Mod("rat", "p1", "a", "b", 2));
}

}  // namespace
}  // namespace orchestra::core
