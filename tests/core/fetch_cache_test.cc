// Unit tests for the FetchCache behind incremental (delta) fetch: the
// shared decoded-transaction arena with epoch-keyed invalidation, and
// the per-peer applied sets / watermarks that suppress redundant
// per-key lookups.
#include <gtest/gtest.h>

#include "core/fetch_cache.h"

namespace orchestra::core {
namespace {

Transaction MakeTxn(ParticipantId origin, uint64_t seq, Epoch epoch) {
  Transaction txn;
  txn.id = {origin, seq};
  txn.epoch = epoch;
  return txn;
}

TEST(FetchCacheTest, LookupMissesThenHitsAfterAdmit) {
  FetchCache cache;
  const TransactionId id{1, 7};
  EXPECT_EQ(cache.Lookup(id), nullptr);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);

  cache.Admit(MakeTxn(1, 7, 3));
  EXPECT_EQ(cache.stats().admitted, 1);
  const Transaction* hit = cache.Lookup(id);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, id);
  EXPECT_EQ(hit->epoch, 3);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.arena_size(), 1u);
}

TEST(FetchCacheTest, InvalidateEpochDropsOnlyThatEpoch) {
  FetchCache cache;
  cache.Admit(MakeTxn(1, 1, 3));
  cache.Admit(MakeTxn(1, 2, 4));
  cache.Admit(MakeTxn(2, 1, 4));
  ASSERT_EQ(cache.arena_size(), 3u);

  cache.InvalidateEpoch(4);
  EXPECT_EQ(cache.arena_size(), 1u);
  EXPECT_NE(cache.Lookup({1, 1}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 2}), nullptr);
  EXPECT_EQ(cache.Lookup({2, 1}), nullptr);
}

TEST(FetchCacheTest, InvalidateAboveDropsEverythingPastTheFloor) {
  FetchCache cache;
  cache.Admit(MakeTxn(1, 1, 2));
  cache.Admit(MakeTxn(1, 2, 3));
  cache.Admit(MakeTxn(1, 3, 5));
  cache.InvalidateAbove(3);
  EXPECT_EQ(cache.arena_size(), 2u);
  EXPECT_NE(cache.Lookup({1, 1}), nullptr);
  EXPECT_NE(cache.Lookup({1, 2}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 3}), nullptr);
}

TEST(FetchCacheTest, AppliedSetsArePerPeer) {
  FetchCache cache;
  const TransactionId id{3, 9};
  EXPECT_FALSE(cache.KnownApplied(1, id));
  EXPECT_EQ(cache.stats().suppressed, 0);

  cache.MarkApplied(1, id);
  EXPECT_TRUE(cache.KnownApplied(1, id));
  EXPECT_EQ(cache.stats().suppressed, 1);
  // A different peer's overlay is untouched.
  EXPECT_FALSE(cache.KnownApplied(2, id));
}

TEST(FetchCacheTest, ResetAppliedReplacesTheOverlayWholesale) {
  FetchCache cache;
  cache.MarkApplied(1, {1, 1});
  cache.MarkApplied(1, {1, 2});

  TxnIdSet authoritative;
  authoritative.insert({2, 5});
  cache.ResetApplied(1, std::move(authoritative));
  EXPECT_FALSE(cache.KnownApplied(1, {1, 1}));
  EXPECT_FALSE(cache.KnownApplied(1, {1, 2}));
  EXPECT_TRUE(cache.KnownApplied(1, {2, 5}));
}

TEST(FetchCacheTest, ForgetPeerDropsOverlayAndWatermark) {
  FetchCache cache;
  cache.MarkApplied(4, {1, 1});
  cache.SetWatermark(4, 12);
  ASSERT_EQ(cache.Watermark(4), 12);

  cache.ForgetPeer(4);
  EXPECT_FALSE(cache.KnownApplied(4, {1, 1}));
  EXPECT_EQ(cache.Watermark(4), 0);
}

TEST(FetchCacheTest, WatermarksStartAtZero) {
  FetchCache cache;
  EXPECT_EQ(cache.Watermark(9), 0);
  cache.SetWatermark(9, 4);
  EXPECT_EQ(cache.Watermark(9), 4);
}

}  // namespace
}  // namespace orchestra::core
