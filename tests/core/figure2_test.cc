// End-to-end reproduction of the paper's Figure 2: three participants
// sharing F(organism, protein, function) with key (organism, protein),
// reconciling over four epochs under the trust policies of Figure 1.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;

class Figure2Test : public ::testing::Test {
 protected:
  Figure2Test()
      : catalog_(MakeProteinCatalog()),
        engine_(storage::StorageEngine::InMemory()),
        store_(engine_.get(), &network_),
        policy1_(MakePolicy1()),
        policy2_(MakePolicy2()),
        policy3_(MakePolicy3()),
        p1_(1, &catalog_, policy1_),
        p2_(2, &catalog_, policy2_),
        p3_(3, &catalog_, policy3_) {
    ORCH_CHECK(store_.RegisterParticipant(1, &policy1_).ok());
    ORCH_CHECK(store_.RegisterParticipant(2, &policy2_).ok());
    ORCH_CHECK(store_.RegisterParticipant(3, &policy3_).ok());
  }

  // Figure 1 policies: p1 trusts p2 and p3 equally at 1; p2 prefers p1
  // (2) over p3 (1); p3 accepts only updates from p2.
  static TrustPolicy MakePolicy1() {
    TrustPolicy policy(1);
    policy.TrustPeer(2, 1).TrustPeer(3, 1);
    return policy;
  }
  static TrustPolicy MakePolicy2() {
    TrustPolicy policy(2);
    policy.TrustPeer(1, 2).TrustPeer(3, 1);
    return policy;
  }
  static TrustPolicy MakePolicy3() {
    TrustPolicy policy(3);
    policy.TrustPeer(2, 1);
    return policy;
  }

  static bool Contains(const std::vector<TransactionId>& v,
                       TransactionId id) {
    return std::find(v.begin(), v.end(), id) != v.end();
  }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  store::CentralStore store_;
  TrustPolicy policy1_, policy2_, policy3_;
  Participant p1_, p2_, p3_;
};

TEST_F(Figure2Test, FourEpochWalkthrough) {
  // --- Epoch 1: p3 inserts and revises, then publishes and reconciles.
  auto x30 = p3_.ExecuteTransaction({Ins("rat", "prot1", "cell-metab", 3)});
  ASSERT_TRUE(x30.ok());
  auto x31 = p3_.ExecuteTransaction(
      {Mod("rat", "prot1", "cell-metab", "immune", 3)});
  ASSERT_TRUE(x31.ok());
  auto r3a = p3_.PublishAndReconcile(&store_);
  ASSERT_TRUE(r3a.ok());
  EXPECT_TRUE(
      InstanceHasExactly(p3_.instance(), {T({"rat", "prot1", "immune"})}));

  // --- Epoch 2: p2 inserts mouse and a conflicting rat tuple.
  auto x20 = p2_.ExecuteTransaction({Ins("mouse", "prot2", "immune", 2)});
  ASSERT_TRUE(x20.ok());
  auto x21 = p2_.ExecuteTransaction({Ins("rat", "prot1", "cell-resp", 2)});
  ASSERT_TRUE(x21.ok());
  auto r2 = p2_.PublishAndReconcile(&store_);
  ASSERT_TRUE(r2.ok());
  // p2 rejects p3's rat transactions — they conflict with its own updates.
  EXPECT_EQ(r2->rejected.size(), 2u);
  EXPECT_TRUE(Contains(r2->rejected, *x30));
  EXPECT_TRUE(Contains(r2->rejected, *x31));
  EXPECT_TRUE(InstanceHasExactly(
      p2_.instance(),
      {T({"mouse", "prot2", "immune"}), T({"rat", "prot1", "cell-resp"})}));

  // --- Epoch 3: p3 reconciles again; applies the mouse update, rejects
  // the rat tuple incompatible with its local state.
  auto r3b = p3_.Reconcile(&store_);
  ASSERT_TRUE(r3b.ok());
  EXPECT_TRUE(Contains(r3b->accepted, *x20));
  EXPECT_TRUE(Contains(r3b->rejected, *x21));
  EXPECT_TRUE(InstanceHasExactly(
      p3_.instance(),
      {T({"mouse", "prot2", "immune"}), T({"rat", "prot1", "immune"})}));

  // --- Epoch 4: p1 reconciles; trusts p2 and p3 equally, so it accepts
  // the non-conflicting mouse update and defers all three rat
  // transactions.
  auto r1 = p1_.Reconcile(&store_);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(Contains(r1->accepted, *x20));
  EXPECT_EQ(r1->deferred.size(), 3u);
  EXPECT_TRUE(Contains(r1->deferred, *x30));
  EXPECT_TRUE(Contains(r1->deferred, *x31));
  EXPECT_TRUE(Contains(r1->deferred, *x21));
  EXPECT_TRUE(
      InstanceHasExactly(p1_.instance(), {T({"mouse", "prot2", "immune"})}));
  EXPECT_EQ(p1_.pending_conflicts().size(), 1u);
}

TEST_F(Figure2Test, ResolutionAfterDeferral) {
  // Run the walkthrough, then have p1's user resolve the rat conflict in
  // favor of p3's version (immune).
  ASSERT_TRUE(
      p3_.ExecuteTransaction({Ins("rat", "prot1", "cell-metab", 3)}).ok());
  ASSERT_TRUE(
      p3_.ExecuteTransaction({Mod("rat", "prot1", "cell-metab", "immune", 3)})
          .ok());
  ASSERT_TRUE(p3_.PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(
      p2_.ExecuteTransaction({Ins("mouse", "prot2", "immune", 2)}).ok());
  ASSERT_TRUE(
      p2_.ExecuteTransaction({Ins("rat", "prot1", "cell-resp", 2)}).ok());
  ASSERT_TRUE(p2_.PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(p3_.Reconcile(&store_).ok());
  ASSERT_TRUE(p1_.Reconcile(&store_).ok());

  ASSERT_EQ(p1_.pending_conflicts().size(), 1u);
  const ConflictGroup group = p1_.pending_conflicts()[0];
  ASSERT_EQ(group.options.size(), 2u);
  // Find the option whose effect mentions "immune" (p3's version).
  size_t immune_option = group.options.size();
  for (size_t i = 0; i < group.options.size(); ++i) {
    if (group.options[i].effect.find("immune") != std::string::npos) {
      immune_option = i;
    }
  }
  ASSERT_LT(immune_option, group.options.size());

  auto resolved = p1_.ResolveConflict(&store_, 0, immune_option);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(InstanceHasExactly(
      p1_.instance(),
      {T({"mouse", "prot2", "immune"}), T({"rat", "prot1", "immune"})}));
  EXPECT_TRUE(p1_.pending_conflicts().empty());
  EXPECT_EQ(p1_.deferred_count(), 0u);
}

TEST_F(Figure2Test, ResolutionRejectingAllOptions) {
  ASSERT_TRUE(
      p3_.ExecuteTransaction({Ins("rat", "prot1", "cell-metab", 3)}).ok());
  ASSERT_TRUE(p3_.PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(
      p2_.ExecuteTransaction({Ins("rat", "prot1", "cell-resp", 2)}).ok());
  ASSERT_TRUE(p2_.PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(p1_.Reconcile(&store_).ok());
  ASSERT_EQ(p1_.pending_conflicts().size(), 1u);

  auto resolved = p1_.ResolveConflict(&store_, 0, std::nullopt);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(InstanceHasExactly(p1_.instance(), {}));
  EXPECT_EQ(p1_.deferred_count(), 0u);
  EXPECT_EQ(p1_.rejected_count(), 2u);
}

TEST_F(Figure2Test, UntrustedPeerIsIgnoredButChainsSurvive) {
  // p3 trusts only p2. p1's updates reach p3 only when p2 builds on them
  // (the exception discussed in §3.2: p2 revising p1's data forces p3 to
  // transitively accept that portion of p1's data).
  ASSERT_TRUE(
      p1_.ExecuteTransaction({Ins("rat", "prot9", "original", 1)}).ok());
  ASSERT_TRUE(p1_.PublishAndReconcile(&store_).ok());
  // p3 reconciles: p1 is untrusted, nothing arrives.
  auto r3 = p3_.Reconcile(&store_);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(InstanceHasExactly(p3_.instance(), {}));

  // p2 imports p1's tuple and revises it.
  ASSERT_TRUE(p2_.Reconcile(&store_).ok());
  ASSERT_TRUE(
      p2_.ExecuteTransaction({Mod("rat", "prot9", "original", "revised", 2)})
          .ok());
  ASSERT_TRUE(p2_.PublishAndReconcile(&store_).ok());

  // Now p3 accepts p2's revision, transitively accepting p1's insert.
  auto r3b = p3_.Reconcile(&store_);
  ASSERT_TRUE(r3b.ok());
  EXPECT_EQ(r3b->accepted.size(), 1u);
  EXPECT_TRUE(
      InstanceHasExactly(p3_.instance(), {T({"rat", "prot9", "revised"})}));
}

}  // namespace
}  // namespace orchestra::core
