#include "core/flatten_cache.h"

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/extension.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Ins;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;
using orchestra::testing::Txn;

TEST(FlattenCacheTest, FingerprintIsOrderAndContentSensitive) {
  const std::vector<TransactionId> a{{1, 0}, {1, 1}};
  const std::vector<TransactionId> b{{1, 1}, {1, 0}};
  const std::vector<TransactionId> c{{1, 0}};
  const uint64_t fa = FlattenCache::ExtensionFingerprint(a);
  EXPECT_EQ(fa, FlattenCache::ExtensionFingerprint(a));
  EXPECT_NE(fa, FlattenCache::ExtensionFingerprint(b));
  EXPECT_NE(fa, FlattenCache::ExtensionFingerprint(c));
}

TEST(FlattenCacheTest, FlatEntryHitRequiresMatchingFingerprint) {
  FlattenCache cache;
  const TransactionId root{1, 0};
  cache.PutFlat(root, 42, {Ins("rat", "p1", "x", 1)}, true);
  const FlattenCache::FlatEntry* hit = cache.FindFlat(root, 42);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->ok);
  // A reconsidered transaction whose extension changed (e.g. an
  // antecedent was applied since) carries a new fingerprint — miss.
  EXPECT_EQ(cache.FindFlat(root, 43), nullptr);
  EXPECT_EQ(cache.FindFlat(TransactionId{2, 0}, 42), nullptr);
  EXPECT_EQ(cache.stats().flat_hits, 1u);
  EXPECT_EQ(cache.stats().flat_misses, 2u);
}

TEST(FlattenCacheTest, PairVerdictValidatedAgainstBothSides) {
  FlattenCache cache;
  const TransactionId a{1, 0}, b{2, 0};
  FlattenCache::PairVerdict verdict;
  verdict.fp_a = 7;
  verdict.fp_b = 9;
  verdict.points = {ConflictPoint{ConflictType::kInsertInsert,
                                  RelKey{"F", T({"rat", "p1"})}}};
  cache.PutPair(a, b, verdict);
  ASSERT_NE(cache.FindPair(a, b, 7, 9), nullptr);
  EXPECT_EQ(cache.FindPair(a, b, 7, 9)->points.size(), 1u);
  EXPECT_EQ(cache.FindPair(a, b, 8, 9), nullptr);  // left side changed
  EXPECT_EQ(cache.FindPair(a, b, 7, 8), nullptr);  // right side changed
}

TEST(FlattenCacheTest, InvalidateDropsEveryEntryMentioningRoot) {
  FlattenCache cache;
  const TransactionId a{1, 0}, b{2, 0}, c{3, 0};
  cache.PutFlat(a, 1, {}, true);
  cache.PutFlat(b, 2, {}, true);
  cache.PutFlat(c, 3, {}, true);
  cache.PutPair(a, b, {});
  cache.PutPair(b, c, {});
  cache.PutPair(a, c, {});
  cache.Invalidate({b});
  EXPECT_EQ(cache.flat_entries(), 2u);
  EXPECT_EQ(cache.pair_entries(), 1u);  // only (a, c) survives
  EXPECT_EQ(cache.FindFlat(b, 2), nullptr);
  EXPECT_NE(cache.FindPair(a, c, 0, 0), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.flat_entries(), 0u);
  EXPECT_EQ(cache.pair_entries(), 0u);
}

class CachedAnalysisTest : public ::testing::Test {
 protected:
  TrustedTxn Trusted(TransactionId id) {
    TrustedTxn t;
    t.id = id;
    t.priority = 1;
    auto ext = ComputeExtension(map_, id, applied_);
    ORCH_CHECK(ext.ok());
    t.extension = *std::move(ext);
    return t;
  }

  db::Catalog catalog_ = MakeProteinCatalog();
  TransactionMap map_;
  TxnIdSet applied_;
};

TEST_F(CachedAnalysisTest, WarmRoundHitsAndMatchesColdRound) {
  // Two conflicting writers plus an independent one.
  map_.Put(Txn(1, 0, {Ins("rat", "p1", "left", 1)}, {}, 1));
  map_.Put(Txn(2, 0, {Ins("rat", "p1", "right", 2)}, {}, 1));
  map_.Put(Txn(3, 0, {Ins("rat", "p9", "solo", 3)}, {}, 1));
  std::vector<TrustedTxn> txns{Trusted({1, 0}), Trusted({2, 0}),
                               Trusted({3, 0})};

  FlattenCache cache;
  AnalysisOptions cached;
  cached.cache = &cache;
  ReconcileAnalysis cold = AnalyzeExtensions(catalog_, map_, txns, cached);
  EXPECT_EQ(cache.stats().flat_hits, 0u);
  EXPECT_EQ(cache.flat_entries(), 3u);
  ASSERT_EQ(cold.conflicts.size(), 1u);

  ReconcileAnalysis warm = AnalyzeExtensions(catalog_, map_, txns, cached);
  EXPECT_EQ(cache.stats().flat_hits, 3u);
  EXPECT_GE(cache.stats().pair_hits, 1u);
  ReconcileAnalysis fresh = AnalyzeExtensions(catalog_, map_, txns);
  ASSERT_EQ(warm.conflicts.size(), fresh.conflicts.size());
  EXPECT_EQ(warm.conflicts[0].i, fresh.conflicts[0].i);
  EXPECT_EQ(warm.conflicts[0].j, fresh.conflicts[0].j);
  EXPECT_EQ(warm.conflicts[0].points, fresh.conflicts[0].points);
  EXPECT_EQ(warm.up_ex, fresh.up_ex);
}

TEST_F(CachedAnalysisTest, ChangedExtensionInvalidatesNaturally) {
  // Root with an antecedent chain; after the antecedent is applied the
  // extension shrinks, so the cached flattening must not be reused.
  map_.Put(Txn(1, 0, {Ins("rat", "p1", "v0", 1)}, {}, 1));
  map_.Put(Txn(1, 1, {Mod("rat", "p1", "v0", "v1", 1)}, {{1, 0}}, 2));

  FlattenCache cache;
  AnalysisOptions cached;
  cached.cache = &cache;
  std::vector<TrustedTxn> txns{Trusted({1, 1})};
  ASSERT_EQ(txns[0].extension.size(), 2u);
  ReconcileAnalysis before = AnalyzeExtensions(catalog_, map_, txns, cached);
  ASSERT_TRUE(before.flatten_ok[0]);
  // Full extension flattens to the net insert of v1.
  ASSERT_EQ(before.up_ex[0].size(), 1u);
  EXPECT_TRUE(before.up_ex[0][0].is_insert());

  applied_.insert({1, 0});
  std::vector<TrustedTxn> shrunk{Trusted({1, 1})};
  ASSERT_EQ(shrunk[0].extension.size(), 1u);
  cache.ResetStats();
  ReconcileAnalysis after = AnalyzeExtensions(catalog_, map_, shrunk, cached);
  EXPECT_EQ(cache.stats().flat_hits, 0u);  // fingerprint mismatch
  ASSERT_TRUE(after.flatten_ok[0]);
  // Now only the root's own modify remains.
  ASSERT_EQ(after.up_ex[0].size(), 1u);
  EXPECT_TRUE(after.up_ex[0][0].is_modify());
}

}  // namespace
}  // namespace orchestra::core
