// Property-based fuzz of the flattening semantics: for any valid update
// sequence, applying the flattened set must produce exactly the same
// instance as applying the sequence step by step — flattening only
// removes intermediate states, never changes the net effect ([12, 14]).
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/apply.h"
#include "core/flatten.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::MakeProteinCatalog;

// Generates one random update that is valid against `state`, mutating
// `state` to track the evolving instance. Returns nullopt when the
// chosen operation is impossible (e.g. delete on an empty instance).
std::optional<Update> RandomStep(Rng& rng, const db::RelationSchema& schema,
                                 db::Table* state, size_t key_space) {
  const int kind = static_cast<int>(rng.NextBounded(4));
  auto random_key = [&] {
    return db::Tuple{db::Value("org" + std::to_string(rng.NextBounded(3))),
                     db::Value("p" + std::to_string(rng.NextBounded(
                                   static_cast<uint64_t>(key_space))))};
  };
  auto random_value = [&] {
    return db::Value("fn" + std::to_string(rng.NextBounded(6)));
  };
  switch (kind) {
    case 0: {  // insert a fresh key
      for (int attempt = 0; attempt < 8; ++attempt) {
        const db::Tuple key = random_key();
        if (state->ContainsKey(key)) continue;
        db::Tuple tuple{key[0], key[1], random_value()};
        ORCH_CHECK(state->Insert(tuple).ok());
        return Update::Insert("F", tuple, 1);
      }
      return std::nullopt;
    }
    case 1: {  // delete an existing tuple
      const std::vector<db::Tuple> rows = state->Scan();
      if (rows.empty()) return std::nullopt;
      const db::Tuple victim = rows[rng.NextBounded(rows.size())];
      ORCH_CHECK(state->DeleteByKey(schema.KeyOf(victim)).ok());
      return Update::Delete("F", victim, 1);
    }
    case 2: {  // modify, key unchanged
      const std::vector<db::Tuple> rows = state->Scan();
      if (rows.empty()) return std::nullopt;
      const db::Tuple victim = rows[rng.NextBounded(rows.size())];
      db::Tuple replacement{victim[0], victim[1], random_value()};
      if (replacement == victim) return std::nullopt;
      ORCH_CHECK(state->Replace(victim, replacement).ok());
      return Update::Modify("F", victim, replacement, 1);
    }
    default: {  // modify that moves the tuple to a fresh key
      const std::vector<db::Tuple> rows = state->Scan();
      if (rows.empty()) return std::nullopt;
      const db::Tuple victim = rows[rng.NextBounded(rows.size())];
      for (int attempt = 0; attempt < 8; ++attempt) {
        const db::Tuple key = random_key();
        if (state->ContainsKey(key)) continue;
        db::Tuple replacement{key[0], key[1], victim[2]};
        ORCH_CHECK(state->Replace(victim, replacement).ok());
        return Update::Modify("F", victim, replacement, 1);
      }
      return std::nullopt;
    }
  }
}

class FlattenFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlattenFuzzTest, FlattenedSetEquivalentToSequence) {
  Rng rng(GetParam());
  db::Catalog catalog = MakeProteinCatalog();
  const db::RelationSchema& schema = **catalog.GetRelation("F");

  for (int scenario = 0; scenario < 60; ++scenario) {
    // Random base instance.
    db::Instance base(&catalog);
    {
      auto table = base.GetTable("F");
      const size_t seeds = rng.NextBounded(6);
      for (size_t i = 0; i < seeds; ++i) {
        db::Tuple t{db::Value("org" + std::to_string(rng.NextBounded(3))),
                    db::Value("p" + std::to_string(i)),
                    db::Value("fn" + std::to_string(rng.NextBounded(6)))};
        ORCH_CHECK((*table)->Insert(t).ok() || true);
      }
    }
    // Sequentially evolve a copy, recording the updates.
    db::Instance sequential = base;
    std::vector<Update> sequence;
    {
      auto table = sequential.GetTable("F");
      const size_t steps = 1 + rng.NextBounded(24);
      for (size_t s = 0; s < steps; ++s) {
        auto step = RandomStep(rng, schema, *table, 8);
        if (step) sequence.push_back(*std::move(step));
      }
    }
    if (sequence.empty()) continue;

    // Flatten and apply to the untouched base.
    auto flattened = Flatten(catalog, sequence);
    ASSERT_TRUE(flattened.ok())
        << "seed " << GetParam() << " scenario " << scenario << ": "
        << flattened.status().ToString();
    db::Instance flattened_applied = base;
    auto status = ApplyFlattened(&flattened_applied, *flattened);
    ASSERT_TRUE(status.ok())
        << "seed " << GetParam() << " scenario " << scenario << ": "
        << status.ToString();

    EXPECT_TRUE(flattened_applied == sequential)
        << "seed " << GetParam() << " scenario " << scenario
        << "\nsequence size " << sequence.size() << "\nflattened size "
        << flattened->size() << "\nsequential:\n"
        << sequential.ToString() << "flattened:\n"
        << flattened_applied.ToString();

    // A flattened *set* is not necessarily a valid *sequence* in its
    // deterministic output order (independent key-moving chains can
    // appear "out of order"). Re-flattening must therefore either
    // detect the mismatch (Conflict) or — when the order happens to be
    // sequentially valid — preserve the effect exactly. It must never
    // silently compose a different result.
    auto again = Flatten(catalog, *flattened);
    if (again.ok()) {
      db::Instance again_applied = base;
      ASSERT_TRUE(ApplyFlattened(&again_applied, *again).ok());
      EXPECT_TRUE(again_applied == sequential)
          << "re-flattening changed the effect (seed " << GetParam()
          << " scenario " << scenario << ")";
    } else {
      EXPECT_TRUE(again.status().IsConflict());
    }

    // And the flattened set never exceeds the sequence in size.
    EXPECT_LE(flattened->size(), sequence.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlattenFuzzTest,
                         ::testing::Range<uint64_t>(100, 110));

}  // namespace
}  // namespace orchestra::core
