#include "core/flatten.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Del;
using orchestra::testing::Ins;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;

class FlattenTest : public ::testing::Test {
 protected:
  db::Catalog catalog_ = MakeProteinCatalog();

  std::vector<Update> Flat(std::vector<Update> seq) {
    auto result = Flatten(catalog_, seq);
    ORCH_CHECK(result.ok(), "%s", result.status().ToString().c_str());
    return *std::move(result);
  }
};

TEST_F(FlattenTest, EmptySequence) {
  EXPECT_TRUE(Flat({}).empty());
}

TEST_F(FlattenTest, SingleUpdatePassesThrough) {
  auto out = Flat({Ins("rat", "p1", "immune", 1)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Ins("rat", "p1", "immune", 1));
}

TEST_F(FlattenTest, InsertThenModifyBecomesInsert) {
  // The paper's example: [X3:2, X3:3] minimizes to a single insert.
  auto out = Flat({Ins("mouse", "p2", "cell-resp", 3),
                   Mod("mouse", "p2", "cell-resp", "immune", 3)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Ins("mouse", "p2", "immune", 3));
}

TEST_F(FlattenTest, InsertThenModifyKeyChangeFollowsChain) {
  // +F(mouse,p2,..) then F((mouse,p2,..) -> (mouse,p3,..)) = +F(mouse,p3,..)
  auto out = Flat({Ins("mouse", "p2", "cell-resp", 3),
                   Update::Modify("F", T({"mouse", "p2", "cell-resp"}),
                                  T({"mouse", "p3", "cell-resp"}), 3)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Ins("mouse", "p3", "cell-resp", 3));
}

TEST_F(FlattenTest, InsertThenDeleteVanishes) {
  EXPECT_TRUE(
      Flat({Ins("rat", "p1", "x", 1), Del("rat", "p1", "x", 1)}).empty());
}

TEST_F(FlattenTest, ModifyChainComposes) {
  auto out = Flat({Mod("rat", "p1", "a", "b", 1), Mod("rat", "p1", "b", "c", 2)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Mod("rat", "p1", "a", "c", 2));
}

TEST_F(FlattenTest, ModifyBackToOriginalVanishes) {
  EXPECT_TRUE(
      Flat({Mod("rat", "p1", "a", "b", 1), Mod("rat", "p1", "b", "a", 2)})
          .empty());
}

TEST_F(FlattenTest, ModifyThenDeleteBecomesDeleteOfOriginal) {
  auto out = Flat({Mod("rat", "p1", "a", "b", 1), Del("rat", "p1", "b", 2)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Del("rat", "p1", "a", 2));
}

TEST_F(FlattenTest, DeleteThenReinsertBecomesModify) {
  auto out = Flat({Del("rat", "p1", "a", 1), Ins("rat", "p1", "b", 2)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Mod("rat", "p1", "a", "b", 2));
}

TEST_F(FlattenTest, DeleteThenIdenticalReinsertVanishes) {
  EXPECT_TRUE(
      Flat({Del("rat", "p1", "a", 1), Ins("rat", "p1", "a", 2)}).empty());
}

TEST_F(FlattenTest, IndependentKeysPassThrough) {
  auto out = Flat({Ins("rat", "p1", "a", 1), Ins("mouse", "p2", "b", 1),
                   Del("rat", "p3", "c", 1)});
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(FlattenTest, OutputOrderIsDeterministic) {
  auto a = Flat({Ins("rat", "p2", "x", 1), Ins("rat", "p1", "y", 1)});
  auto b = Flat({Ins("rat", "p1", "y", 1), Ins("rat", "p2", "x", 1)});
  EXPECT_EQ(a, b);
}

TEST_F(FlattenTest, LastWriterOriginIsKept) {
  auto out = Flat({Ins("rat", "p1", "a", 1), Mod("rat", "p1", "a", "b", 2)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].origin(), 2u);
}

TEST_F(FlattenTest, DoubleInsertFails) {
  auto result = Flatten(catalog_, {Ins("rat", "p1", "a", 1),
                                   Ins("rat", "p1", "b", 2)});
  EXPECT_TRUE(result.status().IsConflict());
}

TEST_F(FlattenTest, DoubleDeleteFails) {
  auto result =
      Flatten(catalog_, {Del("rat", "p1", "a", 1), Del("rat", "p1", "a", 2)});
  EXPECT_TRUE(result.status().IsConflict());
}

TEST_F(FlattenTest, ModifyAfterDeleteFails) {
  auto result = Flatten(
      catalog_, {Del("rat", "p1", "a", 1), Mod("rat", "p1", "a", "b", 2)});
  EXPECT_TRUE(result.status().IsConflict());
}

TEST_F(FlattenTest, MoveOntoLiveKeyFails) {
  // Two different tuples moved to the same key.
  auto result = Flatten(
      catalog_, {Ins("rat", "p1", "a", 1),
                 Update::Modify("F", T({"rat", "p2", "b"}),
                                T({"rat", "p1", "b"}), 1)});
  EXPECT_TRUE(result.status().IsConflict());
}

TEST_F(FlattenTest, UnknownRelationFails) {
  auto result =
      Flatten(catalog_, {Update::Insert("Nope", T({"a", "b", "c"}), 1)});
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(FlattenTest, MixedChainThroughKeyMove) {
  // Pre-existing (rat,p1,a) is moved to (rat,p2,a), then a fresh insert
  // occupies (rat,p1); both survive flattening.
  auto out = Flat({Update::Modify("F", T({"rat", "p1", "a"}),
                                  T({"rat", "p2", "a"}), 1),
                   Ins("rat", "p1", "fresh", 1)});
  ASSERT_EQ(out.size(), 2u);
}

TEST_F(FlattenTest, LongChainCollapsesToOneUpdate) {
  std::vector<Update> seq = {Ins("rat", "p1", "v0", 1)};
  for (int i = 1; i <= 20; ++i) {
    seq.push_back(Mod("rat", "p1", ("v" + std::to_string(i - 1)).c_str(),
                      ("v" + std::to_string(i)).c_str(), 1));
  }
  auto out = Flat(seq);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Ins("rat", "p1", "v20", 1));
}

TEST_F(FlattenTest, ModifiedThenDeletedThenReinsertedComposes) {
  // modify a->b, delete b, insert c on the same key: net modify a->c.
  auto out = Flat({Mod("rat", "p1", "a", "b", 1), Del("rat", "p1", "b", 1),
                   Ins("rat", "p1", "c", 1)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Mod("rat", "p1", "a", "c", 1));
}

}  // namespace
}  // namespace orchestra::core
