// The determinism contract of the parallel reconciliation engine: for
// the same input, Reconciler::Run must produce bit-identical
// ReconcileOutcomes (accepted/rejected/deferred roots, applied set,
// dirty values, conflict groups) and instances for every thread count,
// with and without the cross-round FlattenCache.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/analysis.h"
#include "core/extension.h"
#include "core/flatten_cache.h"
#include "core/reconciler.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::MakeProteinCatalog;

std::string RenderGroups(const std::vector<ConflictGroup>& groups) {
  std::string out;
  for (const ConflictGroup& g : groups) out += g.ToString() + "\n";
  return out;
}

// One reconciliation engine under test: a thread-count configuration
// plus the per-participant state that feeds back between rounds.
struct Engine {
  explicit Engine(const db::Catalog* catalog, size_t num_threads,
                  bool use_cache)
      : reconciler(catalog, ReconcileOptions{num_threads}),
        instance(catalog),
        use_cache(use_cache) {}

  Reconciler reconciler;
  db::Instance instance;
  bool use_cache;
  TxnIdSet applied;
  TxnIdSet rejected;
  RelKeySet dirty;
  std::map<TransactionId, int> deferred;  // root -> priority
  FlattenCache cache;
};

// Randomized multi-round SWISS-PROT-style workload: `kPeers` publishers
// each grow an antecedent chain; every transaction inserts a unique
// (organism, protein) tuple and sometimes writes a hot protein shared
// across publishers, so rounds mix clean accepts, insert/insert and
// replace/replace conflicts (deferrals), and dirty-value deferrals.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static constexpr size_t kPeers = 5;
  static constexpr size_t kTxnsPerPeerPerRound = 3;
  static constexpr size_t kHotProteins = 4;

  db::Tuple Row(const std::string& protein, const std::string& fn) {
    return orchestra::testing::T(
        {"rat", protein.c_str(), fn.c_str()});
  }

  // Generates one round of fresh transactions (same corpus for every
  // engine) and returns their ids in generation order.
  std::vector<TransactionId> GenerateRound(size_t round) {
    std::vector<TransactionId> fresh;
    for (size_t p = 0; p < kPeers; ++p) {
      const ParticipantId origin = static_cast<ParticipantId>(1 + p);
      for (size_t t = 0; t < kTxnsPerPeerPerRound; ++t) {
        Transaction txn;
        txn.id = TransactionId{origin, next_seq_[p]++};
        const std::string unique =
            "U" + std::to_string(p) + "_" + std::to_string(txn.id.seq);
        const std::string value =
            "f" + std::to_string(p) + "_" + std::to_string(txn.id.seq);
        txn.updates.push_back(
            Update::Insert("F", Row(unique, value), origin));
        if (rng_.NextBool(0.6)) {
          const std::string hot =
              "H" + std::to_string(rng_.NextBounded(kHotProteins));
          auto it = hot_value_[p].find(hot);
          if (it == hot_value_[p].end()) {
            txn.updates.push_back(
                Update::Insert("F", Row(hot, value), origin));
          } else {
            txn.updates.push_back(Update::Modify("F", Row(hot, it->second),
                                                 Row(hot, value), origin));
          }
          hot_value_[p][hot] = value;
        }
        if (txn.id.seq > 0) {
          txn.antecedents.push_back(TransactionId{origin, txn.id.seq - 1});
        }
        txn.epoch = static_cast<Epoch>(1 + round);
        priority_[txn.id] = static_cast<int>(1 + rng_.NextBounded(2));
        fresh.push_back(txn.id);
        map_.Put(std::move(txn));
      }
    }
    return fresh;
  }

  // Builds the round's TrustedTxn input for one engine: the fresh batch
  // first (generation order), then the engine's deferred backlog (id
  // order), mirroring Participant::Reconcile.
  std::vector<TrustedTxn> BuildInput(const Engine& engine,
                                     const std::vector<TransactionId>& fresh) {
    std::vector<TrustedTxn> txns;
    for (const TransactionId& id : fresh) {
      TrustedTxn t;
      t.id = id;
      t.priority = priority_.at(id);
      auto ext = ComputeExtension(map_, id, engine.applied);
      ORCH_CHECK(ext.ok());
      t.extension = *std::move(ext);
      txns.push_back(std::move(t));
    }
    for (const auto& [id, priority] : engine.deferred) {
      TrustedTxn t;
      t.id = id;
      t.priority = priority;
      t.previously_deferred = true;
      auto ext = ComputeExtension(map_, id, engine.applied);
      ORCH_CHECK(ext.ok());
      t.extension = *std::move(ext);
      txns.push_back(std::move(t));
    }
    return txns;
  }

  ReconcileOutcome RunRound(Engine* engine,
                            const std::vector<TransactionId>& fresh,
                            int64_t recno) {
    ReconcileInput input;
    input.recno = recno;
    input.txns = BuildInput(*engine, fresh);
    input.provider = &map_;
    input.applied = &engine->applied;
    input.rejected = &engine->rejected;
    input.dirty = &engine->dirty;
    if (engine->use_cache) input.flatten_cache = &engine->cache;
    auto outcome = engine->reconciler.Run(input, &engine->instance);
    ORCH_CHECK(outcome.ok());
    // Fold back the soft state, as Participant::RunAndCommit does.
    for (const TransactionId& id : outcome->applied_txns) {
      engine->applied.insert(id);
      engine->deferred.erase(id);
    }
    for (const TransactionId& id : outcome->rejected_roots) {
      engine->rejected.insert(id);
      engine->deferred.erase(id);
    }
    std::map<TransactionId, int> still_deferred;
    for (const TrustedTxn& t : input.txns) {
      for (const TransactionId& id : outcome->deferred_roots) {
        if (t.id == id) still_deferred[id] = t.priority;
      }
    }
    engine->deferred = std::move(still_deferred);
    engine->dirty = outcome->dirty_values;
    engine->cache.Invalidate(outcome->applied_txns);
    engine->cache.Invalidate(outcome->rejected_roots);
    return *std::move(outcome);
  }

  db::Catalog catalog_ = MakeProteinCatalog();
  TransactionMap map_;
  Rng rng_{20060601};
  std::map<TransactionId, int> priority_;
  std::vector<uint64_t> next_seq_ = std::vector<uint64_t>(kPeers, 0);
  std::vector<std::map<std::string, std::string>> hot_value_ =
      std::vector<std::map<std::string, std::string>>(kPeers);
};

TEST_F(ParallelDeterminismTest, ThreadCountAndCacheDoNotChangeOutcomes) {
  // Reference: serial, uncached. Variants: serial+cache, 2 and 8
  // threads with cache — every combination must match the reference
  // exactly, every round.
  std::vector<Engine> engines;
  engines.emplace_back(&catalog_, 1, false);
  engines.emplace_back(&catalog_, 1, true);
  engines.emplace_back(&catalog_, 2, true);
  engines.emplace_back(&catalog_, 8, true);

  constexpr size_t kRounds = 6;
  for (size_t round = 0; round < kRounds; ++round) {
    const std::vector<TransactionId> fresh = GenerateRound(round);
    ReconcileOutcome reference =
        RunRound(&engines[0], fresh, static_cast<int64_t>(round));
    for (size_t e = 1; e < engines.size(); ++e) {
      SCOPED_TRACE("round " + std::to_string(round) + " engine " +
                   std::to_string(e));
      ReconcileOutcome outcome =
          RunRound(&engines[e], fresh, static_cast<int64_t>(round));
      EXPECT_EQ(outcome.accepted_roots, reference.accepted_roots);
      EXPECT_EQ(outcome.rejected_roots, reference.rejected_roots);
      EXPECT_EQ(outcome.deferred_roots, reference.deferred_roots);
      EXPECT_EQ(outcome.applied_txns, reference.applied_txns);
      EXPECT_EQ(outcome.dirty_values, reference.dirty_values);
      EXPECT_EQ(RenderGroups(outcome.conflict_groups),
                RenderGroups(reference.conflict_groups));
      EXPECT_EQ(engines[e].instance, engines[0].instance);
    }
  }
  // Sanity: the workload actually exercised every decision path.
  EXPECT_FALSE(engines[0].applied.empty());
  EXPECT_FALSE(engines[0].dirty.empty());
  // And the warm cache did real work across rounds.
  EXPECT_GT(engines[1].cache.stats().flat_hits, 0u);
}

}  // namespace
}  // namespace orchestra::core
