#include "core/participant.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Del;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;

class ParticipantTest : public ::testing::Test {
 protected:
  ParticipantTest()
      : catalog_(MakeProteinCatalog()),
        engine_(storage::StorageEngine::InMemory()),
        store_(engine_.get(), &network_) {
    for (ParticipantId id = 1; id <= 3; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 3; ++other) {
        if (other != id) policy->TrustPeer(other, 1);
      }
      policies_.push_back(std::move(policy));
      participants_.push_back(
          std::make_unique<Participant>(id, &catalog_, *policies_.back()));
      ORCH_CHECK(store_.RegisterParticipant(id, policies_.back().get()).ok());
    }
  }

  Participant& P(size_t i) { return *participants_[i - 1]; }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  store::CentralStore store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

TEST_F(ParticipantTest, ExecuteAppliesLocally) {
  auto id = P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->origin, 1u);
  EXPECT_EQ(id->seq, 0u);
  EXPECT_TRUE(InstanceHasExactly(P(1).instance(), {T({"rat", "p1", "x"})}));
  EXPECT_EQ(P(1).applied_count(), 1u);
}

TEST_F(ParticipantTest, ExecuteAssignsIncreasingSequence) {
  auto a = P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)});
  auto b = P(1).ExecuteTransaction({Ins("rat", "p2", "y", 1)});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->seq, b->seq);
}

TEST_F(ParticipantTest, ExecuteRejectsEmptyTransaction) {
  EXPECT_FALSE(P(1).ExecuteTransaction({}).ok());
}

TEST_F(ParticipantTest, ExecuteRejectsLocallyInvalidTransaction) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  // Conflicting re-insert of the same key fails and changes nothing.
  EXPECT_FALSE(P(1).ExecuteTransaction({Ins("rat", "p1", "y", 1)}).ok());
  EXPECT_TRUE(InstanceHasExactly(P(1).instance(), {T({"rat", "p1", "x"})}));
}

TEST_F(ParticipantTest, ExecuteStampsOriginOntoUpdates) {
  // Updates passed with a wrong origin are re-stamped with the executing
  // participant's identity.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 99)}).ok());
  ASSERT_TRUE(P(1).Publish(&store_).ok());
  auto report = P(2).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted.size(), 1u);  // trusted as peer 1, not 99
}

TEST_F(ParticipantTest, PublishEmptyQueueIsNoop) {
  auto epoch = P(1).Publish(&store_);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, kNoEpoch);
}

TEST_F(ParticipantTest, PublishAssignsEpochsInOrder) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  auto e1 = P(1).Publish(&store_);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p2", "y", 2)}).ok());
  auto e2 = P(2).Publish(&store_);
  ASSERT_TRUE(e2.ok());
  EXPECT_LT(*e1, *e2);
}

TEST_F(ParticipantTest, UpdatesFlowBetweenPeers) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  auto report = P(2).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "x"})}));
}

TEST_F(ParticipantTest, RevisionChainsCarryAntecedents) {
  // p1 inserts; p2 imports and revises; p3 imports the revision and must
  // receive p1's insert as its antecedent.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "a", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).Reconcile(&store_).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Mod("rat", "p1", "a", "b", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  auto report = P(3).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(InstanceHasExactly(P(3).instance(), {T({"rat", "p1", "b"})}));
}

TEST_F(ParticipantTest, SelfRevisionWithinOneTransactionHasNoAntecedent) {
  // Insert + modify in one transaction: the modify's antecedent is the
  // same transaction, so none is recorded; the chain still flattens.
  ASSERT_TRUE(P(1)
                  .ExecuteTransaction({Ins("rat", "p1", "a", 1),
                                       Mod("rat", "p1", "a", "b", 1)})
                  .ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  auto report = P(2).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "b"})}));
}

TEST_F(ParticipantTest, OwnDeltaWinsOverIncomingConflicts) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "theirs", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p1", "mine", 2)}).ok());
  auto report = P(2).PublishAndReconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rejected.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "mine"})}));
}

TEST_F(ParticipantTest, OwnDeltaClearsAfterReconcile) {
  // A conflict arriving after the peer's next reconciliation is rejected
  // through instance incompatibility rather than the delta, with the
  // same outcome: never roll back local state.
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p1", "mine", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "late", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  auto report = P(2).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rejected.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "mine"})}));
}

TEST_F(ParticipantTest, DeferredTransactionsReconsideredNextReconcile) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "a", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p1", "b", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  // p3 sees both: equal trust, conflict, defer.
  auto r1 = P(3).Reconcile(&store_);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->deferred.size(), 2u);
  EXPECT_EQ(P(3).deferred_count(), 2u);
  // Nothing new published; reconciling again reconsiders and re-defers.
  auto r2 = P(3).Reconcile(&store_);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->reconsidered, 2u);
  EXPECT_EQ(r2->deferred.size(), 2u);
  EXPECT_EQ(P(3).deferred_count(), 2u);
}

TEST_F(ParticipantTest, FreshUpdateTouchingDeferredKeyDefers) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "a", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p1", "b", 2)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(3).Reconcile(&store_).ok());
  ASSERT_EQ(P(3).deferred_count(), 2u);
  // p1 revises its version; p3 must defer the revision too (dirty key).
  ASSERT_TRUE(P(1).ExecuteTransaction({Mod("rat", "p1", "a", "c", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  auto report = P(3).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(P(3).deferred_count(), 3u);
  EXPECT_TRUE(InstanceHasExactly(P(3).instance(), {}));
}

TEST_F(ParticipantTest, ResolveConflictOutOfRangeFails) {
  EXPECT_TRUE(P(1).ResolveConflict(&store_, 0, std::nullopt)
                  .status()
                  .code() == StatusCode::kOutOfRange);
}

TEST_F(ParticipantTest, DeleteSpreadsBetweenPeers) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).Reconcile(&store_).ok());
  ASSERT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "x"})}));
  ASSERT_TRUE(P(1).ExecuteTransaction({Del("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).Reconcile(&store_).ok());
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {}));
}

TEST_F(ParticipantTest, StoreStatsAccumulate) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  const StoreStats stats = store_.StatsFor(1);
  EXPECT_GT(stats.messages, 0);
  EXPECT_GT(stats.sim_network_micros, 0);
  EXPECT_GE(stats.calls, 2);  // publish + begin-reconciliation (+ record)
}

TEST_F(ParticipantTest, ReportTimingsAreSplit) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "x", 1)}).ok());
  ASSERT_TRUE(P(1).Publish(&store_).ok());
  auto report = P(2).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->local_micros, 0);
  EXPECT_GT(report->store.sim_network_micros, 0);
}

}  // namespace
}  // namespace orchestra::core
