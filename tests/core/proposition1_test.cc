// Randomized check of Proposition 1: a solution to the general
// reconciliation problem always accepts transactions (and their
// antecedents) for which no directly conflicting, non-subsumed
// transaction of equal or higher priority exists.
//
// The scenario family has an exact oracle: K transactions from distinct
// peers all insert the contested key with pairwise-distinct values, at
// random priorities. If the maximum priority is unique, exactly that
// transaction is accepted and every other is rejected; if the maximum is
// tied, every transaction defers (certain-answers semantics). A second
// family adds agreement (identical values) at the top priority.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/extension.h"
#include "core/reconciler.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::T;
using orchestra::testing::Txn;

class Proposition1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Proposition1Test, UniqueHighestPriorityAlwaysWins) {
  Rng rng(GetParam());
  db::Catalog catalog = MakeProteinCatalog();
  Reconciler reconciler(&catalog);

  for (int scenario = 0; scenario < 40; ++scenario) {
    const size_t k = 2 + rng.NextBounded(6);
    TransactionMap map;
    std::vector<TrustedTxn> txns;
    std::vector<int> priorities;
    for (size_t i = 0; i < k; ++i) {
      const auto origin = static_cast<ParticipantId>(i + 1);
      const std::string value = "v" + std::to_string(i);  // all distinct
      map.Put(Txn(origin, 0,
                  {Update::Insert("F", T({"rat", "p1", value.c_str()}),
                                  origin)},
                  {}, static_cast<Epoch>(i + 1)));
      TrustedTxn t;
      t.id = {origin, 0};
      t.priority = 1 + static_cast<int>(rng.NextBounded(4));
      priorities.push_back(t.priority);
      t.extension = {t.id};
      txns.push_back(std::move(t));
    }
    const int max_priority =
        *std::max_element(priorities.begin(), priorities.end());
    const size_t at_max = static_cast<size_t>(
        std::count(priorities.begin(), priorities.end(), max_priority));

    db::Instance instance(&catalog);
    TxnIdSet applied, rejected;
    RelKeySet dirty;
    ReconcileInput input;
    input.recno = 1;
    input.txns = txns;
    input.provider = &map;
    input.applied = &applied;
    input.rejected = &rejected;
    input.dirty = &dirty;
    auto outcome = reconciler.Run(input, &instance);
    ASSERT_TRUE(outcome.ok());

    if (at_max == 1) {
      // Proposition 1: the unique highest-priority transaction has no
      // equal-or-higher conflicting rival, so it must be accepted; all
      // rivals conflict with an accepted higher transaction: rejected.
      ASSERT_EQ(outcome->accepted_roots.size(), 1u)
          << "scenario " << scenario << " k=" << k;
      EXPECT_EQ(outcome->rejected_roots.size(), k - 1);
      EXPECT_TRUE(outcome->deferred_roots.empty());
      const size_t winner = static_cast<size_t>(
          std::max_element(priorities.begin(), priorities.end()) -
          priorities.begin());
      EXPECT_EQ(outcome->accepted_roots[0], txns[winner].id);
      // And its update is in the instance.
      auto table = instance.GetTable("F");
      EXPECT_TRUE((*table)->ContainsTuple(
          T({"rat", "p1", ("v" + std::to_string(winner)).c_str()})));
    } else {
      // Tie at the top: every transaction (the tied ones directly, the
      // lower ones through conflicts with deferred work) defers.
      EXPECT_TRUE(outcome->accepted_roots.empty())
          << "scenario " << scenario << " k=" << k << " at_max=" << at_max;
      EXPECT_EQ(outcome->deferred_roots.size(), k);
      EXPECT_EQ(instance.TotalTuples(), 0u);
    }
  }
}

TEST_P(Proposition1Test, AgreementAtTopPriorityIsAccepted) {
  Rng rng(GetParam() + 1000);
  db::Catalog catalog = MakeProteinCatalog();
  Reconciler reconciler(&catalog);

  for (int scenario = 0; scenario < 40; ++scenario) {
    // m transactions agree on the winning value at priority 5; r rivals
    // propose distinct values at lower priorities. The agreeing group
    // conflicts with nothing at its level (identical updates agree), so
    // all of it is accepted and all rivals are rejected.
    const size_t m = 1 + rng.NextBounded(3);
    const size_t r = 1 + rng.NextBounded(4);
    TransactionMap map;
    std::vector<TrustedTxn> txns;
    for (size_t i = 0; i < m + r; ++i) {
      const auto origin = static_cast<ParticipantId>(i + 1);
      const std::string value =
          i < m ? "agreed" : "rival" + std::to_string(i);
      map.Put(Txn(origin, 0,
                  {Update::Insert("F", T({"rat", "p1", value.c_str()}),
                                  origin)},
                  {}, static_cast<Epoch>(i + 1)));
      TrustedTxn t;
      t.id = {origin, 0};
      t.priority = i < m ? 5 : 1 + static_cast<int>(rng.NextBounded(4));
      t.extension = {t.id};
      txns.push_back(std::move(t));
    }

    db::Instance instance(&catalog);
    TxnIdSet applied, rejected;
    RelKeySet dirty;
    ReconcileInput input;
    input.recno = 1;
    input.txns = txns;
    input.provider = &map;
    input.applied = &applied;
    input.rejected = &rejected;
    input.dirty = &dirty;
    auto outcome = reconciler.Run(input, &instance);
    ASSERT_TRUE(outcome.ok());

    EXPECT_EQ(outcome->accepted_roots.size(), m);
    EXPECT_EQ(outcome->rejected_roots.size(), r);
    EXPECT_TRUE(outcome->deferred_roots.empty());
    auto table = instance.GetTable("F");
    EXPECT_TRUE((*table)->ContainsTuple(T({"rat", "p1", "agreed"})));
    EXPECT_EQ((*table)->size(), 1u);
  }
}

TEST_P(Proposition1Test, RevisionChainWinnerCarriesAntecedents) {
  // A chain X -> X' at random priority against one rival: whenever the
  // chain's priority is strictly higher, both chain members are applied
  // (the antecedent is transitively accepted), else see oracle below.
  Rng rng(GetParam() + 2000);
  db::Catalog catalog = MakeProteinCatalog();
  Reconciler reconciler(&catalog);

  for (int scenario = 0; scenario < 40; ++scenario) {
    TransactionMap map;
    map.Put(Txn(1, 0, {Update::Insert("F", T({"rat", "p1", "base"}), 1)}, {},
                1));
    map.Put(Txn(1, 1,
                {Update::Modify("F", T({"rat", "p1", "base"}),
                                T({"rat", "p1", "revised"}), 1)},
                {{1, 0}}, 2));
    map.Put(Txn(2, 0, {Update::Insert("F", T({"rat", "p1", "rival"}), 2)},
                {}, 3));
    const int chain_priority = 1 + static_cast<int>(rng.NextBounded(3));
    const int rival_priority = 1 + static_cast<int>(rng.NextBounded(3));

    std::vector<TrustedTxn> txns;
    {
      TrustedTxn t;
      t.id = {1, 0};
      t.priority = chain_priority;
      t.extension = {{1, 0}};
      txns.push_back(t);
      TrustedTxn t2;
      t2.id = {1, 1};
      t2.priority = chain_priority;
      t2.extension = {{1, 0}, {1, 1}};
      txns.push_back(t2);
      TrustedTxn t3;
      t3.id = {2, 0};
      t3.priority = rival_priority;
      t3.extension = {{2, 0}};
      txns.push_back(t3);
    }

    db::Instance instance(&catalog);
    TxnIdSet applied, rejected;
    RelKeySet dirty;
    ReconcileInput input;
    input.recno = 1;
    input.txns = txns;
    input.provider = &map;
    input.applied = &applied;
    input.rejected = &rejected;
    input.dirty = &dirty;
    auto outcome = reconciler.Run(input, &instance);
    ASSERT_TRUE(outcome.ok());

    auto table = instance.GetTable("F");
    if (chain_priority > rival_priority) {
      EXPECT_EQ(outcome->accepted_roots.size(), 2u);
      EXPECT_TRUE((*table)->ContainsTuple(T({"rat", "p1", "revised"})));
    } else if (rival_priority > chain_priority) {
      EXPECT_EQ(outcome->accepted_roots.size(), 1u);
      EXPECT_TRUE((*table)->ContainsTuple(T({"rat", "p1", "rival"})));
    } else {
      EXPECT_EQ(outcome->deferred_roots.size(), 3u);
      EXPECT_EQ((*table)->size(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition1Test,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace orchestra::core
