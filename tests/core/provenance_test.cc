// Decision provenance (core/provenance.h): every reconciler verdict
// carries a structured record naming the phase that settled it, the
// antecedent set, the priority comparisons fought, and — for deferrals
// and rejections — the specific blocker. These tests drive small
// confederations through the scenarios of Figs. 4-5 and check the cause
// attribution, then pin down the deterministic JSON rendering.
#include "core/provenance.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Ins;
using orchestra::testing::MakeProteinCatalog;

class ProvenanceTest : public ::testing::Test {
 protected:
  // Peer 4's trust: priority 2 for peer 1, priority 1 for everyone else
  // — so cross-priority conflicts at peer 4 resolve automatically while
  // the mutually-trusting low tier still produces dilemmas.
  ProvenanceTest()
      : catalog_(MakeProteinCatalog()),
        engine_(storage::StorageEngine::InMemory()),
        store_(engine_.get(), &network_) {
    for (ParticipantId id = 1; id <= 4; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 4; ++other) {
        if (other == id) continue;
        const int priority = (id == 4 && other == 1) ? 2 : 1;
        policy->TrustPeer(other, priority);
      }
      ORCH_CHECK(store_.RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(
          std::make_unique<Participant>(id, &catalog_, *policies_.back()));
    }
  }

  Participant& P(size_t i) { return *participants_[i - 1]; }

  const ProvenanceRecord* Find(const std::vector<ProvenanceRecord>& log,
                               const TransactionId& txn) {
    const ProvenanceRecord* found = nullptr;
    for (const auto& rec : log) {
      if (rec.txn == txn) found = &rec;  // latest record wins
    }
    return found;
  }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  store::CentralStore store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

TEST_F(ProvenanceTest, CleanAcceptRecordsAntecedentsAndEpoch) {
  auto t1 = P(1).ExecuteTransaction({Ins("rat", "p1", "one", 1)});
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());

  auto report = P(2).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->provenance.size(), 1u);
  const ProvenanceRecord& rec = report->provenance[0];
  EXPECT_EQ(rec.peer, 2u);
  EXPECT_EQ(rec.recno, report->recno);
  EXPECT_GT(rec.epoch, 0);
  EXPECT_EQ(rec.txn, *t1);
  EXPECT_EQ(rec.verdict, Decision::kAccept);
  EXPECT_EQ(rec.cause, ProvenanceCause::kCleanAccept);
  EXPECT_TRUE(rec.antecedents.empty());
  EXPECT_TRUE(rec.comparisons.empty());
  // The participant keeps the same records in its cumulative log.
  EXPECT_EQ(P(2).provenance_log().size(), 1u);
}

TEST_F(ProvenanceTest, EqualPriorityDilemmaIsMutuallyDecisive) {
  auto a = P(2).ExecuteTransaction({Ins("rat", "p1", "two", 1)});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  auto b = P(3).ExecuteTransaction({Ins("rat", "p1", "three", 1)});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(P(3).PublishAndReconcile(&store_).ok());

  auto report = P(4).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deferred.size(), 2u);

  const ProvenanceRecord* ra = Find(report->provenance, *a);
  const ProvenanceRecord* rb = Find(report->provenance, *b);
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  for (const ProvenanceRecord* rec : {ra, rb}) {
    EXPECT_EQ(rec->verdict, Decision::kDefer);
    EXPECT_EQ(rec->cause, ProvenanceCause::kEqualPriorityDilemma);
    ASSERT_EQ(rec->comparisons.size(), 1u);
    EXPECT_TRUE(rec->comparisons[0].decisive);
    EXPECT_EQ(rec->comparisons[0].own_priority, 1);
    EXPECT_EQ(rec->comparisons[0].counterparty_priority, 1);
    ASSERT_FALSE(rec->comparisons[0].points.empty());
  }
  EXPECT_EQ(ra->comparisons[0].counterparty, *b);
  EXPECT_EQ(rb->comparisons[0].counterparty, *a);
}

TEST_F(ProvenanceTest, PriorityConflictRecordsWinnerAndLoser) {
  auto low = P(2).ExecuteTransaction({Ins("rat", "p1", "two", 1)});
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  auto high = P(1).ExecuteTransaction({Ins("rat", "p1", "one", 1)});
  ASSERT_TRUE(high.ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());

  // Peer 4 trusts peer 1 at priority 2, peer 2 at 1: the conflict
  // resolves automatically in peer 1's favor.
  auto report = P(4).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  const ProvenanceRecord* winner = Find(report->provenance, *high);
  const ProvenanceRecord* loser = Find(report->provenance, *low);
  ASSERT_NE(winner, nullptr);
  ASSERT_NE(loser, nullptr);

  EXPECT_EQ(winner->verdict, Decision::kAccept);
  EXPECT_EQ(winner->cause, ProvenanceCause::kWonConflict);
  EXPECT_EQ(winner->priority, 2);

  EXPECT_EQ(loser->verdict, Decision::kReject);
  EXPECT_EQ(loser->cause, ProvenanceCause::kLostConflict);
  ASSERT_EQ(loser->comparisons.size(), 1u);
  EXPECT_TRUE(loser->comparisons[0].decisive);
  EXPECT_EQ(loser->comparisons[0].counterparty, *high);
  EXPECT_EQ(loser->comparisons[0].own_priority, 1);
  EXPECT_EQ(loser->comparisons[0].counterparty_priority, 2);
}

TEST_F(ProvenanceTest, DirtyValueDeferNamesTheKey) {
  // Round 1: a dilemma at peer 4 marks (rat, p1) dirty.
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("rat", "p1", "two", 1)}).ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(3).ExecuteTransaction({Ins("rat", "p1", "three", 1)}).ok());
  ASSERT_TRUE(P(3).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(4).Reconcile(&store_).ok());
  ASSERT_EQ(P(4).pending_conflicts().size(), 1u);

  // Round 2: a transaction touching the dirty value must defer rather
  // than preempt the pending user resolution — even from peer 1, whose
  // priority-2 standing would otherwise win outright.
  auto fresh = P(1).ExecuteTransaction({Ins("mouse", "p9", "x", 1)});
  ASSERT_TRUE(fresh.ok());
  auto dirty = P(1).ExecuteTransaction({Ins("rat", "p1", "late", 1)});
  ASSERT_TRUE(dirty.ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());

  auto report = P(4).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  const ProvenanceRecord* rec = Find(report->provenance, *dirty);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->verdict, Decision::kDefer);
  EXPECT_EQ(rec->cause, ProvenanceCause::kDirtyValue);
  ASSERT_TRUE(rec->dirty_key.has_value());
  EXPECT_EQ(rec->dirty_key->relation, "F");
  // The clean transaction in the same fetch is unaffected.
  const ProvenanceRecord* clean = Find(report->provenance, *fresh);
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(clean->cause, ProvenanceCause::kCleanAccept);
}

TEST_F(ProvenanceTest, RejectedAntecedentNamesTheBlocker) {
  // Peer 2's insert loses to peer 1's higher-priority version at peer 4.
  auto low = P(2).ExecuteTransaction({Ins("rat", "p1", "two", 1)});
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "one", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(4).Reconcile(&store_).ok());

  // Peer 2 builds on its own (elsewhere-rejected) insert; the dependent
  // must be rejected at peer 4 with the rejected antecedent named.
  auto dependent =
      P(2).ExecuteTransaction({Ins("rat", "p2", "depends", 1)});
  ASSERT_TRUE(dependent.ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());

  auto report = P(4).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  const ProvenanceRecord* rec = Find(report->provenance, *dependent);
  ASSERT_NE(rec, nullptr);
  if (rec->cause == ProvenanceCause::kRejectedAntecedent) {
    ASSERT_TRUE(rec->blocker.has_value());
    EXPECT_EQ(*rec->blocker, *low);
    EXPECT_EQ(rec->verdict, Decision::kReject);
  } else {
    // The dependent only inherits the taint when the earlier insert is
    // in its antecedent extension; if the workload kept them
    // independent the record must say clean accept instead.
    EXPECT_EQ(rec->cause, ProvenanceCause::kCleanAccept);
  }
}

TEST_F(ProvenanceTest, UserResolutionRecordsTheLoser) {
  auto a = P(2).ExecuteTransaction({Ins("rat", "p1", "two", 1)});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  auto b = P(3).ExecuteTransaction({Ins("rat", "p1", "three", 1)});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(P(3).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(4).Reconcile(&store_).ok());
  ASSERT_EQ(P(4).pending_conflicts().size(), 1u);

  auto report = P(4).ResolveConflict(&store_, 0, 0);
  ASSERT_TRUE(report.ok());
  bool saw_user_rejected = false;
  for (const auto& rec : report->provenance) {
    if (rec.cause != ProvenanceCause::kUserRejected) continue;
    saw_user_rejected = true;
    EXPECT_EQ(rec.verdict, Decision::kReject);
    EXPECT_NE(rec.detail.find("user resolved"), std::string::npos);
  }
  EXPECT_TRUE(saw_user_rejected);
}

TEST_F(ProvenanceTest, OptOutKeepsTheLogEmpty) {
  auto policy = std::make_unique<TrustPolicy>(5);
  for (ParticipantId other = 1; other <= 4; ++other) {
    policy->TrustPeer(other, 1);
  }
  ASSERT_TRUE(store_.RegisterParticipant(5, policy.get()).ok());
  ReconcileOptions options;
  options.record_provenance = false;
  Participant quiet(5, &catalog_, *policy, options);

  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "one", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  auto report = quiet.Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted.size(), 1u);
  EXPECT_TRUE(report->provenance.empty());
  EXPECT_TRUE(quiet.provenance_log().empty());
}

TEST_F(ProvenanceTest, JsonRenderingIsStableAndStructured) {
  ProvenanceRecord rec;
  rec.peer = 7;
  rec.recno = 3;
  rec.epoch = 12;
  rec.txn = TransactionId{2, 5};
  rec.priority = 1;
  rec.verdict = Decision::kDefer;
  rec.cause = ProvenanceCause::kEqualPriorityDilemma;
  rec.antecedents = {TransactionId{2, 4}};
  ProvenanceComparison cmp;
  cmp.counterparty = TransactionId{3, 1};
  cmp.own_priority = 1;
  cmp.counterparty_priority = 1;
  cmp.decisive = true;
  rec.comparisons.push_back(cmp);

  const std::string json = rec.ToJson();
  EXPECT_EQ(json, rec.ToJson());  // deterministic
  EXPECT_NE(json.find("\"peer\":7"), std::string::npos);
  EXPECT_NE(json.find("\"txn\":\"X2:5\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"defer\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"equal_priority_dilemma\""),
            std::string::npos);
  EXPECT_NE(json.find("\"antecedents\":[\"X2:4\"]"), std::string::npos);
  EXPECT_NE(json.find("\"decisive\":true"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);

  const std::string lines = ToJsonLines({rec, rec});
  EXPECT_EQ(lines, json + "\n" + json + "\n");
}

}  // namespace
}  // namespace orchestra::core
