// Edge cases of reconciliation exercised end-to-end through the full
// stack: key-changing replacements, multi-relation atomicity, long
// revision chains, and interleavings across reconciliations.
#include <gtest/gtest.h>

#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Del;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::T;

db::Catalog MakeTwoRelationCatalog() {
  db::Catalog catalog;
  for (const char* name : {"F", "G"}) {
    auto schema = db::RelationSchema::Make(
        name,
        {{"organism", db::ValueType::kString, false},
         {"protein", db::ValueType::kString, false},
         {"function", db::ValueType::kString, false}},
        {0, 1});
    ORCH_CHECK(schema.ok());
    ORCH_CHECK(catalog.AddRelation(*std::move(schema)).ok());
  }
  return catalog;
}

class ReconcilerEdgeTest : public ::testing::Test {
 protected:
  ReconcilerEdgeTest()
      : catalog_(MakeTwoRelationCatalog()),
        engine_(storage::StorageEngine::InMemory()),
        store_(engine_.get(), &network_) {
    for (ParticipantId id = 1; id <= 4; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 4; ++other) {
        if (other != id) policy->TrustPeer(other, 1);
      }
      ORCH_CHECK(store_.RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(
          std::make_unique<Participant>(id, &catalog_, *policies_.back()));
    }
  }

  Participant& P(size_t i) { return *participants_[i - 1]; }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  store::CentralStore store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

TEST_F(ReconcilerEdgeTest, KeyChangingReplacementPropagates) {
  // The Figure-2-adjacent case of §4.2: a replacement that corrects the
  // *protein* (a key attribute), X3:3-style.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("mouse", "prot2", "cell-resp", 1)})
                  .ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(1).ExecuteTransaction(
                      {Update::Modify("F", T({"mouse", "prot2", "cell-resp"}),
                                      T({"mouse", "prot3", "cell-resp"}), 1)})
                  .ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).Reconcile(&store_).ok());
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(),
                                 {T({"mouse", "prot3", "cell-resp"})}));
}

TEST_F(ReconcilerEdgeTest, KeyChangeRemovesConflictWithLaterInsert) {
  // §4.2's motivating example: X3:2 conflicts with a mouse/prot2 insert,
  // but X3:3 moves it to prot3 — the flattened extension no longer
  // conflicts, so the other peer's insert is accepted.
  ASSERT_TRUE(P(3).ExecuteTransaction({Ins("mouse", "prot2", "cell-resp", 3)})
                  .ok());
  ASSERT_TRUE(P(3).ExecuteTransaction(
                      {Update::Modify("F", T({"mouse", "prot2", "cell-resp"}),
                                      T({"mouse", "prot3", "cell-resp"}), 3)})
                  .ok());
  ASSERT_TRUE(P(3).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).ExecuteTransaction({Ins("mouse", "prot2", "immune", 2)})
                  .ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  // p2 accepted p3's chain: its flattened form only claims prot3.
  EXPECT_TRUE(InstanceHasExactly(
      P(2).instance(),
      {T({"mouse", "prot2", "immune"}), T({"mouse", "prot3", "cell-resp"})}));
  // And p3, reconciling later, accepts p2's insert for the vacated key.
  ASSERT_TRUE(P(3).Reconcile(&store_).ok());
  EXPECT_TRUE(InstanceHasExactly(
      P(3).instance(),
      {T({"mouse", "prot2", "immune"}), T({"mouse", "prot3", "cell-resp"})}));
}

TEST_F(ReconcilerEdgeTest, MultiRelationTransactionIsAtomic) {
  // One transaction touches F and G; a conflict on F defers the whole
  // transaction, so the G tuple must not appear either.
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "mine", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(
      P(2).ExecuteTransaction(
              {Ins("rat", "p1", "theirs", 2),
               Update::Insert("G", T({"rat", "p1", "note"}), 2)})
          .ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  auto report = P(3).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deferred.size(), 2u);
  auto g_table = P(3).instance().GetTable("G");
  EXPECT_EQ((*g_table)->size(), 0u);
}

TEST_F(ReconcilerEdgeTest, FourPeerRevisionChain) {
  // v1 -> v2 -> v3 -> v4, each revision by a different peer; a fresh
  // observer receives the whole chain transitively and applies it once.
  const char* values[] = {"v1", "v2", "v3", "v4"};
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", values[0], 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  for (size_t step = 1; step < 3; ++step) {
    Participant& peer = P(step + 1);
    ASSERT_TRUE(peer.Reconcile(&store_).ok());
    ASSERT_TRUE(peer.ExecuteTransaction(
                        {Update::Modify("F", T({"rat", "p1", values[step - 1]}),
                                        T({"rat", "p1", values[step]}),
                                        peer.id())})
                    .ok());
    ASSERT_TRUE(peer.PublishAndReconcile(&store_).ok());
  }
  auto report = P(4).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(InstanceHasExactly(P(4).instance(), {T({"rat", "p1", "v3"})}));
  // The chain has three transactions; all were applied.
  EXPECT_EQ(P(4).applied_count(), 3u);
}

TEST_F(ReconcilerEdgeTest, EmptyReconcileIsCheapNoop) {
  auto report = P(1).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->fetched, 0u);
  EXPECT_TRUE(report->accepted.empty());
  // Repeated no-op reconciles keep working and advance recno.
  auto again = P(1).Reconcile(&store_);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again->recno, report->recno);
}

TEST_F(ReconcilerEdgeTest, DeleteAndReinsertAcrossReconciliations) {
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "old", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).Reconcile(&store_).ok());
  // p1 retires the tuple and later re-curates the key with a new value.
  ASSERT_TRUE(P(1).ExecuteTransaction({Del("rat", "p1", "old", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(1).ExecuteTransaction({Ins("rat", "p1", "new", 1)}).ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).Reconcile(&store_).ok());
  EXPECT_TRUE(InstanceHasExactly(P(2).instance(), {T({"rat", "p1", "new"})}));
}

TEST_F(ReconcilerEdgeTest, AgreementAfterIndependentIdenticalCuration) {
  // All four peers insert the identical tuple independently; everyone
  // converges with zero conflicts.
  for (size_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(P(i).ExecuteTransaction(
                        {Ins("rat", "p1", "consensus",
                             static_cast<ParticipantId>(i))})
                    .ok());
    ASSERT_TRUE(P(i).PublishAndReconcile(&store_).ok());
  }
  for (size_t i = 1; i <= 4; ++i) {
    auto report = P(i).Reconcile(&store_);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->deferred.empty());
    EXPECT_TRUE(
        InstanceHasExactly(P(i).instance(), {T({"rat", "p1", "consensus"})}));
  }
}

TEST_F(ReconcilerEdgeTest, InterleavedRevisionsOfDistinctKeysStaySeparate) {
  ASSERT_TRUE(
      P(1).ExecuteTransaction({Ins("rat", "a", "x", 1), Ins("rat", "b", "y", 1)})
          .ok());
  ASSERT_TRUE(P(1).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(2).Reconcile(&store_).ok());
  ASSERT_TRUE(P(3).Reconcile(&store_).ok());
  // p2 revises key a while p3 revises key b: no conflicts anywhere.
  ASSERT_TRUE(P(2).ExecuteTransaction(
                      {Update::Modify("F", T({"rat", "a", "x"}),
                                      T({"rat", "a", "x2"}), 2)})
                  .ok());
  ASSERT_TRUE(P(2).PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(P(3).ExecuteTransaction(
                      {Update::Modify("F", T({"rat", "b", "y"}),
                                      T({"rat", "b", "y2"}), 3)})
                  .ok());
  ASSERT_TRUE(P(3).PublishAndReconcile(&store_).ok());
  auto report = P(4).Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->deferred.empty());
  EXPECT_TRUE(InstanceHasExactly(
      P(4).instance(), {T({"rat", "a", "x2"}), T({"rat", "b", "y2"})}));
}

}  // namespace
}  // namespace orchestra::core
