#include "core/reconciler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/extension.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Del;
using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;
using orchestra::testing::Txn;

class ReconcilerTest : public ::testing::Test {
 protected:
  ReconcilerTest() : instance_(&catalog_), reconciler_(&catalog_) {}

  void Put(Transaction txn) { map_.Put(std::move(txn)); }

  TrustedTxn Trusted(TransactionId id, int priority,
                     bool previously_deferred = false) {
    TrustedTxn t;
    t.id = id;
    t.priority = priority;
    t.previously_deferred = previously_deferred;
    auto ext = ComputeExtension(map_, id, applied_);
    ORCH_CHECK(ext.ok());
    t.extension = *std::move(ext);
    return t;
  }

  ReconcileOutcome Run(std::vector<TrustedTxn> txns,
                       std::vector<Update> own_delta = {}) {
    ReconcileInput input;
    input.recno = ++recno_;
    input.txns = std::move(txns);
    input.provider = &map_;
    input.own_delta = std::move(own_delta);
    input.applied = &applied_;
    input.rejected = &rejected_;
    input.dirty = &dirty_;
    auto outcome = reconciler_.Run(input, &instance_);
    ORCH_CHECK(outcome.ok(), "%s", outcome.status().ToString().c_str());
    return *std::move(outcome);
  }

  static bool Contains(const std::vector<TransactionId>& v,
                       TransactionId id) {
    return std::find(v.begin(), v.end(), id) != v.end();
  }

  db::Catalog catalog_ = MakeProteinCatalog();
  db::Instance instance_;
  Reconciler reconciler_;
  TransactionMap map_;
  TxnIdSet applied_;
  TxnIdSet rejected_;
  RelKeySet dirty_;
  int64_t recno_ = 0;
};

TEST_F(ReconcilerTest, AcceptsSingleTrustedTransaction) {
  Put(Txn(2, 0, {Ins("rat", "p1", "x", 2)}, {}, 1));
  auto outcome = Run({Trusted({2, 0}, 1)});
  EXPECT_EQ(outcome.accepted_roots.size(), 1u);
  EXPECT_TRUE(outcome.rejected_roots.empty());
  EXPECT_TRUE(outcome.deferred_roots.empty());
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "x"})}));
  EXPECT_TRUE(Contains(outcome.applied_txns, {2, 0}));
}

TEST_F(ReconcilerTest, RejectsConflictWithOwnDelta) {
  // CheckState line 7: the participant always keeps its own version.
  auto table = instance_.GetTable("F");
  ASSERT_TRUE((*table)->Insert(T({"rat", "p1", "mine"})).ok());
  Put(Txn(2, 0, {Ins("rat", "p1", "theirs", 2)}, {}, 1));
  auto outcome =
      Run({Trusted({2, 0}, 1)}, {Ins("rat", "p1", "mine", 9)});
  EXPECT_TRUE(Contains(outcome.rejected_roots, {2, 0}));
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "mine"})}));
}

TEST_F(ReconcilerTest, RejectsIncompatibleWithInstance) {
  auto table = instance_.GetTable("F");
  ASSERT_TRUE((*table)->Insert(T({"rat", "p1", "settled"})).ok());
  Put(Txn(2, 0, {Ins("rat", "p1", "other", 2)}, {}, 1));
  auto outcome = Run({Trusted({2, 0}, 1)});
  EXPECT_TRUE(Contains(outcome.rejected_roots, {2, 0}));
}

TEST_F(ReconcilerTest, EqualPriorityConflictDefersBoth) {
  Put(Txn(2, 0, {Ins("rat", "p1", "immune", 2)}, {}, 1));
  Put(Txn(3, 0, {Ins("rat", "p1", "metab", 3)}, {}, 1));
  auto outcome = Run({Trusted({2, 0}, 1), Trusted({3, 0}, 1)});
  EXPECT_EQ(outcome.deferred_roots.size(), 2u);
  EXPECT_TRUE(InstanceHasExactly(instance_, {}));
  // Soft state: the contested key is dirty, one conflict group with two
  // options exists.
  EXPECT_EQ(outcome.dirty_values.count(RelKey{"F", T({"rat", "p1"})}), 1u);
  ASSERT_EQ(outcome.conflict_groups.size(), 1u);
  EXPECT_EQ(outcome.conflict_groups[0].point.type,
            ConflictType::kInsertInsert);
  EXPECT_EQ(outcome.conflict_groups[0].options.size(), 2u);
}

TEST_F(ReconcilerTest, HigherPriorityWinsLowerRejected) {
  Put(Txn(2, 0, {Ins("rat", "p1", "immune", 2)}, {}, 1));
  Put(Txn(3, 0, {Ins("rat", "p1", "metab", 3)}, {}, 1));
  auto outcome = Run({Trusted({2, 0}, 5), Trusted({3, 0}, 1)});
  EXPECT_TRUE(Contains(outcome.accepted_roots, {2, 0}));
  EXPECT_TRUE(Contains(outcome.rejected_roots, {3, 0}));
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "immune"})}));
}

TEST_F(ReconcilerTest, IdenticalUpdatesFromTwoPeersBothAccepted) {
  Put(Txn(2, 0, {Ins("rat", "p1", "x", 2)}, {}, 1));
  Put(Txn(3, 0, {Ins("rat", "p1", "x", 3)}, {}, 1));
  auto outcome = Run({Trusted({2, 0}, 1), Trusted({3, 0}, 1)});
  EXPECT_EQ(outcome.accepted_roots.size(), 2u);
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "x"})}));
}

TEST_F(ReconcilerTest, SubsumedTransactionIsNotAConflict) {
  // X3:1 revises X3:0; their flattened extensions "conflict" textually
  // but te(X3:1) ⊇ te(X3:0), so both are accepted and applied once.
  Put(Txn(3, 0, {Ins("rat", "p1", "cell-metab", 3)}, {}, 1));
  Put(Txn(3, 1, {Mod("rat", "p1", "cell-metab", "immune", 3)}, {{3, 0}}, 1));
  auto outcome = Run({Trusted({3, 0}, 1), Trusted({3, 1}, 1)});
  EXPECT_EQ(outcome.accepted_roots.size(), 2u);
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "immune"})}));
}

TEST_F(ReconcilerTest, AntecedentsTransitivelyAcceptedAndApplied) {
  // The peer trusts only X2:0 but must transitively accept the untrusted
  // antecedent X9:0 (§4.2).
  Put(Txn(9, 0, {Ins("rat", "p1", "base", 9)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "base", "revised", 2)}, {{9, 0}}, 2));
  auto outcome = Run({Trusted({2, 0}, 1)});
  EXPECT_TRUE(Contains(outcome.accepted_roots, {2, 0}));
  EXPECT_TRUE(Contains(outcome.applied_txns, {9, 0}));
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "revised"})}));
}

TEST_F(ReconcilerTest, SharedAntecedentAppliedExactlyOnce) {
  Put(Txn(9, 0, {Ins("rat", "p1", "base", 9)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "base", "a", 2)}, {{9, 0}}, 2));
  Put(Txn(3, 0, {Ins("mouse", "p2", "b", 3)}, {{9, 0}}, 2));
  auto outcome = Run({Trusted({2, 0}, 1), Trusted({3, 0}, 1)});
  EXPECT_EQ(outcome.accepted_roots.size(), 2u);
  // X9:0 appears once in applied_txns.
  EXPECT_EQ(std::count(outcome.applied_txns.begin(),
                       outcome.applied_txns.end(), TransactionId{9, 0}),
            1);
  EXPECT_TRUE(InstanceHasExactly(
      instance_, {T({"rat", "p1", "a"}), T({"mouse", "p2", "b"})}));
}

TEST_F(ReconcilerTest, RejectedAntecedentRejectsDependent) {
  Put(Txn(9, 0, {Ins("rat", "p1", "base", 9)}, {}, 1));
  Put(Txn(2, 0, {Mod("rat", "p1", "base", "a", 2)}, {{9, 0}}, 2));
  rejected_.insert({9, 0});
  auto outcome = Run({Trusted({2, 0}, 1)});
  EXPECT_TRUE(Contains(outcome.rejected_roots, {2, 0}));
  EXPECT_TRUE(InstanceHasExactly(instance_, {}));
}

TEST_F(ReconcilerTest, DependentOnDeferredIsDeferred) {
  // X2:0 and X3:0 conflict (defer); X2:1 depends on X2:0 so it defers too.
  Put(Txn(2, 0, {Ins("rat", "p1", "immune", 2)}, {}, 1));
  Put(Txn(3, 0, {Ins("rat", "p1", "metab", 3)}, {}, 1));
  Put(Txn(2, 1, {Mod("rat", "p1", "immune", "other", 2)}, {{2, 0}}, 2));
  auto outcome =
      Run({Trusted({2, 0}, 1), Trusted({3, 0}, 1), Trusted({2, 1}, 1)});
  EXPECT_EQ(outcome.deferred_roots.size(), 3u);
  EXPECT_TRUE(InstanceHasExactly(instance_, {}));
}

TEST_F(ReconcilerTest, FreshTransactionTouchingDirtyValueDefers) {
  dirty_.insert(RelKey{"F", T({"rat", "p1"})});
  Put(Txn(2, 0, {Ins("rat", "p1", "x", 2)}, {}, 5));
  auto outcome = Run({Trusted({2, 0}, 1)});
  EXPECT_TRUE(Contains(outcome.deferred_roots, {2, 0}));
}

TEST_F(ReconcilerTest, HighPriorityFreshTransactionStillDefersOnDirty) {
  // §3.1: future updates that might conflict with an unresolved conflict
  // are deferred regardless of priority, so user resolution stays valid.
  dirty_.insert(RelKey{"F", T({"rat", "p1"})});
  Put(Txn(2, 0, {Ins("rat", "p1", "x", 2)}, {}, 5));
  auto outcome = Run({Trusted({2, 0}, 100)});
  EXPECT_TRUE(Contains(outcome.deferred_roots, {2, 0}));
}

TEST_F(ReconcilerTest, PreviouslyDeferredSkipsDirtyCheck) {
  dirty_.insert(RelKey{"F", T({"rat", "p1"})});
  Put(Txn(2, 0, {Ins("rat", "p1", "x", 2)}, {}, 1));
  auto outcome = Run({Trusted({2, 0}, 1, /*previously_deferred=*/true)});
  EXPECT_TRUE(Contains(outcome.accepted_roots, {2, 0}));
}

TEST_F(ReconcilerTest, ResolutionScenarioAcceptsSurvivor) {
  // Round 1: conflict defers both. User rejects X3:0; round 2 reconsiders
  // X2:0 (previously deferred) and accepts it.
  Put(Txn(2, 0, {Ins("rat", "p1", "immune", 2)}, {}, 1));
  Put(Txn(3, 0, {Ins("rat", "p1", "metab", 3)}, {}, 1));
  auto round1 = Run({Trusted({2, 0}, 1), Trusted({3, 0}, 1)});
  EXPECT_EQ(round1.deferred_roots.size(), 2u);
  rejected_.insert({3, 0});
  dirty_ = round1.dirty_values;
  auto round2 = Run({Trusted({2, 0}, 1, /*previously_deferred=*/true)});
  EXPECT_TRUE(Contains(round2.accepted_roots, {2, 0}));
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "immune"})}));
  EXPECT_TRUE(round2.conflict_groups.empty());
  EXPECT_TRUE(round2.dirty_values.empty());
}

TEST_F(ReconcilerTest, LowerPriorityConflictingWithDeferredDefers) {
  // DoGroup: equal/lower-priority transactions conflicting with a
  // deferred higher-priority transaction defer rather than apply.
  dirty_.insert(RelKey{"F", T({"rat", "p1"})});
  Put(Txn(2, 0, {Ins("rat", "p1", "a", 2)}, {}, 5));
  Put(Txn(3, 0, {Ins("rat", "p1", "b", 3)}, {}, 5));
  auto outcome = Run({Trusted({2, 0}, 3), Trusted({3, 0}, 1)});
  // Both touch the dirty key: both defer (the higher via dirty, the lower
  // via dirty as well).
  EXPECT_EQ(outcome.deferred_roots.size(), 2u);
}

TEST_F(ReconcilerTest, ConflictGroupMergesIdenticalEffects) {
  // Two peers propose the same value; a third proposes another. The
  // group has two options, one holding both agreeing transactions.
  Put(Txn(2, 0, {Ins("rat", "p1", "immune", 2)}, {}, 1));
  Put(Txn(3, 0, {Ins("rat", "p1", "immune", 3)}, {}, 1));
  Put(Txn(4, 0, {Ins("rat", "p1", "metab", 4)}, {}, 1));
  auto outcome =
      Run({Trusted({2, 0}, 1), Trusted({3, 0}, 1), Trusted({4, 0}, 1)});
  EXPECT_EQ(outcome.deferred_roots.size(), 3u);
  ASSERT_EQ(outcome.conflict_groups.size(), 1u);
  const ConflictGroup& group = outcome.conflict_groups[0];
  ASSERT_EQ(group.options.size(), 2u);
  const size_t sizes[2] = {group.options[0].txns.size(),
                           group.options[1].txns.size()};
  EXPECT_EQ(std::max(sizes[0], sizes[1]), 2u);
  EXPECT_EQ(std::min(sizes[0], sizes[1]), 1u);
}

TEST_F(ReconcilerTest, SubsumedMemberRidesInSubsumersOption) {
  // X3:1 revises X3:0 and conflicts with X2:1; resolving in favor of
  // X3:1 must not reject its antecedent X3:0.
  Put(Txn(3, 0, {Ins("rat", "p1", "cell-metab", 3)}, {}, 1));
  Put(Txn(3, 1, {Mod("rat", "p1", "cell-metab", "immune", 3)}, {{3, 0}}, 1));
  Put(Txn(2, 1, {Ins("rat", "p1", "cell-resp", 2)}, {}, 2));
  auto outcome =
      Run({Trusted({3, 0}, 1), Trusted({3, 1}, 1), Trusted({2, 1}, 1)});
  EXPECT_EQ(outcome.deferred_roots.size(), 3u);
  ASSERT_EQ(outcome.conflict_groups.size(), 1u);
  const ConflictGroup& group = outcome.conflict_groups[0];
  ASSERT_EQ(group.options.size(), 2u);
  // One option holds {X3:0, X3:1}, the other {X2:1}.
  for (const ConflictOption& option : group.options) {
    if (option.txns.size() == 2) {
      EXPECT_TRUE(Contains(option.txns, {3, 0}));
      EXPECT_TRUE(Contains(option.txns, {3, 1}));
    } else {
      ASSERT_EQ(option.txns.size(), 1u);
      EXPECT_EQ(option.txns[0], (TransactionId{2, 1}));
    }
  }
}

TEST_F(ReconcilerTest, MonotonicityAcceptedNeverRolledBack) {
  Put(Txn(2, 0, {Ins("rat", "p1", "x", 2)}, {}, 1));
  auto outcome1 = Run({Trusted({2, 0}, 1)});
  for (const TransactionId& id : outcome1.applied_txns) applied_.insert(id);
  // A later, higher-priority conflicting transaction is rejected because
  // it is incompatible with the instance — the accepted update stays.
  Put(Txn(3, 0, {Ins("rat", "p1", "y", 3)}, {}, 2));
  auto outcome2 = Run({Trusted({3, 0}, 100)});
  EXPECT_TRUE(Contains(outcome2.rejected_roots, {3, 0}));
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "x"})}));
}

TEST_F(ReconcilerTest, MalformedExtensionIsRejected) {
  // An extension that double-inserts a key cannot flatten; it is
  // rejected rather than crashing the reconciliation.
  Put(Txn(2, 0, {Ins("rat", "p1", "x", 2), Ins("rat", "p1", "y", 2)}, {}, 1));
  auto outcome = Run({Trusted({2, 0}, 1)});
  EXPECT_TRUE(Contains(outcome.rejected_roots, {2, 0}));
}

TEST_F(ReconcilerTest, DeleteVsModifyConflictDefersBoth) {
  auto table = instance_.GetTable("F");
  ASSERT_TRUE((*table)->Insert(T({"rat", "p1", "x"})).ok());
  Put(Txn(2, 0, {Del("rat", "p1", "x", 2)}, {}, 1));
  Put(Txn(3, 0, {Mod("rat", "p1", "x", "y", 3)}, {}, 1));
  auto outcome = Run({Trusted({2, 0}, 1), Trusted({3, 0}, 1)});
  EXPECT_EQ(outcome.deferred_roots.size(), 2u);
  ASSERT_EQ(outcome.conflict_groups.size(), 1u);
  EXPECT_EQ(outcome.conflict_groups[0].point.type,
            ConflictType::kDeleteVsWrite);
  EXPECT_TRUE(InstanceHasExactly(instance_, {T({"rat", "p1", "x"})}));
}

TEST_F(ReconcilerTest, NonConflictingBatchAllAccepted) {
  std::vector<TrustedTxn> txns;
  for (uint64_t i = 0; i < 20; ++i) {
    Put(Txn(2, i,
            {Update::Insert(
                "F", T({"rat", ("p" + std::to_string(i)).c_str(), "fn"}), 2)},
            {}, 1));
    txns.push_back(Trusted({2, i}, 1));
  }
  auto outcome = Run(std::move(txns));
  EXPECT_EQ(outcome.accepted_roots.size(), 20u);
  EXPECT_EQ((*instance_.GetTable("F"))->size(), 20u);
}

}  // namespace
}  // namespace orchestra::core
