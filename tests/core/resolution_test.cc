#include "core/resolution.h"

#include <gtest/gtest.h>

#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::T;

class ResolutionTest : public ::testing::Test {
 protected:
  ResolutionTest()
      : catalog_(MakeProteinCatalog()),
        engine_(storage::StorageEngine::InMemory()),
        store_(engine_.get(), &network_) {
    for (ParticipantId id = 1; id <= 4; ++id) {
      auto policy = std::make_unique<TrustPolicy>(id);
      for (ParticipantId other = 1; other <= 4; ++other) {
        if (other != id) policy->TrustPeer(other, 1);
      }
      ORCH_CHECK(store_.RegisterParticipant(id, policy.get()).ok());
      policies_.push_back(std::move(policy));
      participants_.push_back(
          std::make_unique<Participant>(id, &catalog_, *policies_.back()));
    }
  }

  Participant& P(size_t i) { return *participants_[i - 1]; }

  // Creates an equal-priority conflict on (rat, pX) between peers 1
  // and 2, observed (and deferred) by peer 4.
  void MakeConflict(const char* protein) {
    ORCH_CHECK(P(1).ExecuteTransaction({Ins("rat", protein, "one", 1)}).ok());
    ORCH_CHECK(P(1).PublishAndReconcile(&store_).ok());
    ORCH_CHECK(P(2).ExecuteTransaction({Ins("rat", protein, "two", 2)}).ok());
    ORCH_CHECK(P(2).PublishAndReconcile(&store_).ok());
  }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  store::CentralStore store_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

TEST_F(ResolutionTest, PreferPeersPicksRankedOrigin) {
  MakeConflict("p1");
  ASSERT_TRUE(P(4).Reconcile(&store_).ok());
  ASSERT_EQ(P(4).pending_conflicts().size(), 1u);

  auto summary =
      ResolveConflicts(&P(4), &store_, PreferPeers({2, 1}));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->groups_resolved, 1u);
  EXPECT_EQ(summary->groups_skipped, 0u);
  EXPECT_TRUE(InstanceHasExactly(P(4).instance(), {T({"rat", "p1", "two"})}));
  EXPECT_TRUE(P(4).pending_conflicts().empty());
}

TEST_F(ResolutionTest, PreferPeersSkipsGroupsWithoutRankedPeer) {
  MakeConflict("p1");
  ASSERT_TRUE(P(4).Reconcile(&store_).ok());
  auto summary = ResolveConflicts(&P(4), &store_, PreferPeers({3}));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->groups_resolved, 0u);
  EXPECT_EQ(summary->groups_skipped, 1u);
  EXPECT_EQ(P(4).pending_conflicts().size(), 1u);
  EXPECT_EQ(P(4).deferred_count(), 2u);
}

TEST_F(ResolutionTest, PreferEffectMatchesRenderedOption) {
  MakeConflict("p1");
  ASSERT_TRUE(P(4).Reconcile(&store_).ok());
  auto summary = ResolveConflicts(
      &P(4), &store_, PreferEffect([](const std::string& effect) {
        return effect.find("'one'") != std::string::npos;
      }));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->groups_resolved, 1u);
  EXPECT_TRUE(InstanceHasExactly(P(4).instance(), {T({"rat", "p1", "one"})}));
}

TEST_F(ResolutionTest, RejectAllKeepsNeitherVersion) {
  MakeConflict("p1");
  ASSERT_TRUE(P(4).Reconcile(&store_).ok());
  auto summary = ResolveConflicts(&P(4), &store_, RejectAll());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->groups_resolved, 1u);
  EXPECT_TRUE(InstanceHasExactly(P(4).instance(), {}));
  EXPECT_EQ(P(4).deferred_count(), 0u);
  EXPECT_EQ(P(4).rejected_count(), 2u);
}

TEST_F(ResolutionTest, MultipleGroupsResolvedInOnePass) {
  MakeConflict("p1");
  MakeConflict("p2");
  MakeConflict("p3");
  ASSERT_TRUE(P(4).Reconcile(&store_).ok());
  ASSERT_EQ(P(4).pending_conflicts().size(), 3u);
  auto summary = ResolveConflicts(&P(4), &store_, PreferPeers({1}));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->groups_resolved, 3u);
  EXPECT_TRUE(InstanceHasExactly(
      P(4).instance(), {T({"rat", "p1", "one"}), T({"rat", "p2", "one"}),
                        T({"rat", "p3", "one"})}));
}

TEST_F(ResolutionTest, MixedStrategySkipsAndResolves) {
  MakeConflict("p1");
  MakeConflict("p2");
  ASSERT_TRUE(P(4).Reconcile(&store_).ok());
  // Only resolve the p1 group; leave p2 deferred.
  auto summary = ResolveConflicts(
      &P(4), &store_, PreferEffect([](const std::string& effect) {
        return effect.find("'p1'") != std::string::npos &&
               effect.find("'one'") != std::string::npos;
      }));
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->groups_resolved, 1u);
  EXPECT_EQ(summary->groups_skipped, 1u);
  EXPECT_EQ(P(4).pending_conflicts().size(), 1u);
}

TEST_F(ResolutionTest, NoConflictsIsANoop) {
  auto summary = ResolveConflicts(&P(4), &store_, RejectAll());
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->groups_resolved, 0u);
  EXPECT_EQ(summary->groups_skipped, 0u);
}

}  // namespace
}  // namespace orchestra::core
