// Retry-layer regression tests: exponential backoff must respect
// max_backoff_micros (unbounded growth used to overflow int64 and
// corrupt the accumulated backoff), and RetryStats must *accumulate*
// both fields across *WithRetry calls instead of overwriting attempts.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/participant.h"
#include "core/update_store.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::MakeProteinCatalog;

// A store whose BeginReconciliation fails with Unavailable a
// configurable number of times (negative = forever), then returns an
// empty-but-valid fetch. Everything else is inert.
class FlakyStore : public UpdateStore {
 public:
  explicit FlakyStore(int64_t failures_before_success)
      : failures_remaining_(failures_before_success) {}

  Status RegisterParticipant(ParticipantId, const TrustPolicy*) override {
    return Status::OK();
  }
  Result<Epoch> Publish(ParticipantId, std::vector<Transaction>) override {
    return Status::NotSupported("FlakyStore does not accept publishes");
  }
  Result<ReconcileFetch> BeginReconciliation(ParticipantId) override {
    if (failures_remaining_ != 0) {
      if (failures_remaining_ > 0) --failures_remaining_;
      return Status::Unavailable("injected outage");
    }
    ReconcileFetch fetch;
    fetch.recno = ++recno_;
    return fetch;
  }
  Status RecordDecisions(ParticipantId, int64_t,
                         const std::vector<TransactionId>&,
                         const std::vector<TransactionId>&) override {
    return Status::OK();
  }
  Result<RecoveryBundle> FetchRecoveryState(ParticipantId) const override {
    return Status::NotSupported("FlakyStore has no recovery state");
  }
  Result<RecoveryBundle> Bootstrap(ParticipantId, ParticipantId) override {
    return Status::NotSupported("FlakyStore cannot bootstrap");
  }
  StoreStats StatsFor(ParticipantId) const override { return {}; }
  std::string_view name() const override { return "flaky"; }

 private:
  int64_t failures_remaining_;
  int64_t recno_ = 0;
};

class RetryBackoffTest : public ::testing::Test {
 protected:
  RetryBackoffTest() : catalog_(MakeProteinCatalog()), policy_(1) {}

  db::Catalog catalog_;
  TrustPolicy policy_;
};

TEST_F(RetryBackoffTest, BackoffIsCappedAndNeverOverflows) {
  // 200 attempts at 4x growth: uncapped, the step passes 2^63 after ~32
  // doublings and the accumulated total wraps negative. With the cap the
  // expected total is exact arithmetic.
  ReconcileRetryOptions retry;
  retry.max_attempts = 200;
  retry.initial_backoff_micros = 1'000'000;
  retry.backoff_multiplier = 4.0;
  retry.backoff_jitter = 0.0;  // deterministic steps
  retry.max_backoff_micros = 60'000'000;

  FlakyStore store(-1);  // never recovers
  Participant p(1, &catalog_, policy_);
  RetryStats stats;
  auto report = p.ReconcileWithRetry(&store, retry, &stats);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);

  EXPECT_EQ(stats.attempts, 200);
  // Steps: 1e6, 4e6, 1.6e7, then the 6e7 cap for the remaining 196
  // failed attempts (the final attempt charges no backoff).
  const int64_t expected =
      1'000'000 + 4'000'000 + 16'000'000 + 196 * int64_t{60'000'000};
  EXPECT_EQ(stats.backoff_micros, expected);
  EXPECT_GT(stats.backoff_micros, 0) << "accumulated backoff wrapped negative";
}

TEST_F(RetryBackoffTest, InitialBackoffIsClampedToTheCap) {
  ReconcileRetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_micros = 1'000'000'000;  // already above the cap
  retry.backoff_multiplier = 2.0;
  retry.backoff_jitter = 0.0;
  retry.max_backoff_micros = 500;

  FlakyStore store(-1);
  Participant p(1, &catalog_, policy_);
  RetryStats stats;
  auto report = p.ReconcileWithRetry(&store, retry, &stats);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(stats.attempts, 4);
  EXPECT_EQ(stats.backoff_micros, 3 * 500);
}

TEST_F(RetryBackoffTest, AccumulatedBackoffSaturatesInsteadOfWrapping) {
  ReconcileRetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_micros = 1'000'000;
  retry.backoff_multiplier = 2.0;
  retry.backoff_jitter = 0.0;
  retry.max_backoff_micros = 60'000'000;

  FlakyStore store(-1);
  Participant p(1, &catalog_, policy_);
  RetryStats stats;
  // A long-lived stats struct that has already accumulated close to the
  // int64 ceiling must clamp at the ceiling, not wrap negative.
  stats.backoff_micros = std::numeric_limits<int64_t>::max() - 1000;
  auto report = p.ReconcileWithRetry(&store, retry, &stats);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(stats.backoff_micros, std::numeric_limits<int64_t>::max());
}

TEST_F(RetryBackoffTest, StatsAccumulateAcrossOperations) {
  ReconcileRetryOptions retry;
  retry.max_attempts = 8;
  retry.initial_backoff_micros = 1000;
  retry.backoff_multiplier = 2.0;
  retry.backoff_jitter = 0.0;
  retry.max_backoff_micros = 60'000'000;

  FlakyStore store(2);  // two outages, then healthy
  Participant p(1, &catalog_, policy_);
  RetryStats stats;
  auto first = p.ReconcileWithRetry(&store, retry, &stats);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.backoff_micros, 1000 + 2000);

  // The second operation succeeds first try; both fields must add onto
  // the same struct (attempts used to be overwritten per call).
  auto second = p.ReconcileWithRetry(&store, retry, &stats);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(stats.attempts, 4);
  EXPECT_EQ(stats.backoff_micros, 3000);
}

}  // namespace
}  // namespace orchestra::core
