// Content- and relation-scoped acceptance rules exercised through the
// full publish/reconcile stack (the paper's θ predicates go beyond
// origin: "predicates over the content as well as the origin", §3.1).
#include <gtest/gtest.h>

#include "core/participant.h"
#include "net/sim_network.h"
#include "storage/engine.h"
#include "store/central_store.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Ins;
using orchestra::testing::InstanceHasExactly;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::T;

class TrustScenarioTest : public ::testing::Test {
 protected:
  TrustScenarioTest()
      : catalog_(MakeProteinCatalog()),
        engine_(storage::StorageEngine::InMemory()),
        store_(engine_.get(), &network_) {}

  Participant MakePeer(ParticipantId id, TrustPolicy policy) {
    ORCH_CHECK(store_.RegisterParticipant(id, Keep(std::move(policy))).ok());
    return Participant(id, &catalog_, *kept_.back());
  }

  TrustPolicy* Keep(TrustPolicy policy) {
    kept_.push_back(std::make_unique<TrustPolicy>(std::move(policy)));
    return kept_.back().get();
  }

  db::Catalog catalog_;
  net::SimNetwork network_;
  std::unique_ptr<storage::StorageEngine> engine_;
  store::CentralStore store_;
  std::vector<std::unique_ptr<TrustPolicy>> kept_;
};

TEST_F(TrustScenarioTest, OrganismScopedTrust) {
  // Peer 1 trusts peer 2's conclusions about rat only.
  TrustPolicy p1(1);
  p1.AddRule(AcceptanceRule()
                 .FromOrigin(2)
                 .Where([](const Update& u) {
                   const db::Tuple& t =
                       u.is_delete() ? u.old_tuple() : u.new_tuple();
                   return !t.empty() && t[0] == db::Value("rat");
                 })
                 .WithPriority(1));
  Participant alice = MakePeer(1, std::move(p1));
  TrustPolicy p2(2);
  Participant bob = MakePeer(2, std::move(p2));

  ASSERT_TRUE(bob.ExecuteTransaction({Ins("rat", "pA", "x", 2)}).ok());
  ASSERT_TRUE(bob.ExecuteTransaction({Ins("mouse", "pB", "y", 2)}).ok());
  ASSERT_TRUE(bob.PublishAndReconcile(&store_).ok());

  auto report = alice.Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted.size(), 1u);
  EXPECT_TRUE(InstanceHasExactly(alice.instance(), {T({"rat", "pA", "x"})}));
}

TEST_F(TrustScenarioTest, MixedContentTransactionIsPoisoned) {
  // A transaction containing one untrusted update is wholly untrusted
  // (pri_i(X) = 0, §4) — alice gets neither tuple.
  TrustPolicy p1(1);
  p1.AddRule(AcceptanceRule()
                 .FromOrigin(2)
                 .Where([](const Update& u) {
                   return u.new_tuple()[0] == db::Value("rat");
                 })
                 .WithPriority(1));
  Participant alice = MakePeer(1, std::move(p1));
  Participant bob = MakePeer(2, TrustPolicy(2));

  ASSERT_TRUE(bob.ExecuteTransaction(
                     {Ins("rat", "pA", "x", 2), Ins("mouse", "pB", "y", 2)})
                  .ok());
  ASSERT_TRUE(bob.PublishAndReconcile(&store_).ok());

  auto report = alice.Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->fetched, 0u);  // filtered store-side as untrusted
  EXPECT_TRUE(InstanceHasExactly(alice.instance(), {}));
}

TEST_F(TrustScenarioTest, ContentRulesModulatePriority) {
  // Alice trusts bob generally at 1, but his rat curation at 3 and
  // carol's everything at 2: a rat conflict resolves for bob, any other
  // conflict resolves for carol.
  TrustPolicy p1(1);
  p1.TrustPeer(2, 1).TrustPeer(3, 2);
  p1.AddRule(AcceptanceRule()
                 .FromOrigin(2)
                 .Where([](const Update& u) {
                   return u.new_tuple()[0] == db::Value("rat");
                 })
                 .WithPriority(3));
  Participant alice = MakePeer(1, std::move(p1));
  Participant bob = MakePeer(2, TrustPolicy(2));
  Participant carol = MakePeer(3, TrustPolicy(3));

  ASSERT_TRUE(bob.ExecuteTransaction({Ins("rat", "pA", "bob", 2)}).ok());
  ASSERT_TRUE(bob.ExecuteTransaction({Ins("mouse", "pB", "bob", 2)}).ok());
  ASSERT_TRUE(bob.PublishAndReconcile(&store_).ok());
  ASSERT_TRUE(carol.ExecuteTransaction({Ins("rat", "pA", "carol", 3)}).ok());
  ASSERT_TRUE(carol.ExecuteTransaction({Ins("mouse", "pB", "carol", 3)}).ok());
  ASSERT_TRUE(carol.PublishAndReconcile(&store_).ok());

  auto report = alice.Reconcile(&store_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted.size(), 2u);
  EXPECT_EQ(report->rejected.size(), 2u);
  EXPECT_TRUE(InstanceHasExactly(
      alice.instance(),
      {T({"rat", "pA", "bob"}), T({"mouse", "pB", "carol"})}));
}

TEST_F(TrustScenarioTest, RelationScopedRule) {
  db::Catalog catalog;
  {
    auto f = db::RelationSchema::Make(
        "F",
        {{"organism", db::ValueType::kString, false},
         {"protein", db::ValueType::kString, false},
         {"function", db::ValueType::kString, false}},
        {0, 1});
    ASSERT_TRUE(catalog.AddRelation(*std::move(f)).ok());
    auto g = db::RelationSchema::Make(
        "G",
        {{"organism", db::ValueType::kString, false},
         {"protein", db::ValueType::kString, false},
         {"note", db::ValueType::kString, false}},
        {0, 1});
    ASSERT_TRUE(catalog.AddRelation(*std::move(g)).ok());
  }
  net::SimNetwork network;
  auto engine = storage::StorageEngine::InMemory();
  store::CentralStore store(engine.get(), &network);

  TrustPolicy p1(1);
  p1.AddRule(AcceptanceRule().FromOrigin(2).OverRelation("F").WithPriority(1));
  TrustPolicy p2(2);
  ASSERT_TRUE(store.RegisterParticipant(1, Keep(std::move(p1))).ok());
  ASSERT_TRUE(store.RegisterParticipant(2, Keep(std::move(p2))).ok());
  Participant alice(1, &catalog, *kept_[kept_.size() - 2]);
  Participant bob(2, &catalog, *kept_.back());

  ASSERT_TRUE(bob.ExecuteTransaction(
                     {Update::Insert("F", T({"rat", "pA", "fn"}), 2)})
                  .ok());
  ASSERT_TRUE(bob.ExecuteTransaction(
                     {Update::Insert("G", T({"rat", "pA", "note"}), 2)})
                  .ok());
  ASSERT_TRUE(bob.PublishAndReconcile(&store).ok());
  auto report = alice.Reconcile(&store);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted.size(), 1u);
  auto f_table = alice.instance().GetTable("F");
  auto g_table = alice.instance().GetTable("G");
  EXPECT_EQ((*f_table)->size(), 1u);
  EXPECT_EQ((*g_table)->size(), 0u);
}

}  // namespace
}  // namespace orchestra::core
