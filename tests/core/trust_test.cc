#include "core/trust.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Ins;
using orchestra::testing::Mod;
using orchestra::testing::Txn;

TEST(AcceptanceRuleTest, EmptyRuleMatchesEverything) {
  AcceptanceRule rule;
  rule.WithPriority(2);
  EXPECT_TRUE(rule.Matches(Ins("rat", "p1", "x", 5)));
  EXPECT_EQ(rule.priority(), 2);
}

TEST(AcceptanceRuleTest, OriginFilter) {
  AcceptanceRule rule;
  rule.FromOrigin(2).FromOrigin(3).WithPriority(1);
  EXPECT_TRUE(rule.Matches(Ins("rat", "p1", "x", 2)));
  EXPECT_TRUE(rule.Matches(Ins("rat", "p1", "x", 3)));
  EXPECT_FALSE(rule.Matches(Ins("rat", "p1", "x", 4)));
}

TEST(AcceptanceRuleTest, RelationFilter) {
  AcceptanceRule rule;
  rule.OverRelation("F").WithPriority(1);
  EXPECT_TRUE(rule.Matches(Ins("rat", "p1", "x", 1)));
  EXPECT_FALSE(
      rule.Matches(Update::Insert("G", orchestra::testing::T({"a"}), 1)));
}

TEST(AcceptanceRuleTest, ContentPredicate) {
  AcceptanceRule rule;
  rule.Where([](const Update& u) {
        return u.new_tuple().size() == 3 &&
               u.new_tuple()[0].AsString() == "rat";
      })
      .WithPriority(1);
  EXPECT_TRUE(rule.Matches(Ins("rat", "p1", "x", 1)));
  EXPECT_FALSE(rule.Matches(Ins("mouse", "p1", "x", 1)));
}

TEST(TrustPolicyTest, SelfIsAlwaysMaximallyTrusted) {
  TrustPolicy policy(7);
  EXPECT_EQ(policy.PriorityOf(Ins("rat", "p1", "x", 7)), kSelfPriority);
}

TEST(TrustPolicyTest, UnmatchedOriginIsUntrusted) {
  TrustPolicy policy(1);
  policy.TrustPeer(2, 5);
  EXPECT_EQ(policy.PriorityOf(Ins("rat", "p1", "x", 3)), 0);
  EXPECT_EQ(policy.PriorityOf(Ins("rat", "p1", "x", 2)), 5);
}

TEST(TrustPolicyTest, HighestMatchingRuleWins) {
  TrustPolicy policy(1);
  policy.TrustPeer(2, 1);
  policy.AddRule(AcceptanceRule().FromOrigin(2).OverRelation("F").WithPriority(4));
  EXPECT_EQ(policy.PriorityOf(Ins("rat", "p1", "x", 2)), 4);
}

TEST(TrustPolicyTest, TransactionPriorityIsMaxOverUpdates) {
  TrustPolicy policy(1);
  policy.TrustPeer(2, 1);
  policy.AddRule(AcceptanceRule()
                     .FromOrigin(2)
                     .Where([](const Update& u) {
                       return u.is_insert() &&
                              u.new_tuple()[0].AsString() == "rat";
                     })
                     .WithPriority(3));
  const Transaction txn =
      Txn(2, 0, {Ins("mouse", "p1", "x", 2), Ins("rat", "p2", "y", 2)});
  EXPECT_EQ(policy.PriorityOfTransaction(txn), 3);
}

TEST(TrustPolicyTest, AnyUntrustedUpdatePoisonsTransaction) {
  // Per §4: pri_i(X) = 0 if any update in X is untrusted.
  TrustPolicy policy(1);
  policy.AddRule(AcceptanceRule()
                     .FromOrigin(2)
                     .Where([](const Update& u) {
                       return u.new_tuple()[0].AsString() == "rat";
                     })
                     .WithPriority(3));
  const Transaction txn =
      Txn(2, 0, {Ins("rat", "p1", "x", 2), Ins("mouse", "p2", "y", 2)});
  EXPECT_EQ(policy.PriorityOfTransaction(txn), 0);
}

TEST(TrustPolicyTest, EmptyTransactionIsUntrusted) {
  TrustPolicy policy(1);
  EXPECT_EQ(policy.PriorityOfTransaction(Transaction{}), 0);
}

TEST(TrustPolicyTest, ZeroOrNegativePriorityRulesDoNotTrust) {
  TrustPolicy policy(1);
  policy.TrustPeer(2, 0);
  policy.TrustPeer(3, -1);
  EXPECT_EQ(policy.PriorityOf(Ins("rat", "p1", "x", 2)), 0);
  EXPECT_EQ(policy.PriorityOf(Ins("rat", "p1", "x", 3)), 0);
}

TEST(TrustPolicyTest, MixedOriginTransactionUsesPerUpdateOrigins) {
  // Updates within one transaction can have different origins (a revision
  // chain); each update is judged by its own origin.
  TrustPolicy policy(1);
  policy.TrustPeer(2, 2);
  policy.TrustPeer(3, 5);
  const Transaction txn =
      Txn(2, 0, {Ins("rat", "p1", "x", 2), Mod("rat", "p1", "x", "y", 3)});
  EXPECT_EQ(policy.PriorityOfTransaction(txn), 5);
}

}  // namespace
}  // namespace orchestra::core
