#include "core/update.h"

#include <gtest/gtest.h>

#include "core/transaction.h"
#include "test_util.h"

namespace orchestra::core {
namespace {

using orchestra::testing::Del;
using orchestra::testing::Ins;
using orchestra::testing::MakeProteinCatalog;
using orchestra::testing::Mod;
using orchestra::testing::T;
using orchestra::testing::Txn;

class UpdateTest : public ::testing::Test {
 protected:
  db::Catalog catalog_ = MakeProteinCatalog();
  const db::RelationSchema& schema() { return **catalog_.GetRelation("F"); }
};

TEST_F(UpdateTest, FactoryInvariants) {
  const Update ins = Ins("rat", "p1", "x", 3);
  EXPECT_TRUE(ins.is_insert());
  EXPECT_TRUE(ins.old_tuple().empty());
  EXPECT_EQ(ins.new_tuple(), T({"rat", "p1", "x"}));
  EXPECT_EQ(ins.origin(), 3u);

  const Update del = Del("rat", "p1", "x", 2);
  EXPECT_TRUE(del.is_delete());
  EXPECT_TRUE(del.new_tuple().empty());

  const Update mod = Mod("rat", "p1", "x", "y", 1);
  EXPECT_TRUE(mod.is_modify());
  EXPECT_EQ(mod.old_tuple(), T({"rat", "p1", "x"}));
  EXPECT_EQ(mod.new_tuple(), T({"rat", "p1", "y"}));
}

TEST_F(UpdateTest, ReadAndWriteKeys) {
  EXPECT_EQ(Ins("rat", "p1", "x", 1).ReadKey(schema()), std::nullopt);
  EXPECT_EQ(Ins("rat", "p1", "x", 1).WriteKey(schema()), T({"rat", "p1"}));
  EXPECT_EQ(Del("rat", "p1", "x", 1).ReadKey(schema()), T({"rat", "p1"}));
  EXPECT_EQ(Del("rat", "p1", "x", 1).WriteKey(schema()), std::nullopt);
  EXPECT_EQ(Mod("rat", "p1", "x", "y", 1).ReadKey(schema()), T({"rat", "p1"}));
  EXPECT_EQ(Mod("rat", "p1", "x", "y", 1).WriteKey(schema()),
            T({"rat", "p1"}));
}

TEST_F(UpdateTest, TouchedKeysDeduplicates) {
  // Same-key modify touches one key.
  EXPECT_EQ(Mod("rat", "p1", "x", "y", 1).TouchedKeys(schema()).size(), 1u);
  // Key-changing modify touches two.
  const Update mover =
      Update::Modify("F", T({"rat", "p1", "x"}), T({"rat", "p2", "x"}), 1);
  EXPECT_EQ(mover.TouchedKeys(schema()).size(), 2u);
}

TEST_F(UpdateTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ(Ins("rat", "p1", "x", 3).ToString(),
            "+F('rat', 'p1', 'x');3");
  EXPECT_EQ(Del("rat", "p1", "x", 2).ToString(), "-F('rat', 'p1', 'x');2");
  EXPECT_NE(Mod("rat", "p1", "x", "y", 1).ToString().find("->"),
            std::string::npos);
}

TEST_F(UpdateTest, EqualityIsStructural) {
  EXPECT_EQ(Ins("rat", "p1", "x", 1), Ins("rat", "p1", "x", 1));
  EXPECT_NE(Ins("rat", "p1", "x", 1), Ins("rat", "p1", "x", 2));
  EXPECT_NE(Ins("rat", "p1", "x", 1), Del("rat", "p1", "x", 1));
}

TEST_F(UpdateTest, SerdeRoundTripAllKinds) {
  for (const Update& u :
       {Ins("rat", "p1", "immune", 3), Del("mouse", "p2", "metab", 2),
        Mod("rat", "p1", "a", "b", 1)}) {
    std::string buf;
    EncodeUpdate(&buf, u);
    size_t pos = 0;
    auto decoded = DecodeUpdate(buf, &pos);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, u);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST_F(UpdateTest, DecodeRejectsGarbage) {
  size_t pos = 0;
  EXPECT_FALSE(DecodeUpdate("", &pos).ok());
  pos = 0;
  EXPECT_FALSE(DecodeUpdate("\x07garbage", &pos).ok());
}

TEST(TransactionIdTest, OrderingAndFormatting) {
  const TransactionId a{1, 5};
  const TransactionId b{1, 6};
  const TransactionId c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (TransactionId{1, 5}));
  EXPECT_NE(a, b);
  EXPECT_EQ(a.ToString(), "X1:5");
  EXPECT_EQ(TransactionIdHash()(a), TransactionIdHash()(TransactionId{1, 5}));
}

TEST_F(UpdateTest, TransactionSerdeRoundTrip) {
  Transaction txn = Txn(3, 7,
                        {Ins("rat", "p1", "x", 3), Mod("rat", "p2", "a", "b", 3)},
                        {{2, 1}, {1, 4}}, 9);
  std::string buf;
  EncodeTransaction(&buf, txn);
  size_t pos = 0;
  auto decoded = DecodeTransaction(buf, &pos);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, txn.id);
  EXPECT_EQ(decoded->epoch, 9);
  EXPECT_EQ(decoded->updates, txn.updates);
  EXPECT_EQ(decoded->antecedents, txn.antecedents);
  EXPECT_EQ(EncodedTransactionSize(txn), buf.size());
}

TEST_F(UpdateTest, TransactionWithNoEpochRoundTrips) {
  Transaction txn = Txn(1, 0, {Ins("rat", "p1", "x", 1)});
  txn.epoch = kNoEpoch;
  std::string buf;
  EncodeTransaction(&buf, txn);
  size_t pos = 0;
  EXPECT_EQ(DecodeTransaction(buf, &pos)->epoch, kNoEpoch);
}

TEST(TransactionMapTest, PutGetContains) {
  TransactionMap map;
  EXPECT_FALSE(map.Contains({1, 0}));
  EXPECT_TRUE(map.Get({1, 0}).status().IsNotFound());
  map.Put(Txn(1, 0, {Ins("rat", "p1", "x", 1)}));
  ASSERT_TRUE(map.Contains({1, 0}));
  auto txn = map.Get({1, 0});
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ((*txn)->id, (TransactionId{1, 0}));
  EXPECT_EQ(map.size(), 1u);
}

TEST_F(UpdateTest, TransactionToStringListsUpdatesAndAntecedents) {
  Transaction txn =
      Txn(3, 1, {Ins("rat", "p1", "x", 3)}, {{3, 0}});
  const std::string s = txn.ToString();
  EXPECT_NE(s.find("X3:1"), std::string::npos);
  EXPECT_NE(s.find("ante{X3:0}"), std::string::npos);
}

}  // namespace
}  // namespace orchestra::core
