// The integrity envelope (db/serde): round-trips, policy semantics,
// and the detection guarantee — any truncation or bit flip of a framed
// buffer must surface as kCorruption under the strict policy, never as
// a silently different payload.
#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "db/serde.h"

namespace orchestra::db {
namespace {

TEST(EnvelopeTest, RoundTrip) {
  for (const std::string& payload :
       {std::string(""), std::string("x"), std::string("hello envelope"),
        std::string(1000, 'z'), std::string("\x00\xff\xc6\x32", 4)}) {
    std::string framed;
    WrapEnvelope(&framed, payload);
    EXPECT_EQ(framed.size(), payload.size() + EnvelopeOverhead(payload.size()));
    EXPECT_TRUE(HasEnvelopeHeader(framed));
    auto out = UnwrapEnvelope(framed, EnvelopePolicy::kRequireFrame);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, payload);
  }
}

TEST(EnvelopeTest, SequentialFramesReadBack) {
  std::string buf;
  WrapEnvelope(&buf, "first");
  WrapEnvelope(&buf, "second");
  WrapEnvelope(&buf, "");
  size_t pos = 0;
  auto a = ReadEnvelope(buf, &pos);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "first");
  auto b = ReadEnvelope(buf, &pos);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "second");
  auto c = ReadEnvelope(buf, &pos);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, "");
  EXPECT_EQ(pos, buf.size());
}

TEST(EnvelopeTest, PolicyRequireFrameRejectsBareBytes) {
  auto out = UnwrapEnvelope("not a frame", EnvelopePolicy::kRequireFrame);
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(EnvelopeTest, PolicyAllowUnframedPassesBareBytesThrough) {
  auto out = UnwrapEnvelope("legacy row bytes", EnvelopePolicy::kAllowUnframed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "legacy row bytes");
  // A *framed* buffer under the lenient policy is still verified.
  std::string framed;
  WrapEnvelope(&framed, "payload");
  framed[framed.size() - 1] ^= 0x01;
  EXPECT_EQ(UnwrapEnvelope(framed, EnvelopePolicy::kAllowUnframed)
                .status()
                .code(),
            StatusCode::kCorruption);
}

TEST(EnvelopeTest, PolicyTrustUnverifiedSkipsOnlyTheChecksum) {
  std::string framed;
  WrapEnvelope(&framed, "payload");
  // Flip a payload bit: structure intact, checksum broken.
  framed[framed.size() - 1] ^= 0x01;
  ASSERT_EQ(UnwrapEnvelope(framed, EnvelopePolicy::kRequireFrame)
                .status()
                .code(),
            StatusCode::kCorruption);
  auto loose = UnwrapEnvelope(framed, EnvelopePolicy::kTrustUnverified);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(*loose, "payloae");  // the rot flows through, as designed
  // Structural damage still fails even unverified.
  std::string mangled = framed;
  mangled[0] ^= 0x40;  // magic
  EXPECT_FALSE(
      UnwrapEnvelope(mangled, EnvelopePolicy::kTrustUnverified).ok());
}

TEST(EnvelopeTest, TrailingBytesAreRejected) {
  std::string framed;
  WrapEnvelope(&framed, "payload");
  framed.push_back('!');
  EXPECT_EQ(UnwrapEnvelope(framed, EnvelopePolicy::kRequireFrame)
                .status()
                .code(),
            StatusCode::kCorruption);
}

TEST(EnvelopeTest, UnsupportedVersionIsRejected) {
  std::string framed;
  WrapEnvelope(&framed, "payload");
  framed[2] = 0x7F;
  auto out = UnwrapEnvelope(framed, EnvelopePolicy::kRequireFrame);
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(EnvelopeFuzzTest, EveryTruncationIsDetected) {
  Rng rng(101);
  std::string payload(64, '\0');
  for (char& c : payload) c = static_cast<char>(rng.NextBounded(256));
  std::string framed;
  WrapEnvelope(&framed, payload);
  for (size_t keep = 0; keep < framed.size(); ++keep) {
    auto out = UnwrapEnvelope(framed.substr(0, keep),
                              EnvelopePolicy::kRequireFrame);
    EXPECT_FALSE(out.ok()) << "keep " << keep;
    EXPECT_EQ(out.status().code(), StatusCode::kCorruption) << "keep " << keep;
  }
}

TEST(EnvelopeFuzzTest, EveryBitFlipIsDetected) {
  Rng rng(202);
  for (int round = 0; round < 50; ++round) {
    std::string payload(1 + rng.NextBounded(96), '\0');
    for (char& c : payload) c = static_cast<char>(rng.NextBounded(256));
    std::string framed;
    WrapEnvelope(&framed, payload);
    for (size_t bit = 0; bit < framed.size() * 8; ++bit) {
      std::string bad = framed;
      bad[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      auto out = UnwrapEnvelope(bad, EnvelopePolicy::kRequireFrame);
      // A flip may corrupt the structure (magic, version, length) or
      // the bytes the checksum covers; it must never unwrap to a
      // payload other than the original. (A length-field flip can keep
      // the frame valid only by also keeping the same byte range, which
      // a varint flip cannot.)
      if (out.ok()) {
        EXPECT_EQ(*out, payload) << "round " << round << " bit " << bit;
      } else {
        EXPECT_EQ(out.status().code(), StatusCode::kCorruption)
            << "round " << round << " bit " << bit;
      }
    }
  }
}

TEST(EnvelopeFuzzTest, RandomGarbageNeverUnwrapsStrict) {
  Rng rng(303);
  for (int round = 0; round < 2000; ++round) {
    std::string junk(rng.NextBounded(64), '\0');
    for (char& c : junk) c = static_cast<char>(rng.NextBounded(256));
    auto out = UnwrapEnvelope(junk, EnvelopePolicy::kRequireFrame);
    if (out.ok()) {
      // Astronomically unlikely (needs magic + version + valid length +
      // matching CRC32C); if it ever fires, the RNG found a real frame.
      std::string reframed;
      WrapEnvelope(&reframed, *out);
      EXPECT_EQ(reframed, junk);
    }
  }
}

}  // namespace
}  // namespace orchestra::db
