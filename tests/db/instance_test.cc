#include "db/instance.h"

#include <gtest/gtest.h>

namespace orchestra::db {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  auto parent = RelationSchema::Make(
      "F",
      {{"organism", ValueType::kString, false},
       {"protein", ValueType::kString, false},
       {"function", ValueType::kString, false}},
      {0, 1});
  ORCH_CHECK(parent.ok());
  ORCH_CHECK(catalog.AddRelation(*std::move(parent)).ok());
  auto child = RelationSchema::Make(
      "X",
      {{"organism", ValueType::kString, false},
       {"protein", ValueType::kString, false},
       {"db", ValueType::kString, false}},
      {0, 1, 2});
  ORCH_CHECK(child.ok());
  ORCH_CHECK(catalog.AddRelation(*std::move(child)).ok());
  ORCH_CHECK(catalog.AddForeignKey({"X", {0, 1}, "F"}).ok());
  return catalog;
}

TEST(InstanceTest, StartsEmptyWithAllRelations) {
  Catalog catalog = MakeCatalog();
  Instance instance(&catalog);
  EXPECT_EQ(instance.TotalTuples(), 0u);
  ASSERT_TRUE(instance.GetTable("F").ok());
  ASSERT_TRUE(instance.GetTable("X").ok());
  EXPECT_FALSE(instance.GetTable("Y").ok());
}

TEST(InstanceTest, TotalTuplesCountsAllRelations) {
  Catalog catalog = MakeCatalog();
  Instance instance(&catalog);
  ASSERT_TRUE((*instance.GetTable("F"))
                  ->Insert(Tuple{Value("rat"), Value("p1"), Value("f")})
                  .ok());
  ASSERT_TRUE(
      (*instance.GetTable("X"))
          ->Insert(Tuple{Value("rat"), Value("p1"), Value("EMBL")})
          .ok());
  EXPECT_EQ(instance.TotalTuples(), 2u);
}

TEST(InstanceTest, ForeignKeysSatisfied) {
  Catalog catalog = MakeCatalog();
  Instance instance(&catalog);
  ASSERT_TRUE((*instance.GetTable("F"))
                  ->Insert(Tuple{Value("rat"), Value("p1"), Value("f")})
                  .ok());
  ASSERT_TRUE(
      (*instance.GetTable("X"))
          ->Insert(Tuple{Value("rat"), Value("p1"), Value("EMBL")})
          .ok());
  EXPECT_TRUE(instance.CheckForeignKeys().ok());
}

TEST(InstanceTest, ForeignKeyViolationDetected) {
  Catalog catalog = MakeCatalog();
  Instance instance(&catalog);
  ASSERT_TRUE(
      (*instance.GetTable("X"))
          ->Insert(Tuple{Value("rat"), Value("p1"), Value("EMBL")})
          .ok());
  EXPECT_TRUE(instance.CheckForeignKeys().IsConstraintViolation());
}

TEST(InstanceTest, CopyIsIndependent) {
  Catalog catalog = MakeCatalog();
  Instance a(&catalog);
  ASSERT_TRUE((*a.GetTable("F"))
                  ->Insert(Tuple{Value("rat"), Value("p1"), Value("f")})
                  .ok());
  Instance b = a;
  EXPECT_TRUE(a == b);
  ASSERT_TRUE((*b.GetTable("F"))
                  ->Insert(Tuple{Value("rat"), Value("p2"), Value("g")})
                  .ok());
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.TotalTuples(), 1u);
  EXPECT_EQ(b.TotalTuples(), 2u);
}

TEST(InstanceTest, ToStringIsDeterministic) {
  Catalog catalog = MakeCatalog();
  Instance instance(&catalog);
  ASSERT_TRUE((*instance.GetTable("F"))
                  ->Insert(Tuple{Value("rat"), Value("p2"), Value("b")})
                  .ok());
  ASSERT_TRUE((*instance.GetTable("F"))
                  ->Insert(Tuple{Value("rat"), Value("p1"), Value("a")})
                  .ok());
  const std::string s = instance.ToString();
  EXPECT_LT(s.find("'p1'"), s.find("'p2'"));
}

}  // namespace
}  // namespace orchestra::db
