#include "db/schema.h"

#include <gtest/gtest.h>

namespace orchestra::db {
namespace {

RelationSchema MakeF() {
  auto schema = RelationSchema::Make(
      "F",
      {{"organism", ValueType::kString, false},
       {"protein", ValueType::kString, false},
       {"function", ValueType::kString, true}},
      {0, 1});
  ORCH_CHECK(schema.ok());
  return *std::move(schema);
}

TEST(RelationSchemaTest, MakeValidatesName) {
  auto schema = RelationSchema::Make(
      "", {{"a", ValueType::kString, false}}, {0});
  EXPECT_FALSE(schema.ok());
}

TEST(RelationSchemaTest, MakeRejectsEmptyColumns) {
  EXPECT_FALSE(RelationSchema::Make("R", {}, {}).ok());
}

TEST(RelationSchemaTest, MakeRejectsDuplicateColumnNames) {
  auto schema = RelationSchema::Make(
      "R",
      {{"a", ValueType::kString, false}, {"a", ValueType::kInt64, false}},
      {0});
  EXPECT_FALSE(schema.ok());
}

TEST(RelationSchemaTest, MakeRejectsMissingKey) {
  EXPECT_FALSE(
      RelationSchema::Make("R", {{"a", ValueType::kString, false}}, {}).ok());
}

TEST(RelationSchemaTest, MakeRejectsOutOfRangeKey) {
  EXPECT_FALSE(
      RelationSchema::Make("R", {{"a", ValueType::kString, false}}, {1}).ok());
}

TEST(RelationSchemaTest, MakeRejectsRepeatedKeyColumn) {
  EXPECT_FALSE(RelationSchema::Make("R", {{"a", ValueType::kString, false}},
                                    {0, 0})
                   .ok());
}

TEST(RelationSchemaTest, MakeRejectsNullableKeyColumn) {
  EXPECT_FALSE(
      RelationSchema::Make("R", {{"a", ValueType::kString, true}}, {0}).ok());
}

TEST(RelationSchemaTest, MakeRejectsNullColumnType) {
  EXPECT_FALSE(
      RelationSchema::Make("R", {{"a", ValueType::kNull, false}}, {0}).ok());
}

TEST(RelationSchemaTest, Accessors) {
  RelationSchema f = MakeF();
  EXPECT_EQ(f.name(), "F");
  EXPECT_EQ(f.arity(), 3u);
  EXPECT_EQ(f.key_columns(), (std::vector<size_t>{0, 1}));
  EXPECT_TRUE(f.IsKeyColumn(0));
  EXPECT_TRUE(f.IsKeyColumn(1));
  EXPECT_FALSE(f.IsKeyColumn(2));
  EXPECT_EQ(f.ColumnIndex("protein"), 1u);
  EXPECT_EQ(f.ColumnIndex("nope"), std::nullopt);
}

TEST(RelationSchemaTest, KeyOfProjectsKeyColumns) {
  RelationSchema f = MakeF();
  Tuple t{Value("rat"), Value("p1"), Value("immune")};
  EXPECT_EQ(f.KeyOf(t), (Tuple{Value("rat"), Value("p1")}));
}

TEST(RelationSchemaTest, ValidateTupleChecksArity) {
  RelationSchema f = MakeF();
  EXPECT_FALSE(f.ValidateTuple(Tuple{Value("rat")}).ok());
  EXPECT_TRUE(
      f.ValidateTuple(Tuple{Value("rat"), Value("p1"), Value("x")}).ok());
}

TEST(RelationSchemaTest, ValidateTupleChecksTypes) {
  RelationSchema f = MakeF();
  EXPECT_FALSE(
      f.ValidateTuple(Tuple{Value(int64_t{1}), Value("p1"), Value("x")}).ok());
}

TEST(RelationSchemaTest, ValidateTupleHonorsNullability) {
  RelationSchema f = MakeF();
  // function is nullable, organism is not.
  EXPECT_TRUE(
      f.ValidateTuple(Tuple{Value("rat"), Value("p1"), Value::Null()}).ok());
  auto status =
      f.ValidateTuple(Tuple{Value::Null(), Value("p1"), Value("x")});
  EXPECT_TRUE(status.IsConstraintViolation());
}

TEST(RelationSchemaTest, ToStringMentionsKeys) {
  const std::string s = MakeF().ToString();
  EXPECT_NE(s.find("organism string KEY"), std::string::npos);
  EXPECT_NE(s.find("function string NULL"), std::string::npos);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(MakeF()).ok());
  EXPECT_TRUE(catalog.HasRelation("F"));
  EXPECT_FALSE(catalog.HasRelation("G"));
  auto schema = catalog.GetRelation("F");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->name(), "F");
  EXPECT_FALSE(catalog.GetRelation("G").ok());
}

TEST(CatalogTest, RejectsDuplicateRelation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(MakeF()).ok());
  EXPECT_EQ(catalog.AddRelation(MakeF()).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation(MakeF()).ok());
  auto child = RelationSchema::Make(
      "X",
      {{"organism", ValueType::kString, false},
       {"protein", ValueType::kString, false},
       {"db", ValueType::kString, false}},
      {0, 1, 2});
  ASSERT_TRUE(child.ok());
  ASSERT_TRUE(catalog.AddRelation(*std::move(child)).ok());

  // Unknown relations fail.
  EXPECT_FALSE(catalog.AddForeignKey({"Y", {0, 1}, "F"}).ok());
  EXPECT_FALSE(catalog.AddForeignKey({"X", {0, 1}, "Y"}).ok());
  // Arity mismatch with the parent key fails.
  EXPECT_FALSE(catalog.AddForeignKey({"X", {0}, "F"}).ok());
  // Column index out of range fails.
  EXPECT_FALSE(catalog.AddForeignKey({"X", {0, 9}, "F"}).ok());
  // A valid FK registers and is discoverable from both sides.
  ASSERT_TRUE(catalog.AddForeignKey({"X", {0, 1}, "F"}).ok());
  EXPECT_EQ(catalog.ForeignKeysOf("X").size(), 1u);
  EXPECT_EQ(catalog.ForeignKeysReferencing("F").size(), 1u);
  EXPECT_TRUE(catalog.ForeignKeysOf("F").empty());
}

}  // namespace
}  // namespace orchestra::db
