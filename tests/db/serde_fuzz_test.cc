// Robustness fuzz for the wire format: random values round-trip exactly,
// and random byte garbage never crashes the decoders — they fail with
// Corruption (or, rarely, decode to *something*; the requirement is
// memory safety plus bounded position advance, not rejection).
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/transaction.h"
#include "db/serde.h"
#include "test_util.h"

namespace orchestra::db {
namespace {

Value RandomValue(Rng& rng) {
  switch (rng.NextBounded(5)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(static_cast<int64_t>(rng.Next()));
    case 2:
      return Value(rng.NextDouble() * 1e12 - 5e11);
    case 3: {
      std::string s;
      const size_t len = rng.NextBounded(40);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.NextBounded(256)));
      }
      return Value(std::move(s));
    }
    default:
      return Value(static_cast<int64_t>(rng.NextBounded(100)) - 50);
  }
}

Tuple RandomTuple(Rng& rng, size_t max_arity = 6) {
  std::vector<Value> values;
  const size_t arity = rng.NextBounded(max_arity + 1);
  for (size_t i = 0; i < arity; ++i) values.push_back(RandomValue(rng));
  return Tuple(std::move(values));
}

class SerdeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeFuzzTest, RandomTuplesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Tuple t = RandomTuple(rng);
    std::string buf;
    EncodeTuple(&buf, t);
    size_t pos = 0;
    auto decoded = DecodeTuple(buf, &pos);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, t);
    EXPECT_EQ(pos, buf.size());
    EXPECT_EQ(EncodedTupleSize(t), buf.size());
  }
}

TEST_P(SerdeFuzzTest, RandomTransactionsRoundTrip) {
  Rng rng(GetParam() + 500);
  for (int i = 0; i < 200; ++i) {
    core::Transaction txn;
    txn.id = {static_cast<core::ParticipantId>(rng.NextBounded(100)),
              rng.NextBounded(1000)};
    txn.epoch = static_cast<core::Epoch>(rng.NextBounded(10000)) - 1;
    const size_t n_updates = rng.NextBounded(6);
    for (size_t u = 0; u < n_updates; ++u) {
      const auto origin =
          static_cast<core::ParticipantId>(rng.NextBounded(10));
      switch (rng.NextBounded(3)) {
        case 0:
          txn.updates.push_back(
              core::Update::Insert("F", RandomTuple(rng, 3), origin));
          break;
        case 1:
          txn.updates.push_back(
              core::Update::Delete("F", RandomTuple(rng, 3), origin));
          break;
        default:
          txn.updates.push_back(core::Update::Modify(
              "F", RandomTuple(rng, 3), RandomTuple(rng, 3), origin));
      }
    }
    const size_t n_antes = rng.NextBounded(4);
    for (size_t a = 0; a < n_antes; ++a) {
      txn.antecedents.push_back(
          {static_cast<core::ParticipantId>(rng.NextBounded(10)),
           rng.NextBounded(100)});
    }
    std::string buf;
    core::EncodeTransaction(&buf, txn);
    size_t pos = 0;
    auto decoded = core::DecodeTransaction(buf, &pos);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->id, txn.id);
    EXPECT_EQ(decoded->epoch, txn.epoch);
    EXPECT_EQ(decoded->updates, txn.updates);
    EXPECT_EQ(decoded->antecedents, txn.antecedents);
  }
}

TEST_P(SerdeFuzzTest, GarbageNeverCrashesDecoders) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    const size_t len = rng.NextBounded(64);
    for (size_t b = 0; b < len; ++b) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    size_t pos = 0;
    auto tuple = DecodeTuple(garbage, &pos);
    EXPECT_LE(pos, garbage.size());
    pos = 0;
    auto value = DecodeValue(garbage, &pos);
    EXPECT_LE(pos, garbage.size());
    pos = 0;
    auto txn = core::DecodeTransaction(garbage, &pos);
    EXPECT_LE(pos, garbage.size());
    pos = 0;
    auto update = core::DecodeUpdate(garbage, &pos);
    EXPECT_LE(pos, garbage.size());
  }
}

TEST_P(SerdeFuzzTest, TruncationsNeverCrashDecoders) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 100; ++i) {
    core::Transaction txn;
    txn.id = {1, 2};
    txn.epoch = 3;
    txn.updates.push_back(core::Update::Insert("F", RandomTuple(rng, 3), 1));
    std::string buf;
    core::EncodeTransaction(&buf, txn);
    // Every strict prefix must fail cleanly.
    for (size_t cut = 0; cut < buf.size(); ++cut) {
      size_t pos = 0;
      auto decoded = core::DecodeTransaction(buf.substr(0, cut), &pos);
      EXPECT_FALSE(decoded.ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzzTest, ::testing::Values(7u, 8u, 9u));

}  // namespace
}  // namespace orchestra::db
