// Robustness fuzz for the wire format: random values round-trip exactly,
// and random byte garbage never crashes the decoders — they fail with
// Corruption (or, rarely, decode to *something*; the requirement is
// memory safety plus bounded position advance, not rejection).
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/transaction.h"
#include "db/serde.h"
#include "test_util.h"

namespace orchestra::db {
namespace {

Value RandomValue(Rng& rng) {
  switch (rng.NextBounded(5)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(static_cast<int64_t>(rng.Next()));
    case 2:
      return Value(rng.NextDouble() * 1e12 - 5e11);
    case 3: {
      std::string s;
      const size_t len = rng.NextBounded(40);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.NextBounded(256)));
      }
      return Value(std::move(s));
    }
    default:
      return Value(static_cast<int64_t>(rng.NextBounded(100)) - 50);
  }
}

Tuple RandomTuple(Rng& rng, size_t max_arity = 6) {
  std::vector<Value> values;
  const size_t arity = rng.NextBounded(max_arity + 1);
  for (size_t i = 0; i < arity; ++i) values.push_back(RandomValue(rng));
  return Tuple(std::move(values));
}

class SerdeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeFuzzTest, RandomTuplesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Tuple t = RandomTuple(rng);
    std::string buf;
    EncodeTuple(&buf, t);
    size_t pos = 0;
    auto decoded = DecodeTuple(buf, &pos);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, t);
    EXPECT_EQ(pos, buf.size());
    EXPECT_EQ(EncodedTupleSize(t), buf.size());
  }
}

TEST_P(SerdeFuzzTest, RandomTransactionsRoundTrip) {
  Rng rng(GetParam() + 500);
  for (int i = 0; i < 200; ++i) {
    core::Transaction txn;
    txn.id = {static_cast<core::ParticipantId>(rng.NextBounded(100)),
              rng.NextBounded(1000)};
    txn.epoch = static_cast<core::Epoch>(rng.NextBounded(10000)) - 1;
    const size_t n_updates = rng.NextBounded(6);
    for (size_t u = 0; u < n_updates; ++u) {
      const auto origin =
          static_cast<core::ParticipantId>(rng.NextBounded(10));
      switch (rng.NextBounded(3)) {
        case 0:
          txn.updates.push_back(
              core::Update::Insert("F", RandomTuple(rng, 3), origin));
          break;
        case 1:
          txn.updates.push_back(
              core::Update::Delete("F", RandomTuple(rng, 3), origin));
          break;
        default:
          txn.updates.push_back(core::Update::Modify(
              "F", RandomTuple(rng, 3), RandomTuple(rng, 3), origin));
      }
    }
    const size_t n_antes = rng.NextBounded(4);
    for (size_t a = 0; a < n_antes; ++a) {
      txn.antecedents.push_back(
          {static_cast<core::ParticipantId>(rng.NextBounded(10)),
           rng.NextBounded(100)});
    }
    std::string buf;
    core::EncodeTransaction(&buf, txn);
    size_t pos = 0;
    auto decoded = core::DecodeTransaction(buf, &pos);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->id, txn.id);
    EXPECT_EQ(decoded->epoch, txn.epoch);
    EXPECT_EQ(decoded->updates, txn.updates);
    EXPECT_EQ(decoded->antecedents, txn.antecedents);
  }
}

TEST_P(SerdeFuzzTest, GarbageNeverCrashesDecoders) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    const size_t len = rng.NextBounded(64);
    for (size_t b = 0; b < len; ++b) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    size_t pos = 0;
    auto tuple = DecodeTuple(garbage, &pos);
    EXPECT_LE(pos, garbage.size());
    pos = 0;
    auto value = DecodeValue(garbage, &pos);
    EXPECT_LE(pos, garbage.size());
    pos = 0;
    auto txn = core::DecodeTransaction(garbage, &pos);
    EXPECT_LE(pos, garbage.size());
    pos = 0;
    auto update = core::DecodeUpdate(garbage, &pos);
    EXPECT_LE(pos, garbage.size());
  }
}

TEST_P(SerdeFuzzTest, TruncationsNeverCrashDecoders) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 100; ++i) {
    core::Transaction txn;
    txn.id = {1, 2};
    txn.epoch = 3;
    txn.updates.push_back(core::Update::Insert("F", RandomTuple(rng, 3), 1));
    std::string buf;
    core::EncodeTransaction(&buf, txn);
    // Every strict prefix must fail cleanly.
    for (size_t cut = 0; cut < buf.size(); ++cut) {
      size_t pos = 0;
      auto decoded = core::DecodeTransaction(buf.substr(0, cut), &pos);
      EXPECT_FALSE(decoded.ok());
    }
  }
}

// --- Varint edges and the zero-copy decode path. ---

TEST(VarintEdgeTest, BoundaryValuesRoundTripAtExactLength) {
  std::vector<uint64_t> edges = {0, 1, 127, 128, 129, UINT64_MAX};
  // Every LEB128 length boundary: 2^(7k) - 1, 2^(7k), 2^(7k) + 1.
  for (int k = 1; k < 10; ++k) {
    const uint64_t boundary = uint64_t{1} << (7 * k);
    edges.push_back(boundary - 1);
    edges.push_back(boundary);
    edges.push_back(boundary + 1);
  }
  for (uint64_t v : edges) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v)) << v;
    size_t pos = 0;
    auto decoded = GetVarint64(buf, &pos);
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(pos, buf.size()) << v;
  }
  // The extremes pin the length formula itself.
  EXPECT_EQ(VarintLength(0), 1u);
  EXPECT_EQ(VarintLength(127), 1u);
  EXPECT_EQ(VarintLength(128), 2u);
  EXPECT_EQ(VarintLength(UINT64_MAX), 10u);
}

TEST(VarintEdgeTest, TruncatedVarintsFailCleanly) {
  for (uint64_t v : {uint64_t{128}, uint64_t{1} << 35, UINT64_MAX}) {
    std::string buf;
    PutVarint64(&buf, v);
    for (size_t cut = 0; cut < buf.size(); ++cut) {
      size_t pos = 0;
      auto decoded = GetVarint64(std::string_view(buf).substr(0, cut), &pos);
      EXPECT_FALSE(decoded.ok()) << v << " cut at " << cut;
      EXPECT_LE(pos, cut);
    }
  }
  // An unterminated run of continuation bytes must not read past the
  // 10-byte maximum encoding.
  const std::string runaway(11, '\x80');
  size_t pos = 0;
  EXPECT_FALSE(GetVarint64(runaway, &pos).ok());
}

TEST_P(SerdeFuzzTest, CopyingAndZeroCopyTupleDecodesAgree) {
  Rng rng(GetParam() + 3000);
  for (int i = 0; i < 300; ++i) {
    const Tuple t = RandomTuple(rng);
    std::string buf;
    EncodeTuple(&buf, t);

    size_t copy_pos = 0;
    auto copied = DecodeTuple(buf, &copy_pos);
    ASSERT_TRUE(copied.ok());

    size_t view_pos = 0;
    std::vector<ValueView> views;
    ASSERT_TRUE(DecodeTupleView(buf, &view_pos, &views).ok());
    EXPECT_EQ(view_pos, copy_pos);
    ASSERT_EQ(views.size(), copied->size());
    for (size_t a = 0; a < views.size(); ++a) {
      EXPECT_EQ(views[a].ToValue(), (*copied)[a]) << "attribute " << a;
    }
  }
}

TEST_P(SerdeFuzzTest, CopyingAndZeroCopyAgreeOnGarbage) {
  // The copying decoders are layered on the zero-copy parsers, so the
  // two paths must agree byte-for-byte about acceptance and position
  // advance even on arbitrary input.
  Rng rng(GetParam() + 4000);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    const size_t len = rng.NextBounded(64);
    for (size_t b = 0; b < len; ++b) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    size_t copy_pos = 0;
    auto copied = DecodeTuple(garbage, &copy_pos);
    size_t view_pos = 0;
    std::vector<ValueView> views;
    const Status viewed = DecodeTupleView(garbage, &view_pos, &views);
    EXPECT_EQ(copied.ok(), viewed.ok());
    EXPECT_EQ(copy_pos, view_pos);

    copy_pos = 0;
    auto copied_value = DecodeValue(garbage, &copy_pos);
    view_pos = 0;
    auto viewed_value = DecodeValueView(garbage, &view_pos);
    EXPECT_EQ(copied_value.ok(), viewed_value.ok());
    EXPECT_EQ(copy_pos, view_pos);
    if (copied_value.ok() && viewed_value.ok()) {
      EXPECT_EQ(viewed_value->ToValue(), *copied_value);
    }
  }
}

TEST(ZeroCopyTest, ViewsAliasTheInputBuffer) {
  const Tuple t{db::Value("rat"), db::Value("P53"), db::Value("tumor")};
  std::string buf;
  EncodeTuple(&buf, t);
  size_t pos = 0;
  std::vector<ValueView> views;
  ASSERT_TRUE(DecodeTupleView(buf, &pos, &views).ok());
  ASSERT_EQ(views.size(), 3u);
  for (const ValueView& v : views) {
    ASSERT_EQ(v.type, ValueType::kString);
    // The view points into buf — zero copies were made.
    EXPECT_GE(v.str.data(), buf.data());
    EXPECT_LE(v.str.data() + v.str.size(), buf.data() + buf.size());
  }
  EXPECT_EQ(views[1].str, "P53");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzzTest, ::testing::Values(7u, 8u, 9u));

}  // namespace
}  // namespace orchestra::db
