#include "db/serde.h"

#include <gtest/gtest.h>

#include <limits>

namespace orchestra::db {
namespace {

TEST(VarintTest, RoundTripSmallAndLarge) {
  for (uint64_t v : std::vector<uint64_t>{0, 1, 127, 128, 300, uint64_t{1} << 32,
                                          std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    auto decoded = GetVarint64(buf, &pos);
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  size_t pos = 0;
  EXPECT_FALSE(GetVarint64(buf, &pos).ok());
}

TEST(LengthPrefixedTest, RoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  size_t pos = 0;
  EXPECT_EQ(*GetLengthPrefixed(buf, &pos), "hello");
  EXPECT_EQ(*GetLengthPrefixed(buf, &pos), "");
  EXPECT_EQ(*GetLengthPrefixed(buf, &pos), std::string(1000, 'x'));
  EXPECT_EQ(pos, buf.size());
}

TEST(LengthPrefixedTest, TruncatedPayloadFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(buf.size() - 2);
  size_t pos = 0;
  EXPECT_FALSE(GetLengthPrefixed(buf, &pos).ok());
}

TEST(ValueSerdeTest, RoundTripAllTypes) {
  const std::vector<Value> values = {
      Value::Null(),
      Value(int64_t{0}),
      Value(int64_t{-1}),
      Value(int64_t{123456789}),
      Value(std::numeric_limits<int64_t>::min()),
      Value(std::numeric_limits<int64_t>::max()),
      Value(0.0),
      Value(-2.5),
      Value(1e300),
      Value(""),
      Value("protein function"),
  };
  for (const Value& v : values) {
    std::string buf;
    EncodeValue(&buf, v);
    size_t pos = 0;
    auto decoded = DecodeValue(buf, &pos);
    ASSERT_TRUE(decoded.ok()) << v.ToString();
    EXPECT_EQ(*decoded, v) << v.ToString();
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(ValueSerdeTest, NegativeIntsAreCompact) {
  std::string buf;
  EncodeValue(&buf, Value(int64_t{-1}));
  EXPECT_LE(buf.size(), 2u);  // zigzag: tag + 1 byte
}

TEST(TupleSerdeTest, RoundTrip) {
  Tuple t{Value("rat"), Value(int64_t{7}), Value::Null(), Value(2.5)};
  std::string buf;
  EncodeTuple(&buf, t);
  size_t pos = 0;
  auto decoded = DecodeTuple(buf, &pos);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, t);
  EXPECT_EQ(pos, buf.size());
}

TEST(TupleSerdeTest, EmptyTuple) {
  std::string buf;
  EncodeTuple(&buf, Tuple());
  size_t pos = 0;
  EXPECT_EQ(*DecodeTuple(buf, &pos), Tuple());
}

TEST(TupleSerdeTest, EncodedSizeMatchesEncoding) {
  Tuple t{Value("abc"), Value(int64_t{1})};
  std::string buf;
  EncodeTuple(&buf, t);
  EXPECT_EQ(EncodedTupleSize(t), buf.size());
}

TEST(TupleSerdeTest, CorruptTagFails) {
  std::string buf;
  EncodeTuple(&buf, Tuple{Value("x")});
  buf[1] = 9;  // invalid type tag
  size_t pos = 0;
  EXPECT_FALSE(DecodeTuple(buf, &pos).ok());
}

}  // namespace
}  // namespace orchestra::db
