#include "db/table.h"

#include <gtest/gtest.h>

namespace orchestra::db {
namespace {

RelationSchema MakeF() {
  auto schema = RelationSchema::Make(
      "F",
      {{"organism", ValueType::kString, false},
       {"protein", ValueType::kString, false},
       {"function", ValueType::kString, false}},
      {0, 1});
  ORCH_CHECK(schema.ok());
  return *std::move(schema);
}

Tuple Row(const char* a, const char* b, const char* c) {
  return Tuple{Value(a), Value(b), Value(c)};
}
Tuple Key(const char* a, const char* b) {
  return Tuple{Value(a), Value(b)};
}

TEST(TableTest, InsertAndGet) {
  Table table(MakeF());
  ASSERT_TRUE(table.Insert(Row("rat", "p1", "immune")).ok());
  EXPECT_EQ(table.size(), 1u);
  auto got = table.GetByKey(Key("rat", "p1"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Row("rat", "p1", "immune"));
}

TEST(TableTest, InsertRejectsDuplicateKey) {
  Table table(MakeF());
  ASSERT_TRUE(table.Insert(Row("rat", "p1", "immune")).ok());
  EXPECT_EQ(table.Insert(Row("rat", "p1", "metab")).code(),
            StatusCode::kAlreadyExists);
  // Even an identical tuple: key uniqueness is absolute at this layer.
  EXPECT_EQ(table.Insert(Row("rat", "p1", "immune")).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, InsertValidatesSchema) {
  Table table(MakeF());
  EXPECT_FALSE(table.Insert(Tuple{Value("rat")}).ok());
  EXPECT_FALSE(
      table.Insert(Tuple{Value(int64_t{1}), Value("p"), Value("f")}).ok());
}

TEST(TableTest, DeleteByKey) {
  Table table(MakeF());
  ASSERT_TRUE(table.Insert(Row("rat", "p1", "immune")).ok());
  EXPECT_TRUE(table.DeleteByKey(Key("rat", "p1")).ok());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.DeleteByKey(Key("rat", "p1")).IsNotFound());
}

TEST(TableTest, ReplaceSameKey) {
  Table table(MakeF());
  ASSERT_TRUE(table.Insert(Row("rat", "p1", "immune")).ok());
  ASSERT_TRUE(
      table.Replace(Row("rat", "p1", "immune"), Row("rat", "p1", "metab"))
          .ok());
  EXPECT_EQ(*table.GetByKey(Key("rat", "p1")), Row("rat", "p1", "metab"));
  EXPECT_EQ(table.size(), 1u);
}

TEST(TableTest, ReplaceMovesKey) {
  Table table(MakeF());
  ASSERT_TRUE(table.Insert(Row("rat", "p1", "immune")).ok());
  ASSERT_TRUE(
      table.Replace(Row("rat", "p1", "immune"), Row("rat", "p2", "immune"))
          .ok());
  EXPECT_FALSE(table.ContainsKey(Key("rat", "p1")));
  EXPECT_TRUE(table.ContainsKey(Key("rat", "p2")));
}

TEST(TableTest, ReplaceFailsOnMissingSource) {
  Table table(MakeF());
  EXPECT_TRUE(table.Replace(Row("rat", "p1", "x"), Row("rat", "p1", "y"))
                  .IsNotFound());
}

TEST(TableTest, ReplaceFailsOnTargetCollision) {
  Table table(MakeF());
  ASSERT_TRUE(table.Insert(Row("rat", "p1", "a")).ok());
  ASSERT_TRUE(table.Insert(Row("rat", "p2", "b")).ok());
  EXPECT_EQ(
      table.Replace(Row("rat", "p1", "a"), Row("rat", "p2", "a")).code(),
      StatusCode::kAlreadyExists);
}

TEST(TableTest, ContainsTupleChecksFullValue) {
  Table table(MakeF());
  ASSERT_TRUE(table.Insert(Row("rat", "p1", "immune")).ok());
  EXPECT_TRUE(table.ContainsTuple(Row("rat", "p1", "immune")));
  EXPECT_FALSE(table.ContainsTuple(Row("rat", "p1", "metab")));
  EXPECT_TRUE(table.ContainsKey(Key("rat", "p1")));
}

TEST(TableTest, ScanSortedIsDeterministic) {
  Table table(MakeF());
  ASSERT_TRUE(table.Insert(Row("rat", "p2", "b")).ok());
  ASSERT_TRUE(table.Insert(Row("mouse", "p1", "a")).ok());
  ASSERT_TRUE(table.Insert(Row("rat", "p1", "c")).ok());
  const std::vector<Tuple> sorted = table.ScanSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], Row("mouse", "p1", "a"));
  EXPECT_EQ(sorted[1], Row("rat", "p1", "c"));
  EXPECT_EQ(sorted[2], Row("rat", "p2", "b"));
}

TEST(TableTest, EqualityComparesContents) {
  Table a(MakeF());
  Table b(MakeF());
  EXPECT_TRUE(a == b);
  ASSERT_TRUE(a.Insert(Row("rat", "p1", "x")).ok());
  EXPECT_FALSE(a == b);
  ASSERT_TRUE(b.Insert(Row("rat", "p1", "x")).ok());
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace orchestra::db
