#include "db/tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace orchestra::db {
namespace {

Tuple Make(std::initializer_list<const char*> values) {
  std::vector<Value> out;
  for (const char* v : values) out.emplace_back(v);
  return Tuple(std::move(out));
}

TEST(TupleTest, BasicAccess) {
  Tuple t = Make({"a", "b", "c"});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t[0], Value("a"));
  EXPECT_EQ(t.at(2), Value("c"));
  EXPECT_TRUE(Tuple().empty());
}

TEST(TupleTest, InitializerListConstruction) {
  Tuple t{Value("x"), Value(int64_t{7})};
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].AsInt64(), 7);
}

TEST(TupleTest, AppendGrows) {
  Tuple t;
  t.Append(Value("one"));
  t.Append(Value(int64_t{2}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].AsString(), "one");
}

TEST(TupleTest, ProjectSelectsColumnsInOrder) {
  Tuple t = Make({"a", "b", "c", "d"});
  EXPECT_EQ(t.Project({2, 0}), Make({"c", "a"}));
  EXPECT_EQ(t.Project({}), Tuple());
  EXPECT_EQ(t.Project({1, 1}), Make({"b", "b"}));
}

TEST(TupleTest, EqualityAndOrdering) {
  EXPECT_EQ(Make({"a", "b"}), Make({"a", "b"}));
  EXPECT_NE(Make({"a", "b"}), Make({"a", "c"}));
  EXPECT_NE(Make({"a"}), Make({"a", "a"}));
  EXPECT_LT(Make({"a", "b"}), Make({"a", "c"}));
  EXPECT_LT(Make({"a"}), Make({"a", "a"}));  // prefix sorts first
}

TEST(TupleTest, HashConsistentWithEquality) {
  EXPECT_EQ(Make({"x", "y"}).Hash(), Make({"x", "y"}).Hash());
  EXPECT_NE(Make({"x", "y"}).Hash(), Make({"y", "x"}).Hash());
  EXPECT_NE(Make({"x"}).Hash(), Tuple().Hash());
}

TEST(TupleTest, WorksInUnorderedContainers) {
  std::unordered_set<Tuple, TupleHash> set;
  set.insert(Make({"a", "1"}));
  set.insert(Make({"a", "1"}));
  set.insert(Make({"b", "2"}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Make({"a", "1"})) > 0);
  EXPECT_EQ(set.count(Make({"c", "3"})), 0u);
}

TEST(TupleTest, ToStringRendering) {
  EXPECT_EQ(Make({"rat", "p1"}).ToString(), "('rat', 'p1')");
  EXPECT_EQ(Tuple().ToString(), "()");
  EXPECT_EQ(Tuple{Value(int64_t{3})}.ToString(), "(3)");
}

}  // namespace
}  // namespace orchestra::db
