#include "db/value.h"

#include <gtest/gtest.h>

namespace orchestra::db {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value(int64_t{42}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hello").type(), ValueType::kString);
  EXPECT_EQ(Value("hello").AsString(), "hello");
  EXPECT_EQ(Value(std::string("world")).AsString(), "world");
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(int64_t{-7}).ToString(), "-7");
  EXPECT_EQ(Value("x").ToString(), "'x'");
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, EqualityAcrossTypes) {
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value("1"), Value(int64_t{1}));
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
}

TEST(ValueTest, OrderingIsTypeThenPayload) {
  // variant index order: null < int64 < double < string
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{5}), Value(0.0));
  EXPECT_LT(Value(5.0), Value("a"));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(int64_t{3}).Hash());
  EXPECT_NE(Value("abc").Hash(), Value("abd").Hash());
}

TEST(ValueTest, HashDistinguishesTypes) {
  EXPECT_NE(Value(int64_t{0}).Hash(), Value::Null().Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, NegativeZeroHashesLikePositiveZero) {
  EXPECT_EQ(Value(-0.0).Hash(), Value(0.0).Hash());
}

TEST(ValueTypeTest, Names) {
  EXPECT_EQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_EQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_EQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_EQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace orchestra::db
