// Churn properties of the dynamic-membership ring: routing stays
// correct and O(log n) across arbitrary join/leave/crash sequences,
// replica groups are always exactly the k live successors, and failed
// fingers are detected, paid for, and repaired lazily.
#include "net/dht.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/random.h"

namespace orchestra::net {
namespace {

// Reference replica group computed straight from the definition: sort
// the live nodes by id, find the key's successor, take the next k.
std::vector<size_t> ExpectedGroup(const DhtRing& ring, NodeId key, size_t k) {
  std::vector<size_t> live;
  for (size_t i = 0; i < ring.size(); ++i) {
    if (ring.IsLive(i)) live.push_back(i);
  }
  std::sort(live.begin(), live.end(), [&](size_t a, size_t b) {
    return ring.IdOf(a) < ring.IdOf(b);
  });
  size_t pos = 0;
  while (pos < live.size() && ring.IdOf(live[pos]) < key) ++pos;
  if (pos == live.size()) pos = 0;
  std::vector<size_t> group;
  const size_t count = std::min(k, live.size());
  for (size_t i = 0; i < count; ++i) {
    group.push_back(live[(pos + i) % live.size()]);
  }
  return group;
}

// Checks the full routing/ownership/replication contract from every
// live start node for a handful of keys.
void CheckRingInvariants(const DhtRing& ring, int round) {
  const double max_hops =
      2.0 * std::log2(static_cast<double>(ring.live_count()) + 1) + 4;
  for (int k = 0; k < 16; ++k) {
    const NodeId key =
        KeyHash("probe:" + std::to_string(round) + ":" + std::to_string(k));
    const size_t owner = ring.OwnerOf(key);
    ASSERT_TRUE(ring.IsLive(owner));
    EXPECT_EQ(ring.ReplicaGroup(key, 3), ExpectedGroup(ring, key, 3));
    for (size_t from = 0; from < ring.size(); ++from) {
      if (!ring.IsLive(from)) continue;
      const RouteResult route = ring.Route(from, key);
      EXPECT_EQ(route.owner, owner) << "from " << from;
      EXPECT_LE(static_cast<double>(route.hops), max_hops)
          << "live=" << ring.live_count();
    }
  }
}

TEST(DhtChurnTest, JoinAddsLiveSlotAndKeepsOldSlotsStable) {
  DhtRing ring(4);
  const std::vector<NodeId> before = {ring.IdOf(0), ring.IdOf(1),
                                      ring.IdOf(2), ring.IdOf(3)};
  auto joined = ring.Join();
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined, 4u);
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.live_count(), 5u);
  EXPECT_TRUE(ring.IsLive(*joined));
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(ring.IdOf(i), before[i]);
}

TEST(DhtChurnTest, JoinWithIdRejectsCollision) {
  DhtRing ring(4);
  auto dup = ring.JoinWithId(ring.IdOf(2));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ring.live_count(), 4u);
}

TEST(DhtChurnTest, LeaveTransfersOwnershipToSuccessor) {
  DhtRing ring(8);
  const NodeId key = ring.IdOf(3);  // owned by node 3 itself
  ASSERT_EQ(ring.OwnerOf(key), 3u);
  ASSERT_TRUE(ring.Leave(3).ok());
  EXPECT_FALSE(ring.IsLive(3));
  EXPECT_EQ(ring.live_count(), 7u);
  const size_t heir = ring.OwnerOf(key);
  EXPECT_NE(heir, 3u);
  EXPECT_TRUE(ring.IsLive(heir));
  // Cooperative departure repaired fingers eagerly: no failed probes.
  for (size_t from = 0; from < ring.size(); ++from) {
    if (!ring.IsLive(from)) continue;
    const RouteResult route = ring.Route(from, key);
    EXPECT_EQ(route.owner, heir);
    EXPECT_EQ(route.failed_probes, 0) << "from " << from;
  }
}

TEST(DhtChurnTest, RemovingDeadOrLastNodeFails) {
  DhtRing ring(2);
  ASSERT_TRUE(ring.Crash(0).ok());
  EXPECT_FALSE(ring.Leave(0).ok());   // already dead
  EXPECT_FALSE(ring.Crash(0).ok());
  EXPECT_FALSE(ring.Leave(1).ok());   // last live node
  EXPECT_EQ(ring.live_count(), 1u);
}

TEST(DhtChurnTest, CrashLeavesStaleFingersThatRoutesRepair) {
  DhtRing ring(32);
  // Crash a batch of nodes; their finger entries elsewhere stay stale.
  for (size_t victim : {3u, 11u, 19u, 27u}) {
    ASSERT_TRUE(ring.Crash(victim).ok());
  }
  int64_t failed_probes = 0;
  for (int k = 0; k < 200; ++k) {
    const NodeId key = KeyHash("after-crash:" + std::to_string(k));
    const size_t owner = ring.OwnerOf(key);
    const RouteResult route = ring.Route(k % 3 == 0 ? 0 : 1, key);
    EXPECT_EQ(route.owner, owner);
    failed_probes += route.failed_probes;
  }
  // Lazy repair: at least one route must have tripped over a dead
  // finger...
  EXPECT_GT(failed_probes, 0);
  // ...and repairing on discovery means re-running the same lookups
  // finds strictly fewer (here: zero from the repaired start nodes).
  int64_t second_pass = 0;
  for (int k = 0; k < 200; ++k) {
    const NodeId key = KeyHash("after-crash:" + std::to_string(k));
    second_pass += ring.Route(k % 3 == 0 ? 0 : 1, key).failed_probes;
  }
  EXPECT_EQ(second_pass, 0);
}

TEST(DhtChurnTest, SuccessorListsHoldOnlyLiveNodesInRingOrder) {
  DhtRing ring(12, /*successor_list_length=*/4);
  ASSERT_TRUE(ring.Crash(5).ok());
  ASSERT_TRUE(ring.Leave(9).ok());
  for (size_t i = 0; i < ring.size(); ++i) {
    if (!ring.IsLive(i)) continue;
    const std::vector<size_t>& succ = ring.SuccessorList(i);
    EXPECT_EQ(succ.size(), 4u);
    // succ[0] is the live successor: owner of id+1.
    EXPECT_EQ(succ[0], ring.OwnerOf(ring.IdOf(i) + 1));
    for (size_t s : succ) EXPECT_TRUE(ring.IsLive(s));
  }
}

TEST(DhtChurnTest, ReplicaGroupIsExactlyKLiveSuccessors) {
  DhtRing ring(10);
  const NodeId key = KeyHash("some-key");
  const std::vector<size_t> group = ring.ReplicaGroup(key, 3);
  ASSERT_EQ(group.size(), 3u);
  EXPECT_EQ(group[0], ring.OwnerOf(key));
  EXPECT_EQ(group, ExpectedGroup(ring, key, 3));
  // Crashing the primary promotes the next successor.
  ASSERT_TRUE(ring.Crash(group[0]).ok());
  const std::vector<size_t> after = ring.ReplicaGroup(key, 3);
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[0], group[1]);
  EXPECT_EQ(after, ExpectedGroup(ring, key, 3));
  // k larger than the ring clamps to every live node.
  EXPECT_EQ(ring.ReplicaGroup(key, 100).size(), ring.live_count());
}

// The property/fuzz pass: random membership sequences, with the full
// ownership/routing/replication contract re-checked after every event.
TEST(DhtChurnTest, RandomMembershipSequencesKeepInvariants) {
  for (uint64_t seed : {7u, 21u, 63u}) {
    Rng rng(seed);
    DhtRing ring(16);
    for (int round = 0; round < 60; ++round) {
      const double roll = rng.NextDouble();
      if (roll < 0.35 || ring.live_count() <= 4) {
        ASSERT_TRUE(ring.Join().ok());
      } else {
        // Pick a live victim uniformly.
        std::vector<size_t> live;
        for (size_t i = 0; i < ring.size(); ++i) {
          if (ring.IsLive(i)) live.push_back(i);
        }
        const size_t victim = live[rng.NextBounded(live.size())];
        if (roll < 0.65) {
          ASSERT_TRUE(ring.Crash(victim).ok());
        } else {
          ASSERT_TRUE(ring.Leave(victim).ok());
        }
      }
      CheckRingInvariants(ring, round);
    }
  }
}

}  // namespace
}  // namespace orchestra::net
