// Parameterized sweep over ring sizes: ownership and routing invariants
// must hold for every confederation size the benchmarks use.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "net/dht.h"

namespace orchestra::net {
namespace {

class DhtSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DhtSweepTest, OwnershipIsTotalAndConsistent) {
  DhtRing ring(GetParam());
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const NodeId key = rng.Next();
    const size_t owner = ring.OwnerOf(key);
    ASSERT_LT(owner, ring.size());
    // Every lookup from every starting node lands on the same owner.
    const size_t from = rng.NextBounded(ring.size());
    const RouteResult route = ring.Route(from, key);
    EXPECT_EQ(route.owner, owner);
  }
}

TEST_P(DhtSweepTest, HopsBoundedByLogOfRingSize) {
  DhtRing ring(GetParam());
  Rng rng(GetParam() + 7);
  const int64_t bound =
      2 * static_cast<int64_t>(std::ceil(std::log2(
              static_cast<double>(ring.size()) + 1))) +
      2;
  int64_t total = 0;
  const int lookups = 400;
  for (int i = 0; i < lookups; ++i) {
    const RouteResult route =
        ring.Route(rng.NextBounded(ring.size()), rng.Next());
    EXPECT_LE(route.hops, bound);
    total += route.hops;
  }
  if (ring.size() > 1) {
    const double avg = static_cast<double>(total) / lookups;
    EXPECT_LE(avg, std::log2(static_cast<double>(ring.size())) + 1.0);
  }
}

TEST_P(DhtSweepTest, SelfLookupsAreFree) {
  DhtRing ring(GetParam());
  for (size_t i = 0; i < ring.size(); ++i) {
    const RouteResult route = ring.Route(i, ring.IdOf(i));
    EXPECT_EQ(route.owner, i);
    EXPECT_EQ(route.hops, 0);
  }
}

TEST_P(DhtSweepTest, LoadIsSpreadAcrossNodes) {
  // Hashing must not funnel everything to a handful of owners: with
  // k keys over n nodes, the busiest node should own well under half.
  DhtRing ring(GetParam());
  if (ring.size() < 4) return;
  std::vector<int> owned(ring.size(), 0);
  const int keys = 2000;
  for (int i = 0; i < keys; ++i) {
    owned[ring.OwnerOf(KeyHash("load:" + std::to_string(i)))]++;
  }
  int busiest = 0;
  for (int count : owned) busiest = std::max(busiest, count);
  EXPECT_LT(busiest, keys / 2);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, DhtSweepTest,
                         ::testing::Values<size_t>(1, 2, 3, 5, 10, 25, 50,
                                                   128));

}  // namespace
}  // namespace orchestra::net
