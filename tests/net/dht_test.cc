#include "net/dht.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "net/sim_network.h"

namespace orchestra::net {
namespace {

TEST(DhtRingTest, SingleNodeOwnsEverything) {
  DhtRing ring(1);
  EXPECT_EQ(ring.OwnerOf(0), 0u);
  EXPECT_EQ(ring.OwnerOf(~uint64_t{0}), 0u);
  const RouteResult route = ring.Route(0, KeyHash("anything"));
  EXPECT_EQ(route.owner, 0u);
  EXPECT_EQ(route.hops, 0);
}

TEST(DhtRingTest, NodeIdsAreUnique) {
  DhtRing ring(50);
  std::set<NodeId> ids;
  for (size_t i = 0; i < ring.size(); ++i) ids.insert(ring.IdOf(i));
  EXPECT_EQ(ids.size(), 50u);
}

TEST(DhtRingTest, OwnershipIsSuccessor) {
  DhtRing ring(8);
  // The owner of a node's own id is that node.
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.OwnerOf(ring.IdOf(i)), i);
  }
  // The owner of id+1 is the next node on the ring (or the same node if
  // another node's id equals id+1 — excluded by uniqueness).
  for (size_t i = 0; i < ring.size(); ++i) {
    const size_t owner = ring.OwnerOf(ring.IdOf(i) + 1);
    EXPECT_NE(owner, i);
  }
}

TEST(DhtRingTest, RoutingReachesTheOwner) {
  DhtRing ring(32);
  for (int k = 0; k < 200; ++k) {
    const NodeId key = KeyHash("key:" + std::to_string(k));
    const size_t expected = ring.OwnerOf(key);
    for (size_t from : {size_t{0}, size_t{7}, size_t{31}}) {
      const RouteResult route = ring.Route(from, key);
      EXPECT_EQ(route.owner, expected);
      if (from == expected) {
        EXPECT_EQ(route.hops, 0);
      } else {
        EXPECT_GT(route.hops, 0);
      }
    }
  }
}

TEST(DhtRingTest, HopCountIsLogarithmic) {
  DhtRing ring(64);
  int64_t total_hops = 0;
  int lookups = 0;
  for (int k = 0; k < 500; ++k) {
    const NodeId key = KeyHash("probe:" + std::to_string(k));
    const RouteResult route =
        ring.Route(static_cast<size_t>(k) % ring.size(), key);
    total_hops += route.hops;
    ++lookups;
    // Chord guarantees O(log n) w.h.p.; allow slack.
    EXPECT_LE(route.hops, 2 * 6 + 2);
  }
  const double avg = static_cast<double>(total_hops) / lookups;
  EXPECT_LE(avg, std::log2(64.0));
  EXPECT_GT(avg, 0.5);
}

TEST(DhtRingTest, FingersPointAtPowersOfTwo) {
  DhtRing ring(16);
  for (size_t i = 0; i < ring.size(); ++i) {
    for (int k = 0; k < 64; ++k) {
      const NodeId target = ring.IdOf(i) + (NodeId{1} << k);
      EXPECT_EQ(ring.Finger(i, k), ring.OwnerOf(target));
    }
  }
}

TEST(KeyHashTest, DeterministicAndSpreading) {
  EXPECT_EQ(KeyHash("epoch:1"), KeyHash("epoch:1"));
  EXPECT_NE(KeyHash("epoch:1"), KeyHash("epoch:2"));
}

TEST(SimNetworkTest, MessageCostIncludesLatencyAndBandwidth) {
  NetworkConfig config;
  config.one_way_latency_micros = 500;
  config.bytes_per_micro = 12.5;
  SimNetwork network(config);
  EXPECT_EQ(network.MessageCostMicros(0), 500);
  EXPECT_EQ(network.MessageCostMicros(125), 510);
}

TEST(SimNetworkTest, ChargeAccumulatesPerEndpointAndGlobally) {
  SimNetwork network;
  network.Charge(1, 2, 0);
  network.Charge(1, 1, 0);
  network.Charge(2, 1, 0);
  EXPECT_EQ(network.StatsFor(1).messages, 3);
  EXPECT_EQ(network.StatsFor(2).messages, 1);
  EXPECT_EQ(network.global().messages, 4);
  EXPECT_EQ(network.StatsFor(1).micros, 3 * 500);
  EXPECT_EQ(network.StatsFor(99).messages, 0);
}

TEST(SimNetworkTest, ResetClears) {
  SimNetwork network;
  network.Charge(1, 5, 100);
  network.Reset();
  EXPECT_EQ(network.StatsFor(1).messages, 0);
  EXPECT_EQ(network.global().micros, 0);
}

TEST(SimNetworkTest, HopsMultiplyCost) {
  SimNetwork network;
  const int64_t one = network.Charge(1, 1, 80);
  const int64_t three = network.Charge(2, 3, 80);
  EXPECT_EQ(three, 3 * one);
}

}  // namespace
}  // namespace orchestra::net
