#include "sim/cdss.h"

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace orchestra::sim {
namespace {

CdssConfig SmallConfig(StoreKind store) {
  CdssConfig config;
  config.participants = 4;
  config.store = store;
  config.transaction_size = 1;
  config.txns_between_recons = 2;
  config.rounds = 3;
  config.seed = 11;
  config.workload.key_pool = 200;
  config.workload.key_zipf_s = 1.0;
  return config;
}

TEST(CdssTest, RejectsZeroParticipants) {
  CdssConfig config;
  config.participants = 0;
  EXPECT_FALSE(Cdss::Make(config).ok());
}

TEST(CdssTest, RejectsZeroTransactionSize) {
  CdssConfig config;
  config.transaction_size = 0;
  EXPECT_FALSE(Cdss::Make(config).ok());
}

TEST(CdssTest, RunsWithCentralStore) {
  auto cdss = Cdss::Make(SmallConfig(StoreKind::kCentral));
  ASSERT_TRUE(cdss.ok());
  auto result = (*cdss)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reconciliations, 12u);
  EXPECT_GT(result->transactions_published, 0u);
  EXPECT_GT(result->accepted, 0u);
  EXPECT_GE(result->state_ratio, 1.0);
  EXPECT_LE(result->state_ratio, 4.0);
  EXPECT_GT(result->messages, 0);
}

TEST(CdssTest, RunsWithDhtStore) {
  auto cdss = Cdss::Make(SmallConfig(StoreKind::kDht));
  ASSERT_TRUE(cdss.ok());
  auto result = (*cdss)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reconciliations, 12u);
  EXPECT_GT(result->accepted, 0u);
}

TEST(CdssTest, DeterministicAcrossRuns) {
  auto a = Cdss::Make(SmallConfig(StoreKind::kCentral));
  auto b = Cdss::Make(SmallConfig(StoreKind::kCentral));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto ra = (*a)->Run();
  auto rb = (*b)->Run();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->state_ratio, rb->state_ratio);
  EXPECT_EQ(ra->accepted, rb->accepted);
  EXPECT_EQ(ra->deferred, rb->deferred);
  EXPECT_EQ(ra->messages, rb->messages);
}

TEST(CdssTest, StoreChoiceDoesNotChangeDataOutcomes) {
  // Reconciliation decisions depend on the model, not the store; with
  // the same seed and schedule, both stores converge to identical data.
  auto central = Cdss::Make(SmallConfig(StoreKind::kCentral));
  auto dht = Cdss::Make(SmallConfig(StoreKind::kDht));
  ASSERT_TRUE(central.ok());
  ASSERT_TRUE(dht.ok());
  auto rc = (*central)->Run();
  auto rd = (*dht)->Run();
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rd.ok());
  EXPECT_DOUBLE_EQ(rc->state_ratio, rd->state_ratio);
  EXPECT_EQ(rc->accepted, rd->accepted);
  EXPECT_EQ(rc->rejected, rd->rejected);
  EXPECT_EQ(rc->deferred, rd->deferred);
  for (size_t i = 0; i < (*central)->participant_count(); ++i) {
    EXPECT_TRUE((*central)->participant(i).instance() ==
                (*dht)->participant(i).instance())
        << "peer " << i << " diverged between stores";
  }
}

TEST(CdssTest, DhtUsesMoreMessagesThanCentral) {
  auto central = Cdss::Make(SmallConfig(StoreKind::kCentral));
  auto dht = Cdss::Make(SmallConfig(StoreKind::kDht));
  ASSERT_TRUE(central.ok());
  ASSERT_TRUE(dht.ok());
  auto rc = (*central)->Run();
  auto rd = (*dht)->Run();
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rd.ok());
  EXPECT_GT(rd->messages, rc->messages);
}

TEST(TrialStatsTest, SummarizeComputesMeanAndCi) {
  auto stats = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_GT(stats.ci95, 0.0);
  EXPECT_LT(stats.ci95, 3.0);
  EXPECT_EQ(Summarize({}).mean, 0.0);
  EXPECT_EQ(Summarize({7.0}).ci95, 0.0);
}

TEST(TrialStatsTest, RunTrialsAggregates) {
  CdssConfig config = SmallConfig(StoreKind::kCentral);
  config.rounds = 2;
  auto agg = RunTrials(config, 3);
  ASSERT_TRUE(agg.ok());
  EXPECT_GE(agg->state_ratio.mean, 1.0);
  EXPECT_GT(agg->accepted, 0.0);
}

}  // namespace
}  // namespace orchestra::sim
