// Churn sweep: whole-confederation runs over the DHT store with a
// seeded schedule of node crashes, joins and graceful leaves applied
// between reconciliation rounds. The robustness contract: churn changes
// costs, never outcomes — every run completes, the replica-placement
// invariant holds after each event, and each peer's final decision sets
// are bit-identical to the churn-free baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/cdss.h"

namespace orchestra::sim {
namespace {

CdssConfig ChurnConfigBase() {
  CdssConfig cfg;
  cfg.store = StoreKind::kDht;
  cfg.participants = 12;
  cfg.rounds = 6;
  cfg.txns_between_recons = 2;
  cfg.replication_factor = 3;
  return cfg;
}

std::vector<std::pair<uint32_t, uint64_t>> Sorted(const core::TxnIdSet& ids) {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  for (const core::TransactionId& id : ids) out.emplace_back(id.origin, id.seq);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ChurnSweepTest, ChurnedRunsMatchChurnFreeBaseline) {
  auto baseline_sim = Cdss::Make(ChurnConfigBase());
  ASSERT_TRUE(baseline_sim.ok());
  auto baseline = (*baseline_sim)->Run();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->node_crashes, 0);

  int64_t total_events = 0;
  for (uint64_t seed : {5u, 6u, 7u}) {
    CdssConfig cfg = ChurnConfigBase();
    cfg.churn.enabled = true;
    cfg.churn.seed = seed;
    cfg.churn.crash_probability = 0.05;
    cfg.churn.join_probability = 0.5;
    cfg.churn.leave_probability = 0.25;
    cfg.churn.min_live_nodes = 6;
    auto sim = Cdss::Make(cfg);
    ASSERT_TRUE(sim.ok());
    auto result = (*sim)->Run();
    ASSERT_TRUE(result.ok())
        << "seed " << seed << ": " << result.status().ToString();
    total_events += result->node_crashes + result->node_joins +
                    result->node_leaves;
    EXPECT_TRUE(result->replication_invariant_ok) << "seed " << seed;

    // Aggregates and each individual peer's decision sets must match.
    EXPECT_EQ(result->accepted, baseline->accepted) << "seed " << seed;
    EXPECT_EQ(result->rejected, baseline->rejected) << "seed " << seed;
    EXPECT_EQ(result->deferred, baseline->deferred) << "seed " << seed;
    EXPECT_EQ(result->state_ratio, baseline->state_ratio) << "seed " << seed;
    for (size_t i = 0; i < (*sim)->participant_count(); ++i) {
      EXPECT_EQ(Sorted((*sim)->participant(i).applied()),
                Sorted((*baseline_sim)->participant(i).applied()))
          << "seed " << seed << " peer " << i;
      EXPECT_EQ(Sorted((*sim)->participant(i).rejected()),
                Sorted((*baseline_sim)->participant(i).rejected()))
          << "seed " << seed << " peer " << i;
    }
  }
  // The schedule must actually have churned the ring.
  EXPECT_GT(total_events, 0);
}

TEST(ChurnSweepTest, ChurnComposesWithMessageFaults) {
  // Membership churn and message-loss injection draw from independent
  // streams; together they still converge to the baseline outcome.
  auto baseline_sim = Cdss::Make(ChurnConfigBase());
  ASSERT_TRUE(baseline_sim.ok());
  auto baseline = (*baseline_sim)->Run();
  ASSERT_TRUE(baseline.ok());

  CdssConfig cfg = ChurnConfigBase();
  cfg.churn.enabled = true;
  cfg.churn.seed = 5;
  cfg.churn.crash_probability = 0.05;
  cfg.churn.join_probability = 0.5;
  cfg.churn.min_live_nodes = 6;
  cfg.fault.failure_probability = 0.005;
  cfg.fault.seed = 3;
  auto sim = Cdss::Make(cfg);
  ASSERT_TRUE(sim.ok());
  auto result = (*sim)->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->accepted, baseline->accepted);
  EXPECT_EQ(result->rejected, baseline->rejected);
  EXPECT_EQ(result->deferred, baseline->deferred);
  EXPECT_EQ(result->state_ratio, baseline->state_ratio);
}

TEST(ChurnSweepTest, ChurnWithoutReplicationLosesData) {
  CdssConfig cfg = ChurnConfigBase();
  cfg.replication_factor = 1;
  cfg.churn.enabled = true;
  cfg.churn.seed = 5;
  cfg.churn.crash_probability = 0.08;
  cfg.churn.min_live_nodes = 6;
  auto sim = Cdss::Make(cfg);
  ASSERT_TRUE(sim.ok());
  auto result = (*sim)->Run();

  auto baseline_sim = Cdss::Make(ChurnConfigBase());
  ASSERT_TRUE(baseline_sim.ok());
  auto baseline = (*baseline_sim)->Run();
  ASSERT_TRUE(baseline.ok());

  // Without replicas the same schedule must visibly lose data: either a
  // hard error (a controller's only copy died) or diverging outcomes.
  const bool diverged =
      !result.ok() || result->accepted != baseline->accepted ||
      result->state_ratio != baseline->state_ratio;
  EXPECT_TRUE(diverged);
}

TEST(ChurnSweepTest, ChurnRejectedForCentralStore) {
  CdssConfig cfg;
  cfg.store = StoreKind::kCentral;
  cfg.churn.enabled = true;
  EXPECT_FALSE(Cdss::Make(cfg).ok());
}

}  // namespace
}  // namespace orchestra::sim
