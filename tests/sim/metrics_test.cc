#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace orchestra::sim {
namespace {

using core::Participant;
using core::TrustPolicy;
using orchestra::testing::Ins;
using orchestra::testing::MakeProteinCatalog;

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() : catalog_(MakeProteinCatalog()) {
    for (core::ParticipantId id = 1; id <= 3; ++id) {
      policies_.push_back(std::make_unique<TrustPolicy>(id));
      participants_.push_back(
          std::make_unique<Participant>(id, &catalog_, *policies_.back()));
    }
  }

  void Insert(size_t peer, const char* organism, const char* protein,
              const char* function) {
    ORCH_CHECK(participants_[peer - 1]
                   ->ExecuteTransaction({Ins(organism, protein, function,
                                             static_cast<uint32_t>(peer))})
                   .ok());
  }

  std::vector<const Participant*> View() const {
    std::vector<const Participant*> out;
    for (const auto& p : participants_) out.push_back(p.get());
    return out;
  }

  db::Catalog catalog_;
  std::vector<std::unique_ptr<TrustPolicy>> policies_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

TEST_F(MetricsTest, EmptyInstancesHaveRatioOne) {
  EXPECT_DOUBLE_EQ(StateRatio(View(), "F"), 1.0);
  EXPECT_DOUBLE_EQ(FullAgreementFraction(View(), "F"), 1.0);
}

TEST_F(MetricsTest, FullAgreementIsOne) {
  for (size_t p = 1; p <= 3; ++p) Insert(p, "rat", "p1", "same");
  EXPECT_DOUBLE_EQ(StateRatio(View(), "F"), 1.0);
  EXPECT_DOUBLE_EQ(FullAgreementFraction(View(), "F"), 1.0);
}

TEST_F(MetricsTest, MissingValueCountsAsAState) {
  // Two peers hold the key, one lacks it: states = {value, absent} = 2.
  Insert(1, "rat", "p1", "same");
  Insert(2, "rat", "p1", "same");
  EXPECT_DOUBLE_EQ(StateRatio(View(), "F"), 2.0);
  EXPECT_DOUBLE_EQ(FullAgreementFraction(View(), "F"), 0.0);
}

TEST_F(MetricsTest, TotalDisagreementEqualsPeerCount) {
  Insert(1, "rat", "p1", "a");
  Insert(2, "rat", "p1", "b");
  Insert(3, "rat", "p1", "c");
  EXPECT_DOUBLE_EQ(StateRatio(View(), "F"), 3.0);
}

TEST_F(MetricsTest, RatioAveragesOverKeys) {
  // Key 1: all agree (1). Key 2: two values + one absent (3).
  for (size_t p = 1; p <= 3; ++p) Insert(p, "rat", "p1", "same");
  Insert(1, "rat", "p2", "a");
  Insert(2, "rat", "p2", "b");
  EXPECT_DOUBLE_EQ(StateRatio(View(), "F"), (1.0 + 3.0) / 2.0);
  EXPECT_DOUBLE_EQ(FullAgreementFraction(View(), "F"), 0.5);
}

TEST_F(MetricsTest, RatioIsBounded) {
  Insert(1, "rat", "p1", "a");
  Insert(2, "rat", "p2", "b");
  Insert(3, "rat", "p3", "c");
  const double ratio = StateRatio(View(), "F");
  EXPECT_GE(ratio, 1.0);
  EXPECT_LE(ratio, 3.0);
}

}  // namespace
}  // namespace orchestra::sim
